//! Concurrency stress tests — the ThreadSanitizer targets of the `sanitizers`
//! CI job. They hammer the lock-striped block store and the shared
//! [`ClusterIo`] service from many threads so tsan can observe every
//! lock-order and atomics interleaving the data plane uses.

use ear_cluster::{BlockStore, ClusterConfig, ClusterPolicy, MiniCfs, ShardedMemStore};
use ear_faults::crc32c;
use ear_types::{
    Bandwidth, Block, BlockId, ByteSize, CacheConfig, EarConfig, ErasureParams, NodeId,
    ReplicationConfig, StoreBackend,
};
use std::sync::Arc;

const THREADS: usize = 8;
const OPS_PER_THREAD: u64 = 200;

#[test]
fn sharded_store_survives_concurrent_mixed_ops() {
    let store = Arc::new(ShardedMemStore::new());
    std::thread::scope(|scope| {
        for t in 0..THREADS as u64 {
            let store = Arc::clone(&store);
            scope.spawn(move || {
                for i in 0..OPS_PER_THREAD {
                    // Overlapping id ranges: neighbours contend on the same
                    // stripes, exercising every lock against every other.
                    let id = BlockId((t * OPS_PER_THREAD + i) % 64);
                    let data = Block::from(vec![(t as u8) ^ (i as u8); 128]);
                    let crc = crc32c(&data);
                    store.put(id, data.clone(), crc).unwrap();
                    if let Some((back, stored_crc)) = store.get_with_crc(id) {
                        // A racing overwrite may have replaced the bytes, but
                        // the (data, crc) pair must always be consistent.
                        assert_eq!(crc32c(&back), stored_crc);
                    }
                    if i % 7 == 0 {
                        store.delete(id);
                    }
                    store.contains(id);
                    store.block_count();
                    store.bytes_stored();
                }
            });
        }
    });
    // Every surviving replica is internally consistent.
    for raw in 0..64u64 {
        if let Some((data, crc)) = store.get_with_crc(BlockId(raw)) {
            assert_eq!(crc32c(&data), crc);
        }
    }
}

fn boot(policy: ClusterPolicy) -> MiniCfs {
    let ear = EarConfig::new(
        ErasureParams::new(6, 4).unwrap(),
        ReplicationConfig::two_way(),
        1,
    )
    .unwrap();
    MiniCfs::new(ClusterConfig {
        racks: 6,
        nodes_per_rack: 2,
        block_size: ByteSize::kib(16),
        node_bandwidth: Bandwidth::bytes_per_sec(1e9),
        rack_bandwidth: Bandwidth::bytes_per_sec(1e9),
        ear,
        policy,
        seed: 5,
        store: StoreBackend::from_env(),
        cache: CacheConfig::from_env(),
        durability: Default::default(),
        reliability: Default::default(),
        encode_path: ear_types::EncodePath::from_env(),
        repair_path: ear_types::RepairPath::from_env(),
    })
    .unwrap()
}

#[test]
fn cluster_io_survives_concurrent_writes_and_reads() {
    let cfs = boot(ClusterPolicy::Ear);
    let nodes = cfs.topology().num_nodes() as u64;

    // Phase 1: parallel writers through the full pipeline (NameNode
    // allocation, ClusterIo replication, netem accounting).
    let written: Vec<(BlockId, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS as u64)
            .map(|t| {
                let cfs = &cfs;
                scope.spawn(move || {
                    let mut out = Vec::new();
                    for i in 0..24u64 {
                        let tag = t * 1000 + i;
                        let client = NodeId((tag % nodes) as u32);
                        let id = cfs.write_block(client, cfs.make_block(tag)).unwrap();
                        out.push((id, tag));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("writer thread"))
            .collect()
    });

    // Phase 2: parallel readers over the full block set, from every node.
    std::thread::scope(|scope| {
        for t in 0..THREADS as u64 {
            let cfs = &cfs;
            let written = &written;
            scope.spawn(move || {
                for &(id, tag) in written {
                    let reader = NodeId(((tag + t) % nodes) as u32);
                    let back = cfs.read_block(reader, id).unwrap();
                    assert_eq!(back.as_slice(), cfs.make_block(tag).as_slice());
                }
            });
        }
    });

    let stats = cfs.io_stats();
    assert_eq!(stats.reads, (written.len() * THREADS) as u64);
    assert_eq!(stats.failed_reads, 0);
}

#[test]
fn heartbeats_race_cleanly_with_data_plane_traffic() {
    let cfs = boot(ClusterPolicy::Rr);
    let nodes = cfs.topology().num_nodes() as u64;
    std::thread::scope(|scope| {
        // Heartbeat/health pollers on the control plane...
        for _ in 0..2 {
            let cfs = &cfs;
            scope.spawn(move || {
                for _ in 0..50 {
                    cfs.heartbeat_tick().unwrap();
                    let snap = cfs.health_snapshot().unwrap();
                    assert_eq!(snap.len(), cfs.topology().num_nodes());
                }
            });
        }
        // ...racing writers on the data plane.
        for t in 0..4u64 {
            let cfs = &cfs;
            scope.spawn(move || {
                for i in 0..25u64 {
                    let tag = t * 100 + i;
                    let client = NodeId((tag % nodes) as u32);
                    cfs.write_block(client, cfs.make_block(tag)).unwrap();
                }
            });
        }
    });
}
