//! Property-based tests of the PlacementMonitor/BlockMover repair loop:
//! for any hostable topology, policy, and write order, iterating
//! `scan → plan_repairs → relocate` converges to zero rack-fault-tolerance
//! violations — and EAR needs zero iterations (Section II-B vs Section III).

use ear_cluster::{
    plan_repairs, recover_node, run_plan, scan, ChaosConfig, ClusterConfig, ClusterPolicy,
    MiniCfs, RaidNode,
};
use ear_faults::{FaultConfig, FaultPlan};
use ear_types::{
    Bandwidth, ByteSize, ClusterTopology, EarConfig, EncodePath, ErasureParams, NodeId,
    RepairPath, ReplicationConfig,
};
use proptest::prelude::*;

/// A cluster + workload EAR can host with c = 1.
#[derive(Debug, Clone)]
struct Scenario {
    policy: ClusterPolicy,
    n: usize,
    k: usize,
    racks: usize,
    nodes_per_rack: usize,
    stripes: usize,
    seed: u64,
}

fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    (
        prop_oneof![Just(ClusterPolicy::Ear), Just(ClusterPolicy::Rr)],
        prop_oneof![Just((6usize, 4usize)), Just((5, 4)), Just((6, 5))],
        1usize..=3,   // racks beyond the c = 1 minimum of n
        2usize..=3,   // nodes per rack
        2usize..=4,   // stripes to seal
        any::<u64>(), // cluster seed
    )
        .prop_map(|(policy, (n, k), extra, nodes_per_rack, stripes, seed)| Scenario {
            policy,
            n,
            k,
            racks: n + extra,
            nodes_per_rack,
            stripes,
            seed,
        })
}

fn config(s: &Scenario, c: usize, encode_path: EncodePath, repair_path: RepairPath) -> ClusterConfig {
    let ear = EarConfig::new(
        ErasureParams::new(s.n, s.k).expect("valid by construction"),
        ReplicationConfig::two_way(),
        c,
    )
    .expect("valid");
    ClusterConfig {
        racks: s.racks,
        nodes_per_rack: s.nodes_per_rack,
        block_size: ByteSize::kib(16),
        node_bandwidth: Bandwidth::bytes_per_sec(1e9),
        rack_bandwidth: Bandwidth::bytes_per_sec(1e9),
        ear,
        policy: s.policy,
        seed: s.seed,
        store: ear_types::StoreBackend::from_env(),
        cache: ear_types::CacheConfig::from_env(),
        durability: Default::default(),
        reliability: Default::default(),
        encode_path,
        repair_path,
    }
}

fn build(s: &Scenario) -> MiniCfs {
    MiniCfs::new(config(s, 1, EncodePath::from_env(), RepairPath::from_env()))
        .expect("hostable by construction")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn repair_loop_converges_to_zero_violations(s in scenario_strategy()) {
        let cfs = build(&s);
        let nodes = cfs.topology().num_nodes() as u64;
        let mut i = 0u64;
        while cfs.namenode().pending_stripe_count() < s.stripes {
            let data = cfs.make_block(i);
            cfs.write_block(NodeId((i % nodes) as u32), data)
                .map_err(|e| TestCaseError::fail(format!("write failed: {e}")))?;
            i += 1;
            prop_assert!(i < (s.stripes * s.k * 20) as u64, "failed to seal stripes");
        }
        let (stats, relocations) = RaidNode::encode_all(&cfs, 4)
            .map_err(|e| TestCaseError::fail(format!("encode failed: {e}")))?;
        prop_assert!(stats.failed_stripes.is_empty(), "fault-free encode lost stripes");
        RaidNode::relocate(&cfs, &relocations)
            .map_err(|e| TestCaseError::fail(format!("relocate failed: {e}")))?;

        // EAR's layout is valid by construction: zero sweeps needed.
        if s.policy == ClusterPolicy::Ear {
            prop_assert_eq!(scan(&cfs).len(), 0, "EAR produced violations");
        }

        // The repair loop must converge, and each sweep must make progress.
        let mut last = usize::MAX;
        for _sweep in 0..8 {
            let violations = scan(&cfs);
            if violations.is_empty() {
                return Ok(());
            }
            prop_assert!(
                violations.len() < last,
                "repair sweep made no progress: {} violations remain",
                violations.len()
            );
            last = violations.len();
            let repairs = plan_repairs(&cfs, &violations);
            prop_assert!(!repairs.is_empty(), "violations but no repairs planned");
            RaidNode::relocate(&cfs, &repairs)
                .map_err(|e| TestCaseError::fail(format!("repair relocation failed: {e}")))?;
        }
        prop_assert_eq!(scan(&cfs).len(), 0, "repair loop did not converge in 8 sweeps");
    }

    #[test]
    fn chaos_invariants_hold_for_arbitrary_seeds(
        seed in any::<u64>(),
        policy in prop_oneof![Just(ClusterPolicy::Ear), Just(ClusterPolicy::Rr)],
    ) {
        // The soak test walks fixed seed ranges; this samples the whole
        // seed space with the light fault mix.
        let report = run_plan(seed, &ChaosConfig::light(policy))
            .map_err(|e| TestCaseError::fail(format!("harness error: {e}")))?;
        prop_assert!(report.passed(policy), "seed {seed}: {report:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// DESIGN.md §15: the pipelined encode chain is a pure traffic-shape
    /// change. For any policy, code shape, rack-fault tolerance `c`,
    /// topology, and write order, `EncodePath::Pipelined` seals the same
    /// stripes with the same parity block ids, the same placements, and
    /// bit-identical parity bytes as `EncodePath::Gather` — while never
    /// shipping more bytes across rack boundaries.
    #[test]
    fn pipelined_encode_matches_gather_bit_for_bit(
        s in scenario_strategy(),
        c in 1usize..=2,
    ) {
        let gather = MiniCfs::new(config(&s, c, EncodePath::Gather, RepairPath::Direct))
            .map_err(|e| TestCaseError::fail(format!("gather boot: {e}")))?;
        let piped = MiniCfs::new(config(&s, c, EncodePath::Pipelined, RepairPath::Direct))
            .map_err(|e| TestCaseError::fail(format!("pipelined boot: {e}")))?;
        let nodes = gather.topology().num_nodes() as u64;
        let mut i = 0u64;
        while gather.namenode().pending_stripe_count() < s.stripes {
            let w = NodeId((i % nodes) as u32);
            gather
                .write_block(w, gather.make_block(i))
                .map_err(|e| TestCaseError::fail(format!("gather write failed: {e}")))?;
            piped
                .write_block(w, piped.make_block(i))
                .map_err(|e| TestCaseError::fail(format!("pipelined write failed: {e}")))?;
            i += 1;
            prop_assert!(i < (s.stripes * s.k * 40) as u64, "failed to seal stripes");
        }
        // One map task each: block-id allocation order is deterministic, so
        // the comparison below can demand exact metadata equality.
        let (gs, _) = RaidNode::encode_all(&gather, 1)
            .map_err(|e| TestCaseError::fail(format!("gather encode failed: {e}")))?;
        let (ps, _) = RaidNode::encode_all(&piped, 1)
            .map_err(|e| TestCaseError::fail(format!("pipelined encode failed: {e}")))?;
        prop_assert_eq!(gs.stripes, ps.stripes);
        prop_assert_eq!(ps.pipeline_fallbacks, 0, "fault-free run must not fall back");
        prop_assert_eq!(ps.pipelined_stripes, ps.stripes);

        let ges = gather.namenode().encoded_stripes();
        let pes = piped.namenode().encoded_stripes();
        prop_assert_eq!(ges.len(), pes.len());
        for (g, p) in ges.iter().zip(pes.iter()) {
            prop_assert_eq!(g.id, p.id);
            prop_assert_eq!(&g.data, &p.data);
            prop_assert_eq!(&g.parity, &p.parity);
            for &pb in &g.parity {
                let gl = gather.namenode().locations(pb).expect("gather parity located");
                let pl = piped.namenode().locations(pb).expect("pipelined parity located");
                prop_assert_eq!(&gl, &pl, "parity placement diverged");
                let gb = gather.datanode(gl[0]).get(pb).expect("gather parity stored");
                let pbts = piped.datanode(pl[0]).get(pb).expect("pipelined parity stored");
                prop_assert_eq!(gb.as_slice(), pbts.as_slice(), "parity bytes diverged");
            }
        }
        let g_cross = gather.network().cross_rack_bytes();
        let p_cross = piped.network().cross_rack_bytes();
        prop_assert!(
            p_cross <= g_cross,
            "pipelined shipped {} cross-rack bytes vs gather's {}", p_cross, g_cross
        );
    }

    /// DESIGN.md §15 two-phase repair: with a node crash plus a whole-rack
    /// outage injected from the first operation, `RepairPath::RackAware`
    /// must agree with `RepairPath::Direct` outcome-for-outcome — the same
    /// recovery result, identical post-repair placements, every reachable
    /// rebuilt block byte-for-byte equal to its original contents — while
    /// never paying more cross-rack transfers.
    #[test]
    fn rack_aware_repair_matches_direct_under_node_and_rack_faults(seed in any::<u64>()) {
        let faults = FaultConfig {
            straggler_delay: ear_faults::DelayModel::Throttle,
            node_crashes: 1,
            rack_outages: 1,
            stragglers: 0,
            straggler_factor: 1.0,
            transient_error_rate: 0.0,
            corruption_rate: 0.0,
            heartbeat_loss_rate: 0.0,
            // Crash and outage both active before the first operation, so
            // fault decisions cannot depend on the two paths' op streams.
            crash_window: 1,
        };
        let mk = |path| {
            let ear = EarConfig::new(
                ErasureParams::new(6, 4).expect("valid"),
                ReplicationConfig::two_way(),
                2,
            )
            .expect("valid")
            .with_target_racks(3)
            .expect("3 racks host (6,4) at c = 2");
            let cfg = ClusterConfig {
                racks: 8,
                nodes_per_rack: 4,
                block_size: ByteSize::kib(16),
                node_bandwidth: Bandwidth::bytes_per_sec(1e9),
                rack_bandwidth: Bandwidth::bytes_per_sec(1e9),
                ear,
                policy: ClusterPolicy::Ear,
                seed: 11,
                store: ear_types::StoreBackend::from_env(),
                cache: ear_types::CacheConfig::from_env(),
                durability: Default::default(),
                reliability: Default::default(),
                encode_path: EncodePath::Gather,
                repair_path: path,
            };
            let topo = ClusterTopology::uniform(cfg.racks, cfg.nodes_per_rack);
            let plan = FaultPlan::generate(seed, &topo, &faults);
            MiniCfs::with_faults(cfg, plan).expect("hostable by construction")
        };
        let direct = mk(RepairPath::Direct);
        let aware = mk(RepairPath::RackAware);
        let nodes = direct.topology().num_nodes() as u64;
        let mut i = 0u64;
        while direct.namenode().pending_stripe_count() < 2 && i < 600 {
            let w = NodeId((i % nodes) as u32);
            let rd = direct.write_block(w, direct.make_block(i));
            let ra = aware.write_block(w, aware.make_block(i));
            prop_assert_eq!(rd.is_ok(), ra.is_ok(), "write outcomes diverged at block {}", i);
            i += 1;
        }
        let _ = RaidNode::encode_all(&direct, 1)
            .map_err(|e| TestCaseError::fail(format!("direct encode failed: {e}")))?;
        let _ = RaidNode::encode_all(&aware, 1)
            .map_err(|e| TestCaseError::fail(format!("rack-aware encode failed: {e}")))?;

        let victim = direct.injector().plan().crashes()[0].node;
        let rd = recover_node(&direct, victim);
        let ra = recover_node(&aware, victim);
        match (rd, ra) {
            (Ok(sd), Ok(sa)) => {
                prop_assert_eq!(sd.blocks_recovered, sa.blocks_recovered);
                prop_assert!(
                    sa.cross_rack_downloads <= sd.cross_rack_downloads,
                    "rack-aware paid {} cross-rack transfers vs direct's {}",
                    sa.cross_rack_downloads, sd.cross_rack_downloads
                );
                for es in direct.namenode().encoded_stripes() {
                    for &blk in &es.data {
                        let ld = direct.namenode().locations(blk).expect("located");
                        let la = aware.namenode().locations(blk).expect("located");
                        prop_assert_eq!(&ld, &la, "post-repair placement diverged");
                        let Some(&holder) = ld.first() else { continue };
                        if direct.injector().node_down(holder) {
                            continue;
                        }
                        let want = direct.make_block(blk.0);
                        let got_d = direct.datanode(holder).get(blk).expect("direct copy");
                        let got_a = aware.datanode(holder).get(blk).expect("rack-aware copy");
                        prop_assert_eq!(got_d.as_slice(), want.as_slice());
                        prop_assert_eq!(got_a.as_slice(), want.as_slice());
                    }
                }
            }
            (Err(ed), Err(ea)) => {
                // Beyond-tolerance loss must surface as the same typed error
                // on both paths (rack-aware falls back to direct's plan).
                prop_assert_eq!(format!("{ed}"), format!("{ea}"));
            }
            (rd, ra) => {
                return Err(TestCaseError::fail(format!(
                    "repair paths diverged: direct {rd:?} vs rack-aware {ra:?}"
                )));
            }
        }
    }
}
