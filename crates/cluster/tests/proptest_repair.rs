//! Property-based tests of the PlacementMonitor/BlockMover repair loop:
//! for any hostable topology, policy, and write order, iterating
//! `scan → plan_repairs → relocate` converges to zero rack-fault-tolerance
//! violations — and EAR needs zero iterations (Section II-B vs Section III).

use ear_cluster::{
    plan_repairs, run_plan, scan, ChaosConfig, ClusterConfig, ClusterPolicy, MiniCfs, RaidNode,
};
use ear_types::{Bandwidth, ByteSize, EarConfig, ErasureParams, NodeId, ReplicationConfig};
use proptest::prelude::*;

/// A cluster + workload EAR can host with c = 1.
#[derive(Debug, Clone)]
struct Scenario {
    policy: ClusterPolicy,
    n: usize,
    k: usize,
    racks: usize,
    nodes_per_rack: usize,
    stripes: usize,
    seed: u64,
}

fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    (
        prop_oneof![Just(ClusterPolicy::Ear), Just(ClusterPolicy::Rr)],
        prop_oneof![Just((6usize, 4usize)), Just((5, 4)), Just((6, 5))],
        1usize..=3,   // racks beyond the c = 1 minimum of n
        2usize..=3,   // nodes per rack
        2usize..=4,   // stripes to seal
        any::<u64>(), // cluster seed
    )
        .prop_map(|(policy, (n, k), extra, nodes_per_rack, stripes, seed)| Scenario {
            policy,
            n,
            k,
            racks: n + extra,
            nodes_per_rack,
            stripes,
            seed,
        })
}

fn build(s: &Scenario) -> MiniCfs {
    let ear = EarConfig::new(
        ErasureParams::new(s.n, s.k).expect("valid by construction"),
        ReplicationConfig::two_way(),
        1,
    )
    .expect("valid");
    MiniCfs::new(ClusterConfig {
        racks: s.racks,
        nodes_per_rack: s.nodes_per_rack,
        block_size: ByteSize::kib(16),
        node_bandwidth: Bandwidth::bytes_per_sec(1e9),
        rack_bandwidth: Bandwidth::bytes_per_sec(1e9),
        ear,
        policy: s.policy,
        seed: s.seed,
        store: ear_types::StoreBackend::from_env(),
        cache: ear_types::CacheConfig::from_env(),
        durability: Default::default(),
        reliability: Default::default(),
    })
    .expect("hostable by construction")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn repair_loop_converges_to_zero_violations(s in scenario_strategy()) {
        let cfs = build(&s);
        let nodes = cfs.topology().num_nodes() as u64;
        let mut i = 0u64;
        while cfs.namenode().pending_stripe_count() < s.stripes {
            let data = cfs.make_block(i);
            cfs.write_block(NodeId((i % nodes) as u32), data)
                .map_err(|e| TestCaseError::fail(format!("write failed: {e}")))?;
            i += 1;
            prop_assert!(i < (s.stripes * s.k * 20) as u64, "failed to seal stripes");
        }
        let (stats, relocations) = RaidNode::encode_all(&cfs, 4)
            .map_err(|e| TestCaseError::fail(format!("encode failed: {e}")))?;
        prop_assert!(stats.failed_stripes.is_empty(), "fault-free encode lost stripes");
        RaidNode::relocate(&cfs, &relocations)
            .map_err(|e| TestCaseError::fail(format!("relocate failed: {e}")))?;

        // EAR's layout is valid by construction: zero sweeps needed.
        if s.policy == ClusterPolicy::Ear {
            prop_assert_eq!(scan(&cfs).len(), 0, "EAR produced violations");
        }

        // The repair loop must converge, and each sweep must make progress.
        let mut last = usize::MAX;
        for _sweep in 0..8 {
            let violations = scan(&cfs);
            if violations.is_empty() {
                return Ok(());
            }
            prop_assert!(
                violations.len() < last,
                "repair sweep made no progress: {} violations remain",
                violations.len()
            );
            last = violations.len();
            let repairs = plan_repairs(&cfs, &violations);
            prop_assert!(!repairs.is_empty(), "violations but no repairs planned");
            RaidNode::relocate(&cfs, &repairs)
                .map_err(|e| TestCaseError::fail(format!("repair relocation failed: {e}")))?;
        }
        prop_assert_eq!(scan(&cfs).len(), 0, "repair loop did not converge in 8 sweeps");
    }

    #[test]
    fn chaos_invariants_hold_for_arbitrary_seeds(
        seed in any::<u64>(),
        policy in prop_oneof![Just(ClusterPolicy::Ear), Just(ClusterPolicy::Rr)],
    ) {
        // The soak test walks fixed seed ranges; this samples the whole
        // seed space with the light fault mix.
        let report = run_plan(seed, &ChaosConfig::light(policy))
            .map_err(|e| TestCaseError::fail(format!("harness error: {e}")))?;
        prop_assert!(report.passed(policy), "seed {seed}: {report:?}");
    }
}
