//! Property-based crash/power-loss tests over the durability layer
//! (DESIGN.md §13): for any (seed, kill point), recovery must restore a
//! consistent prefix of acknowledged state. Three surfaces are attacked —
//! WAL replay, checkpoint load, and extent-store reopen — each through its
//! deterministic simulator in `ear_cluster::crashsim`. A violated invariant
//! comes back as `Err`, so every property is simply "the simulator ran
//! clean"; the error text names the seed and kill point to replay.

use ear_cluster::crashsim;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// A WAL cut anywhere (including mid-frame, with seeded garbage after
    /// the cut) recovers exactly the acknowledged prefix, twice over.
    #[test]
    fn wal_replay_recovers_acked_prefix(seed in any::<u64>(), kill in any::<u64>()) {
        let r = crashsim::run_wal_kill(seed, kill);
        prop_assert!(r.is_ok(), "wal kill failed: {:?}", r.err());
    }

    /// A crash during checkpoint writing (torn .tmp, uncompacted log, or a
    /// torn committed checkpoint) either recovers the full image or fails
    /// with a typed corruption error — never a silently wrong image.
    #[test]
    fn checkpoint_load_is_atomic(seed in any::<u64>(), kill in any::<u64>()) {
        let r = crashsim::run_checkpoint_kill(seed, kill);
        prop_assert!(r.is_ok(), "checkpoint kill failed: {:?}", r.err());
    }

    /// Cutting the extent store's write stream at any point — with seeded
    /// torn/lost writes in the unsynced window — never loses an
    /// acknowledged put/delete, never surfaces a torn record, and reopens
    /// to the same state twice.
    #[test]
    fn extent_reopen_never_lies(seed in any::<u64>(), kill in any::<u64>()) {
        let r = crashsim::run_extent_kill(seed, kill);
        prop_assert!(r.is_ok(), "extent kill failed: {:?}", r.err());
    }
}
