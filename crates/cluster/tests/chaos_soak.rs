//! Chaos soak: 100 seeded fault plans (50 per policy, light and heavy
//! mixes) against the EAR and RR testbed configurations, asserting the
//! three invariants of [`ear_cluster::chaos`]:
//!
//! 1. no acknowledged block is lost while failures per stripe stay within
//!    the code's `n - k` tolerance (per-replica-set tolerance for
//!    not-yet-encoded blocks);
//! 2. EAR encodes with zero rack-fault-tolerance violations under every
//!    plan, and RR's violations are repaired to zero by the BlockMover;
//! 3. every phase terminates with a typed result — no panic, no hang.
//!
//! A failure names the plan seed; `ear chaos --seed <s> --policy <p>
//! --profile <light|heavy>` replays it.

use ear_cluster::chaos::{run_plan, ChaosConfig};
use ear_cluster::ClusterPolicy;

fn soak(policy: ClusterPolicy, seeds: std::ops::Range<u64>) {
    let mut verified = 0usize;
    let mut encoded = 0usize;
    for seed in seeds {
        // Alternate light and heavy fault mixes across the seed range.
        let cfg = if seed.is_multiple_of(2) {
            ChaosConfig::light(policy)
        } else {
            ChaosConfig::heavy(policy)
        };
        let report = run_plan(seed, &cfg)
            .unwrap_or_else(|e| panic!("seed {seed} {policy:?}: harness error {e}"));
        assert!(
            report.passed(policy),
            "seed {seed} {policy:?} violated invariants: {report:?}"
        );
        verified += report.stripes_verified;
        encoded += report.encoded_stripes;
    }
    // The soak must actually exercise the machinery, not vacuously pass.
    assert!(encoded > 0, "{policy:?} soak never encoded a stripe");
    assert!(verified > 0, "{policy:?} soak never verified a stripe");
}

#[test]
fn ear_survives_fifty_seeded_plans() {
    soak(ClusterPolicy::Ear, 0..50);
}

#[test]
fn rr_survives_fifty_seeded_plans() {
    soak(ClusterPolicy::Rr, 0..50);
}

#[test]
fn crash_heavy_plans_never_half_encode() {
    // Plans with aggressive crash schedules: every stripe either encodes
    // completely (parity stored, replicas trimmed) or stays fully
    // replicated in the pending queue — never in between.
    for seed in 100..120u64 {
        let cfg = ChaosConfig::heavy(ClusterPolicy::Ear);
        let report = run_plan(seed, &cfg).unwrap();
        assert!(
            report.passed(ClusterPolicy::Ear),
            "seed {seed}: {report:?}"
        );
    }
}
