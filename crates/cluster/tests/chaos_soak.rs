//! Chaos soak: 100 seeded fault plans (50 per policy, light and heavy
//! mixes) against the EAR and RR testbed configurations, asserting the
//! three invariants of [`ear_cluster::chaos`]:
//!
//! 1. no acknowledged block is lost while failures per stripe stay within
//!    the code's `n - k` tolerance (per-replica-set tolerance for
//!    not-yet-encoded blocks);
//! 2. EAR encodes with zero rack-fault-tolerance violations under every
//!    plan, and RR's violations are repaired to zero by the BlockMover;
//! 3. every phase terminates with a typed result — no panic, no hang.
//!
//! A failure names the plan seed; `ear chaos --seed <s> --policy <p>
//! --profile <light|heavy>` replays it.

use ear_cluster::chaos::{run_plan, ChaosConfig};
use ear_cluster::ClusterPolicy;
use ear_faults::FaultConfig;
use ear_types::{CacheConfig, StoreBackend};
use proptest::prelude::*;

fn soak(policy: ClusterPolicy, seeds: std::ops::Range<u64>) {
    let mut verified = 0usize;
    let mut encoded = 0usize;
    for seed in seeds {
        // Alternate light and heavy fault mixes across the seed range.
        let cfg = if seed.is_multiple_of(2) {
            ChaosConfig::light(policy)
        } else {
            ChaosConfig::heavy(policy)
        };
        let report = run_plan(seed, &cfg)
            .unwrap_or_else(|e| panic!("seed {seed} {policy:?}: harness error {e}"));
        assert!(
            report.passed(policy),
            "seed {seed} {policy:?} violated invariants: {report:?}"
        );
        verified += report.stripes_verified;
        encoded += report.encoded_stripes;
    }
    // The soak must actually exercise the machinery, not vacuously pass.
    assert!(encoded > 0, "{policy:?} soak never encoded a stripe");
    assert!(verified > 0, "{policy:?} soak never verified a stripe");
}

#[test]
fn ear_survives_fifty_seeded_plans() {
    soak(ClusterPolicy::Ear, 0..50);
}

#[test]
fn rr_survives_fifty_seeded_plans() {
    soak(ClusterPolicy::Rr, 0..50);
}

/// Same seed + plan ⇒ a bit-identical report on the memory and file
/// backends. Encode runs single-threaded so the full lossy fault mix
/// (transient errors, corruption — hashed per block id) sees one
/// deterministic operation stream; thread-count invariance is covered
/// separately with an interleaving-independent plan below.
#[test]
fn chaos_reports_are_bit_identical_across_backends() {
    for (seed, heavy) in [(3u64, false), (11, false), (104, true)] {
        let cfg = |store| {
            let base = if heavy {
                ChaosConfig::heavy(ClusterPolicy::Ear)
            } else {
                ChaosConfig::light(ClusterPolicy::Ear)
            };
            ChaosConfig {
                map_tasks: 1,
                store,
                ..base
            }
        };
        let mem = run_plan(seed, &cfg(StoreBackend::Memory)).expect("memory run");
        assert!(mem.passed(ClusterPolicy::Ear), "seed {seed}: {mem:?}");
        for store in [StoreBackend::File, StoreBackend::Extent] {
            let other = run_plan(seed, &cfg(store)).expect("durable-backend run");
            assert_eq!(
                format!("{mem:?}"),
                format!("{other:?}"),
                "seed {seed}: {} diverged from memory",
                store.name()
            );
        }
    }
}

/// Same seed + plan ⇒ a bit-identical report whether the block cache is
/// off or on, and — with the cache on — across both storage backends.
/// The cache sits server-side and only elides redundant CRC
/// re-verification of already-verified bytes; every read still pays the
/// emulated wire, so no data-plane outcome (and hence no report field)
/// may depend on the cache configuration.
#[test]
fn chaos_reports_are_bit_identical_across_cache_configs() {
    let small = CacheConfig::Sized {
        hot_bytes: 1 << 20,
        cold_bytes: 4 << 20,
    };
    for (seed, heavy) in [(3u64, false), (104, true)] {
        let cfg = |store, cache| {
            let base = if heavy {
                ChaosConfig::heavy(ClusterPolicy::Ear)
            } else {
                ChaosConfig::light(ClusterPolicy::Ear)
            };
            ChaosConfig {
                map_tasks: 1,
                store,
                cache,
                ..base
            }
        };
        let off = run_plan(seed, &cfg(StoreBackend::Memory, CacheConfig::Off)).expect("cache-off");
        assert!(off.passed(ClusterPolicy::Ear), "seed {seed}: {off:?}");
        let baseline = format!("{off:?}");
        for (store, cache) in [
            (StoreBackend::Memory, small),
            (StoreBackend::File, small),
            (StoreBackend::File, CacheConfig::default()),
            (StoreBackend::Extent, small),
            (StoreBackend::Extent, CacheConfig::default()),
        ] {
            let on = run_plan(seed, &cfg(store, cache)).expect("cache-on");
            assert_eq!(
                baseline,
                format!("{on:?}"),
                "seed {seed}: {} cache {} diverged from memory cache-off",
                store.name(),
                cache.label()
            );
        }
    }
}

/// Same seed + plan ⇒ the same report regardless of encode parallelism
/// or backend. The plan is crash-only with `crash_window: 1`, so fault
/// decisions do not depend on the global operation counter or on the
/// parity block ids that parallel encode allocates in completion order —
/// the two interleaving-sensitive inputs.
#[test]
fn chaos_reports_are_identical_across_thread_counts_and_backends() {
    let crash_only = FaultConfig {
        straggler_delay: ear_faults::DelayModel::Throttle,
        node_crashes: 2,
        rack_outages: 0,
        stragglers: 0,
        straggler_factor: 1.0,
        transient_error_rate: 0.0,
        corruption_rate: 0.0,
        heartbeat_loss_rate: 0.0,
        // Both crashes active before the first operation.
        crash_window: 1,
    };
    for seed in [1u64, 9, 42] {
        let mk = |store, map_tasks| ChaosConfig {
            faults: crash_only.clone(),
            map_tasks,
            store,
            ..ChaosConfig::light(ClusterPolicy::Ear)
        };
        let baseline = run_plan(seed, &mk(StoreBackend::Memory, 1)).expect("baseline run");
        assert!(
            baseline.passed(ClusterPolicy::Ear),
            "seed {seed}: {baseline:?}"
        );
        for store in [StoreBackend::Memory, StoreBackend::File, StoreBackend::Extent] {
            for map_tasks in [1usize, 4, 8] {
                let report = run_plan(seed, &mk(store, map_tasks)).expect("run");
                assert_eq!(
                    format!("{baseline:?}"),
                    format!("{report:?}"),
                    "seed {seed}: {} x{map_tasks} diverged from memory x1",
                    store.name()
                );
            }
        }
    }
}

/// DESIGN.md §15 data-path matrix: the pipelined encode chain and the
/// rack-aware repair plan change traffic shape only. Under a crash-only
/// plan (both crashes active before the first operation, every
/// per-operation fault rate zeroed, so no decision depends on the paths'
/// differing op streams) the soak report must be bit-identical across all
/// four encode × repair combinations and across storage backends.
#[test]
fn chaos_reports_are_bit_identical_across_data_paths() {
    use ear_types::{EncodePath, RepairPath};
    let crash_only = FaultConfig {
        straggler_delay: ear_faults::DelayModel::Throttle,
        node_crashes: 2,
        rack_outages: 0,
        stragglers: 0,
        straggler_factor: 1.0,
        transient_error_rate: 0.0,
        corruption_rate: 0.0,
        heartbeat_loss_rate: 0.0,
        crash_window: 1,
    };
    for policy in [ClusterPolicy::Ear, ClusterPolicy::Rr] {
        for seed in [1u64, 9] {
            let mk = |encode_path, repair_path, store| ChaosConfig {
                faults: crash_only.clone(),
                map_tasks: 1,
                store,
                encode_path,
                repair_path,
                ..ChaosConfig::light(policy)
            };
            let baseline = run_plan(
                seed,
                &mk(EncodePath::Gather, RepairPath::Direct, StoreBackend::Memory),
            )
            .expect("baseline run");
            assert!(baseline.passed(policy), "seed {seed}: {baseline:?}");
            for encode_path in [EncodePath::Gather, EncodePath::Pipelined] {
                for repair_path in [RepairPath::Direct, RepairPath::RackAware] {
                    for store in [StoreBackend::Memory, StoreBackend::Extent] {
                        let report = run_plan(seed, &mk(encode_path, repair_path, store))
                            .expect("matrix run");
                        assert_eq!(
                            format!("{baseline:?}"),
                            format!("{report:?}"),
                            "seed {seed} {policy:?}: {encode_path:?}/{repair_path:?} on {} \
                             diverged from gather/direct on memory",
                            store.name()
                        );
                    }
                }
            }
        }
    }
}

/// The straggler-heavy soak (DESIGN.md §14): several nodes with a
/// heavy-tailed Pareto delay, hedging on vs off over pinned seeds. Both
/// runs must lose nothing and fail only typed; the hedged tail must be
/// strictly shorter in aggregate, with real hedges launched and won.
#[test]
fn straggler_heavy_soak_hedging_cuts_tail_latency() {
    let mut hedged_p99 = 0u64;
    let mut unhedged_p99 = 0u64;
    let mut hedges_launched = 0u64;
    let mut hedges_won = 0u64;
    for seed in 0..8u64 {
        let mk = |hedging| ChaosConfig {
            hedging,
            ..ChaosConfig::straggler_heavy(ClusterPolicy::Ear)
        };
        let hedged = run_plan(seed, &mk(true)).expect("hedged run");
        let unhedged = run_plan(seed, &mk(false)).expect("unhedged run");
        for r in [&hedged, &unhedged] {
            // Zero acked-block loss under pure straggler + lossy-I/O chaos;
            // any probe-read failure is typed, never a hang or panic.
            assert!(r.passed(ClusterPolicy::Ear), "seed {seed}: {r:?}");
            assert!(r.read_ops > 0, "seed {seed}: probe never read");
        }
        assert_eq!(unhedged.hedges_launched, 0, "hedging off must not hedge");
        hedged_p99 += hedged.read_p99_ticks;
        unhedged_p99 += unhedged.read_p99_ticks;
        hedges_launched += hedged.hedges_launched;
        hedges_won += hedged.hedges_won;
    }
    assert!(hedges_launched > 0, "stragglers must trigger hedges");
    assert!(hedges_won > 0, "some hedge legs must beat the straggler");
    assert!(
        hedged_p99 < unhedged_p99,
        "hedged p99 sum {hedged_p99} must beat unhedged {unhedged_p99}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Hedging is latency-only machinery: under any straggler-free plan
    /// (crashes and lossy I/O allowed, per-attempt delay always zero) the
    /// soak report must be bit-identical with hedging on and off — no
    /// hedge may launch, no outcome may shift.
    #[test]
    fn hedging_toggle_is_invisible_without_stragglers(seed in any::<u64>()) {
        let mk = |hedging| {
            let base = ChaosConfig::light(ClusterPolicy::Ear);
            ChaosConfig {
                hedging,
                map_tasks: 1,
                faults: FaultConfig {
                    stragglers: 0,
                    ..base.faults
                },
                ..base
            }
        };
        let on = run_plan(seed, &mk(true))
            .map_err(|e| TestCaseError::fail(format!("harness error: {e}")))?;
        let off = run_plan(seed, &mk(false))
            .map_err(|e| TestCaseError::fail(format!("harness error: {e}")))?;
        prop_assert_eq!(on.hedges_launched, 0);
        prop_assert_eq!(format!("{on:?}"), format!("{off:?}"));
    }
}

#[test]
fn crash_heavy_plans_never_half_encode() {
    // Plans with aggressive crash schedules: every stripe either encodes
    // completely (parity stored, replicas trimmed) or stays fully
    // replicated in the pending queue — never in between.
    for seed in 100..120u64 {
        let cfg = ChaosConfig::heavy(ClusterPolicy::Ear);
        let report = run_plan(seed, &cfg).unwrap();
        assert!(
            report.passed(ClusterPolicy::Ear),
            "seed {seed}: {report:?}"
        );
    }
}
