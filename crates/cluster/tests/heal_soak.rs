//! Heal soak: seeded fault plans with mid-run node kills, healed by the
//! background [`Healer`](ear_cluster::Healer) rather than the one-shot
//! repair loop. Each plan asserts the self-healing invariants of
//! [`ear_cluster::chaos::run_heal_plan`]:
//!
//! 1. every acknowledged block is back at target redundancy once the
//!    healer converges (replicated blocks at their replica count, every
//!    stripe member with a live copy);
//! 2. healed placements pass `monitor::scan` with zero violations;
//! 3. convergence happens within the healer's bounded round budget, and
//!    MTTR is recorded whenever a degraded episode occurred.
//!
//! A failure names the plan seed; `ear heal --seed <s>` replays it.

use ear_cluster::chaos::{run_heal_plan, HealSoakConfig, HealSoakReport};
use ear_faults::FaultConfig;
use ear_types::{CacheConfig, StoreBackend};
use proptest::prelude::*;

/// Every deterministic field of a heal report, rendered for comparison.
/// Excludes exactly the wall-clock-derived fields (`heal.wall_seconds`,
/// `heal.mttr_seconds`) — those measure elapsed time, not behaviour.
fn heal_fingerprint(r: &HealSoakReport) -> String {
    format!(
        "seed={} plan={:?} acked={} failed_writes={} encoded={} \
         violations={} under_redundant={} lost={:?} beyond=({},{}) \
         rounds={} dead={} re_replicated={} reconstructed={} scrubbed={} \
         scrub_hits={} repair_bytes={} cross_rack_bytes={} mttr_rounds={:?} \
         converged={} fault_seed={:?} breaker_trips={}",
        r.seed,
        r.plan,
        r.acked_blocks,
        r.failed_writes,
        r.encoded_stripes,
        r.violations_after_heal,
        r.under_redundant,
        r.lost_blocks,
        r.blocks_beyond_tolerance,
        r.stripes_beyond_tolerance,
        r.heal.rounds,
        r.heal.nodes_declared_dead,
        r.heal.blocks_re_replicated,
        r.heal.shards_reconstructed,
        r.heal.blocks_scrubbed,
        r.heal.scrub_hits,
        r.heal.repair_bytes,
        r.heal.cross_rack_repair_bytes,
        r.heal.mttr_rounds,
        r.heal.converged,
        r.heal.fault_seed,
        r.heal.breaker_trips,
    )
}

/// Same seed + kill plan ⇒ identical heal outcome on both storage
/// backends, down to repair-byte counters. Encode runs single-threaded so
/// the default lossy fault mix sees one deterministic operation stream.
#[test]
fn heal_reports_are_bit_identical_across_backends() {
    for seed in [0u64, 5, 9] {
        let mk = |store| HealSoakConfig {
            store,
            map_tasks: 1,
            ..HealSoakConfig::default()
        };
        let mem = run_heal_plan(seed, &mk(StoreBackend::Memory)).expect("memory run");
        assert!(mem.passed(), "seed {seed}: {mem:?}");
        for store in [StoreBackend::File, StoreBackend::Extent] {
            let other = run_heal_plan(seed, &mk(store)).expect("durable-backend run");
            assert_eq!(
                heal_fingerprint(&mem),
                heal_fingerprint(&other),
                "seed {seed}: {} diverged from memory",
                store.name()
            );
        }
    }
}

/// Same seed + kill plan ⇒ an identical heal fingerprint whether the
/// block cache is off or on, and — with the cache on — across both
/// storage backends. The healer's scrub reads go through the
/// authoritative `get_with_crc` seam (never the cache), and the cache
/// itself only skips redundant re-hashing of verified bytes, so every
/// deterministic report field (including `scrub_hits` and repair-byte
/// counters) must be independent of the cache configuration.
#[test]
fn heal_reports_are_bit_identical_across_cache_configs() {
    let small = CacheConfig::Sized {
        hot_bytes: 1 << 20,
        cold_bytes: 4 << 20,
    };
    for seed in [0u64, 5] {
        let mk = |store, cache| HealSoakConfig {
            store,
            cache,
            map_tasks: 1,
            ..HealSoakConfig::default()
        };
        let off =
            run_heal_plan(seed, &mk(StoreBackend::Memory, CacheConfig::Off)).expect("cache-off");
        assert!(off.passed(), "seed {seed}: {off:?}");
        let baseline = heal_fingerprint(&off);
        for (store, cache) in [
            (StoreBackend::Memory, small),
            (StoreBackend::File, small),
            (StoreBackend::File, CacheConfig::default()),
            (StoreBackend::Extent, small),
            (StoreBackend::Extent, CacheConfig::default()),
        ] {
            let on = run_heal_plan(seed, &mk(store, cache)).expect("cache-on");
            assert_eq!(
                baseline,
                heal_fingerprint(&on),
                "seed {seed}: {} cache {} diverged from memory cache-off",
                store.name(),
                cache.label()
            );
        }
    }
}

/// Same seed + kill plan ⇒ the same heal outcome regardless of encode
/// parallelism or backend. Kills activate within the single-threaded
/// write phase (`crash_window: 40` < the writes' operation count) and the
/// probabilistic per-block fault rates are zeroed, so no decision depends
/// on the parity block ids that parallel encode allocates in completion
/// order.
#[test]
fn heal_reports_are_identical_across_thread_counts_and_backends() {
    let faults = FaultConfig {
        straggler_delay: ear_faults::DelayModel::Throttle,
        node_crashes: 2,
        rack_outages: 0,
        stragglers: 0,
        straggler_factor: 1.0,
        transient_error_rate: 0.0,
        corruption_rate: 0.0,
        heartbeat_loss_rate: 0.0,
        crash_window: 40,
    };
    for seed in [2u64, 13] {
        let mk = |store, map_tasks| HealSoakConfig {
            store,
            map_tasks,
            faults: faults.clone(),
            ..HealSoakConfig::default()
        };
        let baseline = run_heal_plan(seed, &mk(StoreBackend::Memory, 1)).expect("baseline run");
        assert!(baseline.passed(), "seed {seed}: {baseline:?}");
        for store in [StoreBackend::Memory, StoreBackend::File, StoreBackend::Extent] {
            for map_tasks in [1usize, 4, 8] {
                let report = run_heal_plan(seed, &mk(store, map_tasks)).expect("run");
                assert_eq!(
                    heal_fingerprint(&baseline),
                    heal_fingerprint(&report),
                    "seed {seed}: {} x{map_tasks} diverged from memory x1",
                    store.name()
                );
            }
        }
    }
}

/// DESIGN.md §15: with the pipelined encode chain and rack-aware repair
/// selected together, the heal soak stays fully deterministic — identical
/// fingerprints across storage backends, including the repair-byte
/// counters the rack-aware plan is allowed to shrink.
#[test]
fn heal_reports_stay_deterministic_under_pipelined_paths() {
    use ear_types::{EncodePath, RepairPath};
    for seed in [0u64, 5] {
        let mk = |store| HealSoakConfig {
            store,
            map_tasks: 1,
            encode_path: EncodePath::Pipelined,
            repair_path: RepairPath::RackAware,
            ..HealSoakConfig::default()
        };
        let mem = run_heal_plan(seed, &mk(StoreBackend::Memory)).expect("memory run");
        assert!(mem.passed(), "seed {seed}: {mem:?}");
        for store in [StoreBackend::File, StoreBackend::Extent] {
            let other = run_heal_plan(seed, &mk(store)).expect("durable-backend run");
            assert_eq!(
                heal_fingerprint(&mem),
                heal_fingerprint(&other),
                "seed {seed}: {} diverged from memory under pipelined paths",
                store.name()
            );
        }
    }
}

/// The repair path changes how rebuild bytes travel, never what the
/// healer achieves: under a kill plan with every per-operation fault rate
/// zeroed, direct and rack-aware heals must agree on every outcome field,
/// and rack-aware must not pay more cross-rack repair bytes.
#[test]
fn rack_aware_heal_matches_direct_outcomes_with_no_extra_cross_rack_bytes() {
    use ear_types::RepairPath;
    let faults = FaultConfig {
        straggler_delay: ear_faults::DelayModel::Throttle,
        node_crashes: 2,
        rack_outages: 0,
        stragglers: 0,
        straggler_factor: 1.0,
        transient_error_rate: 0.0,
        corruption_rate: 0.0,
        heartbeat_loss_rate: 0.0,
        crash_window: 40,
    };
    for seed in [2u64, 13] {
        let mk = |repair_path| HealSoakConfig {
            map_tasks: 1,
            repair_path,
            faults: faults.clone(),
            ..HealSoakConfig::default()
        };
        let direct = run_heal_plan(seed, &mk(RepairPath::Direct)).expect("direct run");
        let aware = run_heal_plan(seed, &mk(RepairPath::RackAware)).expect("rack-aware run");
        for r in [&direct, &aware] {
            assert!(r.passed(), "seed {seed}: {r:?}");
        }
        assert_eq!(direct.acked_blocks, aware.acked_blocks, "seed {seed}");
        assert_eq!(direct.encoded_stripes, aware.encoded_stripes, "seed {seed}");
        assert_eq!(direct.violations_after_heal, aware.violations_after_heal);
        assert_eq!(direct.under_redundant, aware.under_redundant, "seed {seed}");
        assert_eq!(direct.lost_blocks, aware.lost_blocks, "seed {seed}");
        assert_eq!(direct.heal.rounds, aware.heal.rounds, "seed {seed}");
        assert_eq!(
            direct.heal.blocks_re_replicated, aware.heal.blocks_re_replicated,
            "seed {seed}"
        );
        assert_eq!(
            direct.heal.shards_reconstructed, aware.heal.shards_reconstructed,
            "seed {seed}"
        );
        assert_eq!(direct.heal.converged, aware.heal.converged, "seed {seed}");
        assert!(
            aware.heal.cross_rack_repair_bytes <= direct.heal.cross_rack_repair_bytes,
            "seed {seed}: rack-aware shipped {} cross-rack repair bytes vs direct's {}",
            aware.heal.cross_rack_repair_bytes,
            direct.heal.cross_rack_repair_bytes
        );
    }
}

#[test]
fn healer_survives_a_dozen_seeded_kill_plans() {
    let cfg = HealSoakConfig::default();
    let mut dead_declared = 0usize;
    let mut episodes = 0usize;
    for seed in 0..12u64 {
        let report = run_heal_plan(seed, &cfg)
            .unwrap_or_else(|e| panic!("seed {seed}: harness error {e}"));
        assert!(report.passed(), "seed {seed}: {report:?}");
        assert!(
            report.heal.rounds <= cfg.healer.max_rounds,
            "seed {seed}: healer overran its round budget"
        );
        if report.heal.mttr_rounds.is_some() {
            episodes += 1;
            assert!(
                report.heal.blocks_re_replicated + report.heal.shards_reconstructed > 0,
                "seed {seed}: a degraded episode ended without any repair"
            );
        }
        dead_declared += report.heal.nodes_declared_dead;
    }
    // Two kills per plan: the detector must actually have fired, and most
    // plans must have gone through a real degraded episode.
    assert!(dead_declared > 0, "no plan ever declared a node dead");
    assert!(episodes > 0, "no plan ever recorded a degraded episode");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For arbitrary fault seeds killing at most `n - k` nodes, repeated
    /// healer rounds restore full redundancy and the final placement scan
    /// reports zero violations.
    #[test]
    fn healer_restores_redundancy_for_arbitrary_seeds(
        seed in any::<u64>(),
        kills in 0usize..=2,
    ) {
        let cfg = HealSoakConfig {
            kills,
            ..HealSoakConfig::default()
        };
        let report = run_heal_plan(seed, &cfg)
            .map_err(|e| TestCaseError::fail(format!("harness error: {e}")))?;
        prop_assert!(report.passed(), "seed {seed} kills {kills}: {report:?}");
        prop_assert_eq!(
            report.violations_after_heal, 0,
            "seed {} left violations after healing", seed
        );
        if kills == 0 && report.failed_writes == 0 {
            prop_assert_eq!(report.heal.nodes_declared_dead, 0);
        }
    }
}
