//! Heal soak: seeded fault plans with mid-run node kills, healed by the
//! background [`Healer`](ear_cluster::Healer) rather than the one-shot
//! repair loop. Each plan asserts the self-healing invariants of
//! [`ear_cluster::chaos::run_heal_plan`]:
//!
//! 1. every acknowledged block is back at target redundancy once the
//!    healer converges (replicated blocks at their replica count, every
//!    stripe member with a live copy);
//! 2. healed placements pass `monitor::scan` with zero violations;
//! 3. convergence happens within the healer's bounded round budget, and
//!    MTTR is recorded whenever a degraded episode occurred.
//!
//! A failure names the plan seed; `ear heal --seed <s>` replays it.

use ear_cluster::chaos::{run_heal_plan, HealSoakConfig};
use proptest::prelude::*;

#[test]
fn healer_survives_a_dozen_seeded_kill_plans() {
    let cfg = HealSoakConfig::default();
    let mut dead_declared = 0usize;
    let mut episodes = 0usize;
    for seed in 0..12u64 {
        let report = run_heal_plan(seed, &cfg)
            .unwrap_or_else(|e| panic!("seed {seed}: harness error {e}"));
        assert!(report.passed(), "seed {seed}: {report:?}");
        assert!(
            report.heal.rounds <= cfg.healer.max_rounds,
            "seed {seed}: healer overran its round budget"
        );
        if report.heal.mttr_rounds.is_some() {
            episodes += 1;
            assert!(
                report.heal.blocks_re_replicated + report.heal.shards_reconstructed > 0,
                "seed {seed}: a degraded episode ended without any repair"
            );
        }
        dead_declared += report.heal.nodes_declared_dead;
    }
    // Two kills per plan: the detector must actually have fired, and most
    // plans must have gone through a real degraded episode.
    assert!(dead_declared > 0, "no plan ever declared a node dead");
    assert!(episodes > 0, "no plan ever recorded a degraded episode");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For arbitrary fault seeds killing at most `n - k` nodes, repeated
    /// healer rounds restore full redundancy and the final placement scan
    /// reports zero violations.
    #[test]
    fn healer_restores_redundancy_for_arbitrary_seeds(
        seed in any::<u64>(),
        kills in 0usize..=2,
    ) {
        let cfg = HealSoakConfig {
            kills,
            ..HealSoakConfig::default()
        };
        let report = run_heal_plan(seed, &cfg)
            .map_err(|e| TestCaseError::fail(format!("harness error: {e}")))?;
        prop_assert!(report.passed(), "seed {seed} kills {kills}: {report:?}");
        prop_assert_eq!(
            report.violations_after_heal, 0,
            "seed {} left violations after healing", seed
        );
        if kills == 0 && report.failed_writes == 0 {
            prop_assert_eq!(report.heal.nodes_declared_dead, 0);
        }
    }
}
