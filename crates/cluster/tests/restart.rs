//! Restart round-trip tests of the durability layer (DESIGN.md §13): a
//! durable cluster is written to and encoded under fault injection, shut
//! down, and reopened from its data directory. The recovered metadata
//! snapshot must be bit-identical to the pre-shutdown one, and every block
//! must read back the same bytes. The volatile memory backend must refuse
//! a data directory with a typed error, never a panic.

use ear_cluster::{ClusterConfig, ClusterPolicy, MiniCfs, RaidNode};
use ear_faults::{FaultConfig, FaultPlan};
use ear_types::{
    Bandwidth, ByteSize, CacheConfig, ClusterTopology, DurabilityConfig, EarConfig, Error,
    ErasureParams, NodeId, ReplicationConfig, StoreBackend,
};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn fresh_dir(label: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "ear-restart-{}-{}-{label}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

fn durable_cfg(store: StoreBackend, dir: &std::path::Path) -> ClusterConfig {
    let ear = EarConfig::new(
        ErasureParams::new(6, 4).expect("valid params"),
        ReplicationConfig::two_way(),
        1,
    )
    .expect("valid config");
    ClusterConfig {
        racks: 8,
        nodes_per_rack: 1,
        block_size: ByteSize::kib(16),
        node_bandwidth: Bandwidth::bytes_per_sec(1e9),
        rack_bandwidth: Bandwidth::bytes_per_sec(1e9),
        ear,
        policy: ClusterPolicy::Ear,
        seed: 11,
        store,
        cache: CacheConfig::from_env(),
        durability: DurabilityConfig::at(dir),
        reliability: Default::default(),
        encode_path: ear_types::EncodePath::from_env(),
        repair_path: ear_types::RepairPath::from_env(),
    }
}

/// A fault plan with lossy-but-survivable I/O: transient errors and a
/// straggler, no crashes — every write retries to success, so the set of
/// acknowledged blocks is exactly the set written.
fn lossy_plan(cfg: &ClusterConfig) -> FaultPlan {
    let topo = ClusterTopology::uniform(cfg.racks, cfg.nodes_per_rack);
    let faults = FaultConfig {
        straggler_delay: ear_faults::DelayModel::Throttle,
        node_crashes: 0,
        rack_outages: 0,
        stragglers: 1,
        straggler_factor: 0.5,
        transient_error_rate: 0.05,
        corruption_rate: 0.0,
        heartbeat_loss_rate: 0.0,
        crash_window: 1,
    };
    FaultPlan::generate(7, &topo, &faults)
}

#[test]
fn durable_backends_round_trip_through_restart() {
    for store in [StoreBackend::File, StoreBackend::Extent] {
        let dir = fresh_dir(store.name());
        let cfg = durable_cfg(store, &dir);

        // Phase 1: write + encode under fault injection, then shut down.
        let mut contents: BTreeMap<ear_types::BlockId, Vec<u8>> = BTreeMap::new();
        let before = {
            let cfs = MiniCfs::with_faults(cfg.clone(), lossy_plan(&cfg)).expect("boot");
            assert!(cfs.namenode().is_durable());
            for i in 0..24u64 {
                let data = cfs.make_block(i);
                let id = cfs
                    .write_block(NodeId((i % 8) as u32), data.clone())
                    .expect("acknowledged write");
                contents.insert(id, data);
            }
            RaidNode::encode_all(&cfs, 4).expect("encode");
            // Exercise the checkpoint path for one backend and pure WAL
            // replay for the other.
            if store == StoreBackend::File {
                cfs.checkpoint().expect("checkpoint");
            }
            cfs.namenode().snapshot()
        };

        // Phase 2: reopen from disk; metadata must be bit-identical.
        let cfs = MiniCfs::reopen(cfg.clone()).expect("reopen");
        let after = cfs.namenode().snapshot();
        assert_eq!(before, after, "{store:?}: snapshot must survive restart");
        assert_eq!(
            before.encode(),
            after.encode(),
            "{store:?}: snapshot must be bit-identical"
        );

        // Every acknowledged block reads back its exact bytes (replicated
        // or post-encoding single copies alike).
        for (&id, data) in &contents {
            let back = cfs.read_block(NodeId(0), id).expect("readable after restart");
            assert_eq!(back.as_slice(), data.as_slice(), "{store:?}: {id} bytes");
        }

        // A second reopen sees the same image (recovery is idempotent).
        drop(cfs);
        let cfs = MiniCfs::reopen(cfg).expect("second reopen");
        assert_eq!(cfs.namenode().snapshot(), after);
        drop(cfs);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn memory_backend_refuses_a_data_dir_with_typed_error() {
    let dir = fresh_dir("memory");
    let cfg = durable_cfg(StoreBackend::Memory, &dir);
    match MiniCfs::new(cfg) {
        Err(Error::NotDurable { backend }) => assert_eq!(backend, "memory"),
        other => panic!("expected NotDurable, got {:?}", other.map(|_| ())),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn reopen_without_data_dir_is_typed_not_durable() {
    let dir = fresh_dir("volatile");
    let mut cfg = durable_cfg(StoreBackend::File, &dir);
    cfg.durability = DurabilityConfig::default();
    match MiniCfs::reopen(cfg) {
        Err(Error::NotDurable { backend }) => assert_eq!(backend, "file"),
        other => panic!("expected NotDurable, got {:?}", other.map(|_| ())),
    }
}

#[test]
fn manifest_mismatch_is_a_hard_error() {
    let dir = fresh_dir("manifest");
    let cfg = durable_cfg(StoreBackend::File, &dir);
    drop(MiniCfs::new(cfg.clone()).expect("first boot"));
    let mut reshaped = cfg;
    reshaped.seed = 12;
    match MiniCfs::reopen(reshaped) {
        Err(Error::Invariant(msg)) => assert!(msg.contains("manifest"), "got: {msg}"),
        other => panic!("expected Invariant, got {:?}", other.map(|_| ())),
    }
    let _ = std::fs::remove_dir_all(&dir);
}
