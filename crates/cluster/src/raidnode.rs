//! The RaidNode: coordinates asynchronous encoding jobs (Section IV of the
//! paper) and the BlockMover that repairs fault-tolerance violations.

use crate::cluster::MiniCfs;
use crate::io::DeadNodeSet;
use crate::namenode::PendingStripe;
use crate::pipeline;
use crate::reliability::{self, OpClass};
use ear_types::{Block, BlockId, EncodePath, Error, NodeId, Result, StripeId};
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::time::Instant;

/// Encode attempts per stripe before it is handed back to the NameNode's
/// pending queue (its replicas stay intact, so nothing is lost).
const STRIPE_ATTEMPTS: u32 = 3;

/// Statistics of one encoding job (a batch of stripes).
#[derive(Debug, Clone, Default)]
pub struct EncodeStats {
    /// Stripes encoded.
    pub stripes: usize,
    /// Wall-clock duration of the whole job, seconds.
    pub wall_seconds: f64,
    /// Bytes of data blocks encoded (`stripes × k × block_size`).
    pub encoded_bytes: u64,
    /// Cross-rack block downloads performed by map tasks.
    pub cross_rack_downloads: usize,
    /// Stripes left violating rack-level fault tolerance (they need the
    /// BlockMover; always 0 under EAR).
    pub stripes_with_relocation: usize,
    /// Stripes whose parity came off the streaming pipeline chain
    /// (DESIGN.md §15); 0 when the job ran with `EncodePath::Gather`.
    pub pipelined_stripes: usize,
    /// Pipelined stripes that hit a mid-chain failure and fell back to the
    /// legacy gather path (their parity still landed, via gather).
    pub pipeline_fallbacks: usize,
    /// Per-stripe completion offsets from job start, seconds (Fig. 12).
    pub completion_times: Vec<f64>,
    /// Name of the GF(2⁸) kernel tier the codec dispatched to (`scalar`,
    /// `swar`, `ssse3`, `avx2`); empty until a job has run.
    pub gf_kernel: &'static str,
    /// The fault-plan seed active during the job, `None` when the cluster
    /// runs fault-free — recorded so every report names the chaos it
    /// survived.
    pub fault_seed: Option<u64>,
    /// Stripes that exhausted their encode attempts, with the error that
    /// stopped the last attempt. Each was returned to the NameNode's
    /// pending queue with all replicas intact.
    pub failed_stripes: Vec<(StripeId, Error)>,
}

impl EncodeStats {
    /// Encoding throughput in MiB/s (the paper's Experiment A.1 metric).
    pub fn throughput_mibps(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            return 0.0;
        }
        self.encoded_bytes as f64 / (1024.0 * 1024.0) / self.wall_seconds
    }
}

/// A relocation the BlockMover must perform: `(block, from, to)`.
pub type Relocation = (BlockId, NodeId, NodeId);

/// The RaidNode: runs encoding jobs over the NameNode's pending stripes.
pub struct RaidNode;

impl RaidNode {
    /// Encodes every pending stripe using `map_tasks` parallel workers
    /// ("map tasks"). Under EAR, stripes are grouped so that a worker's
    /// stripes share core racks and each map task runs *in* the core rack
    /// (the paper's Section IV-B scheduling change); under RR workers run
    /// wherever the encoding-node selection puts them.
    ///
    /// Relocations (RR stripes that violate rack-level fault tolerance
    /// after replica deletion) are *not* performed here — as in Facebook's
    /// HDFS they are left to the periodic PlacementMonitor/BlockMover; call
    /// [`RaidNode::relocate`] with the returned list.
    ///
    /// # Errors
    ///
    /// Propagates planning/encoding failures that indicate broken metadata
    /// (invariant violations). Fault-induced failures never error the job:
    /// a stripe whose attempts are exhausted is returned to the NameNode's
    /// pending queue with its replicas intact and listed in
    /// [`EncodeStats::failed_stripes`], so `encode_all` always terminates
    /// with an honest account of what it could and could not encode.
    pub fn encode_all(cfs: &MiniCfs, map_tasks: usize) -> Result<(EncodeStats, Vec<Relocation>)> {
        let mut stripes = cfs.namenode().take_pending_stripes();
        if stripes.is_empty() {
            return Ok((EncodeStats::default(), Vec::new()));
        }
        // Group stripes with a common core rack onto the same map task.
        stripes.sort_by_key(|s| s.plan.core_rack().map(|r| r.index()).unwrap_or(usize::MAX));
        let queue: Arc<Mutex<Vec<(PendingStripe, u32)>>> =
            Arc::new(Mutex::new(stripes.into_iter().map(|s| (s, 0)).collect()));
        let relocations: Arc<Mutex<Vec<Relocation>>> = Arc::new(Mutex::new(Vec::new()));
        let stats = Arc::new(Mutex::new(EncodeStats::default()));
        let start = Instant::now();
        let workers = map_tasks.max(1);

        let result: Result<()> = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for _ in 0..workers {
                let queue = Arc::clone(&queue);
                let relocations = Arc::clone(&relocations);
                let stats = Arc::clone(&stats);
                handles.push(scope.spawn(move || -> Result<()> {
                    loop {
                        let (stripe, tries) = {
                            let mut q = queue.lock();
                            match q.pop() {
                                Some(s) => s,
                                None => return Ok(()),
                            }
                        };
                        match encode_stripe(cfs, &stripe, &relocations) {
                            Ok(outcome) => {
                                let mut st = stats.lock();
                                st.stripes += 1;
                                st.cross_rack_downloads += outcome.cross_rack_downloads;
                                if outcome.violated {
                                    st.stripes_with_relocation += 1;
                                }
                                if outcome.pipelined {
                                    st.pipelined_stripes += 1;
                                }
                                if outcome.fell_back {
                                    st.pipeline_fallbacks += 1;
                                }
                                st.encoded_bytes += stripe.blocks.len() as u64
                                    * cfs.config().block_size.as_u64();
                                st.completion_times.push(start.elapsed().as_secs_f64());
                            }
                            // A failed attempt left the stripe fully
                            // replicated (encode_stripe mutates no metadata
                            // until parity is durable), so restarting it is
                            // always safe.
                            Err(_) if tries + 1 < STRIPE_ATTEMPTS => {
                                // Seeded jittered backoff keyed by stripe, so
                                // concurrent retries of different stripes
                                // desynchronise deterministically.
                                let ticks = cfs
                                    .reliability()
                                    .backoff_ticks(stripe.id.index() as u64, tries);
                                reliability::pace(ticks);
                                queue.lock().push((stripe, tries + 1));
                            }
                            Err(e) => {
                                stats.lock().failed_stripes.push((stripe.id, e));
                                cfs.namenode().requeue_stripe(stripe);
                            }
                        }
                    }
                }));
            }
            for h in handles {
                h.join()
                    .map_err(|_| Error::Invariant("encode worker panicked".into()))??;
            }
            Ok(())
        });
        result?;

        let mut stats = Arc::try_unwrap(stats)
            .map_err(|_| Error::Invariant("stats still shared".into()))?
            .into_inner();
        stats.wall_seconds = start.elapsed().as_secs_f64();
        stats.gf_kernel = cfs.codec().kernel().name();
        stats.fault_seed = cfs.fault_seed();
        // total_cmp: a NaN duration (however unlikely) must never panic an
        // encode job; it sorts deterministically instead.
        stats.completion_times.sort_by(f64::total_cmp);
        // Workers record failures in pop order; sort so the report is
        // independent of scheduling.
        stats.failed_stripes.sort_by_key(|&(id, _)| id);
        let relocations = Arc::try_unwrap(relocations)
            .map_err(|_| Error::Invariant("relocations still shared".into()))?
            .into_inner();
        Ok((stats, relocations))
    }

    /// The BlockMover: performs the queued relocations, moving each block's
    /// bytes to its target node. Returns the number of blocks moved.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Invariant`] if a block's bytes vanished.
    pub fn relocate(cfs: &MiniCfs, relocations: &[Relocation]) -> Result<usize> {
        for &(block, from, to) in relocations {
            let data = cfs.datanode(from).get(block).ok_or_else(|| {
                Error::Invariant(format!("{from} lost {block} before relocation"))
            })?;
            cfs.io().transfer(from, to, data.len() as u64);
            cfs.datanode(to).put(block, data)?;
            cfs.datanode(from).delete(block);
            cfs.namenode().set_locations(block, vec![to])?;
        }
        Ok(relocations.len())
    }
}

/// What one stripe's encode reports back to the job's statistics.
struct StripeOutcome {
    /// Source-block reads served from outside the reading node's rack.
    cross_rack_downloads: usize,
    /// Whether the stripe still violates rack-level fault tolerance.
    violated: bool,
    /// Whether the parity came off the streaming pipeline chain.
    pipelined: bool,
    /// Whether a pipelined attempt failed mid-chain and the parity was
    /// recomputed via the legacy gather path.
    fell_back: bool,
}

/// Encodes one stripe: compute parity (by gather or by the streaming
/// pipeline, per [`ClusterConfig::encode_path`](crate::ClusterConfig)),
/// upload it, and delete redundant replicas.
///
/// # Transactionality
///
/// Under fault injection any download, chain hop, or upload can fail. This
/// function mutates no cluster metadata and deletes no replica until
/// *every* parity block is durably stored: an error return (at any point)
/// leaves the stripe exactly as replicated as it was, so the caller can
/// retry or requeue it with no risk of a half-encoded stripe. Both parity
/// paths are read-only, which is also what makes the pipelined→gather
/// fallback safe mid-stripe.
fn encode_stripe(
    cfs: &MiniCfs,
    stripe: &PendingStripe,
    relocations: &Mutex<Vec<Relocation>>,
) -> Result<StripeOutcome> {
    let plan = cfs.namenode().plan_encoding(stripe)?;
    let enc = plan.encoding_node;
    // A dead encoding node can serve no map task; fail fast so the retry
    // (or a later job) can be replanned.
    if cfs.injector().node_down(enc) {
        return Err(Error::NodeDown { node: enc });
    }

    // Nodes this stripe's reads found fail-stop dead: shared across the
    // stripe's blocks so each pays the discovery cost at most once.
    let blacklist = DeadNodeSet::new();

    // Compute the parity bytes. The pipelined path streams partial folds
    // along a rack-major chain; a mid-chain failure (dead hop, unreadable
    // source) falls back to the legacy gather, which retries with per-block
    // replica fallback. Substrate stops (deadline, retry budget, load shed)
    // propagate — gather would be stopped by the same gate.
    let mut pipelined = false;
    let mut fell_back = false;
    let (parity, cross) = match cfs.config().encode_path {
        EncodePath::Pipelined => match pipeline::encode_pipelined(cfs, stripe, enc, &blacklist) {
            Ok(out) => {
                pipelined = true;
                (out.parity, out.cross_rack_downloads)
            }
            Err(
                e @ (Error::DeadlineExceeded { .. }
                | Error::RetryBudgetExhausted { .. }
                | Error::Overloaded { .. }),
            ) => return Err(e),
            Err(_) => {
                fell_back = true;
                gather_parity(cfs, stripe, enc, &blacklist)?
            }
        },
        EncodePath::Gather => gather_parity(cfs, stripe, enc, &blacklist)?,
    };

    // Store every parity block before touching any metadata. Ids are
    // allocated with an empty location set so a failure below leaves only
    // unreferenced ids behind, never a registered block without bytes.
    // Each store pays its own transfer through the fault boundary.
    let mut stored: Vec<(BlockId, NodeId)> = Vec::with_capacity(parity.len());
    let mut store_err = None;
    for (p, &planned) in parity.into_iter().zip(&plan.parity_nodes) {
        let id = cfs.namenode().register_block(Vec::new())?;
        match store_parity(cfs, id, Block::from(p), enc, planned, &plan.kept_data, &stored) {
            Ok(dst) => stored.push((id, dst)),
            Err(e) => {
                store_err = Some(e);
                break;
            }
        }
    }
    if let Some(e) = store_err {
        // Roll back: drop the parity bytes already stored. The data blocks
        // still have every replica, so the stripe is simply "not encoded".
        for &(id, dst) in &stored {
            cfs.datanode(dst).delete(id);
        }
        return Err(e);
    }

    // Parity is durable — only now does the stripe transition to "encoded":
    // publish parity locations, record the stripe, delete extra replicas.
    for &(id, dst) in &stored {
        cfs.namenode().set_locations(id, vec![dst])?;
    }
    cfs.namenode()
        .record_encoded(crate::namenode::EncodedStripe {
            id: stripe.id,
            data: stripe.blocks.clone(),
            parity: stored.iter().map(|&(id, _)| id).collect(),
        })?;

    // Delete redundant replicas, keeping the matching's choice. The kept
    // node may be one the fault plan has crashed — that is fine: the shard
    // stays within the stripe's `n - k` rebuild budget (a down node holds
    // at most `c` blocks of any stripe), and keeping the planned placement
    // preserves EAR's zero-violation property under faults.
    for (&block, &kept) in stripe.blocks.iter().zip(&plan.kept_data) {
        let locs = cfs
            .namenode()
            .locations(block)
            .ok_or_else(|| Error::Invariant(format!("unknown {block}")))?;
        for n in locs {
            if n != kept {
                cfs.datanode(n).delete(block);
            }
        }
        cfs.namenode().set_locations(block, vec![kept])?;
    }
    // Queue relocations for the BlockMover.
    let violated = plan.violated_rack_fault_tolerance();
    if violated {
        let mut r = relocations.lock();
        for &(idx, _, to) in &plan.relocations {
            // Indices come from the matching over this same stripe; a bad
            // one is dropped rather than panicking the encode worker.
            if let (Some(&b), Some(&k)) = (stripe.blocks.get(idx), plan.kept_data.get(idx)) {
                r.push((b, k, to));
            }
        }
    }
    Ok(StripeOutcome {
        cross_rack_downloads: cross,
        violated,
        pipelined,
        fell_back,
    })
}

/// The legacy gather path: download all `k` blocks to the encoding node in
/// parallel (HDFS-RAID issues parallel reads) and Reed–Solomon-encode in
/// one shot. Returns the parity shards and the cross-rack download count.
fn gather_parity(
    cfs: &MiniCfs,
    stripe: &PendingStripe,
    enc: NodeId,
    blacklist: &DeadNodeSet,
) -> Result<(Vec<Vec<u8>>, usize)> {
    let topo = cfs.topology();
    let enc_rack = topo.rack_of(enc);
    let downloads: Vec<Result<(Block, NodeId)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = stripe
            .blocks
            .iter()
            .map(|&b| scope.spawn(move || download_block(cfs, b, enc, blacklist)))
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err(Error::Invariant("download task panicked".into())))
            })
            .collect()
    });
    let mut data: Vec<Block> = Vec::with_capacity(downloads.len());
    let mut cross = 0usize;
    for d in downloads {
        let (bytes, src) = d?;
        if topo.rack_of(src) != enc_rack {
            cross += 1;
        }
        data.push(bytes);
    }
    let data_refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
    let parity = cfs.codec().encode(&data_refs)?;
    Ok((parity, cross))
}

/// Downloads one block to the encoding node via the shared
/// [`ClusterIo::read_nearest`](crate::ClusterIo::read_nearest) policy
/// (known-dead replicas last, then local, then intra-rack). Returns the
/// bytes and the replica that served them.
fn download_block(
    cfs: &MiniCfs,
    block: BlockId,
    enc: NodeId,
    blacklist: &DeadNodeSet,
) -> Result<(Block, NodeId)> {
    let locs = cfs
        .namenode()
        .locations(block)
        .ok_or_else(|| Error::Invariant(format!("unknown {block}")))?;
    if locs.is_empty() {
        return Err(Error::BlockUnavailable { block });
    }
    // Encode-class admission: background encoding is the first traffic shed
    // when the gate tightens, and its downloads run under the substrate's
    // deadline/retry-budget bounds.
    let ctx = cfs.reliability().ctx(OpClass::Encode)?;
    cfs.io().read_nearest(&ctx, enc, block, &locs, blacklist)
}

/// Stores one parity block, preferring the planned node and falling back to
/// any live node that keeps the stripe within its rack fault tolerance
/// (`<= c` stripe blocks per rack) and does not already hold a shard of
/// this stripe. Returns the node that accepted the bytes.
fn store_parity(
    cfs: &MiniCfs,
    id: BlockId,
    data: Block,
    enc: NodeId,
    planned: NodeId,
    kept_data: &[NodeId],
    parity_so_far: &[(BlockId, NodeId)],
) -> Result<NodeId> {
    let topo = cfs.topology();
    let c = cfs.config().ear.c();
    // BTreeSet/BTreeMap: candidate construction iterates these, and the
    // fallback order feeds placement — it must not depend on hash order.
    let occupied: BTreeSet<NodeId> = kept_data
        .iter()
        .copied()
        .chain(parity_so_far.iter().map(|&(_, n)| n))
        .collect();
    let mut rack_load: BTreeMap<ear_types::RackId, usize> = BTreeMap::new();
    for &n in &occupied {
        *rack_load.entry(topo.rack_of(n)).or_insert(0) += 1;
    }

    let mut candidates: Vec<NodeId> = vec![planned];
    let mut fallbacks: Vec<NodeId> = topo
        .nodes()
        .filter(|&n| {
            n != planned
                && !occupied.contains(&n)
                && rack_load.get(&topo.rack_of(n)).copied().unwrap_or(0) < c
        })
        .collect();
    // Prefer fallbacks in the planned node's rack (same placement intent).
    fallbacks.sort_by_key(|&n| (topo.rack_of(n) != topo.rack_of(planned), n.index()));
    candidates.extend(fallbacks);

    let ctx = cfs.reliability().ctx(OpClass::Encode)?;
    cfs.io().write_with_fallback(&ctx, enc, id, &data, &candidates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{ClusterConfig, ClusterPolicy};
    use ear_types::{
        Bandwidth, ByteSize, CacheConfig, EarConfig, ErasureParams, ReplicationConfig,
        StoreBackend,
    };

    fn boot_cfg(
        policy: ClusterPolicy,
        racks: usize,
        nodes_per_rack: usize,
        encode_path: EncodePath,
    ) -> MiniCfs {
        let ear = EarConfig::new(
            ErasureParams::new(6, 4).unwrap(),
            ReplicationConfig::two_way(),
            1,
        )
        .unwrap();
        let cfg = ClusterConfig {
            racks,
            nodes_per_rack,
            block_size: ByteSize::kib(256),
            node_bandwidth: Bandwidth::bytes_per_sec(256e6),
            rack_bandwidth: Bandwidth::bytes_per_sec(256e6),
            ear,
            policy,
            seed: 5,
            store: StoreBackend::from_env(),
            cache: CacheConfig::from_env(),
            durability: Default::default(),
            reliability: Default::default(),
            encode_path,
            repair_path: ear_types::RepairPath::from_env(),
        };
        MiniCfs::new(cfg).unwrap()
    }

    fn boot(policy: ClusterPolicy, racks: usize) -> MiniCfs {
        boot_cfg(policy, racks, 1, ear_types::EncodePath::from_env())
    }

    fn write_stripes(cfs: &MiniCfs, blocks: usize) {
        for i in 0..blocks {
            let data = cfs.make_block(i as u64);
            cfs.write_block(NodeId((i % cfs.topology().num_nodes()) as u32), data)
                .unwrap();
        }
    }

    #[test]
    fn encoding_deletes_redundant_replicas_and_stores_parity() {
        let cfs = boot(ClusterPolicy::Rr, 8);
        write_stripes(&cfs, 8); // RR seals every k = 4 writes: 2 stripes
        let (stats, _) = RaidNode::encode_all(&cfs, 2).unwrap();
        assert_eq!(stats.stripes, 2);
        assert!(
            !stats.gf_kernel.is_empty(),
            "encode stats must report the GF kernel tier"
        );
        // Each data block now has exactly one replica.
        for b in 0..8u64 {
            assert_eq!(cfs.namenode().locations(BlockId(b)).unwrap().len(), 1);
        }
        // 2 stripes x 2 parity blocks were registered.
        assert_eq!(cfs.namenode().block_count(), 8 + 4);
        // Total stored bytes = (8 data + 4 parity) blocks.
        let total: u64 = cfs.rack_storage().iter().sum();
        assert_eq!(total, 12 * ByteSize::kib(256).as_u64());
    }

    #[test]
    fn ear_encoding_has_zero_cross_rack_downloads() {
        let cfs = boot(ClusterPolicy::Ear, 8);
        // EAR seals a stripe once a core rack accumulates k = 4 blocks, so
        // write enough for several seals.
        write_stripes(&cfs, 64);
        assert!(cfs.namenode().pending_stripe_count() >= 2);
        let (stats, relocations) = RaidNode::encode_all(&cfs, 4).unwrap();
        assert!(stats.stripes >= 2);
        assert_eq!(stats.cross_rack_downloads, 0, "EAR downloads intra-rack");
        assert!(relocations.is_empty(), "EAR never relocates");
        for es in cfs.namenode().encoded_stripes() {
            for b in es.data {
                assert_eq!(cfs.namenode().locations(b).unwrap().len(), 1);
            }
        }
    }

    #[test]
    fn encoded_stripe_is_decodable_from_any_k_blocks() {
        let cfs = boot(ClusterPolicy::Rr, 8);
        write_stripes(&cfs, 4);
        let (stats, _) = RaidNode::encode_all(&cfs, 1).unwrap();
        assert_eq!(stats.stripes, 1);
        let es = &cfs.namenode().encoded_stripes()[0];
        // Original contents: write_stripes stores make_block(i) as BlockId(i).
        let originals: Vec<Vec<u8>> = es.data.iter().map(|b| cfs.make_block(b.0)).collect();
        let fetch = |b: BlockId| -> Option<Vec<u8>> {
            let loc = cfs.namenode().locations(b).unwrap()[0];
            cfs.datanode(loc).get(b).map(|d| d.to_vec())
        };
        let mut shards: Vec<Option<Vec<u8>>> = es
            .data
            .iter()
            .chain(es.parity.iter())
            .map(|&b| fetch(b))
            .collect();
        // Erase one data and one parity block, then reconstruct.
        shards[1] = None;
        shards[4] = None;
        cfs.codec().reconstruct(&mut shards).unwrap();
        for i in 0..4 {
            assert_eq!(shards[i].as_ref().unwrap(), &originals[i]);
        }
    }

    #[test]
    fn rr_violations_are_repaired_by_block_mover() {
        // 6 racks, (6,4), c=1: stripes must span all racks; RR violates
        // often.
        let cfs = boot(ClusterPolicy::Rr, 6);
        write_stripes(&cfs, 40); // 10 stripes
        let (stats, relocations) = RaidNode::encode_all(&cfs, 4).unwrap();
        assert_eq!(stats.stripes, 10);
        if !relocations.is_empty() {
            assert!(stats.stripes_with_relocation > 0);
            let moved = RaidNode::relocate(&cfs, &relocations).unwrap();
            assert_eq!(moved, relocations.len());
            for &(block, _, to) in &relocations {
                assert_eq!(cfs.namenode().locations(block).unwrap(), vec![to]);
                assert!(cfs.datanode(to).contains(block));
            }
        }
    }

    #[test]
    fn encode_all_with_nothing_pending_is_empty() {
        let cfs = boot(ClusterPolicy::Ear, 8);
        let (stats, relocations) = RaidNode::encode_all(&cfs, 4).unwrap();
        assert_eq!(stats.stripes, 0);
        assert!(relocations.is_empty());
        assert_eq!(stats.throughput_mibps(), 0.0);
    }

    #[test]
    fn pipelined_encode_is_bit_identical_to_gather() {
        // The streaming chain must change only how bytes travel, never what
        // lands: same stripes, same parity ids and placements, same parity
        // bytes. One map task keeps block-id allocation order deterministic
        // so the comparison can be exact.
        for policy in [ClusterPolicy::Rr, ClusterPolicy::Ear] {
            let gather = boot_cfg(policy, 6, 2, EncodePath::Gather);
            let piped = boot_cfg(policy, 6, 2, EncodePath::Pipelined);
            write_stripes(&gather, 40);
            write_stripes(&piped, 40);
            let (gs, _) = RaidNode::encode_all(&gather, 1).unwrap();
            let (ps, _) = RaidNode::encode_all(&piped, 1).unwrap();
            assert_eq!(gs.stripes, ps.stripes, "{policy:?}");
            assert!(ps.stripes > 0);
            assert_eq!(
                ps.pipelined_stripes, ps.stripes,
                "fault-free pipelined job must never fall back ({policy:?})"
            );
            assert_eq!(ps.pipeline_fallbacks, 0);
            assert_eq!(gs.pipelined_stripes, 0);

            let ges = gather.namenode().encoded_stripes();
            let pes = piped.namenode().encoded_stripes();
            assert_eq!(ges.len(), pes.len());
            for (g, p) in ges.iter().zip(pes.iter()) {
                assert_eq!(g.id, p.id);
                assert_eq!(g.data, p.data);
                assert_eq!(g.parity, p.parity);
                for (&gb, &pb) in g.parity.iter().zip(p.parity.iter()) {
                    let gl = gather.namenode().locations(gb).unwrap();
                    let pl = piped.namenode().locations(pb).unwrap();
                    assert_eq!(gl, pl, "parity placement must match ({policy:?})");
                    let gbytes = gather.datanode(gl[0]).get(gb).unwrap();
                    let pbytes = piped.datanode(pl[0]).get(pb).unwrap();
                    assert_eq!(
                        gbytes.as_slice(),
                        pbytes.as_slice(),
                        "parity bytes must be bit-identical ({policy:?})"
                    );
                }
            }
            // The chain never ships more across racks than gather: folded
            // racks replace s > m raw blocks with m partial rows.
            let g_cross = gather.network().cross_rack_bytes();
            let p_cross = piped.network().cross_rack_bytes();
            assert!(
                p_cross <= g_cross,
                "{policy:?}: pipelined {p_cross} cross bytes vs gather {g_cross}"
            );
        }
    }

    #[test]
    fn pipelined_ear_keeps_the_cross_rack_floor() {
        // Under EAR every source has a core-rack replica, so the pipelined
        // chain degenerates to intra-rack streaming: zero cross-rack
        // downloads, cross traffic = parity uploads only — the same floor
        // the gather path sits on.
        let cfs = boot_cfg(ClusterPolicy::Ear, 8, 1, EncodePath::Pipelined);
        write_stripes(&cfs, 64);
        let before = cfs.network().cross_rack_bytes();
        let (stats, relocations) = RaidNode::encode_all(&cfs, 4).unwrap();
        assert!(stats.stripes >= 2);
        assert_eq!(stats.pipelined_stripes, stats.stripes);
        assert_eq!(stats.cross_rack_downloads, 0, "EAR folds intra-rack");
        assert!(relocations.is_empty());
        let cross = cfs.network().cross_rack_bytes() - before;
        let block = ByteSize::kib(256).as_u64();
        assert!(cross <= stats.stripes as u64 * 2 * block);
        assert!(cross >= stats.stripes as u64 * block);
    }

    #[test]
    fn ear_moves_far_less_cross_rack_data_than_rr() {
        // At this tiny scale wall-clock throughput is scheduling noise, so
        // compare the deterministic cross-rack byte counters instead; the
        // timing comparison lives in the Fig. 8 harness at realistic scale.
        let ear_cfs = boot(ClusterPolicy::Ear, 8);
        let rr_cfs = boot(ClusterPolicy::Rr, 8);
        write_stripes(&ear_cfs, 64);
        write_stripes(&rr_cfs, 64);
        let ear_before = ear_cfs.network().cross_rack_bytes();
        let rr_before = rr_cfs.network().cross_rack_bytes();
        let (ear_stats, _) = RaidNode::encode_all(&ear_cfs, 4).unwrap();
        let (rr_stats, _) = RaidNode::encode_all(&rr_cfs, 4).unwrap();
        let ear_cross = ear_cfs.network().cross_rack_bytes() - ear_before;
        let rr_cross = rr_cfs.network().cross_rack_bytes() - rr_before;
        // Normalize per stripe: the policies may have sealed different
        // stripe counts.
        let ear_per = ear_cross as f64 / ear_stats.stripes as f64;
        let rr_per = rr_cross as f64 / rr_stats.stripes as f64;
        assert!(
            ear_per * 1.5 < rr_per,
            "EAR {ear_per} cross-rack bytes/stripe should be well below RR's {rr_per}"
        );
        // EAR's cross-rack traffic is only its parity uploads: at most 2 per
        // stripe, and at least 1 (with c = 1, at most one parity block can
        // land in the core rack).
        let block = ByteSize::kib(256).as_u64();
        assert!(ear_cross <= ear_stats.stripes as u64 * 2 * block);
        assert!(ear_cross >= ear_stats.stripes as u64 * block);
    }
}
