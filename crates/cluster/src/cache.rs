//! The DataNode-side multi-level block cache (DESIGN.md §12).
//!
//! Sits in front of a node's [`crate::blockstore::BlockStore`] and keeps
//! recently served replicas in memory as shared [`Block`]s, so a cache-hot
//! read skips the backend entirely (for the file backend: the `fs::read`
//! syscall and the disk image copy). Together with the verified-once CRC
//! seam in [`crate::ClusterIo`], a hit also skips re-running CRC32C over
//! the payload — the dominant cost of the read path at testbed block sizes.
//!
//! # Levels
//!
//! * **Hot** — an exact LRU over blocks that have proven reuse (hit in
//!   cold at least twice). Bounded in bytes; overflow demotes the
//!   least-recently-used entry to the cold level.
//! * **Cold** — a clock (second-chance) ring holding first-time admissions,
//!   so a one-pass scan cannot flush the hot set. The first cold hit sets
//!   the entry's reference bit; the second promotes it to hot. Bounded in
//!   bytes; the clock hand clears reference bits and evicts unreferenced
//!   entries in ring order.
//! * **Metadata** — a bounded side table retaining `(crc, len)` after the
//!   data bytes are evicted, so `stored_crc`-style lookups still answer
//!   from memory.
//!
//! # Determinism
//!
//! All replacement state advances only on cache operations — no wall
//! clock, no thread-local RNG. The only randomized decision (admission
//! damping under eviction pressure) draws from a per-cache xorshift stream
//! seeded at construction, so a fixed single-threaded access sequence
//! always produces the same cache contents, hits, and evictions. Under
//! concurrency the *contents* depend on thread interleaving, but coherence
//! (write-invalidate in [`crate::DataNode`]) guarantees a hit serves
//! exactly the bytes the store holds — which is why chaos/heal soak
//! reports are bit-identical with the cache off or on.

use ear_types::{Block, BlockId, CacheConfig};
use parking_lot::Mutex;
use std::collections::{BTreeMap, VecDeque};

/// Maximum entries the metadata level retains after data eviction. Bounded
/// so a long-lived node cannot grow the side table without limit; evicted
/// deterministically (smallest block id first).
const MAX_META_ENTRIES: usize = 4096;

/// On admission that would force evictions, one in `ADMIT_DAMPING` new
/// blocks is bypassed instead of admitted — cheap scan resistance on top
/// of the clock ring, drawn from the seeded stream.
const ADMIT_DAMPING: u64 = 8;

/// Monotonic counters of one cache (or, summed, of a whole cluster's
/// caches). Deterministic for a fixed single-threaded access sequence;
/// under concurrency the totals depend on interleaving and are excluded
/// from determinism fingerprints, like the rest of
/// [`crate::IoStats`]'s wall-clock-adjacent fields.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Hits served from the hot (LRU) level.
    pub hot_hits: u64,
    /// Hits served from the cold (clock) level (the block is promoted).
    pub cold_hits: u64,
    /// Lookups that found no cached data.
    pub misses: u64,
    /// Admissions refused (block larger than the cold level, or damped
    /// under eviction pressure).
    pub bypasses: u64,
    /// Data entries evicted from the cold level by the clock hand.
    pub evictions: u64,
    /// Entries dropped because the block was overwritten or deleted.
    pub invalidations: u64,
    /// Payload bytes served from cache instead of the store backend.
    pub bytes_saved: u64,
}

impl CacheStats {
    /// Total data hits across both levels.
    pub fn hits(&self) -> u64 {
        self.hot_hits + self.cold_hits
    }

    /// Hits over lookups, in `[0, 1]`; 0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.hits() + self.misses;
        if lookups == 0 {
            0.0
        } else {
            self.hits() as f64 / lookups as f64
        }
    }

    /// Accumulates another cache's counters into this one (cluster-wide
    /// aggregation).
    pub fn add(&mut self, o: &CacheStats) {
        self.hot_hits += o.hot_hits;
        self.cold_hits += o.cold_hits;
        self.misses += o.misses;
        self.bypasses += o.bypasses;
        self.evictions += o.evictions;
        self.invalidations += o.invalidations;
        self.bytes_saved += o.bytes_saved;
    }
}

/// A hot-level entry: the payload, its write-time CRC32C, and the LRU
/// stamp keying `hot_order`.
#[derive(Debug)]
struct HotEntry {
    data: Block,
    crc: u32,
    stamp: u64,
}

/// A cold-level entry: the payload, its CRC32C, and the clock reference
/// bit (set on hit, cleared by a passing hand).
#[derive(Debug)]
struct ColdEntry {
    data: Block,
    crc: u32,
    referenced: bool,
}

/// Everything behind the cache's single mutex. One lock per node-cache:
/// the hold times are map operations on in-memory state, and the cache is
/// per-DataNode so cluster-level concurrency already shards across nodes.
#[derive(Debug)]
struct CacheState {
    hot_cap: u64,
    cold_cap: u64,
    hot: BTreeMap<BlockId, HotEntry>,
    /// LRU recency index: stamp → id, smallest stamp = least recent.
    hot_order: BTreeMap<u64, BlockId>,
    hot_bytes: u64,
    cold: BTreeMap<BlockId, ColdEntry>,
    /// Clock ring over cold ids. Entries removed from `cold` out of band
    /// (promotion, invalidation) leave stale ids here; the hand skips them.
    ring: VecDeque<BlockId>,
    cold_bytes: u64,
    /// Metadata level: `(crc, len)` retained after data eviction.
    meta: BTreeMap<BlockId, (u32, u64)>,
    /// Monotonic operation stamp driving LRU order.
    stamp: u64,
    /// Seeded xorshift state for admission damping.
    rng: u64,
    stats: CacheStats,
}

/// A deterministic two-level (hot LRU + cold clock) block cache with a
/// metadata side table. See the module docs for the design.
#[derive(Debug)]
pub struct BlockCache {
    state: Mutex<CacheState>,
}

impl BlockCache {
    /// Builds a cache per `cfg`; `None` when the configuration is
    /// [`CacheConfig::Off`]. `seed` fixes the admission-damping stream
    /// (per node: the cluster seed mixed with the node id).
    pub fn new(cfg: CacheConfig, seed: u64) -> Option<Self> {
        if cfg.is_off() {
            return None;
        }
        Some(BlockCache {
            state: Mutex::new(CacheState {
                hot_cap: cfg.hot_bytes(),
                cold_cap: cfg.cold_bytes(),
                hot: BTreeMap::new(),
                hot_order: BTreeMap::new(),
                hot_bytes: 0,
                cold: BTreeMap::new(),
                ring: VecDeque::new(),
                cold_bytes: 0,
                meta: BTreeMap::new(),
                stamp: 0,
                // Mix the seed so per-node streams differ even for dense
                // node ids; force non-zero (xorshift's absorbing state).
                rng: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
                stats: CacheStats::default(),
            }),
        })
    }

    /// Looks up a block's cached payload and write-time CRC32C. A hot hit
    /// refreshes recency; a cold hit promotes the block to the hot level.
    pub fn get(&self, block: BlockId) -> Option<(Block, u32)> {
        let mut s = self.state.lock();
        s.stamp += 1;
        let stamp = s.stamp;
        if let Some(e) = s.hot.get_mut(&block) {
            let old = e.stamp;
            e.stamp = stamp;
            let out = (e.data.clone(), e.crc);
            s.hot_order.remove(&old);
            s.hot_order.insert(stamp, block);
            s.stats.hot_hits += 1;
            s.stats.bytes_saved += out.0.len() as u64;
            return Some(out);
        }
        let promote = match s.cold.get_mut(&block) {
            // First cold hit: set the clock reference bit, stay cold.
            Some(e) if !e.referenced => {
                e.referenced = true;
                let out = (e.data.clone(), e.crc);
                s.stats.cold_hits += 1;
                s.stats.bytes_saved += out.0.len() as u64;
                return Some(out);
            }
            // Second cold hit: proven reuse, promote to the hot LRU.
            Some(_) => true,
            None => false,
        };
        if promote {
            if let Some(e) = s.cold.remove(&block) {
                // The ring keeps a stale id the hand will skip.
                s.cold_bytes = s.cold_bytes.saturating_sub(e.data.len() as u64);
                let out = (e.data.clone(), e.crc);
                s.stats.cold_hits += 1;
                s.stats.bytes_saved += out.0.len() as u64;
                s.insert_hot(block, e.data, e.crc, stamp);
                return Some(out);
            }
        }
        s.stats.misses += 1;
        None
    }

    /// Admits a verified block read from the store. First-time admissions
    /// enter the cold level (clock); blocks larger than the cold capacity
    /// are bypassed, and under eviction pressure one in
    /// [`ADMIT_DAMPING`] admissions is bypassed from the seeded stream.
    pub fn admit(&self, block: BlockId, data: &Block, crc: u32) {
        let len = data.len() as u64;
        let mut s = self.state.lock();
        // Already cached (a concurrent reader admitted first, or a hot
        // entry exists): refresh the payload in place, no level change.
        if let Some(e) = s.hot.get_mut(&block) {
            e.data = data.clone();
            e.crc = crc;
            return;
        }
        if let Some(e) = s.cold.get_mut(&block) {
            e.data = data.clone();
            e.crc = crc;
            return;
        }
        if len > s.cold_cap {
            s.stats.bypasses += 1;
            return;
        }
        if s.cold_bytes + len > s.cold_cap && s.next_rand().is_multiple_of(ADMIT_DAMPING) {
            s.stats.bypasses += 1;
            return;
        }
        s.cold.insert(
            block,
            ColdEntry {
                data: data.clone(),
                crc,
                referenced: false,
            },
        );
        s.ring.push_back(block);
        s.cold_bytes += len;
        s.meta.remove(&block);
        s.evict_cold();
    }

    /// Drops any cached copy and metadata of `block` — called on overwrite
    /// and delete so the cache can never serve bytes the store no longer
    /// holds.
    pub fn invalidate(&self, block: BlockId) {
        let mut s = self.state.lock();
        let mut hit = false;
        if let Some(e) = s.hot.remove(&block) {
            s.hot_bytes = s.hot_bytes.saturating_sub(e.data.len() as u64);
            s.hot_order.remove(&e.stamp);
            hit = true;
        }
        if let Some(e) = s.cold.remove(&block) {
            // The ring id goes stale; the hand skips it.
            s.cold_bytes = s.cold_bytes.saturating_sub(e.data.len() as u64);
            hit = true;
        }
        if s.meta.remove(&block).is_some() {
            hit = true;
        }
        if hit {
            s.stats.invalidations += 1;
        }
    }

    /// The metadata level: write-time `(crc, len)` of a block whose data
    /// may or may not still be cached.
    pub fn meta_of(&self, block: BlockId) -> Option<(u32, u64)> {
        let s = self.state.lock();
        if let Some(e) = s.hot.get(&block) {
            return Some((e.crc, e.data.len() as u64));
        }
        if let Some(e) = s.cold.get(&block) {
            return Some((e.crc, e.data.len() as u64));
        }
        s.meta.get(&block).copied()
    }

    /// Snapshot of this cache's counters.
    pub fn stats(&self) -> CacheStats {
        self.state.lock().stats
    }

    /// Data bytes currently held across both levels (test/diagnostic hook).
    pub fn data_bytes(&self) -> u64 {
        let s = self.state.lock();
        s.hot_bytes + s.cold_bytes
    }

    /// Block ids currently holding cached *data*, hot level first, each
    /// level in id order — a deterministic snapshot for eviction tests.
    pub fn resident_blocks(&self) -> Vec<BlockId> {
        let s = self.state.lock();
        let mut out: Vec<BlockId> = s.hot.keys().copied().collect();
        out.extend(s.cold.keys().copied());
        out
    }
}

impl CacheState {
    /// Advances the seeded xorshift stream.
    fn next_rand(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }

    /// Inserts into the hot level, demoting LRU entries to cold while over
    /// capacity.
    fn insert_hot(&mut self, block: BlockId, data: Block, crc: u32, stamp: u64) {
        self.hot_bytes += data.len() as u64;
        self.hot.insert(block, HotEntry { data, crc, stamp });
        self.hot_order.insert(stamp, block);
        while self.hot_bytes > self.hot_cap {
            let Some((_, victim)) = self.hot_order.pop_first() else {
                break;
            };
            let Some(e) = self.hot.remove(&victim) else {
                continue;
            };
            let len = e.data.len() as u64;
            self.hot_bytes = self.hot_bytes.saturating_sub(len);
            // Demote to cold rather than dropping: recently-hot blocks get
            // one clock revolution of grace.
            self.cold.insert(
                victim,
                ColdEntry {
                    data: e.data,
                    crc: e.crc,
                    referenced: false,
                },
            );
            self.ring.push_back(victim);
            self.cold_bytes += len;
        }
        self.evict_cold();
    }

    /// Clock sweep: evicts unreferenced cold entries in ring order until
    /// the level fits, giving referenced entries a second chance. Evicted
    /// entries retain `(crc, len)` in the bounded metadata level.
    fn evict_cold(&mut self) {
        while self.cold_bytes > self.cold_cap {
            let Some(candidate) = self.ring.pop_front() else {
                break;
            };
            match self.cold.get_mut(&candidate) {
                // Stale ring id (promoted or invalidated since): skip.
                None => continue,
                Some(e) if e.referenced => {
                    e.referenced = false;
                    self.ring.push_back(candidate);
                }
                Some(_) => {
                    if let Some(e) = self.cold.remove(&candidate) {
                        self.cold_bytes = self.cold_bytes.saturating_sub(e.data.len() as u64);
                        self.stats.evictions += 1;
                        self.retain_meta(candidate, e.crc, e.data.len() as u64);
                    }
                }
            }
        }
    }

    /// Records `(crc, len)` in the metadata level, evicting the smallest
    /// id when full (deterministic bound).
    fn retain_meta(&mut self, block: BlockId, crc: u32, len: u64) {
        self.meta.insert(block, (crc, len));
        while self.meta.len() > MAX_META_ENTRIES {
            self.meta.pop_first();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(hot: u64, cold: u64) -> BlockCache {
        BlockCache::new(
            CacheConfig::Sized {
                hot_bytes: hot,
                cold_bytes: cold,
            },
            7,
        )
        .unwrap()
    }

    fn blk(n: u8, len: usize) -> Block {
        Block::from(vec![n; len])
    }

    #[test]
    fn off_builds_no_cache() {
        assert!(BlockCache::new(CacheConfig::Off, 1).is_none());
    }

    #[test]
    fn miss_admit_hit_roundtrip() {
        let c = cache(1024, 1024);
        assert!(c.get(BlockId(1)).is_none());
        c.admit(BlockId(1), &blk(9, 100), 0xABCD);
        let (data, crc) = c.get(BlockId(1)).unwrap();
        assert_eq!(data.as_slice(), &[9u8; 100]);
        assert_eq!(crc, 0xABCD);
        let s = c.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.cold_hits, 1, "first admission lands in cold");
        assert_eq!(s.bytes_saved, 100);
        // Second cold hit promotes; the third hit is served from hot.
        assert!(c.get(BlockId(1)).is_some());
        assert_eq!(c.stats().cold_hits, 2);
        assert!(c.get(BlockId(1)).is_some());
        assert_eq!(c.stats().hot_hits, 1);
    }

    #[test]
    fn cached_blocks_share_the_admitted_allocation() {
        let c = cache(4096, 4096);
        let data = blk(3, 256);
        c.admit(BlockId(5), &data, 1);
        let (back, _) = c.get(BlockId(5)).unwrap();
        assert!(back.shares_buffer(&data), "hits are zero-copy");
    }

    #[test]
    fn invalidate_drops_data_and_meta() {
        let c = cache(1024, 1024);
        c.admit(BlockId(2), &blk(1, 64), 7);
        c.invalidate(BlockId(2));
        assert!(c.get(BlockId(2)).is_none());
        assert!(c.meta_of(BlockId(2)).is_none());
        assert_eq!(c.stats().invalidations, 1);
        assert_eq!(c.data_bytes(), 0);
    }

    #[test]
    fn oversized_blocks_bypass() {
        let c = cache(64, 128);
        c.admit(BlockId(1), &blk(0, 256), 0);
        assert!(c.get(BlockId(1)).is_none());
        assert_eq!(c.stats().bypasses, 1);
    }

    #[test]
    fn cold_clock_evicts_in_ring_order_and_retains_meta() {
        // Cold fits exactly two 64-byte entries; admitting a third evicts
        // the oldest unreferenced one (pure FIFO when nothing is
        // re-referenced).
        let c = cache(1024, 128);
        c.admit(BlockId(1), &blk(1, 64), 11);
        c.admit(BlockId(2), &blk(2, 64), 22);
        c.admit(BlockId(3), &blk(3, 64), 33);
        assert_eq!(c.resident_blocks(), vec![BlockId(2), BlockId(3)]);
        assert_eq!(c.stats().evictions, 1);
        // The evicted block keeps its metadata.
        assert_eq!(c.meta_of(BlockId(1)), Some((11, 64)));
        assert!(c.get(BlockId(1)).is_none(), "meta level holds no data");
    }

    #[test]
    fn second_chance_spares_referenced_entries() {
        // Cold fits two 64-byte entries. Touch 1 once (sets its reference
        // bit, stays cold); admitting 3 then needs an eviction: the hand
        // reaches 1 first, clears its bit and spares it, and evicts the
        // untouched 2 instead.
        let c = cache(1024, 128);
        c.admit(BlockId(1), &blk(1, 64), 0);
        c.admit(BlockId(2), &blk(2, 64), 0);
        assert!(c.get(BlockId(1)).is_some());
        c.admit(BlockId(3), &blk(3, 64), 0);
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.resident_blocks(), vec![BlockId(1), BlockId(3)]);
        assert_eq!(c.meta_of(BlockId(2)), Some((0, 64)));
    }

    #[test]
    fn hot_overflow_demotes_lru_first() {
        // Hot fits two 64-byte entries. Promote three blocks; the least
        // recently used one is demoted back to cold.
        let c = cache(128, 1024);
        for id in 1..=3u64 {
            c.admit(BlockId(id), &blk(id as u8, 64), 0);
            assert!(c.get(BlockId(id)).is_some()); // sets the reference bit
            assert!(c.get(BlockId(id)).is_some()); // second hit promotes
        }
        // 1 was promoted first and never touched again → demoted.
        let resident = c.resident_blocks();
        assert_eq!(resident, vec![BlockId(2), BlockId(3), BlockId(1)]);
        // Touch 2 (hot hit), then promote a fourth: 3 is now the LRU.
        assert!(c.get(BlockId(2)).is_some());
        c.admit(BlockId(4), &blk(4, 64), 0);
        assert!(c.get(BlockId(4)).is_some());
        assert!(c.get(BlockId(4)).is_some());
        assert_eq!(
            c.resident_blocks(),
            vec![BlockId(2), BlockId(4), BlockId(1), BlockId(3)]
        );
    }

    #[test]
    fn eviction_order_is_deterministic_across_runs() {
        // The determinism contract: two caches with the same seed replaying
        // the same access sequence end in identical states — same resident
        // set, same counters — even under admission pressure where the
        // seeded damping stream participates.
        let run = || {
            let c = cache(256, 256);
            for round in 0..50u64 {
                for id in 0..12u64 {
                    let block = BlockId((round * 7 + id * 3) % 20);
                    if c.get(block).is_none() {
                        c.admit(block, &blk(block.0 as u8, 48), block.0 as u32);
                    }
                }
            }
            (c.resident_blocks(), c.stats())
        };
        let (blocks_a, stats_a) = run();
        let (blocks_b, stats_b) = run();
        assert_eq!(blocks_a, blocks_b);
        assert_eq!(stats_a, stats_b);
        assert!(stats_a.evictions > 0, "the workload must exercise eviction");
        assert!(stats_a.hits() > 0);
    }

    #[test]
    fn different_seeds_may_diverge_only_in_damping() {
        // Seeds change only the damping stream; with no pressure the
        // behavior is seed-independent.
        let mk = |seed| {
            BlockCache::new(
                CacheConfig::Sized {
                    hot_bytes: 4096,
                    cold_bytes: 4096,
                },
                seed,
            )
            .unwrap()
        };
        let a = mk(1);
        let b = mk(999);
        for id in 0..8u64 {
            a.admit(BlockId(id), &blk(id as u8, 64), 0);
            b.admit(BlockId(id), &blk(id as u8, 64), 0);
        }
        assert_eq!(a.resident_blocks(), b.resident_blocks());
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn meta_level_is_bounded() {
        let c = cache(64, 64);
        // Every admission evicts the previous entry into meta; push well
        // past the bound and confirm it holds.
        for id in 0..(MAX_META_ENTRIES as u64 + 512) {
            c.admit(BlockId(id), &blk(0, 64), id as u32);
        }
        let s = c.state.lock();
        assert!(s.meta.len() <= MAX_META_ENTRIES);
    }
}
