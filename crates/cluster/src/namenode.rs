//! The NameNode: cluster metadata, the placement policy, and the
//! pre-encoding store (Section IV-B of the paper).
//!
//! Metadata is lock-striped (DESIGN.md §9): block→location records live in
//! [`SHARDS`] reader–writer shards keyed by a block-id hash, so location
//! lookups and single-block updates from concurrent readers, healers, and
//! encode jobs never contend on one global lock. Stripe bookkeeping (the
//! pre-encoding store) is a separate mutex, and block ids come from an
//! atomic counter. Every snapshot the NameNode exports is sorted by id, so
//! downstream consumers see the same order regardless of which shard or
//! thread produced an entry.

use crate::wal::{BlockRec, EncodedEntry, MetaRecord, MetaSnapshot, MetaWal, PlanRecord, StripeEntry};
use ear_core::{PlacementPolicy, StripePlan};
use ear_types::{BlockId, BlockId as Bid, ClusterTopology, NodeId, Result, StripeId};
use parking_lot::{Mutex, RwLock};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Number of metadata shards. A power of two comfortably above the thread
/// counts we drive, so stripes of the id space map evenly.
const SHARDS: usize = 16;

fn shard_of(block: BlockId) -> usize {
    // Fibonacci hashing spreads the sequential ids real allocations produce.
    (block.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 60) as usize % SHARDS
}

/// A stripe registered in the pre-encoding store: the data block ids that
/// will be encoded together and their placement plan.
#[derive(Debug, Clone)]
pub struct PendingStripe {
    /// The stripe's id.
    pub id: StripeId,
    /// The `k` data blocks, in stripe order.
    pub blocks: Vec<BlockId>,
    /// The placement plan (carries the core rack under EAR).
    pub plan: StripePlan,
}

/// A stripe that has been encoded: its data block ids (in generator-matrix
/// order) and the parity block ids appended by the RaidNode.
#[derive(Debug, Clone)]
pub struct EncodedStripe {
    /// The stripe's id.
    pub id: StripeId,
    /// Data block ids in stripe order.
    pub data: Vec<BlockId>,
    /// Parity block ids in generator-row order.
    pub parity: Vec<BlockId>,
}

/// Per-block metadata held in the location shards.
#[derive(Debug, Default, Clone)]
struct BlockMeta {
    /// Current replica locations of the block.
    locations: Vec<NodeId>,
    /// The layout the block was *assigned* at allocation time. Stripe
    /// sealing matches against this, never against `locations`: repair can
    /// move replicas (a healed block's location set diverges from its
    /// placement) without breaking the policy's layout-identity
    /// bookkeeping. `None` for registered (parity) blocks.
    assigned: Option<Vec<NodeId>>,
}

/// The pre-encoding store: stripe state serialized under one mutex.
#[derive(Debug, Default)]
struct StripeState {
    /// Stripes sealed by the policy but not yet encoded.
    pending: Vec<PendingStripe>,
    /// Stripes handed to encode jobs but not yet committed. Not logged:
    /// durably these are still pending — a crash before the encode commit
    /// puts them back in the queue, which is exactly right.
    in_flight: Vec<PendingStripe>,
    /// Stripes that have been encoded.
    encoded: Vec<EncodedStripe>,
    /// Blocks of the stripe currently being accumulated, in seal order —
    /// maps each sealed stripe to its member blocks.
    unsealed: Vec<BlockId>,
    next_stripe: u64,
}

/// The NameNode: owns block locations, drives the placement policy, and
/// groups blocks into stripes for the RaidNode.
///
/// Lock order (coarse→fine, never the reverse): `policy` → `rng` →
/// `stripes` → a location shard → `wal`. Pure metadata ops touch only
/// their one shard (plus the log).
pub struct NameNode {
    topo: ClusterTopology,
    policy: Mutex<Box<dyn PlacementPolicy>>,
    rng: Mutex<ChaCha8Rng>,
    seed: u64,
    shards: Vec<RwLock<HashMap<BlockId, BlockMeta>>>,
    stripes: Mutex<StripeState>,
    next_block: AtomicU64,
    /// The write-ahead log. `None` for the volatile (classic testbed)
    /// NameNode: mutations then skip the append and behave exactly as
    /// before the durability layer existed.
    wal: Option<MetaWal>,
    /// Guards against concurrent checkpoints: the first thread to trip the
    /// threshold writes the snapshot, the rest carry on.
    checkpointing: AtomicBool,
}

impl NameNode {
    /// Creates a volatile NameNode around a placement policy.
    pub fn new(topo: ClusterTopology, policy: Box<dyn PlacementPolicy>, seed: u64) -> Self {
        NameNode {
            topo,
            policy: Mutex::new(policy),
            rng: Mutex::new(ChaCha8Rng::seed_from_u64(seed)),
            seed,
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            stripes: Mutex::new(StripeState::default()),
            next_block: AtomicU64::new(0),
            wal: None,
            checkpointing: AtomicBool::new(false),
        }
    }

    /// Creates a durable NameNode over an open write-ahead log, seeding the
    /// in-memory image from the recovered snapshot (what [`MetaWal::open`]
    /// returned). Every subsequent mutation is appended to the log before
    /// it is acknowledged.
    ///
    /// The placement policy restarts fresh: blocks that were unsealed at
    /// the crash stay readable through replication and are matched into a
    /// stripe only if the policy re-produces their layout — the same lazy
    /// rebuild HDFS-RAID applies to its pre-encoding store.
    ///
    /// # Errors
    ///
    /// [`ear_types::Error::WalCorrupt`] if a recovered stripe plan fails
    /// validation on rebuild.
    pub fn with_wal(
        topo: ClusterTopology,
        policy: Box<dyn PlacementPolicy>,
        seed: u64,
        wal: MetaWal,
        recovered: &MetaSnapshot,
    ) -> Result<Self> {
        let nn = NameNode {
            topo,
            policy: Mutex::new(policy),
            rng: Mutex::new(ChaCha8Rng::seed_from_u64(seed)),
            seed,
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            stripes: Mutex::new(StripeState::default()),
            next_block: AtomicU64::new(recovered.next_block),
            wal: Some(wal),
            checkpointing: AtomicBool::new(false),
        };
        for (id, rec) in &recovered.blocks {
            nn.shard(*id).write().insert(
                *id,
                BlockMeta {
                    locations: rec.locations.clone(),
                    assigned: rec.assigned.clone(),
                },
            );
        }
        {
            let mut stripes = nn.stripes.lock();
            stripes.unsealed = recovered.unsealed.clone();
            for s in &recovered.pending {
                stripes.pending.push(PendingStripe {
                    id: s.id,
                    blocks: s.blocks.clone(),
                    plan: s.plan.to_plan()?,
                });
            }
            for s in &recovered.encoded {
                stripes.encoded.push(EncodedStripe {
                    id: s.id,
                    data: s.data.clone(),
                    parity: s.parity.clone(),
                });
            }
            stripes.next_stripe = recovered.next_stripe;
        }
        Ok(nn)
    }

    /// Appends one mutation to the log (no-op for a volatile NameNode).
    /// Called while the lock guarding the mutated state is held, so log
    /// order equals apply order.
    fn log(&self, rec: &MetaRecord) -> Result<()> {
        match &self.wal {
            Some(w) => w.append(rec).map(|_| ()),
            None => Ok(()),
        }
    }

    /// Whether this NameNode writes a durable log.
    pub fn is_durable(&self) -> bool {
        self.wal.is_some()
    }

    /// The complete metadata image, gathered under the stripe mutex and
    /// shard read locks. In-flight stripes are folded back into `pending`:
    /// durably, an encode that has not committed never happened.
    pub fn snapshot(&self) -> MetaSnapshot {
        let mut snap = MetaSnapshot::default();
        {
            let stripes = self.stripes.lock();
            snap.unsealed = stripes.unsealed.clone();
            for s in stripes.pending.iter().chain(stripes.in_flight.iter()) {
                snap.pending.push(StripeEntry {
                    id: s.id,
                    blocks: s.blocks.clone(),
                    plan: PlanRecord::from_plan(&s.plan),
                });
            }
            snap.pending.sort_by_key(|s| s.id);
            for s in &stripes.encoded {
                snap.encoded.push(EncodedEntry {
                    id: s.id,
                    data: s.data.clone(),
                    parity: s.parity.clone(),
                });
            }
            snap.encoded.sort_by_key(|s| s.id);
            snap.next_stripe = stripes.next_stripe;
        }
        for shard in &self.shards {
            for (id, meta) in shard.read().iter() {
                snap.blocks.insert(
                    *id,
                    BlockRec {
                        locations: meta.locations.clone(),
                        assigned: meta.assigned.clone(),
                    },
                );
            }
        }
        snap.next_block = self.next_block.load(Ordering::SeqCst);
        snap
    }

    /// Writes a checkpoint now (no-op for a volatile NameNode): snapshot
    /// the metadata, persist it, compact the log.
    ///
    /// # Errors
    ///
    /// [`ear_types::Error::Io`] if the checkpoint cannot be persisted.
    pub fn checkpoint_now(&self) -> Result<()> {
        let Some(wal) = &self.wal else {
            return Ok(());
        };
        // The low-water mark is read *before* gathering: records racing
        // with the gather land in the snapshot *and* stay in the log, and
        // re-apply-safe replay converges them.
        let last_lsn = wal.last_lsn();
        let snap = self.snapshot();
        wal.checkpoint(&snap, last_lsn)
    }

    /// Writes a checkpoint if enough records accumulated since the last
    /// one. At most one thread checkpoints at a time; the others skip.
    ///
    /// # Errors
    ///
    /// [`ear_types::Error::Io`] if the checkpoint cannot be persisted.
    pub fn maybe_checkpoint(&self) -> Result<()> {
        let Some(wal) = &self.wal else {
            return Ok(());
        };
        if !wal.should_checkpoint() {
            return Ok(());
        }
        if self.checkpointing.swap(true, Ordering::AcqRel) {
            return Ok(());
        }
        let result = self.checkpoint_now();
        self.checkpointing.store(false, Ordering::Release);
        result
    }

    /// The cluster topology.
    pub fn topology(&self) -> &ClusterTopology {
        &self.topo
    }

    fn shard(&self, block: BlockId) -> &RwLock<HashMap<BlockId, BlockMeta>> {
        &self.shards[shard_of(block)]
    }

    /// Allocates a block id and replica layout for a new write; registers
    /// the block in the pre-encoding store and seals a stripe when the
    /// policy completes one. On a durable NameNode the allocation (and any
    /// seal) is in the log before this returns — the acknowledgment point.
    ///
    /// # Errors
    ///
    /// Propagates placement failures from the policy and log-append
    /// failures from the WAL.
    pub fn allocate_block(&self) -> Result<(BlockId, Vec<NodeId>)> {
        let result = {
            // Placement is inherently sequential (one RNG stream); keep the
            // policy lock across registration so id order, unsealed order,
            // and placement order agree — sealing matches layouts by
            // recency.
            let mut policy = self.policy.lock();
            let mut rng = self.rng.lock();
            let placed = policy.place_block(&mut *rng)?;
            let mut stripes = self.stripes.lock();
            let id = Bid(self.next_block.fetch_add(1, Ordering::SeqCst));
            self.shard(id).write().insert(
                id,
                BlockMeta {
                    locations: placed.layout.replicas.clone(),
                    assigned: Some(placed.layout.replicas.clone()),
                },
            );
            stripes.unsealed.push(id);
            self.log(&MetaRecord::Allocate {
                block: id,
                locations: placed.layout.replicas.clone(),
                assigned: true,
            })?;
            if let Some(plan) = placed.sealed_stripe {
                let k = plan.num_blocks();
                debug_assert!(stripes.unsealed.len() >= k);
                // Under RR the last k allocated blocks form the stripe;
                // under EAR the sealed stripe's blocks are the ones whose
                // layouts match the plan — which are exactly the most
                // recent k blocks placed into that core rack. We track
                // them by layout identity.
                let blocks = self.take_stripe_blocks(&mut stripes, &plan)?;
                let sid = StripeId(stripes.next_stripe);
                stripes.next_stripe += 1;
                self.log(&MetaRecord::SealStripe {
                    stripe: sid,
                    blocks: blocks.clone(),
                    plan: PlanRecord::from_plan(&plan),
                })?;
                stripes.pending.push(PendingStripe {
                    id: sid,
                    blocks,
                    plan,
                });
            }
            (id, placed.layout.replicas)
        };
        self.maybe_checkpoint()?;
        Ok(result)
    }

    /// Current replica locations of a block.
    pub fn locations(&self, block: BlockId) -> Option<Vec<NodeId>> {
        self.shard(block)
            .read()
            .get(&block)
            .map(|m| m.locations.clone())
    }

    /// Replaces a block's location set (after encoding deletes replicas or
    /// relocates blocks).
    ///
    /// # Errors
    ///
    /// Propagates log-append failures from the WAL.
    pub fn set_locations(&self, block: BlockId, nodes: Vec<NodeId>) -> Result<()> {
        let mut shard = self.shard(block).write();
        shard.entry(block).or_default().locations = nodes.clone();
        self.log(&MetaRecord::SetLocations { block, nodes })
    }

    /// Removes one node from a block's location set (a replica declared
    /// lost by the failure detector, or dropped by the scrubber). Returns
    /// whether the node was listed.
    ///
    /// # Errors
    ///
    /// Propagates log-append failures from the WAL.
    pub fn drop_location(&self, block: BlockId, node: NodeId) -> Result<bool> {
        let mut shard = self.shard(block).write();
        match shard.get_mut(&block) {
            Some(meta) => {
                let before = meta.locations.len();
                meta.locations.retain(|&n| n != node);
                if meta.locations.len() < before {
                    self.log(&MetaRecord::DropLocation { block, node })?;
                    Ok(true)
                } else {
                    Ok(false)
                }
            }
            None => Ok(false),
        }
    }

    /// Adds one node to a block's location set (a repaired copy landed).
    /// No-op if the node is already listed.
    ///
    /// # Errors
    ///
    /// Propagates log-append failures from the WAL.
    pub fn add_location(&self, block: BlockId, node: NodeId) -> Result<()> {
        let mut shard = self.shard(block).write();
        let meta = shard.entry(block).or_default();
        if !meta.locations.contains(&node) {
            meta.locations.push(node);
            self.log(&MetaRecord::AddLocation { block, node })?;
        }
        Ok(())
    }

    /// Registers a brand-new block (parity) at fixed locations, returning
    /// its id.
    ///
    /// # Errors
    ///
    /// Propagates log-append failures from the WAL.
    pub fn register_block(&self, nodes: Vec<NodeId>) -> Result<BlockId> {
        let id = Bid(self.next_block.fetch_add(1, Ordering::SeqCst));
        let mut shard = self.shard(id).write();
        shard.insert(
            id,
            BlockMeta {
                locations: nodes.clone(),
                assigned: None,
            },
        );
        self.log(&MetaRecord::Allocate {
            block: id,
            locations: nodes,
            assigned: false,
        })?;
        Ok(id)
    }

    /// Takes every stripe currently sealed for encoding (the RaidNode's
    /// periodic scan), in stripe-id order. Taken stripes move to the
    /// in-flight set: durably they remain pending until the encode
    /// commits, so a crash mid-encode re-queues them on recovery.
    pub fn take_pending_stripes(&self) -> Vec<PendingStripe> {
        let mut stripes = self.stripes.lock();
        let mut taken = std::mem::take(&mut stripes.pending);
        taken.sort_by_key(|s| s.id);
        stripes.in_flight.extend(taken.iter().cloned());
        taken
    }

    /// Returns a stripe to the pre-encoding store after an encode attempt
    /// gave up on it (e.g. too many of its sources are down). The data
    /// blocks keep their replicas, so nothing is lost; a later encoding
    /// round will pick the stripe up again.
    pub fn requeue_stripe(&self, stripe: PendingStripe) {
        let mut stripes = self.stripes.lock();
        stripes.in_flight.retain(|s| s.id != stripe.id);
        stripes.pending.push(stripe);
    }

    /// Number of stripes sealed and awaiting encoding.
    pub fn pending_stripe_count(&self) -> usize {
        self.stripes.lock().pending.len()
    }

    /// A snapshot of the stripes awaiting encoding (without consuming
    /// them), in stripe-id order.
    pub fn pending_stripes(&self) -> Vec<PendingStripe> {
        let mut out = self.stripes.lock().pending.clone();
        out.sort_by_key(|s| s.id);
        out
    }

    /// Records a stripe as encoded (called by the RaidNode after parity is
    /// stored and replicas deleted). The durable encode-commit point: once
    /// the record is in the log, recovery will never re-queue the stripe.
    ///
    /// # Errors
    ///
    /// Propagates log-append failures from the WAL.
    pub fn record_encoded(&self, stripe: EncodedStripe) -> Result<()> {
        {
            let mut stripes = self.stripes.lock();
            self.log(&MetaRecord::EncodeCommit {
                stripe: stripe.id,
                data: stripe.data.clone(),
                parity: stripe.parity.clone(),
            })?;
            stripes.in_flight.retain(|s| s.id != stripe.id);
            stripes.encoded.push(stripe);
        }
        self.maybe_checkpoint()
    }

    /// All stripes encoded so far, in stripe-id order (encode jobs may
    /// finish out of order).
    pub fn encoded_stripes(&self) -> Vec<EncodedStripe> {
        let mut out = self.stripes.lock().encoded.clone();
        out.sort_by_key(|s| s.id);
        out
    }

    /// Plans the encoding of a stripe through the placement policy.
    ///
    /// Planning randomness is derived from (cluster seed, stripe id), so a
    /// stripe's encode plan is the same no matter which map task plans it
    /// or in what order stripes are processed.
    ///
    /// # Errors
    ///
    /// Propagates planning failures (e.g. no room for parity blocks).
    pub fn plan_encoding(&self, stripe: &PendingStripe) -> Result<ear_core::EncodePlan> {
        let policy = self.policy.lock();
        let mut rng =
            ChaCha8Rng::seed_from_u64(self.seed ^ stripe.id.0.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        policy.plan_encoding(&stripe.plan, &mut rng)
    }

    /// The policy's name ("rr" or "ear").
    pub fn policy_name(&self) -> &'static str {
        self.policy.lock().name()
    }

    /// Total number of blocks ever allocated.
    pub fn block_count(&self) -> u64 {
        self.next_block.load(Ordering::SeqCst)
    }

    /// Pops the blocks belonging to `plan` off the unsealed list by
    /// matching layouts: the stripe's blocks are those whose assigned
    /// layouts equal the plan's, searched from the most recent. Caller
    /// holds the stripe lock; this only takes shard read locks (lock
    /// order stripes→shard).
    fn take_stripe_blocks(
        &self,
        stripes: &mut StripeState,
        plan: &StripePlan,
    ) -> Result<Vec<BlockId>> {
        let mut blocks = Vec::with_capacity(plan.num_blocks());
        for layout in plan.data_layouts() {
            let pos = stripes
                .unsealed
                .iter()
                .rposition(|&b| {
                    self.shard(b)
                        .read()
                        .get(&b)
                        .and_then(|m| m.assigned.as_deref())
                        == Some(&layout.replicas)
                })
                .ok_or_else(|| {
                    ear_types::Error::Invariant(
                        "sealed stripe's block must be among unsealed blocks".into(),
                    )
                })?;
            blocks.push(stripes.unsealed.remove(pos));
        }
        Ok(blocks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ear_core::{EncodingAwareReplication, RandomReplicationPolicy};
    use ear_types::{EarConfig, ErasureParams, ReplicationConfig};

    fn cfg() -> EarConfig {
        EarConfig::new(
            ErasureParams::new(6, 4).unwrap(),
            ReplicationConfig::hdfs_default(),
            1,
        )
        .unwrap()
    }

    fn rr_namenode() -> NameNode {
        let topo = ClusterTopology::uniform(8, 4);
        let policy = RandomReplicationPolicy::new(cfg(), topo.clone()).unwrap();
        NameNode::new(topo, Box::new(policy), 1)
    }

    #[test]
    fn allocation_records_locations() {
        let nn = rr_namenode();
        let (id, layout) = nn.allocate_block().unwrap();
        assert_eq!(layout.len(), 3);
        assert_eq!(nn.locations(id), Some(layout));
        assert_eq!(nn.block_count(), 1);
    }

    #[test]
    fn stripes_seal_every_k_blocks_under_rr() {
        let nn = rr_namenode();
        for _ in 0..8 {
            nn.allocate_block().unwrap();
        }
        assert_eq!(nn.pending_stripe_count(), 2);
        let stripes = nn.take_pending_stripes();
        assert_eq!(stripes.len(), 2);
        assert_eq!(nn.pending_stripe_count(), 0);
        assert_eq!(
            stripes[0].blocks,
            vec![BlockId(0), BlockId(1), BlockId(2), BlockId(3)]
        );
        assert_eq!(
            stripes[1].blocks,
            vec![BlockId(4), BlockId(5), BlockId(6), BlockId(7)]
        );
    }

    #[test]
    fn ear_stripe_blocks_match_plan_layouts() {
        let topo = ClusterTopology::uniform(8, 4);
        let policy = EncodingAwareReplication::new(cfg(), topo.clone());
        let nn = NameNode::new(topo.clone(), Box::new(policy), 2);
        let mut sealed = Vec::new();
        for _ in 0..64 {
            nn.allocate_block().unwrap();
            sealed.extend(nn.take_pending_stripes());
        }
        assert!(!sealed.is_empty());
        for stripe in &sealed {
            let core = stripe.plan.core_rack().unwrap();
            for (i, block) in stripe.blocks.iter().enumerate() {
                let locs = nn.locations(*block).unwrap();
                assert_eq!(locs, stripe.plan.data_layouts()[i].replicas);
                assert!(locs.iter().any(|&n| topo.rack_of(n) == core));
            }
        }
    }

    #[test]
    fn drop_and_add_location_round_trip() {
        let nn = rr_namenode();
        let (id, layout) = nn.allocate_block().unwrap();
        let lost = layout[0];
        assert!(nn.drop_location(id, lost).unwrap());
        assert!(!nn.drop_location(id, lost).unwrap(), "second drop is a no-op");
        assert!(!nn.locations(id).unwrap().contains(&lost));
        nn.add_location(id, NodeId(31)).unwrap();
        nn.add_location(id, NodeId(31)).unwrap();
        let locs = nn.locations(id).unwrap();
        assert_eq!(locs.iter().filter(|&&n| n == NodeId(31)).count(), 1);
        assert!(!nn.drop_location(BlockId(999), NodeId(0)).unwrap());
    }

    #[test]
    fn healed_locations_do_not_break_ear_sealing() {
        // Repair moves a replica of a not-yet-sealed block; stripes must
        // still seal afterwards because matching uses assigned layouts,
        // not live locations.
        let topo = ClusterTopology::uniform(8, 4);
        let policy = EncodingAwareReplication::new(cfg(), topo.clone());
        let nn = NameNode::new(topo, Box::new(policy), 5);
        let (first, layout) = nn.allocate_block().unwrap();
        nn.drop_location(first, layout[0]).unwrap();
        nn.add_location(first, NodeId(31)).unwrap();
        let mut sealed = 0usize;
        for _ in 0..64 {
            nn.allocate_block().expect("sealing survives healed layouts");
            sealed += nn.take_pending_stripes().len();
        }
        assert!(sealed > 0, "EAR must keep sealing stripes");
    }

    #[test]
    fn register_and_relocate_blocks() {
        let nn = rr_namenode();
        let parity = nn.register_block(vec![NodeId(5)]).unwrap();
        assert_eq!(nn.locations(parity), Some(vec![NodeId(5)]));
        nn.set_locations(parity, vec![NodeId(9)]).unwrap();
        assert_eq!(nn.locations(parity), Some(vec![NodeId(9)]));
    }

    #[test]
    fn plan_encoding_round_trips() {
        let nn = rr_namenode();
        for _ in 0..4 {
            nn.allocate_block().unwrap();
        }
        let stripe = &nn.take_pending_stripes()[0];
        let plan = nn.plan_encoding(stripe).unwrap();
        assert_eq!(plan.kept_data.len(), 4);
        assert_eq!(plan.parity_nodes.len(), 2);
    }

    #[test]
    fn plan_encoding_is_order_independent() {
        // Planning the same stripe twice — or after planning others —
        // yields the identical plan: randomness is keyed by stripe id,
        // not drawn from a shared stream.
        let nn = rr_namenode();
        for _ in 0..12 {
            nn.allocate_block().unwrap();
        }
        let stripes = nn.take_pending_stripes();
        assert_eq!(stripes.len(), 3);
        let first = nn.plan_encoding(&stripes[0]).unwrap();
        for s in stripes.iter().rev() {
            nn.plan_encoding(s).unwrap();
        }
        let again = nn.plan_encoding(&stripes[0]).unwrap();
        assert_eq!(first.parity_nodes, again.parity_nodes);
        assert_eq!(first.kept_data, again.kept_data);
    }

    #[test]
    fn snapshots_are_sorted_by_stripe_id() {
        let nn = rr_namenode();
        for _ in 0..12 {
            nn.allocate_block().unwrap();
        }
        let stripes = nn.take_pending_stripes();
        // Requeue out of order; every snapshot point re-sorts.
        for s in stripes.iter().rev() {
            nn.requeue_stripe(s.clone());
        }
        let ids: Vec<_> = nn.pending_stripes().iter().map(|s| s.id).collect();
        assert_eq!(ids, vec![StripeId(0), StripeId(1), StripeId(2)]);
        for s in stripes.iter().rev() {
            nn.record_encoded(EncodedStripe {
                id: s.id,
                data: s.blocks.clone(),
                parity: vec![],
            })
            .unwrap();
        }
        let ids: Vec<_> = nn.encoded_stripes().iter().map(|s| s.id).collect();
        assert_eq!(ids, vec![StripeId(0), StripeId(1), StripeId(2)]);
    }
}
