//! The deterministic reliability substrate under every [`ClusterIo`]
//! consumer (DESIGN.md §14): virtual-clock deadlines, per-class retry
//! budgets, per-node circuit breakers, hedged-read policy, and the
//! admission/load-shed gate.
//!
//! # The virtual clock
//!
//! No wall clock appears anywhere in this module. Each operation carries an
//! [`OpContext`] whose elapsed time is a sum of *virtual ticks* (1 tick =
//! 1 virtual µs) charged by the data plane: a fixed per-attempt base, a
//! per-KiB transfer cost, seeded straggler delays, seeded backoff, and
//! fixed penalties for failures. Because every charge is a pure function of
//! the operation's identity, an op's virtual latency — and therefore every
//! deadline and hedging decision — replays bit-identically regardless of
//! thread interleaving, storage backend, or cache configuration.
//!
//! # Determinism invariants
//!
//! - Circuit breakers are fed **only** by the failure detector's heartbeat
//!   transitions ([`Reliability::on_transitions`]), never by data-plane
//!   failures: breaker state at any control-plane tick is a pure function
//!   of the heartbeat schedule, which `ear-faults` derives from the seed.
//! - Backoff jitter and hedging delays hash the op identity with the
//!   cluster seed ([`ear_faults::mix64`]); no ambient RNG.
//! - Admission and retry-budget state are shared atomics, but with the
//!   default (unlimited) policy they never reject, so soak fingerprints
//!   are unaffected unless a harness opts into finite limits.
//!
//! [`ClusterIo`]: crate::ClusterIo

use crate::health::HealthTransition;
use ear_faults::mix64;
use ear_types::{Error, NodeHealth, NodeId, Result};
use std::cell::Cell;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::time::Duration;

/// Paces a virtual-tick wait on the wall clock (1 tick = 1 µs). The tick
/// count always comes from the substrate's cost model (backoff, hedging
/// delay) *after* it has been charged to the op's deadline — this is only
/// the physical "don't busy-loop" side of a number the virtual clock has
/// already accounted. The one sanctioned sleep in the workspace (L5).
pub(crate) fn pace(ticks: u64) {
    std::thread::sleep(Duration::from_micros(ticks));
}

/// Applies `f` to an atomic with a CAS loop. `fetch_update` forces the
/// closure to return `Option` and the call to return `Result`; for the
/// total functions used here (saturating bumps), that `Result` is
/// unconditionally `Ok` and discarding it would trip L5's
/// discarded-result check — these helpers keep the infallibility in the
/// types instead of at the call sites.
macro_rules! atomic_apply_impl {
    ($name:ident, $atomic:ty, $int:ty) => {
        fn $name(cell: &$atomic, f: impl Fn($int) -> $int) {
            let mut cur = cell.load(Ordering::Relaxed);
            loop {
                match cell.compare_exchange_weak(
                    cur,
                    f(cur),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => return,
                    Err(seen) => cur = seen,
                }
            }
        }
    };
}
atomic_apply_impl!(atomic_apply_u32, AtomicU32, u32);
atomic_apply_impl!(atomic_apply_u64, AtomicU64, u64);

/// Priority classes of data-plane operations, highest first. The admission
/// gate sheds low classes before high ones, and retry budgets are accounted
/// per class (one token bucket each, not per-call loops).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Foreground client reads — never shed while anything else runs.
    ClientRead,
    /// Foreground client writes.
    ClientWrite,
    /// Background repair traffic (healer, recovery).
    Heal,
    /// Encoding jobs — the first class shed under load.
    Encode,
}

/// Number of op classes (array dimension for per-class state).
pub const OP_CLASSES: usize = 4;

impl OpClass {
    /// Index into per-class arrays, in priority order (0 = highest).
    pub fn index(self) -> usize {
        match self {
            OpClass::ClientRead => 0,
            OpClass::ClientWrite => 1,
            OpClass::Heal => 2,
            OpClass::Encode => 3,
        }
    }

    /// Stable lowercase name for errors and reports.
    pub fn name(self) -> &'static str {
        match self {
            OpClass::ClientRead => "client-read",
            OpClass::ClientWrite => "client-write",
            OpClass::Heal => "heal",
            OpClass::Encode => "encode",
        }
    }
}

/// Per-class admission and retry policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassPolicy {
    /// Admission limit: a new op of this class is shed when the *total*
    /// in-flight count (all classes) has reached this value. Priority falls
    /// out of the ordering `ClientRead >= ClientWrite >= Heal >= Encode`:
    /// under load, encode hits its (smaller) limit first.
    pub max_in_flight: u32,
    /// Capacity of the class's retry token bucket.
    pub retry_budget: u64,
    /// Tokens refilled into the bucket per admitted op (capped at
    /// `retry_budget`).
    pub retry_refill: u64,
}

impl Default for ClassPolicy {
    fn default() -> Self {
        // Effectively unlimited: the substrate observes but never rejects
        // until a harness opts into finite limits.
        ClassPolicy {
            max_in_flight: u32::MAX,
            retry_budget: 1 << 40,
            retry_refill: 1 << 40,
        }
    }
}

/// Configuration of the reliability substrate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReliabilityConfig {
    /// Whether reads hedge: once an attempt's seeded straggler delay
    /// exceeds [`hedge_threshold_ticks`](Self::hedge_threshold_ticks), a
    /// second replica fetch (or degraded-EC reconstruct) is launched and
    /// the virtual-clock winner is taken.
    pub hedge_reads: bool,
    /// Straggler-percentile delay, in virtual ticks, after which a read
    /// hedges.
    pub hedge_threshold_ticks: u64,
    /// Default [`OpContext`] deadline, in virtual ticks.
    pub default_deadline_ticks: u64,
    /// Per-class admission/retry policy, indexed by [`OpClass::index`].
    pub classes: [ClassPolicy; OP_CLASSES],
}

impl Default for ReliabilityConfig {
    fn default() -> Self {
        ReliabilityConfig {
            hedge_reads: true,
            hedge_threshold_ticks: 1_000,
            default_deadline_ticks: 10_000_000,
            classes: [ClassPolicy::default(); OP_CLASSES],
        }
    }
}

/// Circuit-breaker state of one node, driven by detector transitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: I/O flows normally.
    Closed,
    /// The detector suspects or has declared the node dead: fallback skips
    /// it instead of paying a timeout (unless it is the only source).
    Open,
    /// The node rejoined; I/O is allowed again as a probe until the
    /// detector either re-trusts it (`Closed`) or re-suspects it (`Open`).
    HalfOpen,
}

const B_CLOSED: u8 = 0;
const B_OPEN: u8 = 1;
const B_HALF_OPEN: u8 = 2;

/// Hash domain separating backoff jitter from the fault-injection streams.
const DOMAIN_BACKOFF: u64 = 0x4241_434b;

/// Virtual-clock cost model (1 tick = 1 virtual µs).
///
/// Fixed per-attempt base of a block transfer.
pub(crate) const XFER_BASE_TICKS: u64 = 64;
/// Nominal service time used for straggler-delay sampling (a 64 KiB block).
pub(crate) const NOMINAL_SERVICE_TICKS: u64 = 128;
/// Penalty for an attempt that fails transiently or corrupt.
pub(crate) const FAULT_PENALTY_TICKS: u64 = 300;
/// Penalty for discovering a dead node the hard way (a timeout).
pub(crate) const TIMEOUT_PENALTY_TICKS: u64 = 2_000;
/// Cost of skipping a breaker-open replica (the point of breakers: this
/// replaces [`TIMEOUT_PENALTY_TICKS`]).
pub(crate) const BREAKER_SKIP_TICKS: u64 = 1;
/// Fixed cost of a degraded-EC decode in a hedged single-source read.
pub(crate) const DECODE_TICKS: u64 = 512;

/// Backoff: seeded jitter over capped exponential growth.
const BACKOFF_BASE_TICKS: u64 = 200;
const BACKOFF_CAP_TICKS: u64 = 3_200;
const BACKOFF_MAX_SHIFT: u32 = 4;

/// Virtual transfer cost of moving `len` payload bytes once.
pub(crate) fn xfer_cost_ticks(len: usize) -> u64 {
    XFER_BASE_TICKS + (len as u64 >> 10)
}

/// Monotonic counters the substrate exports into [`IoStats`] and the
/// chaos/heal reports.
///
/// [`IoStats`]: crate::IoStats
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReliabilityStats {
    /// Breaker transitions into `Open` (detector trips).
    pub breaker_trips: u64,
    /// Half-open probe slots drained at control-plane ticks.
    pub probes_drained: u64,
    /// Ops rejected by the admission gate.
    pub shed_ops: u64,
    /// Retries denied because a class bucket ran dry.
    pub retry_denials: u64,
    /// Ops that blew their virtual-clock deadline.
    pub deadline_misses: u64,
}

/// The shared reliability substrate of one cluster: breakers, budgets, the
/// admission gate, and the seeded backoff/hedging policy. Lock-free by
/// construction (atomics only) so it sits below every lock class in the
/// L1 order.
#[derive(Debug)]
pub struct Reliability {
    cfg: ReliabilityConfig,
    seed: u64,
    breakers: Vec<AtomicU8>,
    in_flight: [AtomicU32; OP_CLASSES],
    retry_tokens: [AtomicU64; OP_CLASSES],
    breaker_trips: AtomicU64,
    probes_drained: AtomicU64,
    shed_ops: AtomicU64,
    retry_denials: AtomicU64,
    deadline_misses: AtomicU64,
}

impl Reliability {
    /// A substrate for `num_nodes` DataNodes, all breakers closed and every
    /// retry bucket full.
    pub fn new(cfg: ReliabilityConfig, seed: u64, num_nodes: usize) -> Self {
        let retry_tokens = std::array::from_fn(|i| {
            AtomicU64::new(cfg.classes.get(i).copied().unwrap_or_default().retry_budget)
        });
        Reliability {
            cfg,
            seed,
            breakers: (0..num_nodes).map(|_| AtomicU8::new(B_CLOSED)).collect(),
            in_flight: std::array::from_fn(|_| AtomicU32::new(0)),
            retry_tokens,
            breaker_trips: AtomicU64::new(0),
            probes_drained: AtomicU64::new(0),
            shed_ops: AtomicU64::new(0),
            retry_denials: AtomicU64::new(0),
            deadline_misses: AtomicU64::new(0),
        }
    }

    /// A disabled-policy substrate (unlimited budgets, hedging off) for
    /// components built without cluster config.
    pub fn unlimited(num_nodes: usize) -> Self {
        let cfg = ReliabilityConfig {
            hedge_reads: false,
            ..ReliabilityConfig::default()
        };
        Reliability::new(cfg, 0, num_nodes)
    }

    /// The active configuration.
    pub fn config(&self) -> &ReliabilityConfig {
        &self.cfg
    }

    /// Whether reads hedge.
    pub fn hedging_enabled(&self) -> bool {
        self.cfg.hedge_reads
    }

    /// The hedging delay threshold, in virtual ticks.
    pub fn hedge_threshold_ticks(&self) -> u64 {
        self.cfg.hedge_threshold_ticks
    }

    /// Admits one op of `class` with the default deadline.
    ///
    /// # Errors
    ///
    /// [`Error::Overloaded`] when the gate sheds the op.
    pub fn ctx(&self, class: OpClass) -> Result<OpContext<'_>> {
        self.ctx_with_deadline(class, self.cfg.default_deadline_ticks)
    }

    /// Admits one op of `class` with an explicit virtual-clock deadline.
    /// Admission *is* context creation: the returned guard holds the op's
    /// in-flight slot until dropped, and refills the class's retry bucket.
    ///
    /// # Errors
    ///
    /// [`Error::Overloaded`] when the total in-flight count has reached the
    /// class's limit.
    pub fn ctx_with_deadline(&self, class: OpClass, deadline_ticks: u64) -> Result<OpContext<'_>> {
        let i = class.index();
        let policy = self
            .cfg
            .classes
            .get(i)
            .copied()
            .unwrap_or_default();
        let total: u32 = self
            .in_flight
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .fold(0u32, u32::saturating_add);
        if total >= policy.max_in_flight {
            self.shed_ops.fetch_add(1, Ordering::Relaxed);
            return Err(Error::Overloaded {
                class: class.name(),
            });
        }
        if let Some(slot) = self.in_flight.get(i) {
            slot.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(bucket) = self.retry_tokens.get(i) {
            atomic_apply_u64(bucket, |t| {
                t.saturating_add(policy.retry_refill).min(policy.retry_budget)
            });
        }
        Ok(OpContext {
            rel: self,
            class,
            deadline_ticks,
            elapsed: Cell::new(0),
        })
    }

    /// Feeds detector transitions into the breakers: `Suspect`/`Dead` open
    /// (a trip), `Rejoined` half-opens, `Live` closes. This is the **only**
    /// breaker input — data-plane failures never touch breaker state, so
    /// breaker decisions are a pure function of the heartbeat schedule.
    pub fn on_transitions(&self, transitions: &[HealthTransition]) {
        for t in transitions {
            let Some(b) = self.breakers.get(t.node.index()) else {
                continue;
            };
            match t.to {
                NodeHealth::Suspect | NodeHealth::Dead => {
                    if b.swap(B_OPEN, Ordering::Relaxed) != B_OPEN {
                        self.breaker_trips.fetch_add(1, Ordering::Relaxed);
                    }
                }
                NodeHealth::Rejoined => b.store(B_HALF_OPEN, Ordering::Relaxed),
                NodeHealth::Live => b.store(B_CLOSED, Ordering::Relaxed),
            }
        }
    }

    /// Drains half-open probe slots at a control-plane tick: every
    /// half-open breaker is granted one probe (its data-plane I/O stays
    /// allowed this tick; the detector's verdict on the next tick closes or
    /// re-opens it). Returns the number of probes granted — deterministic,
    /// because breaker state is.
    pub fn drain_probes(&self) -> usize {
        let n = self
            .breakers
            .iter()
            .filter(|b| b.load(Ordering::Relaxed) == B_HALF_OPEN)
            .count();
        self.probes_drained.fetch_add(n as u64, Ordering::Relaxed);
        n
    }

    /// Current breaker state of `node` (out-of-range ids read `Closed`).
    pub fn breaker_state(&self, node: NodeId) -> BreakerState {
        match self
            .breakers
            .get(node.index())
            .map(|b| b.load(Ordering::Relaxed))
        {
            Some(B_OPEN) => BreakerState::Open,
            Some(B_HALF_OPEN) => BreakerState::HalfOpen,
            _ => BreakerState::Closed,
        }
    }

    /// Whether fallback should skip `node` (breaker open).
    pub fn breaker_open(&self, node: NodeId) -> bool {
        self.breaker_state(node) == BreakerState::Open
    }

    /// Seeded-jitter capped exponential backoff, in virtual ticks: grows
    /// `200 << attempt` up to a hard cap of 3 200, jittered into the upper
    /// half of the window by a pure hash of `(seed, key, attempt)` so
    /// colliding retriers decorrelate deterministically.
    pub fn backoff_ticks(&self, key: u64, attempt: u32) -> u64 {
        let grown = BACKOFF_BASE_TICKS << attempt.min(BACKOFF_MAX_SHIFT);
        let capped = grown.min(BACKOFF_CAP_TICKS);
        let h = mix64(mix64(self.seed ^ DOMAIN_BACKOFF ^ key) ^ attempt as u64);
        let half = capped / 2;
        half + h % (half + 1)
    }

    /// Snapshot of the substrate's monotonic counters.
    pub fn stats(&self) -> ReliabilityStats {
        ReliabilityStats {
            breaker_trips: self.breaker_trips.load(Ordering::Relaxed),
            probes_drained: self.probes_drained.load(Ordering::Relaxed),
            shed_ops: self.shed_ops.load(Ordering::Relaxed),
            retry_denials: self.retry_denials.load(Ordering::Relaxed),
            deadline_misses: self.deadline_misses.load(Ordering::Relaxed),
        }
    }
}

/// One admitted operation: its class, virtual-clock deadline, and elapsed
/// virtual time. Created by [`Reliability::ctx`]; dropping it releases the
/// op's in-flight admission slot.
///
/// Deliberately `!Sync` (elapsed time is a [`Cell`]): one context belongs
/// to one operation on one thread; parallel sub-work gets child contexts.
#[derive(Debug)]
pub struct OpContext<'a> {
    rel: &'a Reliability,
    class: OpClass,
    deadline_ticks: u64,
    elapsed: Cell<u64>,
}

impl OpContext<'_> {
    /// The op's class.
    pub fn class(&self) -> OpClass {
        self.class
    }

    /// The op's deadline, in virtual ticks.
    pub fn deadline_ticks(&self) -> u64 {
        self.deadline_ticks
    }

    /// Virtual ticks charged so far.
    pub fn elapsed_ticks(&self) -> u64 {
        self.elapsed.get()
    }

    /// Charges `ticks` of virtual time to the op.
    ///
    /// # Errors
    ///
    /// [`Error::DeadlineExceeded`] once the op's elapsed virtual time
    /// passes its deadline; the op must stop, typed, right here.
    pub fn charge(&self, ticks: u64) -> Result<()> {
        let e = self.elapsed.get().saturating_add(ticks);
        self.elapsed.set(e);
        if e > self.deadline_ticks {
            self.rel.deadline_misses.fetch_add(1, Ordering::Relaxed);
            return Err(Error::DeadlineExceeded {
                what: self.class.name(),
                deadline_ticks: self.deadline_ticks,
            });
        }
        Ok(())
    }

    /// Draws one retry token from the op class's shared bucket. Called
    /// before every retry (never the first attempt), making the budget a
    /// per-class property instead of a per-call loop counter.
    ///
    /// # Errors
    ///
    /// [`Error::RetryBudgetExhausted`] when the bucket is dry.
    pub fn try_retry(&self) -> Result<()> {
        let i = self.class.index();
        let Some(bucket) = self.rel.retry_tokens.get(i) else {
            return Ok(());
        };
        let drawn = bucket.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |t| {
            t.checked_sub(1)
        });
        if drawn.is_err() {
            self.rel.retry_denials.fetch_add(1, Ordering::Relaxed);
            return Err(Error::RetryBudgetExhausted {
                class: self.class.name(),
            });
        }
        Ok(())
    }

    /// The owning substrate.
    pub(crate) fn reliability(&self) -> &Reliability {
        self.rel
    }
}

impl Drop for OpContext<'_> {
    fn drop(&mut self) {
        if let Some(slot) = self.rel.in_flight.get(self.class.index()) {
            // Saturating: an admission slot is released exactly once, but a
            // wrap on a miscounted drop must not panic the data plane.
            atomic_apply_u32(slot, |v| v.saturating_sub(1));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ear_types::NodeHealth;

    fn transition(node: u32, to: NodeHealth) -> HealthTransition {
        HealthTransition {
            tick: 1,
            node: NodeId(node),
            from: NodeHealth::Live,
            to,
        }
    }

    fn substrate(cfg: ReliabilityConfig) -> Reliability {
        Reliability::new(cfg, 42, 8)
    }

    #[test]
    fn breaker_trips_half_opens_probes_and_closes() {
        let rel = substrate(ReliabilityConfig::default());
        let n = NodeId(3);
        assert_eq!(rel.breaker_state(n), BreakerState::Closed);
        assert!(!rel.breaker_open(n));

        // Suspect trips the breaker open.
        rel.on_transitions(&[transition(3, NodeHealth::Suspect)]);
        assert_eq!(rel.breaker_state(n), BreakerState::Open);
        assert!(rel.breaker_open(n));
        assert_eq!(rel.stats().breaker_trips, 1);

        // Dead keeps it open without double-counting the trip.
        rel.on_transitions(&[transition(3, NodeHealth::Dead)]);
        assert_eq!(rel.breaker_state(n), BreakerState::Open);
        assert_eq!(rel.stats().breaker_trips, 1);

        // Rejoined half-opens: I/O allowed again as a probe.
        rel.on_transitions(&[transition(3, NodeHealth::Rejoined)]);
        assert_eq!(rel.breaker_state(n), BreakerState::HalfOpen);
        assert!(!rel.breaker_open(n));
        assert_eq!(rel.drain_probes(), 1);
        assert_eq!(rel.stats().probes_drained, 1);

        // The detector re-trusting the node closes the breaker...
        rel.on_transitions(&[transition(3, NodeHealth::Live)]);
        assert_eq!(rel.breaker_state(n), BreakerState::Closed);
        assert_eq!(rel.drain_probes(), 0);

        // ...and a failed probe (node back to Suspect) re-trips it.
        rel.on_transitions(&[transition(3, NodeHealth::Suspect)]);
        assert_eq!(rel.breaker_state(n), BreakerState::Open);
        assert_eq!(rel.stats().breaker_trips, 2);

        // Other nodes are untouched throughout.
        assert_eq!(rel.breaker_state(NodeId(0)), BreakerState::Closed);
        // Out-of-range transitions are ignored, not panicked on.
        rel.on_transitions(&[transition(99, NodeHealth::Dead)]);
        assert_eq!(rel.breaker_state(NodeId(99)), BreakerState::Closed);
    }

    #[test]
    fn admission_gate_sheds_low_priority_first() {
        let mut cfg = ReliabilityConfig::default();
        // Encode saturates at 2 total in-flight, heal at 3, clients at 4.
        cfg.classes[OpClass::Encode.index()].max_in_flight = 2;
        cfg.classes[OpClass::Heal.index()].max_in_flight = 3;
        cfg.classes[OpClass::ClientWrite.index()].max_in_flight = 4;
        cfg.classes[OpClass::ClientRead.index()].max_in_flight = 4;
        let rel = substrate(cfg);

        let a = rel.ctx(OpClass::Encode).expect("first encode admitted");
        let b = rel.ctx(OpClass::Heal).expect("heal admitted");
        // Total in-flight is 2: encode is now at its limit, heal is not.
        let shed = rel.ctx(OpClass::Encode);
        assert!(matches!(shed, Err(Error::Overloaded { class: "encode" })));
        let c = rel.ctx(OpClass::Heal).expect("heal still admitted");
        // Total 3: heal saturates, client write still admitted.
        assert!(matches!(
            rel.ctx(OpClass::Heal),
            Err(Error::Overloaded { class: "heal" })
        ));
        let d = rel.ctx(OpClass::ClientWrite).expect("client write admitted");
        // Total 4: everyone sheds now.
        assert!(rel.ctx(OpClass::ClientRead).is_err());
        assert_eq!(rel.stats().shed_ops, 3);

        // Dropping contexts releases their slots.
        drop((a, b, c, d));
        assert!(rel.ctx(OpClass::Encode).is_ok());
    }

    #[test]
    fn retry_bucket_dries_up_and_refills_per_admitted_op() {
        let mut cfg = ReliabilityConfig::default();
        cfg.classes[OpClass::Heal.index()].retry_budget = 3;
        cfg.classes[OpClass::Heal.index()].retry_refill = 1;
        let rel = substrate(cfg);

        // The bucket starts full (3 tokens); admission refills 1 (capped).
        let ctx = rel.ctx(OpClass::Heal).unwrap();
        assert!(ctx.try_retry().is_ok());
        assert!(ctx.try_retry().is_ok());
        assert!(ctx.try_retry().is_ok());
        let dry = ctx.try_retry();
        assert!(matches!(
            dry,
            Err(Error::RetryBudgetExhausted { class: "heal" })
        ));
        assert_eq!(rel.stats().retry_denials, 1);
        drop(ctx);

        // Each new admitted op refills one token — the budget is a class
        // property, shared across calls.
        let ctx2 = rel.ctx(OpClass::Heal).unwrap();
        assert!(ctx2.try_retry().is_ok());
        assert!(ctx2.try_retry().is_err());
        // Other classes have their own buckets.
        let enc = rel.ctx(OpClass::Encode).unwrap();
        assert!(enc.try_retry().is_ok());
    }

    #[test]
    fn deadline_fires_typed_and_counts() {
        let rel = substrate(ReliabilityConfig::default());
        let ctx = rel.ctx_with_deadline(OpClass::ClientRead, 1_000).unwrap();
        assert!(ctx.charge(600).is_ok());
        assert!(ctx.charge(400).is_ok(), "exactly at the deadline is fine");
        let blown = ctx.charge(1);
        assert!(matches!(
            blown,
            Err(Error::DeadlineExceeded {
                what: "client-read",
                deadline_ticks: 1_000
            })
        ));
        assert_eq!(ctx.elapsed_ticks(), 1_001);
        assert_eq!(rel.stats().deadline_misses, 1);
    }

    #[test]
    fn backoff_is_seeded_jittered_exponential_and_capped() {
        let a = substrate(ReliabilityConfig::default());
        let b = substrate(ReliabilityConfig::default());
        for attempt in 0..8 {
            for key in [0u64, 7, 1 << 40] {
                let ta = a.backoff_ticks(key, attempt);
                // Deterministic: same seed, key, attempt → same ticks.
                assert_eq!(ta, b.backoff_ticks(key, attempt));
                // Jitter stays within [window/2, window]; window grows
                // 200 << attempt and is hard-capped at 3 200.
                let window = (200u64 << attempt.min(4)).min(3_200);
                assert!(ta >= window / 2, "attempt {attempt}: {ta} < {}", window / 2);
                assert!(ta <= window, "attempt {attempt}: {ta} > {window}");
            }
        }
        // Different keys decorrelate colliding retriers: across a few
        // attempts at least one pair of keys must draw different jitter.
        assert!((0..8).any(|at| a.backoff_ticks(1, at) != a.backoff_ticks(2, at)));
        // The cap holds arbitrarily deep.
        assert!(a.backoff_ticks(9, 30) <= 3_200);
    }

    #[test]
    fn virtual_cost_model_is_monotone_in_size() {
        assert_eq!(xfer_cost_ticks(0), XFER_BASE_TICKS);
        assert_eq!(xfer_cost_ticks(64 * 1024), XFER_BASE_TICKS + 64);
        assert!(xfer_cost_ticks(1 << 20) > xfer_cost_ticks(64 * 1024));
    }

    #[test]
    fn default_policy_never_rejects() {
        let rel = substrate(ReliabilityConfig::default());
        let mut held = Vec::new();
        for i in 0..256 {
            let class = match i % 4 {
                0 => OpClass::ClientRead,
                1 => OpClass::ClientWrite,
                2 => OpClass::Heal,
                _ => OpClass::Encode,
            };
            let ctx = rel.ctx(class).expect("default policy admits everything");
            assert!(ctx.try_retry().is_ok());
            held.push(ctx);
        }
        let s = rel.stats();
        assert_eq!(s.shed_ops, 0);
        assert_eq!(s.retry_denials, 0);
    }
}
