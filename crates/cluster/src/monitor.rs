//! The PlacementMonitor: Facebook's HDFS periodically scans encoded stripes
//! for rack-level fault-tolerance violations and hands them to the
//! BlockMover (Section II-B of the paper). This module reproduces the scan;
//! [`RaidNode::relocate`](crate::RaidNode::relocate) is the mover.

use crate::cluster::MiniCfs;
use crate::namenode::EncodedStripe;
use crate::raidnode::Relocation;
use ear_types::{NodeId, RackId, StripeId};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::{BTreeMap, HashMap, HashSet};

/// One detected violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The offending stripe.
    pub stripe: StripeId,
    /// Racks holding more than `c` blocks of the stripe, with their counts.
    pub overloaded_racks: Vec<(RackId, usize)>,
}

/// Scans every encoded stripe and reports those whose current block
/// placement violates the `c` blocks-per-rack constraint (or places two
/// stripe blocks on one node).
pub fn scan(cfs: &MiniCfs) -> Vec<Violation> {
    let topo = cfs.topology();
    let c = cfs.config().ear.c();
    let mut violations = Vec::new();
    for es in cfs.namenode().encoded_stripes() {
        // BTreeMap: `overloaded` is reported per stripe and feeds the soak
        // reports, so its construction must be hash-order-free.
        let mut per_rack: BTreeMap<RackId, usize> = BTreeMap::new();
        let mut nodes = HashSet::new();
        let mut node_clash = false;
        for &b in es.data.iter().chain(es.parity.iter()) {
            if let Some(locs) = cfs.namenode().locations(b) {
                for n in locs {
                    if !nodes.insert(n) {
                        node_clash = true;
                    }
                    *per_rack.entry(topo.rack_of(n)).or_insert(0) += 1;
                }
            }
        }
        let mut overloaded: Vec<(RackId, usize)> = per_rack
            .into_iter()
            .filter(|&(_, count)| count > c)
            .collect();
        overloaded.sort_by_key(|&(r, _)| r);
        if !overloaded.is_empty() || node_clash {
            violations.push(Violation {
                stripe: es.id,
                overloaded_racks: overloaded,
            });
        }
    }
    violations
}

/// Plans relocations repairing the reported violations: for each overloaded
/// rack, surplus blocks move to nodes in racks with spare stripe capacity.
/// Feed the result to [`RaidNode::relocate`](crate::RaidNode::relocate).
pub fn plan_repairs(cfs: &MiniCfs, violations: &[Violation]) -> Vec<Relocation> {
    let topo = cfs.topology();
    let c = cfs.config().ear.c();
    // Derived from the cluster seed so two clusters differing only in seed
    // plan different (but individually reproducible) repairs.
    let mut rng = ChaCha8Rng::seed_from_u64(cfs.config().seed ^ 0x510C);
    let encoded: HashMap<StripeId, EncodedStripe> = cfs
        .namenode()
        .encoded_stripes()
        .into_iter()
        .map(|es| (es.id, es))
        .collect();
    let mut out = Vec::new();
    for v in violations {
        let Some(es) = encoded.get(&v.stripe) else {
            continue;
        };
        // Current placement of the stripe.
        let mut placement: Vec<(ear_types::BlockId, NodeId)> = es
            .data
            .iter()
            .chain(es.parity.iter())
            .filter_map(|&b| {
                cfs.namenode()
                    .locations(b)
                    .and_then(|l| l.first().copied())
                    .map(|n| (b, n))
            })
            .collect();
        let mut per_rack: BTreeMap<RackId, Vec<usize>> = BTreeMap::new();
        for (i, &(_, n)) in placement.iter().enumerate() {
            per_rack.entry(topo.rack_of(n)).or_default().push(i);
        }
        let mut used: HashSet<NodeId> = placement.iter().map(|&(_, n)| n).collect();
        let mut load: HashMap<RackId, usize> =
            per_rack.iter().map(|(&r, v)| (r, v.len())).collect();
        // Move surplus blocks out of overloaded racks, in rack order so the
        // plan is a pure function of cluster state and seed (HashMap
        // iteration order is not).
        let mut by_rack: Vec<(RackId, Vec<usize>)> = per_rack.into_iter().collect();
        by_rack.sort_by_key(|&(r, _)| r);
        for (rack, members) in by_rack {
            let surplus = members.len().saturating_sub(c);
            for &idx in members.iter().take(surplus) {
                let (block, from) = placement[idx];
                // Find a destination rack with spare capacity.
                let mut candidates: Vec<RackId> = topo
                    .racks()
                    .filter(|r| *r != rack && load.get(r).copied().unwrap_or(0) < c)
                    .collect();
                candidates.shuffle(&mut rng);
                let Some(dst_rack) = candidates.first().copied() else {
                    continue;
                };
                let free: Vec<NodeId> = topo
                    .nodes_in_rack(dst_rack)
                    .iter()
                    .copied()
                    .filter(|n| !used.contains(n))
                    .collect();
                if let Some(&to) = free.choose(&mut rng) {
                    out.push((block, from, to));
                    // The destination now holds a stripe block: without
                    // marking it used, two surplus blocks of one stripe can
                    // land on the same node (a node-clash violation the
                    // next scan would re-report).
                    used.insert(to);
                    *load.entry(dst_rack).or_insert(0) += 1;
                    *load.entry(rack).or_insert(surplus) -= 1;
                    placement[idx].1 = to;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{ClusterConfig, ClusterPolicy};
    use crate::raidnode::RaidNode;
    use ear_types::{
        Bandwidth, ByteSize, CacheConfig, EarConfig, ErasureParams, ReplicationConfig,
        StoreBackend,
    };

    fn boot(policy: ClusterPolicy) -> MiniCfs {
        let ear = EarConfig::new(
            ErasureParams::new(6, 4).unwrap(),
            ReplicationConfig::two_way(),
            1,
        )
        .unwrap();
        let cfg = ClusterConfig {
            racks: 8,
            nodes_per_rack: 2,
            block_size: ByteSize::kib(64),
            node_bandwidth: Bandwidth::bytes_per_sec(512e6),
            rack_bandwidth: Bandwidth::bytes_per_sec(512e6),
            ear,
            policy,
            seed: 77,
            store: StoreBackend::from_env(),
            cache: CacheConfig::from_env(),
            durability: Default::default(),
            reliability: Default::default(),
            encode_path: ear_types::EncodePath::from_env(),
            repair_path: ear_types::RepairPath::from_env(),
        };
        MiniCfs::new(cfg).unwrap()
    }

    fn write_and_encode(cfs: &MiniCfs, stripes: usize) -> Vec<Relocation> {
        let nodes = cfs.topology().num_nodes() as u64;
        let mut i = 0u64;
        while cfs.namenode().pending_stripe_count() < stripes {
            let data = cfs.make_block(i);
            cfs.write_block(NodeId((i % nodes) as u32), data).unwrap();
            i += 1;
        }
        RaidNode::encode_all(cfs, 4).unwrap().1
    }

    #[test]
    fn clean_ear_cluster_reports_no_violations() {
        let cfs = boot(ClusterPolicy::Ear);
        write_and_encode(&cfs, 3);
        assert!(scan(&cfs).is_empty());
    }

    #[test]
    fn detects_and_repairs_a_manufactured_violation() {
        let cfs = boot(ClusterPolicy::Ear);
        write_and_encode(&cfs, 2);
        // Manufacture a violation: cram two blocks of one stripe into the
        // same rack.
        let es = &cfs.namenode().encoded_stripes()[0];
        let b0 = es.data[0];
        let b1 = es.data[1];
        let n0 = cfs.namenode().locations(b0).unwrap()[0];
        let rack = cfs.topology().rack_of(n0);
        // Move b1's copy onto the other node of b0's rack.
        let other = cfs
            .topology()
            .nodes_in_rack(rack)
            .iter()
            .copied()
            .find(|&n| n != n0)
            .unwrap();
        let old = cfs.namenode().locations(b1).unwrap()[0];
        let data = cfs.datanode(old).get(b1).unwrap();
        cfs.datanode(other).put(b1, data).unwrap();
        cfs.datanode(old).delete(b1);
        cfs.namenode().set_locations(b1, vec![other]).unwrap();

        let violations = scan(&cfs);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].stripe, es.id);
        assert_eq!(violations[0].overloaded_racks[0].0, rack);

        let repairs = plan_repairs(&cfs, &violations);
        assert!(!repairs.is_empty());
        RaidNode::relocate(&cfs, &repairs).unwrap();
        assert!(scan(&cfs).is_empty(), "repairs must clear the violations");
    }

    #[test]
    fn surplus_blocks_never_land_on_one_node() {
        // Regression: plan_repairs once never added chosen destinations to
        // its used set, so two surplus blocks of one stripe could be planned
        // onto the same node, and iterated monitor repair never converged.
        let ear = EarConfig::new(
            ErasureParams::new(6, 4).unwrap(),
            ReplicationConfig::two_way(),
            2,
        )
        .unwrap();
        let cfg = ClusterConfig {
            racks: 4,
            nodes_per_rack: 2,
            block_size: ByteSize::kib(64),
            node_bandwidth: Bandwidth::bytes_per_sec(512e6),
            rack_bandwidth: Bandwidth::bytes_per_sec(512e6),
            ear,
            policy: ClusterPolicy::Ear,
            seed: 79,
            store: StoreBackend::from_env(),
            cache: CacheConfig::from_env(),
            durability: Default::default(),
            reliability: Default::default(),
            encode_path: ear_types::EncodePath::from_env(),
            repair_path: ear_types::RepairPath::from_env(),
        };
        let cfs = MiniCfs::new(cfg).unwrap();
        let nodes = cfs.topology().num_nodes() as u64;
        let mut i = 0u64;
        while cfs.namenode().pending_stripe_count() < 1 {
            let data = cfs.make_block(i);
            cfs.write_block(NodeId((i % nodes) as u32), data).unwrap();
            i += 1;
        }
        RaidNode::encode_all(&cfs, 2).unwrap();
        let es = &cfs.namenode().encoded_stripes()[0];
        let members: Vec<_> = es.data.iter().chain(es.parity.iter()).copied().collect();
        let topo = cfs.topology();
        let holder = |b| cfs.namenode().locations(b).unwrap()[0];
        // Cram a second rack's blocks into the first stripe rack: 4 blocks
        // in one rack under c = 2 gives two surplus moves.
        let rack_a = topo.rack_of(holder(members[0]));
        let movers: Vec<_> = members
            .iter()
            .copied()
            .filter(|&b| topo.rack_of(holder(b)) != rack_a)
            .take(2)
            .collect();
        let a_nodes = topo.nodes_in_rack(rack_a).to_vec();
        assert!(movers.len() >= 2, "need two blocks to relocate into rack A");
        for (&b, &dst) in movers.iter().zip(a_nodes.iter()) {
            let old = holder(b);
            let data = cfs.datanode(old).get(b).unwrap();
            cfs.datanode(dst).put(b, data).unwrap();
            cfs.datanode(old).delete(b);
            cfs.namenode().set_locations(b, vec![dst]).unwrap();
        }
        assert!(!scan(&cfs).is_empty(), "manufactured overload must be seen");
        // Iterated monitor repair must converge, never stacking two planned
        // destinations on one node.
        for _ in 0..4 {
            let violations = scan(&cfs);
            if violations.is_empty() {
                break;
            }
            let plan = plan_repairs(&cfs, &violations);
            let mut dests = HashSet::new();
            for &(_, _, to) in &plan {
                assert!(dests.insert(to), "two surplus blocks planned onto {to}");
            }
            RaidNode::relocate(&cfs, &plan).unwrap();
        }
        assert!(scan(&cfs).is_empty(), "iterated repair must converge");
    }

    #[test]
    fn repair_plans_replay_from_the_cluster_seed() {
        // plan_repairs derives its RNG from the cluster seed (not a
        // hard-coded constant), and is a pure function of cluster state:
        // booting the identical cluster twice plans identical repairs.
        // Encoding runs single-threaded here so the two cluster states are
        // bit-identical (parallel encode interleaves parity-id allocation).
        let build = || {
            let cfs = boot(ClusterPolicy::Ear);
            let nodes = cfs.topology().num_nodes() as u64;
            let mut i = 0u64;
            while cfs.namenode().pending_stripe_count() < 2 {
                let data = cfs.make_block(i);
                cfs.write_block(NodeId((i % nodes) as u32), data).unwrap();
                i += 1;
            }
            RaidNode::encode_all(&cfs, 1).unwrap();
            let es = &cfs.namenode().encoded_stripes()[0];
            let b0 = es.data[0];
            let b1 = es.data[1];
            let n0 = cfs.namenode().locations(b0).unwrap()[0];
            let rack = cfs.topology().rack_of(n0);
            let other = cfs
                .topology()
                .nodes_in_rack(rack)
                .iter()
                .copied()
                .find(|&n| n != n0)
                .unwrap();
            let old = cfs.namenode().locations(b1).unwrap()[0];
            let data = cfs.datanode(old).get(b1).unwrap();
            cfs.datanode(other).put(b1, data).unwrap();
            cfs.datanode(old).delete(b1);
            cfs.namenode().set_locations(b1, vec![other]).unwrap();
            let violations = scan(&cfs);
            plan_repairs(&cfs, &violations)
        };
        let a = build();
        let b = build();
        assert!(!a.is_empty());
        assert_eq!(a, b, "same cluster seed must replay the same plan");
    }

    #[test]
    fn rr_violations_found_by_monitor_match_encode_stats() {
        // Tight cluster: (6,4) over exactly 6 racks.
        let ear = EarConfig::new(
            ErasureParams::new(6, 4).unwrap(),
            ReplicationConfig::two_way(),
            1,
        )
        .unwrap();
        let cfg = ClusterConfig {
            racks: 6,
            nodes_per_rack: 3,
            block_size: ByteSize::kib(64),
            node_bandwidth: Bandwidth::bytes_per_sec(512e6),
            rack_bandwidth: Bandwidth::bytes_per_sec(512e6),
            ear,
            policy: ClusterPolicy::Rr,
            seed: 78,
            store: StoreBackend::from_env(),
            cache: CacheConfig::from_env(),
            durability: Default::default(),
            reliability: Default::default(),
            encode_path: ear_types::EncodePath::from_env(),
            repair_path: ear_types::RepairPath::from_env(),
        };
        let cfs = MiniCfs::new(cfg).unwrap();
        let nodes = cfs.topology().num_nodes() as u64;
        let mut i = 0u64;
        while cfs.namenode().pending_stripe_count() < 20 {
            let data = cfs.make_block(i);
            cfs.write_block(NodeId((i % nodes) as u32), data).unwrap();
            i += 1;
        }
        let (stats, _pending_relocations) = RaidNode::encode_all(&cfs, 4).unwrap();
        let found = scan(&cfs);
        assert_eq!(
            found.len(),
            stats.stripes_with_relocation,
            "monitor and encode stats must agree"
        );
        if !found.is_empty() {
            let repairs = plan_repairs(&cfs, &found);
            RaidNode::relocate(&cfs, &repairs).unwrap();
            assert!(scan(&cfs).is_empty());
        }
    }
}
