//! The unified data-plane I/O service (DESIGN.md §9).
//!
//! Every block fetch and store in the cluster — client reads/writes, the
//! encoder's stripe downloads and parity uploads, degraded-read
//! reconstruction, healer re-replication, MapReduce shuffle traffic — goes
//! through [`ClusterIo`]. It owns the three seams that used to be spread
//! across per-consumer retry loops:
//!
//! * the **fault injector** (every attempt consults the plan; corruption is
//!   substituted here),
//! * the **emulated network** (every byte is paced through netem's token
//!   buckets),
//! * the **checksum boundary** (readers re-hash received bytes against the
//!   write-time CRC32C).
//!
//! On top of the single-attempt seams it provides the one retry/fallback
//! policy all consumers share: [`ClusterIo::read_with_fallback`] walks an
//! ordered replica list, retrying transient faults with seeded-jitter
//! backoff on the same node, skipping dead nodes (optionally notifying the
//! caller's blacklist), and [`ClusterIo::write_replicated`] /
//! [`ClusterIo::write_with_fallback`] do the same for pipeline and
//! placement writes. Per-op byte and latency counters are aggregated into
//! [`IoStats`].
//!
//! Every call carries an [`OpContext`] from the reliability substrate
//! (DESIGN.md §14): each attempt charges virtual-clock ticks against the
//! op's deadline, retries draw from the op class's shared token bucket,
//! fallback skips breaker-open replicas for one tick instead of paying a
//! timeout, and reads whose seeded straggler delay crosses the hedging
//! threshold race a second replica fetch and keep the virtual winner.

use crate::cache::CacheStats;
use crate::datanode::DataNode;
use crate::reliability::{self, OpContext, Reliability};
use ear_faults::{crc32c, FaultInjector, IoFault};
use ear_netem::EmulatedNetwork;
use ear_types::{Block, BlockId, ClusterTopology, Error, NodeId, Result};
use parking_lot::Mutex;
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Nodes one multi-block job (a stripe encode, a pipelined chain) has found
/// fail-stop dead, shared across the job's reads so each discovery is paid
/// at most once. This used to be a bespoke `Mutex<HashSet<_>>` + closure
/// pair re-built by every caller of
/// [`read_with_fallback`](ClusterIo::read_with_fallback); it now lives here
/// so the ordering/blacklist policy has exactly one implementation.
#[derive(Debug, Default)]
pub struct DeadNodeSet {
    inner: Mutex<HashSet<NodeId>>,
}

impl DeadNodeSet {
    /// An empty set.
    pub fn new() -> Self {
        DeadNodeSet::default()
    }

    /// Records `node` as discovered dead.
    pub fn insert(&self, node: NodeId) {
        self.inner.lock().insert(node);
    }

    /// Whether `node` has been discovered dead.
    pub fn contains(&self, node: NodeId) -> bool {
        self.inner.lock().contains(&node)
    }

    /// A point-in-time copy, for sort keys that must not hold the lock.
    fn snapshot(&self) -> HashSet<NodeId> {
        self.inner.lock().clone()
    }
}

/// Attempts per replica before a read or write gives up on it.
pub(crate) const IO_ATTEMPTS: u32 = 3;

/// Seeded-backoff hash key of one (replica, block) retry stream.
fn backoff_key(node: NodeId, block: BlockId) -> u64 {
    ((node.index() as u64) << 40) ^ block.index() as u64
}

/// Monotonic I/O counters, updated relaxed — totals are exact once the
/// contributing threads have joined, which is how every consumer reads them
/// (after `encode_all`, after a healer round, after a job set).
#[derive(Debug, Default)]
struct Counters {
    reads: AtomicU64,
    writes: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    read_retries: AtomicU64,
    write_retries: AtomicU64,
    failed_reads: AtomicU64,
    failed_writes: AtomicU64,
    read_ticks: AtomicU64,
    write_ticks: AtomicU64,
    transfer_bytes: AtomicU64,
    crc_skipped: AtomicU64,
    crc_bytes_skipped: AtomicU64,
    backoff_rounds: AtomicU64,
    hedges_launched: AtomicU64,
    hedges_won: AtomicU64,
    breaker_skips: AtomicU64,
}

/// A snapshot of the cluster's data-plane I/O accounting.
///
/// Every field — including the latency sums (`*_ticks`, virtual-clock
/// microseconds from the reliability cost model) — is deterministic for a
/// fixed seed and fault plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IoStats {
    /// Successful single-attempt block fetches.
    pub reads: u64,
    /// Successful single-attempt block stores.
    pub writes: u64,
    /// Payload bytes fetched (successful attempts).
    pub bytes_read: u64,
    /// Payload bytes stored (successful attempts).
    pub bytes_written: u64,
    /// Transient read attempts that were retried on the same replica.
    pub read_retries: u64,
    /// Transient write attempts that were retried on the same destination.
    pub write_retries: u64,
    /// Read attempts that failed (any cause, including the retried ones).
    pub failed_reads: u64,
    /// Write attempts that failed (any cause, including the retried ones).
    pub failed_writes: u64,
    /// Virtual-clock ticks (1 tick = 1 µs) charged to successful fetches:
    /// straggler delay plus the transfer cost model, the same numbers
    /// charged against op deadlines.
    pub read_ticks: u64,
    /// Virtual-clock ticks charged to successful stores.
    pub write_ticks: u64,
    /// Bytes moved through accounted raw transfers (shuffle, relocation).
    pub transfer_bytes: u64,
    /// Verified reads served without re-running CRC32C (the verified-once
    /// seam over cache hits; corrupt-fault attempts always re-verify).
    pub crc_skipped: u64,
    /// Payload bytes those skipped verifications covered.
    pub crc_bytes_skipped: u64,
    /// Backoff rounds slept between retries (reads and writes).
    pub backoff_rounds: u64,
    /// Hedged second fetches launched past the straggler threshold.
    pub hedges_launched: u64,
    /// Hedges whose leg won the virtual-clock race.
    pub hedges_won: u64,
    /// Fallback sources skipped for one tick because their breaker was open.
    pub breaker_skips: u64,
    /// Circuit-breaker trips (detector-driven `Open` transitions).
    pub breaker_trips: u64,
    /// Operations shed by the admission gate.
    pub shed_ops: u64,
    /// Operations that blew their virtual-clock deadline.
    pub deadline_misses: u64,
    /// Retries denied by an exhausted class token bucket.
    pub retry_denials: u64,
    /// Aggregated DataNode cache counters (hits/misses/bypasses/evictions
    /// and bytes served from cache instead of the store backend).
    pub cache: CacheStats,
}

/// The unified I/O service: DataNodes + emulated network + fault injector
/// behind one read/write API. One per cluster, shared by every service
/// thread.
#[derive(Debug)]
pub struct ClusterIo {
    topo: ClusterTopology,
    datanodes: Vec<DataNode>,
    net: EmulatedNetwork,
    injector: FaultInjector,
    rel: Arc<Reliability>,
    counters: Counters,
}

impl ClusterIo {
    /// Assembles the service from the cluster's already-built parts. The
    /// reliability substrate is shared with the cluster that admits ops:
    /// the service reads its breaker/hedging policy and folds its counters
    /// into [`IoStats`].
    pub fn new(
        topo: ClusterTopology,
        datanodes: Vec<DataNode>,
        net: EmulatedNetwork,
        injector: FaultInjector,
        rel: Arc<Reliability>,
    ) -> Self {
        ClusterIo {
            topo,
            datanodes,
            net,
            injector,
            rel,
            counters: Counters::default(),
        }
    }

    /// The reliability substrate in force (admission, budgets, breakers).
    pub fn reliability(&self) -> &Arc<Reliability> {
        &self.rel
    }

    /// The topology this service spans.
    pub fn topology(&self) -> &ClusterTopology {
        &self.topo
    }

    /// The emulated network (for traffic statistics and injection).
    pub fn network(&self) -> &EmulatedNetwork {
        &self.net
    }

    /// The fault injector in force.
    pub fn injector(&self) -> &FaultInjector {
        &self.injector
    }

    /// Access to a DataNode.
    ///
    /// # Panics
    ///
    /// Panics if the node id is out of range.
    pub fn datanode(&self, node: NodeId) -> &DataNode {
        &self.datanodes[node.index()]
    }

    /// Snapshot of the per-op byte and latency accounting.
    pub fn stats(&self) -> IoStats {
        let c = &self.counters;
        let rel = self.rel.stats();
        IoStats {
            reads: c.reads.load(Ordering::Relaxed),
            writes: c.writes.load(Ordering::Relaxed),
            bytes_read: c.bytes_read.load(Ordering::Relaxed),
            bytes_written: c.bytes_written.load(Ordering::Relaxed),
            read_retries: c.read_retries.load(Ordering::Relaxed),
            write_retries: c.write_retries.load(Ordering::Relaxed),
            failed_reads: c.failed_reads.load(Ordering::Relaxed),
            failed_writes: c.failed_writes.load(Ordering::Relaxed),
            read_ticks: c.read_ticks.load(Ordering::Relaxed),
            write_ticks: c.write_ticks.load(Ordering::Relaxed),
            transfer_bytes: c.transfer_bytes.load(Ordering::Relaxed),
            crc_skipped: c.crc_skipped.load(Ordering::Relaxed),
            crc_bytes_skipped: c.crc_bytes_skipped.load(Ordering::Relaxed),
            backoff_rounds: c.backoff_rounds.load(Ordering::Relaxed),
            hedges_launched: c.hedges_launched.load(Ordering::Relaxed),
            hedges_won: c.hedges_won.load(Ordering::Relaxed),
            breaker_skips: c.breaker_skips.load(Ordering::Relaxed),
            breaker_trips: rel.breaker_trips,
            shed_ops: rel.shed_ops,
            deadline_misses: rel.deadline_misses,
            retry_denials: rel.retry_denials,
            cache: {
                let mut agg = CacheStats::default();
                for dn in &self.datanodes {
                    agg.add(&dn.cache_stats());
                }
                agg
            },
        }
    }

    /// Reads `block` from the specific replica on `src`, shipping the bytes
    /// to `dst` and verifying their checksum against the write-time CRC32C.
    /// This is the single injection boundary every read goes through:
    /// corruption enters here (the fault layer hands back a copy with
    /// flipped bits) and is caught here (the checksum mismatch becomes
    /// [`Error::CorruptBlock`]).
    ///
    /// The source node's cache sits behind this boundary (verified-once
    /// seam): a hit serves bytes that passed verification when they were
    /// admitted, so CRC32C is not re-run — *unless* the fault plan injects
    /// corruption on this attempt, which always forces a full re-hash. A
    /// miss reads the store, verifies, and admits on a pass. The wire
    /// transfer is paid either way, so network byte accounting is
    /// identical with the cache off or on.
    ///
    /// # Errors
    ///
    /// * [`Error::NodeDown`] / [`Error::TransientIo`] from the fault layer.
    /// * [`Error::BlockUnavailable`] if `src` does not hold the block.
    /// * [`Error::CorruptBlock`] if the received bytes fail verification.
    /// * [`Error::DeadlineExceeded`] if charging the attempt's virtual cost
    ///   blows the op's deadline.
    pub fn fetch_from(
        &self,
        ctx: &OpContext<'_>,
        src: NodeId,
        dst: NodeId,
        block: BlockId,
        attempt: u32,
    ) -> Result<Block> {
        let (out, cost) = self.fetch_costed(src, dst, block, attempt);
        ctx.charge(cost)?;
        out
    }

    /// One fetch attempt plus its virtual-clock cost, *without* charging a
    /// context — the building block [`fetch_from`](Self::fetch_from) and
    /// the hedging race share. The cost is a pure function of the attempt's
    /// identity and outcome: the seeded straggler delay, plus a per-size
    /// transfer cost on success, a timeout penalty on a dead node, or a
    /// flat fault penalty otherwise.
    pub(crate) fn fetch_costed(
        &self,
        src: NodeId,
        dst: NodeId,
        block: BlockId,
        attempt: u32,
    ) -> (Result<Block>, u64) {
        let delay = self.injector.straggler_delay_ticks(
            src,
            block,
            attempt,
            reliability::NOMINAL_SERVICE_TICKS,
        );
        let out = self.fetch_inner(src, dst, block, attempt);
        let cost = delay.saturating_add(match &out {
            Ok(data) => reliability::xfer_cost_ticks(data.len()),
            Err(Error::NodeDown { .. }) => reliability::TIMEOUT_PENALTY_TICKS,
            Err(_) => reliability::FAULT_PENALTY_TICKS,
        });
        match &out {
            Ok(data) => {
                self.counters.reads.fetch_add(1, Ordering::Relaxed);
                self.counters
                    .bytes_read
                    .fetch_add(data.len() as u64, Ordering::Relaxed);
                self.counters.read_ticks.fetch_add(cost, Ordering::Relaxed);
            }
            Err(_) => {
                self.counters.failed_reads.fetch_add(1, Ordering::Relaxed);
            }
        }
        (out, cost)
    }

    fn fetch_inner(
        &self,
        src: NodeId,
        dst: NodeId,
        block: BlockId,
        attempt: u32,
    ) -> Result<Block> {
        let fault = self.injector.on_read(src, block, attempt);
        match fault {
            Some(IoFault::Corrupt) | None => {}
            Some(f) => return Err(f.to_error(src, block)),
        }
        // A source outside the topology (a stale or corrupt location entry)
        // reads as a dead node, so fallback moves on to the next replica
        // instead of panicking the read path.
        let datanode = self
            .datanodes
            .get(src.index())
            .ok_or(Error::NodeDown { node: src })?;
        let read = datanode
            .cached_read(block)
            .ok_or(Error::BlockUnavailable { block })?;
        let crc = read.crc;
        let (data, verified) = if fault == Some(IoFault::Corrupt) {
            // An injected corruption invalidates whatever verification the
            // cached copy carried: the corrupted bytes are what crosses
            // the wire, and they must be re-hashed.
            let bad = Block::from(self.injector.corrupted_copy(src, block, &read.data));
            (bad, false)
        } else {
            (read.data, read.verified)
        };
        // The bytes cross the wire before the reader can checksum them —
        // cached or not, the transfer is always paid.
        self.net.transfer(src, dst, data.len() as u64);
        if verified {
            // Verified-once: these exact bytes passed CRC32C when admitted,
            // and the cache is write-invalidated, so re-hashing them can
            // only re-derive the same answer.
            self.counters.crc_skipped.fetch_add(1, Ordering::Relaxed);
            self.counters
                .crc_bytes_skipped
                .fetch_add(data.len() as u64, Ordering::Relaxed);
        } else {
            if crc32c(&data) != crc {
                return Err(Error::CorruptBlock { block, node: src });
            }
            if fault.is_none() {
                datanode.admit(block, &data, crc);
            }
        }
        Ok(data)
    }

    /// Writes `block`'s bytes from `src` onto `dst`'s store, through the
    /// fault layer. The single injection boundary for writes.
    ///
    /// # Errors
    ///
    /// * [`Error::NodeDown`] / [`Error::TransientIo`] from the fault layer.
    /// * [`Error::Io`] if the destination's storage backend fails.
    /// * [`Error::DeadlineExceeded`] if charging the attempt's virtual cost
    ///   blows the op's deadline.
    pub fn store_at(
        &self,
        ctx: &OpContext<'_>,
        src: NodeId,
        dst: NodeId,
        block: BlockId,
        data: Block,
        attempt: u32,
    ) -> Result<()> {
        let len = data.len() as u64;
        let delay = self.injector.straggler_delay_ticks(
            dst,
            block,
            attempt,
            reliability::NOMINAL_SERVICE_TICKS,
        );
        let out = self.store_inner(src, dst, block, data, attempt);
        let cost = delay.saturating_add(match &out {
            Ok(()) => reliability::xfer_cost_ticks(len as usize),
            Err(Error::NodeDown { .. }) => reliability::TIMEOUT_PENALTY_TICKS,
            Err(_) => reliability::FAULT_PENALTY_TICKS,
        });
        match &out {
            Ok(()) => {
                self.counters.writes.fetch_add(1, Ordering::Relaxed);
                self.counters.bytes_written.fetch_add(len, Ordering::Relaxed);
                self.counters.write_ticks.fetch_add(cost, Ordering::Relaxed);
            }
            Err(_) => {
                self.counters.failed_writes.fetch_add(1, Ordering::Relaxed);
            }
        }
        ctx.charge(cost)?;
        out
    }

    fn store_inner(
        &self,
        src: NodeId,
        dst: NodeId,
        block: BlockId,
        data: Block,
        attempt: u32,
    ) -> Result<()> {
        if let Some(f) = self.injector.on_write(dst, block, attempt) {
            return Err(f.to_error(dst, block));
        }
        // Validate the destination before paying the wire cost: an
        // out-of-range NodeId (stale or corrupt location entry) must read as
        // a dead node, and the network layer indexes racks by node id.
        let datanode = self
            .datanodes
            .get(dst.index())
            .ok_or(Error::NodeDown { node: dst })?;
        self.net.transfer(src, dst, data.len() as u64);
        datanode.put(block, data)
    }

    /// Reads `block` into `dst` from the first source in `sources` that can
    /// serve it — the shared fallback policy of every resilient reader.
    ///
    /// Sources are tried in the given order. On each one, transient faults
    /// are retried up to [`IO_ATTEMPTS`] times, each retry drawing a token
    /// from the op class's budget and charging seeded-jitter backoff; a
    /// dead node is reported to `on_dead` (a blacklist hook) and skipped;
    /// any other failure (missing replica, checksum mismatch) falls through
    /// to the next source. A source for which `skip` returns `true`, or
    /// whose circuit breaker is open, is bypassed without an attempt unless
    /// it is the last hope — a breaker skip costs one virtual tick instead
    /// of a timeout.
    ///
    /// When hedging is enabled and an attempt's seeded straggler delay
    /// crosses the threshold, a second fetch races on the next viable
    /// source and the op completes at the virtual-clock winner's time.
    ///
    /// Returns the bytes and the node that served them.
    ///
    /// # Errors
    ///
    /// * [`Error::BlockUnavailable`] if `sources` is empty.
    /// * [`Error::DeadlineExceeded`] / [`Error::RetryBudgetExhausted`] as
    ///   soon as the substrate stops the op — these do not fall through to
    ///   the next source.
    /// * Otherwise the last per-source error once every source failed.
    pub fn read_with_fallback(
        &self,
        ctx: &OpContext<'_>,
        dst: NodeId,
        block: BlockId,
        sources: &[NodeId],
        on_dead: Option<&dyn Fn(NodeId)>,
        skip: Option<&dyn Fn(NodeId) -> bool>,
    ) -> Result<(Block, NodeId)> {
        let rel = ctx.reliability();
        let mut last = Error::BlockUnavailable { block };
        for (i, &src) in sources.iter().enumerate() {
            // Skip a known-bad source while other candidates remain; if it
            // is the last one, try it anyway — a stale blacklist entry must
            // not turn a readable block into a failed read.
            if i + 1 < sources.len() && skip.is_some_and(|f| f(src)) {
                last = Error::NodeDown { node: src };
                continue;
            }
            // A breaker-open source is the same decision made by the
            // substrate: the detector already condemned this node, so pay
            // one tick to move on instead of a timeout discovering it.
            if i + 1 < sources.len() && rel.breaker_open(src) {
                self.counters.breaker_skips.fetch_add(1, Ordering::Relaxed);
                ctx.charge(reliability::BREAKER_SKIP_TICKS)?;
                last = Error::NodeDown { node: src };
                continue;
            }
            for attempt in 0..IO_ATTEMPTS {
                let delay = self.injector.straggler_delay_ticks(
                    src,
                    block,
                    attempt,
                    reliability::NOMINAL_SERVICE_TICKS,
                );
                let hedge_to = if rel.hedging_enabled() && delay > rel.hedge_threshold_ticks() {
                    sources
                        .iter()
                        .skip(i + 1)
                        .copied()
                        .find(|&s| s != src && !rel.breaker_open(s))
                } else {
                    None
                };
                let outcome = if let Some(alt) = hedge_to {
                    self.hedged_fetch(ctx, src, alt, dst, block, attempt)
                } else {
                    self.fetch_from(ctx, src, dst, block, attempt).map(|d| (d, src))
                };
                match outcome {
                    Ok(won) => return Ok(won),
                    Err(e @ Error::TransientIo { .. }) => {
                        last = e;
                        self.counters.read_retries.fetch_add(1, Ordering::Relaxed);
                        ctx.try_retry()?;
                        let ticks = rel.backoff_ticks(backoff_key(src, block), attempt);
                        self.counters.backoff_rounds.fetch_add(1, Ordering::Relaxed);
                        ctx.charge(ticks)?;
                        reliability::pace(ticks);
                    }
                    Err(
                        e @ (Error::DeadlineExceeded { .. }
                        | Error::RetryBudgetExhausted { .. }
                        | Error::Overloaded { .. }),
                    ) => return Err(e),
                    Err(e @ Error::NodeDown { .. }) => {
                        if let Some(f) = on_dead {
                            f(src);
                        }
                        last = e;
                        break;
                    }
                    Err(e) => {
                        last = e;
                        break;
                    }
                }
            }
        }
        Err(last)
    }

    /// Races a straggling primary fetch against a hedge on `alt`: the hedge
    /// launches at the threshold on the virtual clock, and the op completes
    /// at whichever leg finishes first. Physically both legs run to
    /// completion in sequence (determinism over wall-parallelism); the
    /// loser's virtual cost is discarded.
    fn hedged_fetch(
        &self,
        ctx: &OpContext<'_>,
        src: NodeId,
        alt: NodeId,
        dst: NodeId,
        block: BlockId,
        attempt: u32,
    ) -> Result<(Block, NodeId)> {
        let rel = ctx.reliability();
        self.counters.hedges_launched.fetch_add(1, Ordering::Relaxed);
        let (primary, primary_cost) = self.fetch_costed(src, dst, block, attempt);
        let (hedge, hedge_cost) = self.fetch_costed(alt, dst, block, attempt);
        // The hedge leg starts once the primary has straggled past the
        // threshold, so its completion sits that far into the op.
        let hedge_total = rel.hedge_threshold_ticks().saturating_add(hedge_cost);
        match (primary, hedge) {
            (Ok(data), Ok(hdata)) => {
                if hedge_total < primary_cost {
                    self.counters.hedges_won.fetch_add(1, Ordering::Relaxed);
                    ctx.charge(hedge_total)?;
                    Ok((hdata, alt))
                } else {
                    ctx.charge(primary_cost)?;
                    Ok((data, src))
                }
            }
            (Err(_), Ok(hdata)) => {
                self.counters.hedges_won.fetch_add(1, Ordering::Relaxed);
                ctx.charge(hedge_total)?;
                Ok((hdata, alt))
            }
            (Ok(data), Err(_)) => {
                ctx.charge(primary_cost)?;
                Ok((data, src))
            }
            (Err(e), Err(_)) => {
                // Both legs failed: the op observed both, completing at the
                // later one; the primary's error drives the retry policy.
                ctx.charge(primary_cost.max(hedge_total))?;
                Err(e)
            }
        }
    }

    /// Reads `block` into `dst` from the nearest workable replica: the
    /// shared preference order every bulk reader (stripe gather, pipelined
    /// chain hops) used to build by hand. `replicas` is sorted so that
    /// known-dead nodes go last, then `dst` itself (a local copy pays no
    /// wire cost), then `dst`'s rack, ties broken by node index for
    /// determinism — and the sorted list is walked by
    /// [`read_with_fallback`](Self::read_with_fallback) with `dead` wired
    /// in as both the blacklist hook and the skip predicate.
    ///
    /// # Errors
    ///
    /// As [`read_with_fallback`](Self::read_with_fallback).
    pub fn read_nearest(
        &self,
        ctx: &OpContext<'_>,
        dst: NodeId,
        block: BlockId,
        replicas: &[NodeId],
        dead: &DeadNodeSet,
    ) -> Result<(Block, NodeId)> {
        let dst_rack = self.topo.rack_of(dst);
        let known_dead = dead.snapshot();
        let mut ordered = replicas.to_vec();
        ordered.sort_by_key(|&n| {
            (
                known_dead.contains(&n),
                n != dst,
                self.topo.rack_of(n) != dst_rack,
                n.index(),
            )
        });
        let on_dead = |n: NodeId| dead.insert(n);
        let skip = |n: NodeId| dead.contains(n);
        self.read_with_fallback(ctx, dst, block, &ordered, Some(&on_dead), Some(&skip))
    }

    /// Ships `bytes` of in-flight partial-parity state from `src` to `dst` —
    /// one hop of a pipelined encode or a rack-aggregated repair. The bytes
    /// are not a stored block (no DataNode, no checksum boundary: the state
    /// lives in the sending task), but the wire cost is real and the hop is
    /// bounded by the substrate: a dead or breaker-open endpoint is a typed
    /// error the caller turns into a legacy-path fallback, and the transfer
    /// charges `ctx` like any fetch of the same size.
    ///
    /// # Errors
    ///
    /// * [`Error::NodeDown`] if either endpoint is down per the fault plan,
    ///   or `dst`'s circuit breaker is open.
    /// * [`Error::DeadlineExceeded`] if charging the hop blows the deadline.
    pub fn stream_partial(
        &self,
        ctx: &OpContext<'_>,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
    ) -> Result<()> {
        if self.injector.node_down(src) {
            return Err(Error::NodeDown { node: src });
        }
        if self.injector.node_down(dst) {
            return Err(Error::NodeDown { node: dst });
        }
        if ctx.reliability().breaker_open(dst) {
            self.counters.breaker_skips.fetch_add(1, Ordering::Relaxed);
            return Err(Error::NodeDown { node: dst });
        }
        self.counters.transfer_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.net.transfer(src, dst, bytes);
        ctx.charge(reliability::xfer_cost_ticks(bytes as usize))
    }

    /// Stores `block` on `dst`, retrying transient faults with budgeted
    /// seeded-jitter backoff. Any other fault is returned immediately — a
    /// crashed node or dark rack stays that way.
    ///
    /// # Errors
    ///
    /// The last attempt's error, or a substrate stop
    /// ([`Error::DeadlineExceeded`] / [`Error::RetryBudgetExhausted`]).
    pub fn write_with_retry(
        &self,
        ctx: &OpContext<'_>,
        src: NodeId,
        dst: NodeId,
        block: BlockId,
        data: &Block,
    ) -> Result<()> {
        let mut outcome = Ok(());
        for attempt in 0..IO_ATTEMPTS {
            outcome = self.store_at(ctx, src, dst, block, data.clone(), attempt);
            match &outcome {
                Ok(()) => break,
                Err(Error::TransientIo { .. }) => {
                    self.counters.write_retries.fetch_add(1, Ordering::Relaxed);
                    ctx.try_retry()?;
                    let ticks = ctx
                        .reliability()
                        .backoff_ticks(backoff_key(dst, block), attempt);
                    self.counters.backoff_rounds.fetch_add(1, Ordering::Relaxed);
                    ctx.charge(ticks)?;
                    reliability::pace(ticks);
                }
                Err(_) => break,
            }
        }
        outcome
    }

    /// Writes one block through the replication pipeline: `client` →
    /// `layout[0]` → `layout[1]` → …, paying the network cost of each hop.
    ///
    /// Returns the replicas that actually landed and, if the pipeline broke,
    /// the error that stopped it — the caller records the partial location
    /// list honestly either way.
    pub fn write_replicated(
        &self,
        ctx: &OpContext<'_>,
        client: NodeId,
        block: BlockId,
        data: &Block,
        layout: &[NodeId],
    ) -> (Vec<NodeId>, Option<Error>) {
        let mut src = client;
        let mut stored: Vec<NodeId> = Vec::with_capacity(layout.len());
        for &dst in layout {
            if let Err(e) = self.write_with_retry(ctx, src, dst, block, data) {
                return (stored, Some(e));
            }
            stored.push(dst);
            src = dst;
        }
        (stored, None)
    }

    /// Stores `block` on the first workable destination in `candidates` —
    /// the shared fallback policy of placement writes (parity upload,
    /// re-replication). A destination the fault plan already marks down is
    /// skipped without paying a transfer, as is one whose circuit breaker
    /// is open (one virtual tick, unless it is the last candidate); on the
    /// rest, transient faults are retried with budgeted backoff.
    ///
    /// Returns the node that took the bytes.
    ///
    /// # Errors
    ///
    /// * [`Error::NoRepairDestination`] if `candidates` is empty.
    /// * [`Error::DeadlineExceeded`] / [`Error::RetryBudgetExhausted`] as
    ///   soon as the substrate stops the op.
    /// * Otherwise the last per-candidate error once every candidate failed.
    pub fn write_with_fallback(
        &self,
        ctx: &OpContext<'_>,
        src: NodeId,
        block: BlockId,
        data: &Block,
        candidates: &[NodeId],
    ) -> Result<NodeId> {
        let rel = ctx.reliability();
        let mut last = Error::NoRepairDestination { block };
        for (i, &dst) in candidates.iter().enumerate() {
            if self.injector.node_down(dst) {
                last = Error::NodeDown { node: dst };
                continue;
            }
            if i + 1 < candidates.len() && rel.breaker_open(dst) {
                self.counters.breaker_skips.fetch_add(1, Ordering::Relaxed);
                ctx.charge(reliability::BREAKER_SKIP_TICKS)?;
                last = Error::NodeDown { node: dst };
                continue;
            }
            match self.write_with_retry(ctx, src, dst, block, data) {
                Ok(()) => return Ok(dst),
                Err(
                    e @ (Error::DeadlineExceeded { .. }
                    | Error::RetryBudgetExhausted { .. }
                    | Error::Overloaded { .. }),
                ) => return Err(e),
                Err(e) => last = e,
            }
        }
        Err(last)
    }

    /// Counts a hedge launched outside the replica-fallback path (the
    /// cluster-level degraded-EC hedge shares these counters).
    pub(crate) fn note_hedge_launched(&self) {
        self.counters.hedges_launched.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a hedge leg that won the virtual-clock race.
    pub(crate) fn note_hedge_won(&self) {
        self.counters.hedges_won.fetch_add(1, Ordering::Relaxed);
    }

    /// Moves raw bytes through the emulated network with accounting — the
    /// path for traffic that is not a block fetch/store against a DataNode
    /// (MapReduce shuffle, trusted relocation transfers).
    pub fn transfer(&self, src: NodeId, dst: NodeId, bytes: u64) {
        self.counters.transfer_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.net.transfer(src, dst, bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reliability::OpClass;
    use ear_faults::FaultPlan;

    fn service() -> ClusterIo {
        let topo = ClusterTopology::uniform(2, 2);
        let datanodes: Vec<DataNode> = topo.nodes().map(DataNode::new).collect();
        let net = EmulatedNetwork::new(
            &topo,
            ear_types::Bandwidth::bytes_per_sec(1e9),
            ear_types::Bandwidth::bytes_per_sec(1e9),
        );
        ClusterIo::new(
            topo,
            datanodes,
            net,
            FaultInjector::disabled(),
            Arc::new(Reliability::unlimited(4)),
        )
    }

    #[test]
    fn fetch_from_out_of_range_source_is_node_down_not_panic() {
        // Pins the stale-location fix: a NodeId past the topology (a corrupt
        // or stale location entry) must surface as a typed error, not an
        // out-of-bounds panic in the data plane.
        let io = service();
        let rel = io.reliability().clone();
        let ctx = rel.ctx(OpClass::ClientRead).unwrap();
        let err = io
            .fetch_from(&ctx, NodeId(9999), NodeId(0), BlockId(0), 0)
            .unwrap_err();
        assert!(matches!(err, Error::NodeDown { node } if node == NodeId(9999)));
        // A dead-node discovery costs the timeout penalty on the virtual clock.
        assert_eq!(ctx.elapsed_ticks(), reliability::TIMEOUT_PENALTY_TICKS);
    }

    #[test]
    fn store_at_out_of_range_destination_is_node_down_not_panic() {
        let io = service();
        let rel = io.reliability().clone();
        let ctx = rel.ctx(OpClass::ClientWrite).unwrap();
        let err = io
            .store_at(&ctx, NodeId(0), NodeId(9999), BlockId(0), Block::from(vec![0u8; 8]), 0)
            .unwrap_err();
        assert!(matches!(err, Error::NodeDown { node } if node == NodeId(9999)));
    }

    #[test]
    fn fallback_read_skips_out_of_range_source_and_serves_from_valid_one() {
        // A stale location entry in the middle of the replica list must not
        // sink the read: fallback treats it like any dead node and moves on.
        let io = service();
        let rel = io.reliability().clone();
        let ctx = rel.ctx(OpClass::ClientRead).unwrap();
        let data = Block::from(vec![9u8; 128]);
        io.datanode(NodeId(1)).put(BlockId(3), data.clone()).unwrap();
        let (got, src) = io
            .read_with_fallback(&ctx, NodeId(0), BlockId(3), &[NodeId(9999), NodeId(1)], None, None)
            .unwrap();
        assert_eq!(src, NodeId(1));
        assert_eq!(got.as_slice(), data.as_slice());
    }

    #[test]
    fn fallback_read_serves_from_later_source_and_counts() {
        let io = service();
        let rel = io.reliability().clone();
        let ctx = rel.ctx(OpClass::ClientRead).unwrap();
        let data = Block::from(vec![5u8; 256]);
        io.datanode(NodeId(2)).put(BlockId(0), data.clone()).unwrap();
        // NodeId(1) holds nothing: the read falls through to NodeId(2).
        let (got, src) = io
            .read_with_fallback(&ctx, NodeId(0), BlockId(0), &[NodeId(1), NodeId(2)], None, None)
            .unwrap();
        assert_eq!(src, NodeId(2));
        assert_eq!(got.as_slice(), data.as_slice());
        let s = io.stats();
        assert_eq!(s.reads, 1);
        assert_eq!(s.bytes_read, 256);
        assert_eq!(s.failed_reads, 1, "the miss on NodeId(1) is accounted");
        assert_eq!(
            s.read_ticks,
            reliability::xfer_cost_ticks(256),
            "successful-fetch ticks are the deterministic cost model, not wall time"
        );
        // Virtual cost: one fault penalty for the miss, one sized transfer.
        assert_eq!(
            ctx.elapsed_ticks(),
            reliability::FAULT_PENALTY_TICKS + reliability::xfer_cost_ticks(256)
        );
    }

    #[test]
    fn skip_hook_is_ignored_for_the_last_candidate() {
        let io = service();
        let rel = io.reliability().clone();
        let ctx = rel.ctx(OpClass::ClientRead).unwrap();
        let data = Block::from(vec![1u8; 64]);
        io.datanode(NodeId(3)).put(BlockId(9), data.clone()).unwrap();
        let skip_all = |_: NodeId| true;
        let (_, src) = io
            .read_with_fallback(
                &ctx,
                NodeId(0),
                BlockId(9),
                &[NodeId(1), NodeId(3)],
                None,
                Some(&skip_all),
            )
            .unwrap();
        assert_eq!(src, NodeId(3), "last candidate must be tried despite skip");
    }

    #[test]
    fn write_replicated_pipelines_and_accounts() {
        let io = service();
        let rel = io.reliability().clone();
        let ctx = rel.ctx(OpClass::ClientWrite).unwrap();
        let data = Block::from(vec![7u8; 128]);
        let layout = [NodeId(0), NodeId(2)];
        let (stored, err) = io.write_replicated(&ctx, NodeId(1), BlockId(4), &data, &layout);
        assert!(err.is_none());
        assert_eq!(stored, layout);
        assert!(io.datanode(NodeId(0)).contains(BlockId(4)));
        assert!(io.datanode(NodeId(2)).contains(BlockId(4)));
        let s = io.stats();
        assert_eq!(s.writes, 2);
        assert_eq!(s.bytes_written, 256);
    }

    #[test]
    fn write_with_fallback_skips_dead_candidates() {
        use ear_faults::FaultConfig;
        let topo = ClusterTopology::uniform(2, 2);
        let datanodes: Vec<DataNode> = topo.nodes().map(DataNode::new).collect();
        let net = EmulatedNetwork::new(
            &topo,
            ear_types::Bandwidth::bytes_per_sec(1e9),
            ear_types::Bandwidth::bytes_per_sec(1e9),
        );
        // A plan whose only fault is one node crashed from op 0
        // (crash_window 1 activates it immediately).
        let cfg = FaultConfig {
            straggler_delay: ear_faults::DelayModel::Throttle,
            node_crashes: 1,
            rack_outages: 0,
            stragglers: 0,
            straggler_factor: 1.0,
            transient_error_rate: 0.0,
            corruption_rate: 0.0,
            heartbeat_loss_rate: 0.0,
            crash_window: 1,
        };
        let plan = FaultPlan::generate(7, &topo, &cfg);
        let io = ClusterIo::new(
            topo.clone(),
            datanodes,
            net,
            FaultInjector::new(plan, topo.clone()),
            Arc::new(Reliability::unlimited(4)),
        );
        let rel = io.reliability().clone();
        let ctx = rel.ctx(OpClass::ClientWrite).unwrap();
        let dead: Vec<NodeId> = topo.nodes().filter(|&n| io.injector().node_down(n)).collect();
        assert_eq!(dead.len(), 1);
        let alive = topo.nodes().find(|&n| !io.injector().node_down(n)).unwrap();
        let data = Block::from(vec![3u8; 32]);
        let dst = io
            .write_with_fallback(&ctx, NodeId(0), BlockId(2), &data, &[dead[0], alive])
            .unwrap();
        assert_eq!(dst, alive);
    }

    #[test]
    fn empty_sources_report_block_unavailable() {
        let io = service();
        let rel = io.reliability().clone();
        let ctx = rel.ctx(OpClass::ClientRead).unwrap();
        let err = io
            .read_with_fallback(&ctx, NodeId(0), BlockId(0), &[], None, None)
            .unwrap_err();
        assert!(matches!(err, Error::BlockUnavailable { .. }));
    }

    /// A service with an explicit cache configuration (independent of the
    /// `EAR_CACHE` environment) and the given injector.
    fn cached_service(cache: ear_types::CacheConfig, injector: FaultInjector) -> ClusterIo {
        let topo = ClusterTopology::uniform(2, 2);
        let datanodes: Vec<DataNode> = topo
            .nodes()
            .map(|n| DataNode::with_backend(n, ear_types::StoreBackend::Memory, cache, 5).unwrap())
            .collect();
        let net = EmulatedNetwork::new(
            &topo,
            ear_types::Bandwidth::bytes_per_sec(1e9),
            ear_types::Bandwidth::bytes_per_sec(1e9),
        );
        ClusterIo::new(topo, datanodes, net, injector, Arc::new(Reliability::unlimited(4)))
    }

    #[test]
    fn cached_fetch_skips_reverification_but_pays_the_wire() {
        let cache = ear_types::CacheConfig::Sized {
            hot_bytes: 1 << 20,
            cold_bytes: 1 << 20,
        };
        let io = cached_service(cache, FaultInjector::disabled());
        let rel = io.reliability().clone();
        let ctx = rel.ctx(OpClass::ClientRead).unwrap();
        let data = Block::from(vec![4u8; 512]);
        io.datanode(NodeId(1)).put(BlockId(8), data.clone()).unwrap();
        for _ in 0..3 {
            let got = io.fetch_from(&ctx, NodeId(1), NodeId(0), BlockId(8), 0).unwrap();
            assert_eq!(got, data);
        }
        let s = io.stats();
        assert_eq!(s.reads, 3);
        // First fetch verifies and admits; the two hits are verified-once.
        assert_eq!(s.crc_skipped, 2);
        assert_eq!(s.crc_bytes_skipped, 2 * 512);
        assert_eq!(s.cache.misses, 1);
        assert_eq!(s.cache.hits(), 2);
        assert_eq!(s.cache.bytes_saved, 2 * 512);
        // The wire cost is identical with or without the cache: every
        // fetch's payload is accounted as read bytes.
        assert_eq!(s.bytes_read, 3 * 512);
    }

    #[test]
    fn corrupt_fault_forces_reverification_even_when_cached() {
        use ear_faults::FaultConfig;
        let topo = ClusterTopology::uniform(2, 2);
        let cfg = FaultConfig {
            straggler_delay: ear_faults::DelayModel::Throttle,
            node_crashes: 0,
            rack_outages: 0,
            stragglers: 0,
            straggler_factor: 1.0,
            transient_error_rate: 0.0,
            corruption_rate: 1.0,
            heartbeat_loss_rate: 0.0,
            crash_window: 1,
        };
        let plan = FaultPlan::generate(13, &topo, &cfg);
        let cache = ear_types::CacheConfig::Sized {
            hot_bytes: 1 << 20,
            cold_bytes: 1 << 20,
        };
        let io = cached_service(cache, FaultInjector::new(plan, topo));
        let data = Block::from(vec![6u8; 256]);
        let dn = io.datanode(NodeId(1));
        dn.put(BlockId(2), data.clone()).unwrap();
        // Force the block into the cache as verified, as a fault-free read
        // would have.
        dn.admit(BlockId(2), &data, crc32c(&data));
        // The injected corruption must override the verified-once fast
        // path: the corrupted copy is re-hashed and rejected.
        let rel = io.reliability().clone();
        let ctx = rel.ctx(OpClass::ClientRead).unwrap();
        let err = io
            .fetch_from(&ctx, NodeId(1), NodeId(0), BlockId(2), 0)
            .unwrap_err();
        assert!(matches!(err, Error::CorruptBlock { block, node }
            if block == BlockId(2) && node == NodeId(1)));
        assert_eq!(io.stats().crc_skipped, 0, "corrupt attempts never skip the hash");
    }
}
