//! The background healer: the acting half of the self-healing control plane
//! (DESIGN.md §8).
//!
//! Each round the [`Healer`] advances the heartbeat clock, scrubs a window
//! of replicas against their write-time CRC32C, rebuilds the
//! [`DegradedTracker`]'s priority queues from cluster metadata, and drains
//! the most urgent repairs under two budgets: a bounded number of in-flight
//! repairs and a per-round repair-traffic byte budget. Re-replication keeps
//! EAR's invariants (a pending stripe keeps a copy in its core rack; a new
//! copy prefers a rack without one); shard reconstruction reuses the
//! degraded-read path of [`recovery`](crate::recovery), which respects the
//! ≤ `c` blocks-per-rack and distinct-node constraints.
//!
//! Everything control-plane is driven by the failure detector's view, not
//! the injector's omniscient one: a crashed node is repaired around only
//! once heartbeats have actually declared it dead, so MTTR measured here
//! includes detection latency, as it does in a real cluster.

use crate::cluster::MiniCfs;
use crate::health::{DegradedTracker, HealthTransition, RepairKind, RepairTask};
use crate::recovery::reconstruct_stripe_block;
use crate::reliability::{OpClass, OpContext};
use ear_faults::crc32c;
use ear_types::{BlockId, Error, HealStats, NodeHealth, NodeId, RackId, Result, StripeId};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::{HashMap, HashSet};
use std::time::Instant;

/// Budgets and pacing of the background healer.
#[derive(Debug, Clone)]
pub struct HealerConfig {
    /// Heartbeat clock ticks per healer round (heartbeats are much more
    /// frequent than repair sweeps, as in HDFS).
    pub heartbeats_per_round: usize,
    /// Maximum repairs in flight at once (bounded concurrency).
    pub max_repairs_per_round: usize,
    /// Per-round repair-traffic budget in bytes. At least one repair is
    /// always admitted so the healer keeps making progress.
    pub round_byte_budget: u64,
    /// Replicas CRC-scrubbed per round (cursor sweeps all blocks
    /// round-robin).
    pub scrub_per_round: usize,
    /// Rounds after which [`Healer::run_to_convergence`] gives up with
    /// [`Error::HealerStalled`].
    pub max_rounds: usize,
    /// Virtual-clock deadline (ticks) for each repair admitted in a round.
    /// A repair that blows it fails typed ([`Error::DeadlineExceeded`]) and
    /// is re-queued by the next round's scan; a cluster that can never make
    /// the deadline surfaces as [`Error::HealerStalled`] once `max_rounds`
    /// runs out, instead of one repair hanging a round forever.
    pub round_deadline_ticks: u64,
}

impl Default for HealerConfig {
    fn default() -> Self {
        HealerConfig {
            heartbeats_per_round: 4,
            max_repairs_per_round: 8,
            round_byte_budget: 16 << 20,
            scrub_per_round: 64,
            max_rounds: 64,
            round_deadline_ticks: 5_000_000,
        }
    }
}

/// What one healer round observed and did.
#[derive(Debug, Clone, Default)]
pub struct RoundReport {
    /// 1-based round index.
    pub round: usize,
    /// Health transitions caused by this round's heartbeat ticks.
    pub transitions: Vec<HealthTransition>,
    /// Degraded tasks found by this round's metadata scan.
    pub queued: usize,
    /// Repairs completed this round.
    pub repaired: usize,
    /// Repairs attempted and failed this round (they are re-queued by the
    /// next round's scan).
    pub failed: usize,
    /// Corrupt (or missing) replicas the scrubber dropped this round.
    pub scrub_hits: usize,
    /// Tasks left for later rounds (budget exhaustion or failures).
    pub outstanding: usize,
    /// Blocks with no live source at all — beyond the redundancy scheme's
    /// tolerance; the healer cannot repair them.
    pub beyond_tolerance: usize,
}

/// The background repair scheduler. Create one per healing run; it keeps
/// cross-round state (scrub cursor, scrub-discovered bad copies, MTTR
/// episodes) and accumulates a [`HealStats`].
pub struct Healer<'a> {
    cfs: &'a MiniCfs,
    cfg: HealerConfig,
    scrub_cursor: u64,
    known_bad: HashSet<(NodeId, BlockId)>,
    stats: HealStats,
    rounds: usize,
    clean_rounds: usize,
    episode: Option<(usize, Instant)>,
    beyond_tolerance: Vec<BlockId>,
    started: Instant,
}

struct RoundCtx<'a> {
    snapshot: &'a [NodeHealth],
    known_bad: &'a HashSet<(NodeId, BlockId)>,
    core_racks: &'a HashMap<BlockId, RackId>,
    members_of: &'a HashMap<StripeId, Vec<BlockId>>,
    round_deadline_ticks: u64,
}

struct RepairOutcome {
    re_replicated: bool,
    bytes: u64,
    cross_rack_bytes: u64,
}

impl<'a> Healer<'a> {
    /// A healer over `cfs` with default budgets.
    pub fn new(cfs: &'a MiniCfs) -> Self {
        Self::with_config(cfs, HealerConfig::default())
    }

    /// A healer over `cfs` with explicit budgets.
    pub fn with_config(cfs: &'a MiniCfs, cfg: HealerConfig) -> Self {
        Healer {
            cfs,
            cfg,
            scrub_cursor: 0,
            known_bad: HashSet::new(),
            stats: HealStats {
                fault_seed: cfs.fault_seed(),
                ..HealStats::default()
            },
            rounds: 0,
            clean_rounds: 0,
            episode: None,
            beyond_tolerance: Vec::new(),
            started: Instant::now(),
        }
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &HealStats {
        &self.stats
    }

    /// Blocks the latest scan found unrepairable (no live, uncorrupted
    /// source anywhere) — typically unacknowledged writes whose only
    /// landed replica died.
    pub fn beyond_tolerance(&self) -> &[BlockId] {
        &self.beyond_tolerance
    }

    /// Runs one healer round: heartbeats, scrub window, metadata scan,
    /// budgeted repair drain.
    ///
    /// # Errors
    ///
    /// [`Error::LockPoisoned`] if the failure detector's lock was poisoned
    /// by a panicked thread.
    pub fn run_round(&mut self) -> Result<RoundReport> {
        self.rounds += 1;
        let mut report = RoundReport {
            round: self.rounds,
            ..RoundReport::default()
        };

        // 1. Heartbeats: the detector's clock runs several times faster
        // than the repair sweep.
        for _ in 0..self.cfg.heartbeats_per_round.max(1) {
            report.transitions.extend(self.cfs.heartbeat_tick()?);
        }
        self.stats.nodes_declared_dead += report
            .transitions
            .iter()
            .filter(|t| t.to == NodeHealth::Dead)
            .count();
        let snapshot = self.cfs.health_snapshot()?;

        // 2. Scrub a window of replicas. A corrupt (or silently missing)
        // copy is dropped from the location map so the scan below queues
        // its repair; the (node, block) pair is remembered so repair never
        // places a copy back onto storage known to corrupt it.
        report.scrub_hits = self.scrub_window(&snapshot)?;

        // 3. Rebuild the degraded-state queues from metadata.
        let mut tracker = DegradedTracker::scan(self.cfs, &snapshot, &self.known_bad);
        report.queued = tracker.len();
        report.beyond_tolerance = tracker.beyond_tolerance.len();
        self.beyond_tolerance = std::mem::take(&mut tracker.beyond_tolerance);
        if report.queued > 0 && self.episode.is_none() {
            self.episode = Some((self.rounds, Instant::now()));
        }
        if report.queued == 0 {
            if let Some((round0, t0)) = self.episode.take() {
                let rounds = self.rounds - round0;
                self.stats.mttr_rounds =
                    Some(self.stats.mttr_rounds.map_or(rounds, |m| m.max(rounds)));
                let secs = t0.elapsed().as_secs_f64();
                self.stats.mttr_seconds =
                    Some(self.stats.mttr_seconds.map_or(secs, |m| m.max(secs)));
            }
        }

        // 4. Admit the most urgent tasks under both budgets, then execute
        // them with bounded concurrency. A task popped past the byte budget
        // is simply dropped: the next round's scan re-finds it.
        let bs = self.cfs.config().block_size.as_u64();
        let k = self.cfs.codec().params().k() as u64;
        let mut planned: Vec<RepairTask> = Vec::new();
        let mut est = 0u64;
        while planned.len() < self.cfg.max_repairs_per_round.max(1) {
            let Some(task) = tracker.pop() else { break };
            let cost = match task.kind {
                RepairKind::ReReplicate { have, want } => {
                    want.saturating_sub(have) as u64 * bs
                }
                RepairKind::Reconstruct { .. } => (k + 1) * bs,
            };
            if !planned.is_empty() && est + cost > self.cfg.round_byte_budget {
                report.outstanding += 1;
                break;
            }
            est += cost;
            planned.push(task);
        }
        report.outstanding += tracker.len();

        let core_racks = pending_core_racks(self.cfs);
        let members_of: HashMap<StripeId, Vec<BlockId>> = self
            .cfs
            .namenode()
            .encoded_stripes()
            .into_iter()
            .map(|es| {
                let members = es.data.iter().chain(es.parity.iter()).copied().collect();
                (es.id, members)
            })
            .collect();
        let ctx = RoundCtx {
            snapshot: &snapshot,
            known_bad: &self.known_bad,
            core_racks: &core_racks,
            members_of: &members_of,
            round_deadline_ticks: self.cfg.round_deadline_ticks,
        };
        let cfs = self.cfs;
        let seed = cfs.config().seed;
        // Reconstructions of the same stripe must not race: each reads the
        // stripe's current rack spread before placing, so two concurrent
        // repairs could both land in a rack with one slot left. Group
        // same-stripe tasks onto one worker (in queue order); everything
        // else still runs concurrently.
        let mut groups: Vec<Vec<RepairTask>> = Vec::new();
        let mut stripe_group: HashMap<StripeId, usize> = HashMap::new();
        for task in planned {
            match task.kind {
                RepairKind::Reconstruct { stripe } => match stripe_group.get(&stripe) {
                    Some(&g) => match groups.get_mut(g) {
                        Some(group) => group.push(task),
                        // Defensive: a corrupt group index must not panic the
                        // healer — run the task on its own worker instead.
                        None => groups.push(vec![task]),
                    },
                    None => {
                        stripe_group.insert(stripe, groups.len());
                        groups.push(vec![task]);
                    }
                },
                RepairKind::ReReplicate { .. } => groups.push(vec![task]),
            }
        }
        let outcomes: Vec<Result<RepairOutcome>> = std::thread::scope(|s| {
            let handles: Vec<_> = groups
                .iter()
                .map(|group| {
                    let ctx = &ctx;
                    s.spawn(move || {
                        group
                            .iter()
                            .map(|&task| execute_repair(cfs, task, ctx, seed))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .zip(&groups)
                .flat_map(|(h, group)| {
                    h.join().unwrap_or_else(|_| {
                        group
                            .iter()
                            .map(|_| Err(Error::Invariant("repair worker panicked".into())))
                            .collect()
                    })
                })
                .collect()
        });
        for outcome in outcomes {
            match outcome {
                Ok(o) => {
                    if o.re_replicated {
                        self.stats.blocks_re_replicated += 1;
                    } else {
                        self.stats.shards_reconstructed += 1;
                    }
                    self.stats.repair_bytes += o.bytes;
                    self.stats.cross_rack_repair_bytes += o.cross_rack_bytes;
                    report.repaired += 1;
                }
                Err(_) => {
                    report.failed += 1;
                    report.outstanding += 1;
                }
            }
        }
        if report.queued > 0 || report.scrub_hits > 0 {
            self.clean_rounds = 0;
        }
        Ok(report)
    }

    /// Runs rounds until the cluster is verifiably back at full redundancy:
    /// no degraded tasks, no new scrub hits for a full scrub sweep, and no
    /// node in a transient (`Suspect`/`Rejoined`) state. Returns the
    /// accumulated statistics, MTTR included.
    ///
    /// # Errors
    ///
    /// [`Error::HealerStalled`] if the round budget runs out with repairs
    /// still outstanding (the partial [`HealStats`] stay readable through
    /// [`Healer::stats`]).
    pub fn run_to_convergence(&mut self) -> Result<HealStats> {
        loop {
            if self.rounds >= self.cfg.max_rounds {
                self.finalize(false);
                let outstanding =
                    DegradedTracker::scan(self.cfs, &self.cfs.health_snapshot()?, &self.known_bad)
                        .len();
                return Err(Error::HealerStalled {
                    rounds: self.rounds,
                    outstanding,
                });
            }
            let report = self.run_round()?;
            if report.queued == 0 && report.scrub_hits == 0 {
                self.clean_rounds += 1;
            }
            let blocks = self.cfs.namenode().block_count().max(1);
            let sweep = blocks.div_ceil(self.cfg.scrub_per_round.max(1) as u64) as usize;
            let settled = self
                .cfs
                .health_snapshot()?
                .iter()
                .all(|&h| matches!(h, NodeHealth::Live | NodeHealth::Dead));
            if self.clean_rounds >= sweep && settled {
                self.finalize(true);
                return Ok(self.stats.clone());
            }
        }
    }

    fn finalize(&mut self, converged: bool) {
        self.stats.rounds = self.rounds;
        self.stats.converged = converged;
        self.stats.wall_seconds = self.started.elapsed().as_secs_f64();
        self.stats.breaker_trips = self.cfs.reliability().stats().breaker_trips;
    }

    /// CRC32C-scrubs the next window of blocks. Scrubbing is local disk
    /// I/O on each DataNode (no network), so it is not charged against the
    /// repair byte budget. Returns the number of replicas dropped.
    fn scrub_window(&mut self, snapshot: &[NodeHealth]) -> Result<usize> {
        let total = self.cfs.namenode().block_count();
        if total == 0 {
            return Ok(0);
        }
        let window = self.cfg.scrub_per_round.min(total as usize) as u64;
        let mut hits = 0usize;
        for i in 0..window {
            let b = BlockId((self.scrub_cursor + i) % total);
            let Some(locs) = self.cfs.namenode().locations(b) else {
                continue;
            };
            for h in locs {
                if health_of(snapshot, h) == NodeHealth::Dead {
                    continue;
                }
                self.stats.blocks_scrubbed += 1;
                let bad = match self.cfs.datanode(h).get_with_crc(b) {
                    // A local read of a sticky-corrupt copy returns flipped
                    // bits; its checksum file no longer matches.
                    Some((data, crc)) => {
                        self.cfs.injector().corrupts(h, b) || crc32c(&data) != crc
                    }
                    // Metadata points at a copy the node no longer has.
                    None => true,
                };
                if bad {
                    self.known_bad.insert((h, b));
                    self.cfs.namenode().drop_location(b, h)?;
                    self.cfs.datanode(h).delete(b);
                    self.stats.scrub_hits += 1;
                    hits += 1;
                }
            }
        }
        self.scrub_cursor = (self.scrub_cursor + window) % total;
        Ok(hits)
    }
}

/// Health of `nd` in a round snapshot. Nodes outside the snapshot cannot
/// occur for ids minted by the topology, but a data-plane lookup must not
/// panic on one — an unknown node reads as `Dead` (unusable as source or
/// destination), which is also what fallback does with it.
fn health_of(snapshot: &[NodeHealth], nd: NodeId) -> NodeHealth {
    snapshot.get(nd.index()).copied().unwrap_or(NodeHealth::Dead)
}

/// Core racks of every block still in a pending (pre-encoding) stripe:
/// re-replication must keep one copy there or the stripe's encoding plan
/// loses its rack-local sources.
fn pending_core_racks(cfs: &MiniCfs) -> HashMap<BlockId, RackId> {
    let mut map = HashMap::new();
    for stripe in cfs.namenode().pending_stripes() {
        if let Some(core) = stripe.plan.core_rack() {
            for &b in &stripe.blocks {
                map.insert(b, core);
            }
        }
    }
    map
}

/// Executes one repair task. Runs on a worker thread; all shared state is
/// behind the NameNode/DataNode locks, and the RNG is seeded per block so
/// outcomes do not depend on worker interleaving.
fn execute_repair(
    cfs: &MiniCfs,
    task: RepairTask,
    ctx: &RoundCtx<'_>,
    seed: u64,
) -> Result<RepairOutcome> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ task.block.0.wrapping_mul(0x9E37) ^ 0x4EA1);
    // Every repair runs as a Heal-class op under the round deadline: the
    // admission gate may shed it under load, and a straggling repair fails
    // typed instead of hanging the round.
    let op = cfs
        .reliability()
        .ctx_with_deadline(OpClass::Heal, ctx.round_deadline_ticks)?;
    match task.kind {
        RepairKind::ReReplicate { want, .. } => {
            re_replicate(cfs, &op, task.block, want, ctx, &mut rng)
        }
        RepairKind::Reconstruct { stripe } => {
            let members = ctx
                .members_of
                .get(&stripe)
                .ok_or_else(|| Error::Invariant(format!("{stripe} not in encoded map")))?;
            let bs = cfs.config().block_size.as_u64();
            let block = task.block;
            // Sources may include Suspect nodes (the data path can still
            // reach them); destinations must be trusted and not known to
            // corrupt this block.
            let live = |nd: NodeId| health_of(ctx.snapshot, nd) != NodeHealth::Dead;
            let bad_dst = |nd: NodeId| {
                ctx.known_bad.contains(&(nd, block))
                    || health_of(ctx.snapshot, nd) == NodeHealth::Suspect
            };
            let repair =
                reconstruct_stripe_block(cfs, &op, members, block, &live, &bad_dst, &mut rng)?;
            let uploads = usize::from(repair.uploaded);
            Ok(RepairOutcome {
                re_replicated: false,
                bytes: (repair.downloads + uploads) as u64 * bs,
                cross_rack_bytes: (repair.cross_rack_downloads
                    + usize::from(repair.upload_cross_rack)) as u64
                    * bs,
            })
        }
    }
}

/// Brings a replicated block back to `want` live copies, copying from the
/// healthiest available source and placing onto nodes that preserve the
/// block's rack spread (and its pending stripe's core-rack copy).
fn re_replicate(
    cfs: &MiniCfs,
    op: &OpContext<'_>,
    block: BlockId,
    want: usize,
    ctx: &RoundCtx<'_>,
    rng: &mut ChaCha8Rng,
) -> Result<RepairOutcome> {
    let nn = cfs.namenode();
    let topo = cfs.topology();
    let bs = cfs.config().block_size.as_u64();
    let locs = nn
        .locations(block)
        .ok_or(Error::BlockUnavailable { block })?;
    let mut holders: Vec<NodeId> = Vec::new();
    for h in locs {
        if health_of(ctx.snapshot, h) == NodeHealth::Dead {
            // The detector declared the holder lost; retire the location
            // (its bytes, if any, are unreachable).
            nn.drop_location(block, h)?;
        } else if !ctx.known_bad.contains(&(h, block)) {
            holders.push(h);
        }
    }
    if holders.is_empty() {
        return Err(Error::BlockUnavailable { block });
    }
    // Prefer fully-trusted sources; Suspect holders are last resort.
    holders.sort_by_key(|h| (health_of(ctx.snapshot, *h) == NodeHealth::Suspect, h.0));
    let core = ctx.core_racks.get(&block).copied();
    let mut outcome = RepairOutcome {
        re_replicated: true,
        bytes: 0,
        cross_rack_bytes: 0,
    };
    while holders.len() < want {
        let have_racks: HashSet<RackId> = holders.iter().map(|&h| topo.rack_of(h)).collect();
        let trusted = |nd: NodeId| {
            matches!(
                health_of(ctx.snapshot, nd),
                NodeHealth::Live | NodeHealth::Rejoined
            )
        };
        let candidates: Vec<NodeId> = topo
            .nodes()
            .filter(|&nd| {
                trusted(nd) && !holders.contains(&nd) && !ctx.known_bad.contains(&(nd, block))
            })
            .collect();
        if candidates.is_empty() {
            return Err(Error::NoRepairDestination { block });
        }
        let preferred: Vec<NodeId> = match core {
            // EAR invariant first: a block of a pending stripe must keep a
            // copy in its core rack.
            Some(core_rack) if !have_racks.contains(&core_rack) => candidates
                .iter()
                .copied()
                .filter(|&nd| topo.rack_of(nd) == core_rack)
                .collect(),
            // Otherwise spread across racks without a copy.
            _ => candidates
                .iter()
                .copied()
                .filter(|&nd| !have_racks.contains(&topo.rack_of(nd)))
                .collect(),
        };
        let pool = if preferred.is_empty() {
            &candidates
        } else {
            &preferred
        };
        let dst = pool
            .choose(rng)
            .copied()
            .ok_or(Error::NoRepairDestination { block })?;
        let (data, src) = cfs
            .io()
            .read_with_fallback(op, dst, block, &holders, None, None)?;
        cfs.datanode(dst).put(block, data)?;
        nn.add_location(block, dst)?;
        outcome.bytes += bs;
        if topo.rack_of(src) != topo.rack_of(dst) {
            outcome.cross_rack_bytes += bs;
        }
        holders.push(dst);
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{ClusterConfig, ClusterPolicy};
    use crate::monitor;
    use crate::raidnode::RaidNode;
    use ear_faults::{FaultConfig, FaultPlan};
    use ear_types::{
        Bandwidth, ByteSize, CacheConfig, EarConfig, ErasureParams, ReplicationConfig,
        StoreBackend,
    };

    fn config(seed: u64) -> ClusterConfig {
        let ear = EarConfig::new(
            ErasureParams::new(6, 4).unwrap(),
            ReplicationConfig::two_way(),
            1,
        )
        .unwrap();
        ClusterConfig {
            racks: 8,
            nodes_per_rack: 2,
            block_size: ByteSize::kib(64),
            node_bandwidth: Bandwidth::bytes_per_sec(512e6),
            rack_bandwidth: Bandwidth::bytes_per_sec(512e6),
            ear,
            policy: ClusterPolicy::Ear,
            seed,
            store: StoreBackend::from_env(),
            cache: CacheConfig::from_env(),
            durability: Default::default(),
            reliability: Default::default(),
            encode_path: ear_types::EncodePath::from_env(),
            repair_path: ear_types::RepairPath::from_env(),
        }
    }

    /// Writes blocks from live clients; returns the acknowledged
    /// `(block, payload tag)` pairs (a write may fail when its pipeline
    /// crosses a crashed node).
    fn write_blocks(cfs: &MiniCfs, count: usize) -> Vec<(BlockId, u64)> {
        let clients: Vec<NodeId> = cfs
            .topology()
            .nodes()
            .filter(|&n| !cfs.injector().node_down(n))
            .collect();
        let mut acked = Vec::new();
        for i in 0..count {
            let tag = i as u64;
            let data = cfs.make_block(tag);
            if let Ok(id) = cfs.write_block(clients[i % clients.len()], data) {
                acked.push((id, tag));
            }
        }
        acked
    }

    #[test]
    fn healer_converges_on_a_healthy_cluster() {
        let cfs = MiniCfs::new(config(21)).unwrap();
        write_blocks(&cfs, 8);
        let stats = Healer::new(&cfs).run_to_convergence().unwrap();
        assert!(stats.converged);
        assert_eq!(stats.blocks_re_replicated, 0);
        assert_eq!(stats.shards_reconstructed, 0);
        assert_eq!(stats.scrub_hits, 0);
        assert!(stats.mttr_rounds.is_none(), "nothing ever degraded");
        assert!(stats.blocks_scrubbed > 0, "scrubber must have run");
    }

    #[test]
    fn healer_restores_redundancy_after_a_crash() {
        // One node is down from the very first operation; writes that lose
        // the race are unacknowledged, and encode keeps stripes within the
        // n - k budget. The healer must detect the dead node via missed
        // heartbeats and bring every acknowledged block back to full
        // redundancy.
        let cfg = config(22);
        let plan = FaultPlan::generate(
            9,
            &ear_types::ClusterTopology::uniform(cfg.racks, cfg.nodes_per_rack),
            &FaultConfig {
                straggler_delay: ear_faults::DelayModel::Throttle,
                node_crashes: 1,
                rack_outages: 0,
                stragglers: 0,
                straggler_factor: 1.0,
                transient_error_rate: 0.0,
                corruption_rate: 0.0,
                heartbeat_loss_rate: 0.0,
                crash_window: 1,
            },
        );
        let crashed = plan.crashes()[0].node;
        let cfs = MiniCfs::with_faults(cfg, plan).unwrap();
        let acked = write_blocks(&cfs, 24);
        assert!(!acked.is_empty());
        RaidNode::encode_all(&cfs, 4).unwrap();

        let mut healer = Healer::new(&cfs);
        let stats = healer.run_to_convergence().unwrap();
        assert!(stats.converged);
        assert_eq!(cfs.node_health(crashed).unwrap(), NodeHealth::Dead);
        assert!(stats.nodes_declared_dead >= 1);
        assert!(stats.mttr_rounds.is_some(), "a degraded episode happened");
        assert!(stats.rounds <= HealerConfig::default().max_rounds);

        // Every acknowledged block reads back byte-for-byte, from a live
        // node, without touching the dead one.
        let reader = cfs
            .topology()
            .nodes()
            .find(|&n| !cfs.injector().node_down(n))
            .unwrap();
        for &(b, tag) in &acked {
            let locs = cfs.namenode().locations(b).unwrap();
            assert!(!locs.contains(&crashed), "{b} still mapped to dead node");
            let data = cfs.read_block(reader, b).unwrap();
            assert_eq!(
                data.as_slice(),
                cfs.make_block(tag).as_slice(),
                "{b} corrupted"
            );
        }
        // Healed placements keep the monitor happy.
        assert!(monitor::scan(&cfs).is_empty());
    }

    #[test]
    fn scrubber_finds_and_heals_silent_corruption() {
        let cfg = config(23);
        let plan = FaultPlan::generate(
            41,
            &ear_types::ClusterTopology::uniform(cfg.racks, cfg.nodes_per_rack),
            &FaultConfig {
                straggler_delay: ear_faults::DelayModel::Throttle,
                node_crashes: 0,
                rack_outages: 0,
                stragglers: 0,
                straggler_factor: 1.0,
                transient_error_rate: 0.0,
                corruption_rate: 0.12,
                heartbeat_loss_rate: 0.0,
                crash_window: 1,
            },
        );
        let cfs = MiniCfs::with_faults(cfg, plan).unwrap();
        let acked = write_blocks(&cfs, 16);
        assert_eq!(acked.len(), 16, "no crashes: every write acknowledged");

        let mut healer = Healer::new(&cfs);
        let stats = healer.run_to_convergence().unwrap();
        assert!(stats.converged);
        assert!(stats.scrub_hits > 0, "12% corruption must hit something");
        assert_eq!(stats.scrub_hits as usize, healer.known_bad.len());
        // After healing, every remaining location serves clean bytes.
        for &(b, tag) in &acked {
            let reader = NodeId((tag % cfs.topology().num_nodes() as u64) as u32);
            let data = cfs.read_block(reader, b).unwrap();
            assert_eq!(data.as_slice(), cfs.make_block(tag).as_slice());
        }
    }

    #[test]
    fn byte_budget_spreads_repairs_over_rounds() {
        // Budget of one block per round: repairs trickle, but everything
        // still converges; outstanding work is reported along the way.
        let cfg = config(24);
        let plan = FaultPlan::generate(
            9,
            &ear_types::ClusterTopology::uniform(cfg.racks, cfg.nodes_per_rack),
            &FaultConfig {
                straggler_delay: ear_faults::DelayModel::Throttle,
                node_crashes: 1,
                rack_outages: 0,
                stragglers: 0,
                straggler_factor: 1.0,
                transient_error_rate: 0.0,
                corruption_rate: 0.0,
                heartbeat_loss_rate: 0.0,
                crash_window: 1,
            },
        );
        let cfs = MiniCfs::with_faults(cfg, plan).unwrap();
        write_blocks(&cfs, 16);
        let tight = HealerConfig {
            round_byte_budget: ByteSize::kib(64).as_u64(),
            max_rounds: 128,
            ..HealerConfig::default()
        };
        let mut healer = Healer::with_config(&cfs, tight);
        let stats = healer.run_to_convergence().unwrap();
        assert!(stats.converged);
        let wide = stats.blocks_re_replicated;
        // The same cluster healed with a wide budget repairs the same set.
        let cfs2 = {
            let cfg = config(24);
            let plan = FaultPlan::generate(
                9,
                &ear_types::ClusterTopology::uniform(cfg.racks, cfg.nodes_per_rack),
                &FaultConfig {
                    straggler_delay: ear_faults::DelayModel::Throttle,
                    node_crashes: 1,
                    rack_outages: 0,
                    stragglers: 0,
                    straggler_factor: 1.0,
                    transient_error_rate: 0.0,
                    corruption_rate: 0.0,
                    heartbeat_loss_rate: 0.0,
                    crash_window: 1,
                },
            );
            MiniCfs::with_faults(cfg, plan).unwrap()
        };
        write_blocks(&cfs2, 16);
        let stats2 = Healer::new(&cfs2).run_to_convergence().unwrap();
        assert!(stats2.converged);
        assert_eq!(wide, stats2.blocks_re_replicated);
    }

    #[test]
    fn healer_preserves_core_rack_copy_for_pending_stripes() {
        // Write fewer blocks than a stripe so they stay pending, then
        // knock out the core-rack copy of one block and heal. The healed
        // placement must restore a copy in the stripe's core rack.
        let cfs = MiniCfs::new(config(25)).unwrap();
        let nodes = cfs.topology().num_nodes() as u64;
        let mut i = 0u64;
        while cfs.namenode().pending_stripe_count() < 1 {
            let data = cfs.make_block(i);
            cfs.write_block(NodeId((i % nodes) as u32), data).unwrap();
            i += 1;
        }
        let stripe = &cfs.namenode().pending_stripes()[0];
        let core = stripe.plan.core_rack().expect("EAR stripes have a core");
        let block = stripe.blocks[0];
        let core_copy = cfs
            .namenode()
            .locations(block)
            .unwrap()
            .into_iter()
            .find(|&n| cfs.topology().rack_of(n) == core)
            .expect("EAR keeps a core-rack copy");
        cfs.datanode(core_copy).delete(block);
        cfs.namenode().drop_location(block, core_copy).unwrap();

        let stats = Healer::new(&cfs).run_to_convergence().unwrap();
        assert!(stats.converged);
        assert!(stats.blocks_re_replicated >= 1);
        let healed = cfs.namenode().locations(block).unwrap();
        assert_eq!(healed.len(), 2);
        assert!(
            healed.iter().any(|&n| cfs.topology().rack_of(n) == core),
            "healed layout must keep a copy in core rack {core}"
        );
    }
}
