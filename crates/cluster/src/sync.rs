//! Poison-aware locking helpers.
//!
//! `parking_lot` locks (used on the data-plane hot path) cannot poison, but
//! the control-plane state guarded by `std::sync` primitives can: a thread
//! that panics while holding the guard leaves the protected value possibly
//! half-updated. Instead of `.unwrap()`ing the `PoisonError` — which turns
//! one panicked thread into a cascade — these helpers surface poisoning as
//! the typed [`Error::LockPoisoned`], so callers propagate it like any other
//! cluster fault (DESIGN.md §11).

use ear_types::{Error, Result};
use std::sync::{Condvar, Mutex, MutexGuard};

/// Locks `m`, mapping a poisoned lock to [`Error::LockPoisoned`].
///
/// `what` names the lock in the error (e.g. `"failure detector"`).
///
/// # Errors
///
/// [`Error::LockPoisoned`] if a thread panicked while holding the lock.
pub fn locked<'a, T>(m: &'a Mutex<T>, what: &'static str) -> Result<MutexGuard<'a, T>> {
    m.lock().map_err(|_| Error::LockPoisoned { what })
}

/// Blocks on `cv` until `cond` holds for the guarded value, re-checking on
/// every wakeup. Poison-aware counterpart of `Condvar::wait_while`.
///
/// # Errors
///
/// [`Error::LockPoisoned`] if the lock is poisoned while waiting.
pub fn wait_until<'a, T>(
    cv: &Condvar,
    mut guard: MutexGuard<'a, T>,
    what: &'static str,
    mut cond: impl FnMut(&T) -> bool,
) -> Result<MutexGuard<'a, T>> {
    while !cond(&guard) {
        guard = cv
            .wait(guard)
            .map_err(|_| Error::LockPoisoned { what })?;
    }
    Ok(guard)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn locked_returns_guard_on_clean_lock() {
        let m = Mutex::new(5);
        assert_eq!(*locked(&m, "test").unwrap(), 5);
    }

    #[test]
    fn locked_maps_poison_to_typed_error() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock().unwrap();
            panic!("poison the lock");
        })
        .join();
        match locked(&m, "poisoned counter") {
            Err(Error::LockPoisoned { what }) => assert_eq!(what, "poisoned counter"),
            other => panic!("expected LockPoisoned, got {other:?}"),
        };
    }

    #[test]
    fn wait_until_observes_notified_condition() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            *m.lock().unwrap() = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let guard = locked(m, "flag").unwrap();
        let guard = wait_until(cv, guard, "flag", |&ready| ready).unwrap();
        assert!(*guard);
        t.join().unwrap();
    }
}
