//! The DataNode: one emulated machine's block service over a pluggable
//! [`BlockStore`] backend (memory or file-backed; DESIGN.md §9), fronted
//! by an optional [`BlockCache`] (DESIGN.md §12).

use crate::blockstore::{open_store, open_store_at, BlockStore, ShardedMemStore};
use crate::cache::{BlockCache, CacheStats};
use ear_faults::crc32c;
use ear_types::{Block, BlockId, CacheConfig, NodeId, Result, StoreBackend};

/// A block served through the cached read path: the payload, its
/// write-time CRC32C, and whether the bytes were already verified against
/// that CRC when they entered the cache (the verified-once seam —
/// [`crate::ClusterIo`] skips re-hashing verified bytes unless the fault
/// plan injects corruption on the attempt).
#[derive(Debug, Clone)]
pub struct CachedRead {
    /// The payload.
    pub data: Block,
    /// Its write-time CRC32C.
    pub crc: u32,
    /// `true` iff the bytes come from the cache, which only admits
    /// checksum-verified reads.
    pub verified: bool,
}

/// One DataNode's block storage. The protocol surface (put/get/delete plus
/// write-time CRC32C bookkeeping) is fixed; where the bytes live is the
/// backend's business — reference-counted buffers for
/// [`StoreBackend::Memory`], a file per block for [`StoreBackend::File`].
/// Every replica carries the CRC32C of its bytes at `put` time; readers
/// compare it against what they actually received to catch silent
/// corruption.
///
/// # Cache coherence
///
/// The cache is write-invalidate: [`DataNode::put`] and
/// [`DataNode::delete`] drop any cached copy, and only
/// [`DataNode::admit`] (called by the I/O service after a checksum pass)
/// populates it. [`DataNode::get`] / [`DataNode::get_with_crc`] bypass the
/// cache entirely and read the authoritative store — they are the seam the
/// scrubber uses to force re-verification, so corruption written *under* a
/// cached block is still caught by the next scrub even while cached reads
/// keep serving the good admitted bytes.
#[derive(Debug)]
pub struct DataNode {
    id: NodeId,
    store: Box<dyn BlockStore>,
    cache: Option<BlockCache>,
}

impl DataNode {
    /// Creates an empty DataNode on the in-memory backend, with the
    /// environment-selected cache configuration (`EAR_CACHE`).
    pub fn new(id: NodeId) -> Self {
        let cache = BlockCache::new(CacheConfig::from_env(), cache_seed(0, id));
        DataNode {
            id,
            store: Box::new(ShardedMemStore::new()),
            cache,
        }
    }

    /// Creates an empty DataNode on the requested backend and cache
    /// configuration. The cache's admission stream is seeded from
    /// `seed` (the cluster seed) mixed with the node id.
    ///
    /// # Errors
    ///
    /// [`ear_types::Error::Io`] if the file backend cannot create its temp
    /// root.
    pub fn with_backend(
        id: NodeId,
        backend: StoreBackend,
        cache: CacheConfig,
        seed: u64,
    ) -> Result<Self> {
        Ok(DataNode {
            id,
            store: open_store(backend, &format!("n{}", id.0))?,
            cache: BlockCache::new(cache, cache_seed(seed, id)),
        })
    }

    /// Creates (or reopens) a DataNode whose store persists under `root`,
    /// for the durable-cluster path: the backend recovers whatever blocks
    /// survive there and keeps the directory on drop. `sync` selects
    /// fsync-before-ack writes.
    ///
    /// # Errors
    ///
    /// [`ear_types::Error::NotDurable`] for the memory backend;
    /// [`ear_types::Error::Io`] / [`ear_types::Error::WalCorrupt`] if the
    /// on-disk state cannot be opened or fails recovery.
    pub fn with_backend_at(
        id: NodeId,
        backend: StoreBackend,
        root: &std::path::Path,
        sync: bool,
        cache: CacheConfig,
        seed: u64,
    ) -> Result<Self> {
        Ok(DataNode {
            id,
            store: open_store_at(backend, root, sync)?,
            cache: BlockCache::new(cache, cache_seed(seed, id)),
        })
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Which storage backend this node runs on.
    pub fn backend(&self) -> StoreBackend {
        self.store.backend()
    }

    /// Stores (or overwrites) a block replica, checksumming it on the way
    /// in and invalidating any cached copy.
    ///
    /// # Errors
    ///
    /// [`ear_types::Error::Io`] if the backend cannot persist the bytes
    /// (file backend only).
    pub fn put(&self, block: BlockId, data: Block) -> Result<()> {
        let crc = crc32c(&data);
        if let Some(c) = &self.cache {
            c.invalidate(block);
        }
        self.store.put(block, data, crc)
    }

    /// Fetches a block replica, if present — always from the authoritative
    /// store, never the cache (see the coherence notes on [`DataNode`]).
    pub fn get(&self, block: BlockId) -> Option<Block> {
        self.store.get_with_crc(block).map(|(data, _)| data)
    }

    /// Fetches a block replica together with its write-time CRC32C —
    /// always from the authoritative store, never the cache. This is the
    /// scrubber's forced re-verification path.
    pub fn get_with_crc(&self, block: BlockId) -> Option<(Block, u32)> {
        self.store.get_with_crc(block)
    }

    /// The cached read path of the I/O service: a cache hit serves
    /// already-verified bytes; a miss falls through to the store and
    /// reports `verified: false` so the caller re-hashes (and, on a pass,
    /// admits).
    pub fn cached_read(&self, block: BlockId) -> Option<CachedRead> {
        if let Some(c) = &self.cache {
            if let Some((data, crc)) = c.get(block) {
                return Some(CachedRead {
                    data,
                    crc,
                    verified: true,
                });
            }
        }
        self.store.get_with_crc(block).map(|(data, crc)| CachedRead {
            data,
            crc,
            verified: false,
        })
    }

    /// Admits a checksum-verified read into the cache (no-op when caching
    /// is off). Only the I/O service's verified reads call this — the
    /// cache must never hold bytes that were not checked against the
    /// write-time CRC.
    pub fn admit(&self, block: BlockId, data: &Block, crc: u32) {
        if let Some(c) = &self.cache {
            c.admit(block, data, crc);
        }
    }

    /// The write-time CRC32C of a stored replica. Served from the cache's
    /// metadata level when possible (it is kept coherent by
    /// write-invalidation), falling back to the store index.
    pub fn stored_crc(&self, block: BlockId) -> Option<u32> {
        if let Some(c) = &self.cache {
            if let Some((crc, _)) = c.meta_of(block) {
                return Some(crc);
            }
        }
        self.store.stored_crc(block)
    }

    /// Deletes a block replica (and any cached copy); returns whether it
    /// existed.
    pub fn delete(&self, block: BlockId) -> bool {
        if let Some(c) = &self.cache {
            c.invalidate(block);
        }
        self.store.delete(block)
    }

    /// Whether this node holds the block.
    pub fn contains(&self, block: BlockId) -> bool {
        self.store.contains(block)
    }

    /// Number of block replicas stored.
    pub fn block_count(&self) -> usize {
        self.store.block_count()
    }

    /// Total bytes stored (each replica counted at full size, as on a real
    /// disk).
    pub fn bytes_stored(&self) -> u64 {
        self.store.bytes_stored()
    }

    /// This node's cache counters (zeros when caching is off).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.as_ref().map(BlockCache::stats).unwrap_or_default()
    }

    /// Whether this node runs with a cache.
    pub fn cache_enabled(&self) -> bool {
        self.cache.is_some()
    }
}

/// Mixes the cluster seed with a node id into a per-node cache seed.
fn cache_seed(seed: u64, id: NodeId) -> u64 {
    seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (u64::from(id.0).wrapping_add(0x6A09_E667))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(backend: StoreBackend) -> (DataNode, DataNode) {
        (
            DataNode::with_backend(NodeId(3), backend, CacheConfig::default(), 1).unwrap(),
            DataNode::with_backend(NodeId(4), backend, CacheConfig::default(), 1).unwrap(),
        )
    }

    #[test]
    fn put_get_delete_roundtrip_both_backends() {
        for backend in [StoreBackend::Memory, StoreBackend::File] {
            let (dn, _) = nodes(backend);
            assert_eq!(dn.id(), NodeId(3));
            assert_eq!(dn.backend(), backend);
            let data = Block::from(vec![1u8, 2, 3]);
            dn.put(BlockId(7), data.clone()).unwrap();
            assert!(dn.contains(BlockId(7)));
            assert_eq!(dn.get(BlockId(7)).unwrap().as_slice(), &[1, 2, 3]);
            assert_eq!(dn.block_count(), 1);
            assert_eq!(dn.bytes_stored(), 3);
            assert!(dn.delete(BlockId(7)));
            assert!(!dn.delete(BlockId(7)));
            assert_eq!(dn.get(BlockId(7)), None);
            assert_eq!(dn.block_count(), 0);
        }
    }

    #[test]
    fn replicas_share_memory() {
        // Memory-backend contract specifically: replicas are shared views
        // of one allocation — storing the same Block on two nodes never
        // copies the payload.
        let a = DataNode::new(NodeId(0));
        let b = DataNode::new(NodeId(1));
        assert_eq!(a.backend(), StoreBackend::Memory);
        let data = Block::from(vec![9u8; 64]);
        a.put(BlockId(1), data.clone()).unwrap();
        b.put(BlockId(1), data.clone()).unwrap();
        assert_eq!(data.ref_count(), 3, "two stored views plus the original");
        assert!(a.get(BlockId(1)).unwrap().shares_buffer(&data));
        assert!(b.get(BlockId(1)).unwrap().shares_buffer(&data));
    }

    #[test]
    fn stored_crc_matches_bytes_both_backends() {
        for backend in [StoreBackend::Memory, StoreBackend::File] {
            let (dn, _) = nodes(backend);
            let data = Block::from(vec![0x42u8; 1024]);
            dn.put(BlockId(5), data.clone()).unwrap();
            let (bytes, crc) = dn.get_with_crc(BlockId(5)).unwrap();
            assert_eq!(crc, ear_faults::crc32c(&bytes));
            assert_eq!(dn.stored_crc(BlockId(5)), Some(crc));
            // A copy with a flipped byte no longer matches the stored crc.
            let mut bad = bytes.to_vec();
            bad[17] ^= 0x80;
            assert_ne!(ear_faults::crc32c(&bad), crc);
            assert_eq!(dn.stored_crc(BlockId(99)), None);
        }
    }

    #[test]
    fn cached_read_misses_then_hits_after_admit() {
        for backend in [StoreBackend::Memory, StoreBackend::File] {
            let dn = DataNode::with_backend(
                NodeId(1),
                backend,
                CacheConfig::Sized {
                    hot_bytes: 1 << 16,
                    cold_bytes: 1 << 16,
                },
                42,
            )
            .unwrap();
            let data = Block::from(vec![8u8; 512]);
            dn.put(BlockId(3), data.clone()).unwrap();
            let miss = dn.cached_read(BlockId(3)).unwrap();
            assert!(!miss.verified, "store reads must be re-verified");
            assert_eq!(miss.data, data);
            dn.admit(BlockId(3), &miss.data, miss.crc);
            let hit = dn.cached_read(BlockId(3)).unwrap();
            assert!(hit.verified, "cache hits are verified-once");
            assert_eq!(hit.data, data);
            assert_eq!(dn.cache_stats().hits(), 1);
            assert_eq!(dn.cache_stats().misses, 1);
            // Overwrite invalidates: the next cached read misses again.
            dn.put(BlockId(3), Block::from(vec![9u8; 512])).unwrap();
            let after = dn.cached_read(BlockId(3)).unwrap();
            assert!(!after.verified);
            assert_eq!(after.data.as_slice(), &[9u8; 512][..]);
        }
    }

    #[test]
    fn scrub_catches_corruption_written_under_a_cached_block() {
        // Bit-rot on the stored copy while the cache holds the good bytes:
        // cached reads keep serving what was admitted, but the scrubber's
        // get_with_crc seam reads the authoritative store and must see the
        // mismatch. Writing through `store` directly (not `put`) models
        // rot — it bypasses the write-invalidate hook just as a decaying
        // disk sector would.
        let dn = DataNode::with_backend(
            NodeId(2),
            StoreBackend::Memory,
            CacheConfig::Sized {
                hot_bytes: 1 << 16,
                cold_bytes: 1 << 16,
            },
            7,
        )
        .unwrap();
        let good = Block::from(vec![0xA5u8; 256]);
        dn.put(BlockId(9), good.clone()).unwrap();
        let read = dn.cached_read(BlockId(9)).unwrap();
        dn.admit(BlockId(9), &read.data, read.crc);
        assert!(dn.cached_read(BlockId(9)).unwrap().verified);

        // Rot the stored replica: corrupt bytes under the original CRC.
        let mut rotten = good.to_vec();
        rotten[33] ^= 0xFF;
        dn.store.put(BlockId(9), Block::from(rotten), read.crc).unwrap();

        // The cache still serves the admitted (good) bytes...
        let hit = dn.cached_read(BlockId(9)).unwrap();
        assert!(hit.verified);
        assert_eq!(hit.data.as_slice(), good.as_slice());

        // ...but the scrub path reads the store and catches the mismatch.
        let (scrubbed, crc) = dn.get_with_crc(BlockId(9)).unwrap();
        assert_ne!(
            ear_faults::crc32c(&scrubbed),
            crc,
            "scrub must see the rotten bytes, not the cached copy"
        );

        // Repairing through put() restores coherence: the stale cached
        // copy is invalidated and the next read re-verifies the new bytes.
        dn.put(BlockId(9), good.clone()).unwrap();
        let repaired = dn.cached_read(BlockId(9)).unwrap();
        assert!(!repaired.verified, "repair must invalidate the cache");
        assert_eq!(repaired.data.as_slice(), good.as_slice());
    }

    #[test]
    fn cache_off_never_reports_verified() {
        let dn =
            DataNode::with_backend(NodeId(0), StoreBackend::Memory, CacheConfig::Off, 1).unwrap();
        assert!(!dn.cache_enabled());
        let data = Block::from(vec![1u8; 64]);
        dn.put(BlockId(1), data.clone()).unwrap();
        let r = dn.cached_read(BlockId(1)).unwrap();
        assert!(!r.verified);
        dn.admit(BlockId(1), &r.data, r.crc); // no-op
        assert!(!dn.cached_read(BlockId(1)).unwrap().verified);
        assert_eq!(dn.cache_stats(), CacheStats::default());
    }
}
