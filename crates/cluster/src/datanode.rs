//! The DataNode: an in-memory block store, one per emulated machine.

use ear_faults::crc32c;
use ear_types::{BlockId, NodeId};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// One stored replica: the bytes plus the CRC32C computed at write time, as
/// HDFS stores a checksum file beside every block file.
#[derive(Debug, Clone)]
struct StoredBlock {
    data: Arc<Vec<u8>>,
    crc: u32,
}

/// One DataNode's block storage. Blocks are reference-counted byte buffers
/// so replicas of the same block share memory across nodes. Every replica
/// carries the CRC32C of its bytes at `put` time; readers compare it against
/// what they actually received to catch silent corruption.
#[derive(Debug)]
pub struct DataNode {
    id: NodeId,
    store: Mutex<HashMap<BlockId, StoredBlock>>,
}

impl DataNode {
    /// Creates an empty DataNode.
    pub fn new(id: NodeId) -> Self {
        DataNode {
            id,
            store: Mutex::new(HashMap::new()),
        }
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Stores (or overwrites) a block replica, checksumming it on the way
    /// in.
    pub fn put(&self, block: BlockId, data: Arc<Vec<u8>>) {
        let crc = crc32c(&data);
        self.store.lock().insert(block, StoredBlock { data, crc });
    }

    /// Fetches a block replica, if present.
    pub fn get(&self, block: BlockId) -> Option<Arc<Vec<u8>>> {
        self.store.lock().get(&block).map(|s| Arc::clone(&s.data))
    }

    /// Fetches a block replica together with its write-time CRC32C.
    pub fn get_with_crc(&self, block: BlockId) -> Option<(Arc<Vec<u8>>, u32)> {
        self.store
            .lock()
            .get(&block)
            .map(|s| (Arc::clone(&s.data), s.crc))
    }

    /// The write-time CRC32C of a stored replica.
    pub fn stored_crc(&self, block: BlockId) -> Option<u32> {
        self.store.lock().get(&block).map(|s| s.crc)
    }

    /// Deletes a block replica; returns whether it existed.
    pub fn delete(&self, block: BlockId) -> bool {
        self.store.lock().remove(&block).is_some()
    }

    /// Whether this node holds the block.
    pub fn contains(&self, block: BlockId) -> bool {
        self.store.lock().contains_key(&block)
    }

    /// Number of block replicas stored.
    pub fn block_count(&self) -> usize {
        self.store.lock().len()
    }

    /// Total bytes stored (each replica counted at full size, as on a real
    /// disk).
    pub fn bytes_stored(&self) -> u64 {
        self.store.lock().values().map(|s| s.data.len() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_delete_roundtrip() {
        let dn = DataNode::new(NodeId(3));
        assert_eq!(dn.id(), NodeId(3));
        let data = Arc::new(vec![1u8, 2, 3]);
        dn.put(BlockId(7), Arc::clone(&data));
        assert!(dn.contains(BlockId(7)));
        assert_eq!(dn.get(BlockId(7)).unwrap().as_slice(), &[1, 2, 3]);
        assert_eq!(dn.block_count(), 1);
        assert_eq!(dn.bytes_stored(), 3);
        assert!(dn.delete(BlockId(7)));
        assert!(!dn.delete(BlockId(7)));
        assert_eq!(dn.get(BlockId(7)), None);
        assert_eq!(dn.block_count(), 0);
    }

    #[test]
    fn replicas_share_memory() {
        let a = DataNode::new(NodeId(0));
        let b = DataNode::new(NodeId(1));
        let data = Arc::new(vec![9u8; 64]);
        a.put(BlockId(1), Arc::clone(&data));
        b.put(BlockId(1), Arc::clone(&data));
        assert_eq!(Arc::strong_count(&data), 3);
    }

    #[test]
    fn stored_crc_matches_bytes() {
        let dn = DataNode::new(NodeId(0));
        let data = Arc::new(vec![0x42u8; 1024]);
        dn.put(BlockId(5), Arc::clone(&data));
        let (bytes, crc) = dn.get_with_crc(BlockId(5)).unwrap();
        assert_eq!(crc, crc32c(&bytes));
        assert_eq!(dn.stored_crc(BlockId(5)), Some(crc));
        // A copy with a flipped byte no longer matches the stored crc.
        let mut bad = bytes.as_ref().clone();
        bad[17] ^= 0x80;
        assert_ne!(crc32c(&bad), crc);
        assert_eq!(dn.stored_crc(BlockId(99)), None);
    }
}
