//! The DataNode: one emulated machine's block service over a pluggable
//! [`BlockStore`] backend (memory or file-backed; DESIGN.md §9).

use crate::blockstore::{open_store, BlockStore, ShardedMemStore};
use ear_faults::crc32c;
use ear_types::{BlockId, NodeId, Result, StoreBackend};
use std::sync::Arc;

/// One DataNode's block storage. The protocol surface (put/get/delete plus
/// write-time CRC32C bookkeeping) is fixed; where the bytes live is the
/// backend's business — reference-counted buffers for
/// [`StoreBackend::Memory`], a file per block for [`StoreBackend::File`].
/// Every replica carries the CRC32C of its bytes at `put` time; readers
/// compare it against what they actually received to catch silent
/// corruption.
#[derive(Debug)]
pub struct DataNode {
    id: NodeId,
    store: Box<dyn BlockStore>,
}

impl DataNode {
    /// Creates an empty DataNode on the in-memory backend.
    pub fn new(id: NodeId) -> Self {
        DataNode {
            id,
            store: Box::new(ShardedMemStore::new()),
        }
    }

    /// Creates an empty DataNode on the requested backend.
    ///
    /// # Errors
    ///
    /// [`ear_types::Error::Io`] if the file backend cannot create its temp
    /// root.
    pub fn with_backend(id: NodeId, backend: StoreBackend) -> Result<Self> {
        Ok(DataNode {
            id,
            store: open_store(backend, &format!("n{}", id.0))?,
        })
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Which storage backend this node runs on.
    pub fn backend(&self) -> StoreBackend {
        self.store.backend()
    }

    /// Stores (or overwrites) a block replica, checksumming it on the way
    /// in.
    ///
    /// # Errors
    ///
    /// [`ear_types::Error::Io`] if the backend cannot persist the bytes
    /// (file backend only).
    pub fn put(&self, block: BlockId, data: Arc<Vec<u8>>) -> Result<()> {
        let crc = crc32c(&data);
        self.store.put(block, data, crc)
    }

    /// Fetches a block replica, if present.
    pub fn get(&self, block: BlockId) -> Option<Arc<Vec<u8>>> {
        self.store.get_with_crc(block).map(|(data, _)| data)
    }

    /// Fetches a block replica together with its write-time CRC32C.
    pub fn get_with_crc(&self, block: BlockId) -> Option<(Arc<Vec<u8>>, u32)> {
        self.store.get_with_crc(block)
    }

    /// The write-time CRC32C of a stored replica.
    pub fn stored_crc(&self, block: BlockId) -> Option<u32> {
        self.store.stored_crc(block)
    }

    /// Deletes a block replica; returns whether it existed.
    pub fn delete(&self, block: BlockId) -> bool {
        self.store.delete(block)
    }

    /// Whether this node holds the block.
    pub fn contains(&self, block: BlockId) -> bool {
        self.store.contains(block)
    }

    /// Number of block replicas stored.
    pub fn block_count(&self) -> usize {
        self.store.block_count()
    }

    /// Total bytes stored (each replica counted at full size, as on a real
    /// disk).
    pub fn bytes_stored(&self) -> u64 {
        self.store.bytes_stored()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(backend: StoreBackend) -> (DataNode, DataNode) {
        (
            DataNode::with_backend(NodeId(3), backend).unwrap(),
            DataNode::with_backend(NodeId(4), backend).unwrap(),
        )
    }

    #[test]
    fn put_get_delete_roundtrip_both_backends() {
        for backend in [StoreBackend::Memory, StoreBackend::File] {
            let (dn, _) = nodes(backend);
            assert_eq!(dn.id(), NodeId(3));
            assert_eq!(dn.backend(), backend);
            let data = Arc::new(vec![1u8, 2, 3]);
            dn.put(BlockId(7), Arc::clone(&data)).unwrap();
            assert!(dn.contains(BlockId(7)));
            assert_eq!(dn.get(BlockId(7)).unwrap().as_slice(), &[1, 2, 3]);
            assert_eq!(dn.block_count(), 1);
            assert_eq!(dn.bytes_stored(), 3);
            assert!(dn.delete(BlockId(7)));
            assert!(!dn.delete(BlockId(7)));
            assert_eq!(dn.get(BlockId(7)), None);
            assert_eq!(dn.block_count(), 0);
        }
    }

    #[test]
    fn replicas_share_memory() {
        // Memory-backend contract specifically: replicas are Arc clones.
        let a = DataNode::new(NodeId(0));
        let b = DataNode::new(NodeId(1));
        assert_eq!(a.backend(), StoreBackend::Memory);
        let data = Arc::new(vec![9u8; 64]);
        a.put(BlockId(1), Arc::clone(&data)).unwrap();
        b.put(BlockId(1), Arc::clone(&data)).unwrap();
        assert_eq!(Arc::strong_count(&data), 3);
    }

    #[test]
    fn stored_crc_matches_bytes_both_backends() {
        for backend in [StoreBackend::Memory, StoreBackend::File] {
            let (dn, _) = nodes(backend);
            let data = Arc::new(vec![0x42u8; 1024]);
            dn.put(BlockId(5), Arc::clone(&data)).unwrap();
            let (bytes, crc) = dn.get_with_crc(BlockId(5)).unwrap();
            assert_eq!(crc, crc32c(&bytes));
            assert_eq!(dn.stored_crc(BlockId(5)), Some(crc));
            // A copy with a flipped byte no longer matches the stored crc.
            let mut bad = bytes.as_ref().clone();
            bad[17] ^= 0x80;
            assert_ne!(crc32c(&bad), crc);
            assert_eq!(dn.stored_crc(BlockId(99)), None);
        }
    }
}
