//! The chaos soak harness: runs one seeded [`FaultPlan`] against a full
//! write → encode → repair → verify cycle and checks the paper's safety
//! argument end to end.
//!
//! Three invariants are asserted for every plan (see [`ChaosReport`]):
//!
//! 1. **No acknowledged block is lost** while failures stay within the
//!    code's tolerance: every acked replicated block with at least one
//!    live, uncorrupted replica reads back bit-identically, and every
//!    acked encoded block whose stripe has at most `n - k` unavailable
//!    shards is reconstructed bit-identically.
//! 2. **EAR stays violation-free**: after encoding under any plan,
//!    [`scan`](crate::scan) reports zero rack-fault-tolerance violations
//!    (RR's violations must be repairable to zero by the BlockMover).
//! 3. **Nothing panics or hangs**: encode jobs, repairs, and recovery
//!    complete or fail with a typed error under every plan.
//!
//! Everything is deterministic in the plan seed, so a failing soak prints
//! one number that reproduces it.

use crate::cluster::{ClusterConfig, ClusterPolicy, MiniCfs};
use crate::healer::{Healer, HealerConfig};
use crate::monitor::{plan_repairs, scan};
use crate::raidnode::RaidNode;
use crate::recovery::recover_node;
use crate::reliability::{OpClass, ReliabilityConfig};
use ear_faults::{FaultConfig, FaultPlan};
use ear_types::{
    Bandwidth, BlockId, ByteSize, CacheConfig, ClusterTopology, EarConfig, ErasureParams,
    HealStats, NodeId, ReplicationConfig, Result, StoreBackend, StripeId,
};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Shape of one chaos run.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Placement policy under test.
    pub policy: ClusterPolicy,
    /// Stripes to seal before encoding.
    pub stripes: usize,
    /// Fault mix expanded from each seed.
    pub faults: FaultConfig,
    /// Encode-job parallelism.
    pub map_tasks: usize,
    /// Storage backend the cluster's DataNodes run on.
    pub store: StoreBackend,
    /// Block-cache configuration of the cluster's DataNodes. The soak
    /// reports must be bit-identical whatever this is set to — the cache
    /// only elides redundant CRC work, never changes data-plane outcomes.
    pub cache: CacheConfig,
    /// Whether hedged reads are enabled (DESIGN.md §14). Under a
    /// straggler-free plan the report must be bit-identical either way:
    /// hedges only launch after a straggler delay crosses the threshold.
    pub hedging: bool,
    /// Which encode data path the run uses (DESIGN.md §15). The soak
    /// reports must be bit-identical under either path: the pipeline
    /// changes traffic shape, never parity bytes or metadata.
    pub encode_path: ear_types::EncodePath,
    /// Which repair data path the run uses (DESIGN.md §15). Same
    /// bit-identity requirement as [`ChaosConfig::encode_path`].
    pub repair_path: ear_types::RepairPath,
}

impl ChaosConfig {
    /// The default soak shape for `policy`: a light fault mix over a few
    /// stripes — quick enough to run a hundred plans in a test.
    pub fn light(policy: ClusterPolicy) -> Self {
        ChaosConfig {
            policy,
            stripes: 3,
            faults: FaultConfig::light(),
            map_tasks: 4,
            store: StoreBackend::from_env(),
            cache: CacheConfig::from_env(),
            hedging: true,
            encode_path: ear_types::EncodePath::from_env(),
            repair_path: ear_types::RepairPath::from_env(),
        }
    }

    /// A hostile mix (crashes, a rack outage, stragglers, lossy I/O).
    pub fn heavy(policy: ClusterPolicy) -> Self {
        ChaosConfig {
            faults: FaultConfig::heavy(),
            ..ChaosConfig::light(policy)
        }
    }

    /// A straggler-dominated mix: no crashes, several nodes with a
    /// heavy-tailed (Pareto) per-attempt delay — the tail-latency scenario
    /// hedged reads exist for. Compare the report's read percentiles with
    /// [`ChaosConfig::hedging`] on and off.
    pub fn straggler_heavy(policy: ClusterPolicy) -> Self {
        ChaosConfig {
            faults: FaultConfig {
                straggler_delay: ear_faults::DelayModel::Pareto {
                    scale_ticks: 400,
                    shape: 1.2,
                    cap_ticks: 200_000,
                },
                node_crashes: 0,
                rack_outages: 0,
                stragglers: 4,
                straggler_factor: 3.0,
                transient_error_rate: 0.01,
                corruption_rate: 0.0,
                heartbeat_loss_rate: 0.0,
                crash_window: 1,
            },
            ..ChaosConfig::light(policy)
        }
    }
}

/// What one chaos run observed. A run *passes* when [`ChaosReport::passed`]
/// — the invariant fields below are all clean.
#[derive(Debug, Clone, Default)]
pub struct ChaosReport {
    /// The plan seed this report reproduces from.
    pub seed: u64,
    /// Human-readable description of the executed plan.
    pub plan: String,
    /// Blocks whose write was acknowledged.
    pub acked_blocks: usize,
    /// Writes that failed with a typed error (unacknowledged; not a loss).
    pub failed_writes: usize,
    /// Stripes the encode job completed.
    pub encoded_stripes: usize,
    /// Stripes the encode job gave up on and requeued (replicas intact).
    pub requeued_stripes: usize,
    /// Post-encode scan violations after BlockMover repairs (must be 0; for
    /// EAR it must already be 0 *before* repairs — see
    /// [`ChaosReport::pre_repair_violations`]).
    pub violations_after_repair: usize,
    /// Scan violations straight after encoding (always 0 under EAR).
    pub pre_repair_violations: usize,
    /// Encoded stripes verified to decode bit-identically.
    pub stripes_verified: usize,
    /// Encoded stripes with more than `n - k` unavailable shards — outside
    /// the code's tolerance, excluded from the loss invariant.
    pub stripes_beyond_tolerance: usize,
    /// Replicated acked blocks with every replica dead or corrupt — more
    /// simultaneous failures than replication tolerates, excluded from the
    /// loss invariant.
    pub blocks_beyond_tolerance: usize,
    /// Acked blocks that should have been recoverable but were not —
    /// **the loss invariant; must be empty**.
    pub lost_blocks: Vec<BlockId>,
    /// Blocks rebuilt by exercising `recover_node` on a crashed node.
    pub recovered_blocks: usize,
    /// Typed error from the recovery exercise, if it could not complete
    /// (tolerated: recovery may legitimately fail beyond tolerance).
    pub recovery_error: Option<String>,
    /// Acked blocks read back through the real client path in the
    /// tail-latency probe.
    pub read_ops: usize,
    /// Probe reads that failed with a typed error.
    pub read_failures: usize,
    /// Median probe-read latency, virtual-clock ticks.
    pub read_p50_ticks: u64,
    /// 99th-percentile probe-read latency, virtual-clock ticks.
    pub read_p99_ticks: u64,
    /// 99.9th-percentile probe-read latency, virtual-clock ticks.
    pub read_p999_ticks: u64,
    /// Hedged reads launched across the whole run (encode downloads and
    /// probe reads alike).
    pub hedges_launched: u64,
    /// Hedged reads whose hedge leg beat the straggling primary.
    pub hedges_won: u64,
}

impl ChaosReport {
    /// Whether the run upheld the invariants.
    pub fn passed(&self, policy: ClusterPolicy) -> bool {
        self.lost_blocks.is_empty()
            && self.violations_after_repair == 0
            && (policy != ClusterPolicy::Ear || self.pre_repair_violations == 0)
    }
}

/// The cluster shape chaos runs use: 8 racks × 2 nodes, (6,4) RS, 2-way
/// replication, 64 KiB blocks over fast links so a full run takes tens of
/// milliseconds.
fn chaos_cluster(cfg: &ChaosConfig, seed: u64) -> Result<ClusterConfig> {
    let ear = EarConfig::new(
        ErasureParams::new(6, 4)?,
        ReplicationConfig::two_way(),
        1,
    )?;
    Ok(ClusterConfig {
        racks: 8,
        nodes_per_rack: 2,
        block_size: ByteSize::kib(64),
        node_bandwidth: Bandwidth::bytes_per_sec(512e6),
        rack_bandwidth: Bandwidth::bytes_per_sec(512e6),
        ear,
        policy: cfg.policy,
        seed: seed ^ 0xA11CE,
        store: cfg.store,
        cache: cfg.cache,
        durability: ear_types::DurabilityConfig::default(),
        reliability: ReliabilityConfig {
            hedge_reads: cfg.hedging,
            ..ReliabilityConfig::default()
        },
        encode_path: cfg.encode_path,
        repair_path: cfg.repair_path,
    })
}

/// Runs one seeded fault plan through write → encode → repair → verify →
/// recover and reports what happened.
///
/// # Errors
///
/// Returns an error only on harness-level failures (a cluster that cannot
/// boot). Fault-induced failures are *data*, recorded in the report —
/// asserting on them is the caller's job, typically via
/// [`ChaosReport::passed`].
pub fn run_plan(seed: u64, cfg: &ChaosConfig) -> Result<ChaosReport> {
    let cluster_cfg = chaos_cluster(cfg, seed)?;
    let topo = ClusterTopology::uniform(cluster_cfg.racks, cluster_cfg.nodes_per_rack);
    let plan = FaultPlan::generate(seed, &topo, &cfg.faults);
    let mut report = ChaosReport {
        seed,
        plan: plan.to_string(),
        ..ChaosReport::default()
    };
    let cfs = MiniCfs::with_faults(cluster_cfg, plan)?;
    let k = cfs.codec().params().k();
    let nodes = cfs.topology().num_nodes() as u64;

    // Write until enough stripes seal (or a cap, in case the plan makes
    // the cluster too sick to seal more). Remember each acked block's
    // payload tag for bit-exact verification later.
    // BTreeMap: `verify_blocks` walks this map to fill the report's loss
    // lists, so its order must be the key order, not hash order.
    let mut acked: BTreeMap<BlockId, u64> = BTreeMap::new();
    let max_writes = (cfg.stripes * k * 4) as u64;
    let mut tag = 0u64;
    while cfs.namenode().pending_stripe_count() < cfg.stripes && tag < max_writes {
        let client = NodeId((tag % nodes) as u32);
        match cfs.write_block(client, cfs.make_block(tag)) {
            Ok(id) => {
                acked.insert(id, tag);
            }
            Err(_) => report.failed_writes += 1,
        }
        tag += 1;
    }
    report.acked_blocks = acked.len();

    // Encode. Must terminate with a typed account, never panic or hang.
    let (stats, relocations) = RaidNode::encode_all(&cfs, cfg.map_tasks)?;
    report.encoded_stripes = stats.stripes;
    report.requeued_stripes = stats.failed_stripes.len();
    // The BlockMover moves what the encode job queued, then the monitor
    // sweeps until clean (RR needs this; EAR must already be clean).
    // A failed write can leave a stripe with a "phantom" member — location
    // recorded at the planned node but no bytes ever stored there (the
    // write was never acknowledged). The BlockMover cannot move bytes that
    // do not exist, so such stripes are excluded from the placement
    // invariant; their acked members remain covered by the loss invariant.
    let phantom: HashSet<StripeId> = cfs
        .namenode()
        .encoded_stripes()
        .iter()
        .filter(|es| {
            es.data.iter().chain(es.parity.iter()).any(|&b| {
                cfs.namenode()
                    .locations(b)
                    .is_some_and(|locs| locs.iter().any(|&h| !cfs.datanode(h).contains(b)))
            })
        })
        .map(|es| es.id)
        .collect();
    let countable =
        |vs: &[crate::monitor::Violation]| vs.iter().filter(|v| !phantom.contains(&v.stripe)).count();
    let mut relocations = relocations;
    relocations.retain(|&(b, from, _)| cfs.datanode(from).contains(b));
    let _ = RaidNode::relocate(&cfs, &relocations);
    report.pre_repair_violations = countable(&scan(&cfs));
    for _ in 0..4 {
        let violations: Vec<_> = scan(&cfs)
            .into_iter()
            .filter(|v| !phantom.contains(&v.stripe))
            .collect();
        if violations.is_empty() {
            break;
        }
        let mut repairs = plan_repairs(&cfs, &violations);
        repairs.retain(|&(b, from, _)| cfs.datanode(from).contains(b));
        if repairs.is_empty() || RaidNode::relocate(&cfs, &repairs).is_err() {
            break;
        }
    }
    report.violations_after_repair = countable(&scan(&cfs));

    verify_blocks(&cfs, &acked, k, &mut report);

    // Tail-latency probe: read every acked block back through the real
    // client path — admission, breakers, hedging and all — on the virtual
    // clock, and report the percentile profile. Sequential, so the
    // latencies are a pure function of the plan seed.
    if let Some(reader) = cfs.topology().nodes().find(|&n| !cfs.injector().node_down(n)) {
        let mut lat: Vec<u64> = Vec::with_capacity(acked.len());
        for &b in acked.keys() {
            let read = cfs
                .reliability()
                .ctx(OpClass::ClientRead)
                .and_then(|ctx| cfs.read_block_in(&ctx, reader, b).map(|_| ctx.elapsed_ticks()));
            match read {
                Ok(ticks) => lat.push(ticks),
                Err(_) => report.read_failures += 1,
            }
        }
        report.read_ops = lat.len();
        lat.sort_unstable();
        report.read_p50_ticks = percentile(&lat, 500);
        report.read_p99_ticks = percentile(&lat, 990);
        report.read_p999_ticks = percentile(&lat, 999);
    }
    let io = cfs.io().stats();
    report.hedges_launched = io.hedges_launched;
    report.hedges_won = io.hedges_won;

    // Exercise recovery against the plan's first crashed node. It must
    // complete or fail typed — beyond-tolerance failures are tolerated.
    if let Some(crash) = cfs.injector().plan().crashes().first() {
        match recover_node(&cfs, crash.node) {
            Ok(rstats) => report.recovered_blocks = rstats.blocks_recovered,
            Err(e) => report.recovery_error = Some(e.to_string()),
        }
    }
    Ok(report)
}

/// Value at permille `p` of an ascending latency vector (nearest-rank on
/// the scaled index); 0 when the vector is empty.
fn percentile(sorted: &[u64], permille: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = (sorted.len() - 1) * permille / 1000;
    sorted.get(idx).copied().unwrap_or(0)
}

/// Checks every acked block is still recoverable, filling the report's
/// verification fields. Uses direct state inspection (not the faulty read
/// path) so the check itself is deterministic.
fn verify_blocks(cfs: &MiniCfs, acked: &BTreeMap<BlockId, u64>, k: usize, report: &mut ChaosReport) {
    let inj = cfs.injector();
    // A shard is *available* if some recorded holder is alive and its copy
    // reads back clean.
    let clean_copy = |b: BlockId| -> Option<Vec<u8>> {
        let locs = cfs.namenode().locations(b)?;
        locs.iter()
            .find(|&&h| !inj.node_down(h) && !inj.corrupts(h, b))
            .and_then(|&h| cfs.datanode(h).get(b))
            .map(|d| d.to_vec())
    };

    let encoded = cfs.namenode().encoded_stripes();
    let mut in_stripe: HashMap<BlockId, usize> = HashMap::new();
    for (si, es) in encoded.iter().enumerate() {
        for &b in es.data.iter().chain(es.parity.iter()) {
            in_stripe.insert(b, si);
        }
    }

    // Replicated (not-yet-encoded) acked blocks: a live clean replica must
    // hold exactly the written bytes.
    for (&b, &tag) in acked {
        if in_stripe.contains_key(&b) {
            continue;
        }
        match clean_copy(b) {
            Some(bytes) => {
                if bytes != cfs.make_block(tag) {
                    report.lost_blocks.push(b);
                }
            }
            // Every replica dead or corrupt. r-way replication tolerates
            // r - 1 failures; losing all r copies is beyond tolerance, the
            // replicated analogue of > n - k lost shards.
            None => report.blocks_beyond_tolerance += 1,
        }
    }

    // Encoded stripes: with at most n - k unavailable shards the stripe
    // must reconstruct every acked data block bit-identically.
    for es in &encoded {
        let members: Vec<BlockId> = es.data.iter().chain(es.parity.iter()).copied().collect();
        let shards: Vec<Option<Vec<u8>>> = members.iter().map(|&m| clean_copy(m)).collect();
        let available = shards.iter().filter(|s| s.is_some()).count();
        if available < k {
            report.stripes_beyond_tolerance += 1;
            continue;
        }
        let mut work = shards;
        if cfs.codec().reconstruct(&mut work).is_err() {
            // Enough shards but decode failed: every acked member is lost.
            report
                .lost_blocks
                .extend(es.data.iter().filter(|b| acked.contains_key(b)));
            continue;
        }
        let mut clean = true;
        for (i, &b) in es.data.iter().enumerate() {
            let Some(&tag) = acked.get(&b) else { continue };
            match &work[i] {
                Some(bytes) if *bytes == cfs.make_block(tag) => {}
                _ => {
                    report.lost_blocks.push(b);
                    clean = false;
                }
            }
        }
        if clean {
            report.stripes_verified += 1;
        }
    }
    report.lost_blocks.sort_unstable();
    report.lost_blocks.dedup();
}

/// Shape of one heal-soak run: kills land *mid-run* (during the write and
/// encode phases), and the background [`Healer`] — not the one-shot repair
/// loop — is responsible for bringing the cluster back.
#[derive(Debug, Clone)]
pub struct HealSoakConfig {
    /// Stripes to seal before encoding (some written blocks stay
    /// replicated, so both repair paths are exercised).
    pub stripes: usize,
    /// Nodes killed by the plan; clamped to `n - k` so every acknowledged
    /// block stays within the code's tolerance.
    pub kills: usize,
    /// Background noise expanded from each seed (`node_crashes` is
    /// overridden by [`HealSoakConfig::kills`]).
    pub faults: FaultConfig,
    /// Budgets of the healer under test.
    pub healer: HealerConfig,
    /// Storage backend the cluster's DataNodes run on.
    pub store: StoreBackend,
    /// Block-cache configuration of the cluster's DataNodes (the report
    /// must not depend on it — see [`ChaosConfig::cache`]).
    pub cache: CacheConfig,
    /// Encode-job parallelism.
    pub map_tasks: usize,
    /// Which encode data path the run uses (bit-identity required — see
    /// [`ChaosConfig::encode_path`]).
    pub encode_path: ear_types::EncodePath,
    /// Which repair data path the healer uses (bit-identity required — see
    /// [`ChaosConfig::repair_path`]).
    pub repair_path: ear_types::RepairPath,
}

impl Default for HealSoakConfig {
    fn default() -> Self {
        HealSoakConfig {
            stripes: 3,
            kills: 2,
            store: StoreBackend::from_env(),
            cache: CacheConfig::from_env(),
            encode_path: ear_types::EncodePath::from_env(),
            repair_path: ear_types::RepairPath::from_env(),
            faults: FaultConfig {
                straggler_delay: ear_faults::DelayModel::Throttle,
                node_crashes: 2,
                rack_outages: 0,
                stragglers: 0,
                straggler_factor: 1.0,
                transient_error_rate: 0.01,
                corruption_rate: 0.01,
                heartbeat_loss_rate: 0.02,
                // Activate kills while the write phase is still running.
                crash_window: 200,
            },
            healer: HealerConfig::default(),
            map_tasks: 4,
        }
    }
}

/// What one heal-soak run observed. Passes when [`HealSoakReport::passed`].
#[derive(Debug, Clone, Default)]
pub struct HealSoakReport {
    /// The plan seed this report reproduces from.
    pub seed: u64,
    /// Human-readable description of the executed plan.
    pub plan: String,
    /// Blocks whose write was acknowledged.
    pub acked_blocks: usize,
    /// Writes that failed with a typed error (unacknowledged; not a loss).
    pub failed_writes: usize,
    /// Stripes the encode job completed.
    pub encoded_stripes: usize,
    /// The healer's accumulated statistics (rounds, MTTR, repair traffic).
    pub heal: HealStats,
    /// Scan violations after the healer converged (must be 0).
    pub violations_after_heal: usize,
    /// Acknowledged blocks still below target redundancy after convergence
    /// (must be 0): a replicated block short of its replica target, or an
    /// encoded stripe member with no live copy.
    pub under_redundant: usize,
    /// Acked blocks that should have been recoverable but were not —
    /// **the loss invariant; must be empty**.
    pub lost_blocks: Vec<BlockId>,
    /// Replicated acked blocks with every copy dead or corrupt (beyond
    /// what replication tolerates; excluded from the loss invariant).
    pub blocks_beyond_tolerance: usize,
    /// Encoded stripes with more than `n - k` shards unavailable.
    pub stripes_beyond_tolerance: usize,
}

impl HealSoakReport {
    /// Whether the healer restored every acknowledged block to target
    /// redundancy, violation-free, without losing data.
    pub fn passed(&self) -> bool {
        self.heal.converged
            && self.lost_blocks.is_empty()
            && self.violations_after_heal == 0
            && self.under_redundant == 0
    }
}

/// The cluster shape heal soaks use: 8 racks × 3 nodes so two kills still
/// leave every rack usable, 3-way replication (HDFS default) so replicated
/// blocks survive two simultaneous failures, (6,4) RS for `n - k = 2`.
fn heal_cluster(cfg: &HealSoakConfig, seed: u64) -> Result<ClusterConfig> {
    let ear = EarConfig::new(
        ErasureParams::new(6, 4)?,
        ReplicationConfig::hdfs_default(),
        1,
    )?;
    Ok(ClusterConfig {
        racks: 8,
        nodes_per_rack: 3,
        block_size: ByteSize::kib(64),
        node_bandwidth: Bandwidth::bytes_per_sec(512e6),
        rack_bandwidth: Bandwidth::bytes_per_sec(512e6),
        ear,
        policy: ClusterPolicy::Ear,
        seed: seed ^ 0x4EA1,
        store: cfg.store,
        cache: cfg.cache,
        durability: ear_types::DurabilityConfig::default(),
        reliability: ReliabilityConfig::default(),
        encode_path: cfg.encode_path,
        repair_path: cfg.repair_path,
    })
}

/// Runs one seeded heal soak: write → encode with kills landing mid-run,
/// then hand the degraded cluster to the background [`Healer`] and verify
/// it restores full redundancy within its round budget.
///
/// # Errors
///
/// Returns an error only on harness-level failures (a cluster that cannot
/// boot). A stalled healer is *data*: `heal.converged` stays `false` and
/// [`HealSoakReport::passed`] fails.
pub fn run_heal_plan(seed: u64, cfg: &HealSoakConfig) -> Result<HealSoakReport> {
    let cluster_cfg = heal_cluster(cfg, seed)?;
    let topo = ClusterTopology::uniform(cluster_cfg.racks, cluster_cfg.nodes_per_rack);
    let k = cluster_cfg.ear.erasure().k();
    let n = cluster_cfg.ear.erasure().n();
    let faults = FaultConfig {
        straggler_delay: ear_faults::DelayModel::Throttle,
        node_crashes: cfg.kills.min(n - k),
        ..cfg.faults.clone()
    };
    let plan = FaultPlan::generate(seed, &topo, &faults);
    let mut report = HealSoakReport {
        seed,
        plan: plan.to_string(),
        ..HealSoakReport::default()
    };
    let cfs = MiniCfs::with_faults(cluster_cfg, plan)?;
    let nodes = cfs.topology().num_nodes() as u64;

    // Write until enough stripes seal, plus a handful of extra blocks that
    // stay replicated so the soak exercises re-replication too. BTreeMap:
    // `count_redundancy`/`verify_heal_blocks` walk this map into the report,
    // so its order must be the key order, not hash order.
    let mut acked: BTreeMap<BlockId, u64> = BTreeMap::new();
    let max_writes = (cfg.stripes * k * 4) as u64;
    let mut tag = 0u64;
    while cfs.namenode().pending_stripe_count() < cfg.stripes && tag < max_writes {
        match cfs.write_block(NodeId((tag % nodes) as u32), cfs.make_block(tag)) {
            Ok(id) => {
                acked.insert(id, tag);
            }
            Err(_) => report.failed_writes += 1,
        }
        tag += 1;
    }
    for extra in 0..3 {
        let t = tag + extra;
        if let Ok(id) = cfs.write_block(NodeId((t % nodes) as u32), cfs.make_block(t)) {
            acked.insert(id, t);
        } else {
            report.failed_writes += 1;
        }
    }
    report.acked_blocks = acked.len();

    let (stats, relocations) = RaidNode::encode_all(&cfs, cfg.map_tasks)?;
    report.encoded_stripes = stats.stripes;
    let mut relocations = relocations;
    relocations.retain(|&(b, from, _)| cfs.datanode(from).contains(b));
    let _ = RaidNode::relocate(&cfs, &relocations);

    // The healer is now on its own: detect the kills via heartbeats, drain
    // the degraded queues, scrub, converge.
    let mut healer = Healer::with_config(&cfs, cfg.healer.clone());
    report.heal = match healer.run_to_convergence() {
        Ok(stats) => stats,
        // Stalled: keep the partial stats (converged stays false).
        Err(_) => healer.stats().clone(),
    };

    report.violations_after_heal = scan(&cfs).len();
    count_redundancy(&cfs, &acked, &mut report);
    verify_heal_blocks(&cfs, &acked, k, &mut report);
    Ok(report)
}

/// Counts acked blocks still short of target redundancy, judged by the
/// injector's ground truth (not the detector's view): replicated blocks
/// must have their full replica count on live nodes, stripe members at
/// least one live copy.
fn count_redundancy(cfs: &MiniCfs, acked: &BTreeMap<BlockId, u64>, report: &mut HealSoakReport) {
    let inj = cfs.injector();
    let want = cfs.config().ear.replication().replicas();
    let live_copies = |b: BlockId| {
        cfs.namenode()
            .locations(b)
            .map_or(0, |locs| {
                locs.iter()
                    .filter(|&&h| !inj.node_down(h) && cfs.datanode(h).contains(b))
                    .count()
            })
    };
    let mut in_stripe: HashSet<BlockId> = HashSet::new();
    for es in cfs.namenode().encoded_stripes() {
        for &b in es.data.iter().chain(es.parity.iter()) {
            in_stripe.insert(b);
            if live_copies(b) == 0 {
                report.under_redundant += 1;
            }
        }
    }
    for &b in acked.keys() {
        if !in_stripe.contains(&b) && live_copies(b) < want {
            report.under_redundant += 1;
        }
    }
}

/// The loss invariant for heal soaks: same direct-inspection check as
/// [`verify_blocks`], against the healed cluster state.
fn verify_heal_blocks(
    cfs: &MiniCfs,
    acked: &BTreeMap<BlockId, u64>,
    k: usize,
    report: &mut HealSoakReport,
) {
    let mut scratch = ChaosReport::default();
    verify_blocks(cfs, acked, k, &mut scratch);
    report.lost_blocks = scratch.lost_blocks;
    report.blocks_beyond_tolerance = scratch.blocks_beyond_tolerance;
    report.stripes_beyond_tolerance = scratch.stripes_beyond_tolerance;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_plan_is_trivially_clean() {
        // corruption/transient rates of zero and no crashes: everything
        // must verify.
        let cfg = ChaosConfig {
            faults: FaultConfig {
                straggler_delay: ear_faults::DelayModel::Throttle,
                node_crashes: 0,
                rack_outages: 0,
                stragglers: 0,
                transient_error_rate: 0.0,
                corruption_rate: 0.0,
                ..FaultConfig::default()
            },
            ..ChaosConfig::light(ClusterPolicy::Ear)
        };
        let r = run_plan(7, &cfg).unwrap();
        assert!(r.passed(ClusterPolicy::Ear), "{r:?}");
        assert_eq!(r.failed_writes, 0);
        assert_eq!(r.stripes_beyond_tolerance, 0);
        assert!(r.stripes_verified >= 3);
    }

    #[test]
    fn verification_report_is_identical_across_shuffled_insertion_orders() {
        // Pins the HashMap→BTreeMap sweep: assembling the acked-block map in
        // any insertion order must yield a bit-identical verification
        // report. Some entries carry deliberately wrong tags so the
        // order-sensitive fields (lost_blocks) are actually exercised.
        let cfs =
            MiniCfs::new(chaos_cluster(&ChaosConfig::light(ClusterPolicy::Rr), 1).unwrap())
                .unwrap();
        let mut entries: Vec<(BlockId, u64)> = Vec::new();
        for tag in 0..12u64 {
            let id = cfs.write_block(NodeId(0), cfs.make_block(tag)).unwrap();
            // Every third block claims the wrong content tag, so
            // verification reports it lost.
            let claimed = if tag % 3 == 0 { tag + 100 } else { tag };
            entries.push((id, claimed));
        }

        let sorted: BTreeMap<BlockId, u64> = entries.iter().copied().collect();
        // A deterministic shuffle (reversed, then interleaved) of the same
        // entries.
        let mut shuffled_order = entries.clone();
        shuffled_order.reverse();
        shuffled_order.rotate_left(5);
        let shuffled: BTreeMap<BlockId, u64> = shuffled_order.into_iter().collect();

        let k = cfs.codec().params().k() as usize;
        let mut report_a = ChaosReport::default();
        verify_blocks(&cfs, &sorted, k, &mut report_a);
        let mut report_b = ChaosReport::default();
        verify_blocks(&cfs, &shuffled, k, &mut report_b);
        assert!(!report_a.lost_blocks.is_empty(), "wrong tags must surface");
        assert_eq!(format!("{report_a:?}"), format!("{report_b:?}"));

        let mut heal_a = HealSoakReport::default();
        count_redundancy(&cfs, &sorted, &mut heal_a);
        verify_heal_blocks(&cfs, &sorted, k, &mut heal_a);
        let mut heal_b = HealSoakReport::default();
        count_redundancy(&cfs, &shuffled, &mut heal_b);
        verify_heal_blocks(&cfs, &shuffled, k, &mut heal_b);
        assert_eq!(format!("{heal_a:?}"), format!("{heal_b:?}"));
    }

    #[test]
    fn report_is_deterministic_in_the_seed() {
        let cfg = ChaosConfig::heavy(ClusterPolicy::Ear);
        let a = run_plan(42, &cfg).unwrap();
        let b = run_plan(42, &cfg).unwrap();
        assert_eq!(a.plan, b.plan);
        assert_eq!(a.acked_blocks, b.acked_blocks);
        assert_eq!(a.lost_blocks, b.lost_blocks);
    }

    #[test]
    fn heal_soak_restores_redundancy_after_mid_run_kills() {
        let cfg = HealSoakConfig::default();
        let r = run_heal_plan(11, &cfg).unwrap();
        assert!(r.passed(), "{r:?}");
        assert!(r.acked_blocks > 0);
        assert!(r.heal.converged);
        assert!(r.heal.rounds <= cfg.healer.max_rounds);
    }

    #[test]
    fn fault_free_heal_soak_records_no_repairs() {
        let cfg = HealSoakConfig {
            kills: 0,
            faults: FaultConfig {
                straggler_delay: ear_faults::DelayModel::Throttle,
                node_crashes: 0,
                rack_outages: 0,
                stragglers: 0,
                straggler_factor: 1.0,
                transient_error_rate: 0.0,
                corruption_rate: 0.0,
                heartbeat_loss_rate: 0.0,
                crash_window: 1,
            },
            ..HealSoakConfig::default()
        };
        let r = run_heal_plan(5, &cfg).unwrap();
        assert!(r.passed(), "{r:?}");
        assert_eq!(r.failed_writes, 0);
        assert_eq!(r.heal.scrub_hits, 0);
        assert!(r.heal.mttr_rounds.is_none(), "nothing ever degraded");
    }
}
