//! Pipelined stripe encoding: the RapidRAID-style streaming alternative to
//! the RaidNode's gather-then-encode (DESIGN.md §15).
//!
//! The legacy gather path downloads all `k` source blocks to the encoding
//! node and encodes in one shot, so the encoding node ingests `k · B` bytes
//! and every source rack ships one block per co-located source. The
//! pipelined plan exploits GF(2⁸) linearity instead: parity rows are
//! running partial sums ([`StripeEncoder`]), so each *source rack* can fold
//! its blocks locally at an aggregator and ship the `m = n − k` partial
//! parity rows once, and the encoding node only ever holds one source block
//! plus the `m` running rows.
//!
//! The chain visits source racks in rack-major order (ascending rack id,
//! encoding rack last) and each hop ships the running partial exactly once.
//! A rack joins the chain as a folding hop only when it holds *more* source
//! blocks than there are parity rows (`s > m`) — folding a sparser rack
//! would ship `m · B` partial bytes where gather ships `s · B ≤ m · B` raw
//! bytes, so those racks ship raw blocks straight to the encoding node
//! exactly as gather does. Cross-rack bytes are therefore
//! `Σ min(sᵣ, m) · B` over non-core source racks: never above the gather
//! path, strictly below it whenever any rack co-locates more than `m`
//! source blocks. Under EAR every source has a core-rack replica, so both
//! paths are already at the information-theoretic floor (parity uploads
//! only) and the pipeline's win is the streaming memory/ingest profile.
//!
//! Every read goes through [`ClusterIo::read_nearest`] and every partial
//! hop through [`ClusterIo::stream_partial`], each under an encode-class
//! [`OpContext`] — a dead or breaker-open hop surfaces as a typed error
//! that the RaidNode turns into a legacy-gather fallback for the stripe.
//! The fold itself is the same generator arithmetic as the one-shot encode,
//! so the finished parity bytes are bit-identical to gather's.

use crate::cluster::MiniCfs;
use crate::io::DeadNodeSet;
use crate::namenode::PendingStripe;
use crate::reliability::OpClass;
use ear_erasure::StripeEncoder;
use ear_types::{BlockId, Error, NodeId, RackId, Result};
use std::collections::BTreeMap;

/// What a successful pipelined encode hands back to the RaidNode: parity
/// bytes bit-identical to the gather path's, plus the traffic accounting
/// the stripe's [`EncodeStats`](crate::EncodeStats) entry needs.
pub(crate) struct PipelineOutcome {
    /// The `n − k` parity shards, in generator row order.
    pub parity: Vec<Vec<u8>>,
    /// Source-block reads that were served from outside the reading node's
    /// rack (the same counter the gather path reports).
    pub cross_rack_downloads: usize,
}

/// One planned hop of the encode chain: the rack's aggregator node and the
/// `(source index, block)` pairs it folds locally.
struct ChainHop {
    aggregator: NodeId,
    sources: Vec<(usize, BlockId)>,
}

/// Encodes one stripe's parity by streaming partial folds along a
/// rack-major chain instead of gathering all `k` blocks at `enc`.
///
/// Nothing here mutates cluster metadata or stores any block: like the
/// gather download phase it is read-only, so the RaidNode's
/// transactionality argument (no metadata change until parity is durable)
/// is untouched, and any error return lets the caller retry via the legacy
/// gather path with the stripe fully intact.
///
/// # Errors
///
/// * [`Error::NodeDown`] when a chain hop or read finds a dead or
///   breaker-open node (the caller's cue to fall back to gather).
/// * [`Error::BlockUnavailable`] / [`Error::Invariant`] on missing
///   replicas or metadata inconsistencies.
/// * [`Error::DeadlineExceeded`] / [`Error::RetryBudgetExhausted`] /
///   [`Error::Overloaded`] from the reliability substrate — the caller
///   propagates these instead of retrying on the gather path.
pub(crate) fn encode_pipelined(
    cfs: &MiniCfs,
    stripe: &PendingStripe,
    enc: NodeId,
    dead: &DeadNodeSet,
) -> Result<PipelineOutcome> {
    let topo = cfs.topology();
    let enc_rack = topo.rack_of(enc);
    let m = cfs.codec().params().parity();

    // Plan: pick each source's preferred holder (the replica the gather
    // path would read: encoding rack first, then lowest rack, ties by node
    // index) and group sources by that holder's rack.
    let mut locations: Vec<Vec<NodeId>> = Vec::with_capacity(stripe.blocks.len());
    let mut by_rack: BTreeMap<RackId, Vec<(usize, BlockId, NodeId)>> = BTreeMap::new();
    for (idx, &block) in stripe.blocks.iter().enumerate() {
        let locs = cfs
            .namenode()
            .locations(block)
            .ok_or_else(|| Error::Invariant(format!("unknown {block}")))?;
        let holder = locs
            .iter()
            .copied()
            .filter(|&h| !dead.contains(h))
            .min_by_key(|&h| (topo.rack_of(h) != enc_rack, topo.rack_of(h).index(), h.index()))
            .or_else(|| locs.first().copied())
            .ok_or(Error::BlockUnavailable { block })?;
        by_rack
            .entry(topo.rack_of(holder))
            .or_default()
            .push((idx, block, holder));
        locations.push(locs);
    }

    // Racks worth folding locally (`s > m`, outside the encoding rack)
    // become chain hops at their lowest-indexed holder; everything else —
    // the encoding rack's sources and sparse racks' — is read straight to
    // `enc`, exactly as gather would.
    let mut chain: Vec<ChainHop> = Vec::new();
    let mut at_enc: Vec<(usize, BlockId)> = Vec::new();
    for (rack, group) in &by_rack {
        let fold_here = *rack != enc_rack && group.len() > m;
        if fold_here {
            let aggregator = group
                .iter()
                .map(|&(_, _, h)| h)
                .min_by_key(|h: &NodeId| h.index())
                .ok_or_else(|| Error::Invariant("empty pipeline rack group".into()))?;
            chain.push(ChainHop {
                aggregator,
                sources: group.iter().map(|&(idx, b, _)| (idx, b)).collect(),
            });
        } else {
            at_enc.extend(group.iter().map(|&(idx, b, _)| (idx, b)));
        }
    }

    // Walk the chain. The encoder *is* the travelling state: each hop folds
    // its rack's sources in, then the `m` partial rows ship once to the
    // next hop (the next aggregator, or finally `enc`).
    let mut encoder: Option<StripeEncoder> = None;
    let mut cross_rack_downloads = 0usize;
    let mut prev_hop: Option<NodeId> = None;
    for hop in &chain {
        if let Some(prev) = prev_hop {
            ship_partials(cfs, prev, hop.aggregator, &encoder)?;
        }
        for &(idx, block) in &hop.sources {
            cross_rack_downloads +=
                absorb_at(cfs, &mut encoder, hop.aggregator, idx, block, &locations, dead)?;
        }
        prev_hop = Some(hop.aggregator);
    }
    if let Some(prev) = prev_hop {
        ship_partials(cfs, prev, enc, &encoder)?;
    }
    for &(idx, block) in &at_enc {
        cross_rack_downloads += absorb_at(cfs, &mut encoder, enc, idx, block, &locations, dead)?;
    }

    let parity = encoder
        .ok_or_else(|| Error::Invariant("pipelined encode of an empty stripe".into()))?
        .finish()?;
    Ok(PipelineOutcome {
        parity,
        cross_rack_downloads,
    })
}

/// Reads source `block` to `node` through the shared nearest-replica policy
/// and folds it into the running encoder (created lazily at the first read,
/// sized to the observed shard length). Returns 1 if the serving replica
/// was outside `node`'s rack, 0 otherwise.
fn absorb_at(
    cfs: &MiniCfs,
    encoder: &mut Option<StripeEncoder>,
    node: NodeId,
    idx: usize,
    block: BlockId,
    locations: &[Vec<NodeId>],
    dead: &DeadNodeSet,
) -> Result<usize> {
    let replicas = locations
        .get(idx)
        .ok_or_else(|| Error::Invariant(format!("no planned replicas for source {idx}")))?;
    let ctx = cfs.reliability().ctx(OpClass::Encode)?;
    let (data, served_by) = cfs.io().read_nearest(&ctx, node, block, replicas, dead)?;
    let enc = encoder.get_or_insert_with(|| StripeEncoder::new(cfs.codec(), data.len()));
    enc.absorb_source(idx, &data)?;
    let topo = cfs.topology();
    Ok(usize::from(topo.rack_of(served_by) != topo.rack_of(node)))
}

/// Ships the encoder's `m` running partial rows from `src` to `dst` — one
/// chain hop, paying `m · shard_len` wire bytes under an encode-class
/// context.
fn ship_partials(
    cfs: &MiniCfs,
    src: NodeId,
    dst: NodeId,
    encoder: &Option<StripeEncoder>,
) -> Result<()> {
    let bytes: u64 = encoder
        .as_ref()
        .map(|e| e.partial_rows().map(|r| r.len() as u64).sum())
        .unwrap_or(0);
    if bytes == 0 {
        return Ok(());
    }
    let ctx = cfs.reliability().ctx(OpClass::Encode)?;
    cfs.io().stream_partial(&ctx, src, dst, bytes)
}
