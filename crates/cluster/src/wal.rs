//! NameNode write-ahead log and checkpoint (DESIGN.md §13).
//!
//! Every metadata mutation appends a CRC32C-framed record here *before* it
//! is acknowledged to the caller. On open, the log is replayed over the
//! most recent checkpoint to rebuild the metadata image; a torn tail (the
//! crash window of an in-flight append) is detected by the framing and
//! truncated, never surfaced.
//!
//! Layout under the meta directory:
//!
//! ```text
//! meta/
//! ├── CHECKPOINT        committed snapshot (tmp+rename, never in-place)
//! └── wal               framed record suffix: [len][crc32c][lsn|payload]*
//! ```
//!
//! Consistency protocol:
//!
//! - **Framing.** A frame is `len: u32 LE | crc: u32 LE | body`, where
//!   `body = lsn: u64 LE | record bytes` and `crc = crc32c(body)`. Replay
//!   stops at the first frame that is short, oversized, CRC-mismatched, or
//!   non-monotonic in LSN — that prefix property is what makes a torn last
//!   record indistinguishable from a clean end of log. A frame whose CRC
//!   verifies but whose body does not decode is *corruption*, not a torn
//!   tail, and surfaces as a typed [`Error::WalCorrupt`].
//! - **LSNs** increase by exactly 1 per append. The checkpoint stores the
//!   `last_lsn` observed *before* its snapshot was gathered; replay skips
//!   records at or below it. Records are deliberately re-apply-safe
//!   (absolute sets, add-if-absent, id-keyed seals/commits), so a record
//!   that raced into both the snapshot and the replayed suffix converges.
//! - **Checkpoints** are written to `CHECKPOINT.tmp`, fsynced, renamed over
//!   `CHECKPOINT`, and the directory fsynced — a crash leaves either the
//!   old or the new checkpoint, never a blend. Only after the rename does
//!   compaction rewrite the log (same tmp+rename dance), so every state on
//!   disk replays to the same image.

use ear_faults::crc32c;
use ear_types::{BlockId, Error, NodeId, RackId, Result, StripeId};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// File name of the framed record log inside the meta directory.
pub const WAL_FILE: &str = "wal";
/// File name of the committed checkpoint inside the meta directory.
pub const CHECKPOINT_FILE: &str = "CHECKPOINT";

/// Upper bound on one frame's body. A record holds at most a stripe's
/// worth of ids; a megabyte is orders of magnitude above that, so any
/// larger length field is treated as a torn header.
pub const MAX_RECORD: u32 = 1 << 20;

const CHECKPOINT_MAGIC: u32 = 0x4541_52C5; // "EAR" + checkpoint marker
const CHECKPOINT_VERSION: u32 = 1;

fn io_err(context: impl Into<String>) -> impl FnOnce(std::io::Error) -> Error {
    let context = context.into();
    move |e| Error::Io {
        context: format!("{context}: {e}"),
    }
}

fn corrupt(context: impl Into<String>) -> Error {
    Error::WalCorrupt {
        context: context.into(),
    }
}

// ---------------------------------------------------------------------------
// Record vocabulary
// ---------------------------------------------------------------------------

/// A [`ear_core::StripePlan`] in durable form. The live type validates on
/// construction (and panics on violations); this mirror re-validates on
/// [`PlanRecord::to_plan`] so corrupt bytes surface as typed errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanRecord {
    /// Replica nodes of each data block, in stripe order.
    pub layouts: Vec<Vec<NodeId>>,
    /// The stripe's core rack (EAR); `None` under random replication.
    pub core_rack: Option<RackId>,
    /// Target racks restricting post-encoding placement, if any.
    pub target_racks: Option<Vec<RackId>>,
    /// Layout-regeneration count per block (Theorem 1 telemetry).
    pub retries: Vec<u64>,
}

impl PlanRecord {
    /// Captures a live plan.
    pub fn from_plan(plan: &ear_core::StripePlan) -> Self {
        PlanRecord {
            layouts: plan
                .data_layouts()
                .iter()
                .map(|l| l.replicas.clone())
                .collect(),
            core_rack: plan.core_rack(),
            target_racks: plan.target_racks().map(<[RackId]>::to_vec),
            retries: plan.retries().iter().map(|&r| r as u64).collect(),
        }
    }

    /// Rebuilds the live plan, re-checking the invariants
    /// `StripePlan::new` / `BlockLayout::new` assert.
    ///
    /// # Errors
    ///
    /// [`Error::WalCorrupt`] if a layout is empty, has duplicate nodes, or
    /// the retry vector length disagrees with the layout count.
    pub fn to_plan(&self) -> Result<ear_core::StripePlan> {
        if self.retries.len() != self.layouts.len() {
            return Err(corrupt("plan record: retries/layouts length mismatch"));
        }
        let mut layouts = Vec::with_capacity(self.layouts.len());
        for replicas in &self.layouts {
            if replicas.is_empty() {
                return Err(corrupt("plan record: empty replica layout"));
            }
            let mut sorted = replicas.clone();
            sorted.sort_unstable();
            sorted.dedup();
            if sorted.len() != replicas.len() {
                return Err(corrupt("plan record: duplicate replica node"));
            }
            layouts.push(ear_core::BlockLayout::new(replicas.clone()));
        }
        Ok(ear_core::StripePlan::new(
            layouts,
            self.core_rack,
            self.target_racks.clone(),
            self.retries.iter().map(|&r| r as usize).collect(),
        ))
    }
}

/// One durable metadata mutation. Every variant is re-apply-safe: applying
/// a record twice (or over a snapshot that already contains its effect)
/// yields the same image as applying it once.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetaRecord {
    /// A block came into existence at `locations`. `assigned` is true for
    /// policy-placed data blocks (which enter the unsealed list) and false
    /// for registered parity blocks.
    Allocate {
        /// The new block's id.
        block: BlockId,
        /// Its initial replica locations.
        locations: Vec<NodeId>,
        /// Whether the layout was policy-assigned (data) or fixed (parity).
        assigned: bool,
    },
    /// A block's location set was replaced wholesale.
    SetLocations {
        /// The block.
        block: BlockId,
        /// The new complete location set.
        nodes: Vec<NodeId>,
    },
    /// One node was removed from a block's location set.
    DropLocation {
        /// The block.
        block: BlockId,
        /// The node declared lost.
        node: NodeId,
    },
    /// One node was added to a block's location set.
    AddLocation {
        /// The block.
        block: BlockId,
        /// The node a repaired copy landed on.
        node: NodeId,
    },
    /// The policy sealed a stripe: `blocks` leave the unsealed list and
    /// enter the pre-encoding store under `stripe`.
    SealStripe {
        /// The new stripe's id.
        stripe: StripeId,
        /// Its `k` data blocks in stripe order.
        blocks: Vec<BlockId>,
        /// The placement plan, in durable form.
        plan: PlanRecord,
    },
    /// A stripe finished encoding: it leaves the pre-encoding store and its
    /// data + parity ids are recorded.
    EncodeCommit {
        /// The encoded stripe.
        stripe: StripeId,
        /// Data block ids in generator order.
        data: Vec<BlockId>,
        /// Parity block ids in generator-row order.
        parity: Vec<BlockId>,
    },
}

// ---------------------------------------------------------------------------
// Binary encoding (little-endian, length-prefixed, panic-free decode)
// ---------------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_nodes(out: &mut Vec<u8>, nodes: &[NodeId]) {
    put_u32(out, nodes.len() as u32);
    for n in nodes {
        put_u32(out, n.0);
    }
}

fn put_blocks(out: &mut Vec<u8>, blocks: &[BlockId]) {
    put_u32(out, blocks.len() as u32);
    for b in blocks {
        put_u64(out, b.0);
    }
}

/// Takes the next `n` bytes of `buf` at `*pos`, advancing the cursor.
/// Returns `None` on underrun — the decoder's only failure mode, mapped to
/// [`Error::WalCorrupt`] at the call boundary.
fn take<'a>(buf: &'a [u8], pos: &mut usize, n: usize) -> Option<&'a [u8]> {
    let end = pos.checked_add(n)?;
    let slice = buf.get(*pos..end)?;
    *pos = end;
    Some(slice)
}

fn get_u8(buf: &[u8], pos: &mut usize) -> Option<u8> {
    take(buf, pos, 1).map(|s| s.iter().copied().next().unwrap_or(0))
}

fn get_u32(buf: &[u8], pos: &mut usize) -> Option<u32> {
    let s = take(buf, pos, 4)?;
    let mut b = [0u8; 4];
    b.copy_from_slice(s);
    Some(u32::from_le_bytes(b))
}

fn get_u64(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let s = take(buf, pos, 8)?;
    let mut b = [0u8; 8];
    b.copy_from_slice(s);
    Some(u64::from_le_bytes(b))
}

/// Reads a `u32` count and rejects counts the remaining bytes cannot hold
/// (`elem` = bytes per element) — a cheap guard against huge allocations
/// from corrupt length fields.
fn get_count(buf: &[u8], pos: &mut usize, elem: usize) -> Option<usize> {
    let n = get_u32(buf, pos)? as usize;
    let need = n.checked_mul(elem)?;
    if buf.len().saturating_sub(*pos) < need {
        return None;
    }
    Some(n)
}

fn get_nodes(buf: &[u8], pos: &mut usize) -> Option<Vec<NodeId>> {
    let n = get_count(buf, pos, 4)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(NodeId(get_u32(buf, pos)?));
    }
    Some(out)
}

fn get_blocks(buf: &[u8], pos: &mut usize) -> Option<Vec<BlockId>> {
    let n = get_count(buf, pos, 8)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(BlockId(get_u64(buf, pos)?));
    }
    Some(out)
}

fn put_plan(out: &mut Vec<u8>, plan: &PlanRecord) {
    put_u32(out, plan.layouts.len() as u32);
    for layout in &plan.layouts {
        put_nodes(out, layout);
    }
    match plan.core_rack {
        Some(r) => {
            out.push(1);
            put_u32(out, r.0);
        }
        None => out.push(0),
    }
    match &plan.target_racks {
        Some(racks) => {
            out.push(1);
            put_u32(out, racks.len() as u32);
            for r in racks {
                put_u32(out, r.0);
            }
        }
        None => out.push(0),
    }
    put_u32(out, plan.retries.len() as u32);
    for &r in &plan.retries {
        put_u64(out, r);
    }
}

fn get_plan(buf: &[u8], pos: &mut usize) -> Option<PlanRecord> {
    let n = get_count(buf, pos, 4)?;
    let mut layouts = Vec::with_capacity(n);
    for _ in 0..n {
        layouts.push(get_nodes(buf, pos)?);
    }
    let core_rack = match get_u8(buf, pos)? {
        0 => None,
        1 => Some(RackId(get_u32(buf, pos)?)),
        _ => return None,
    };
    let target_racks = match get_u8(buf, pos)? {
        0 => None,
        1 => {
            let n = get_count(buf, pos, 4)?;
            let mut racks = Vec::with_capacity(n);
            for _ in 0..n {
                racks.push(RackId(get_u32(buf, pos)?));
            }
            Some(racks)
        }
        _ => return None,
    };
    let n = get_count(buf, pos, 8)?;
    let mut retries = Vec::with_capacity(n);
    for _ in 0..n {
        retries.push(get_u64(buf, pos)?);
    }
    Some(PlanRecord {
        layouts,
        core_rack,
        target_racks,
        retries,
    })
}

const TAG_ALLOCATE: u8 = 1;
const TAG_SET_LOCATIONS: u8 = 2;
const TAG_DROP_LOCATION: u8 = 3;
const TAG_ADD_LOCATION: u8 = 4;
const TAG_SEAL_STRIPE: u8 = 5;
const TAG_ENCODE_COMMIT: u8 = 6;

impl MetaRecord {
    /// Appends this record's byte form to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            MetaRecord::Allocate {
                block,
                locations,
                assigned,
            } => {
                out.push(TAG_ALLOCATE);
                put_u64(out, block.0);
                out.push(u8::from(*assigned));
                put_nodes(out, locations);
            }
            MetaRecord::SetLocations { block, nodes } => {
                out.push(TAG_SET_LOCATIONS);
                put_u64(out, block.0);
                put_nodes(out, nodes);
            }
            MetaRecord::DropLocation { block, node } => {
                out.push(TAG_DROP_LOCATION);
                put_u64(out, block.0);
                put_u32(out, node.0);
            }
            MetaRecord::AddLocation { block, node } => {
                out.push(TAG_ADD_LOCATION);
                put_u64(out, block.0);
                put_u32(out, node.0);
            }
            MetaRecord::SealStripe {
                stripe,
                blocks,
                plan,
            } => {
                out.push(TAG_SEAL_STRIPE);
                put_u64(out, stripe.0);
                put_blocks(out, blocks);
                put_plan(out, plan);
            }
            MetaRecord::EncodeCommit {
                stripe,
                data,
                parity,
            } => {
                out.push(TAG_ENCODE_COMMIT);
                put_u64(out, stripe.0);
                put_blocks(out, data);
                put_blocks(out, parity);
            }
        }
    }

    /// Decodes one record from `buf`, requiring full consumption.
    pub fn decode(buf: &[u8]) -> Option<MetaRecord> {
        let mut pos = 0usize;
        let rec = match get_u8(buf, &mut pos)? {
            TAG_ALLOCATE => {
                let block = BlockId(get_u64(buf, &mut pos)?);
                let assigned = match get_u8(buf, &mut pos)? {
                    0 => false,
                    1 => true,
                    _ => return None,
                };
                let locations = get_nodes(buf, &mut pos)?;
                MetaRecord::Allocate {
                    block,
                    locations,
                    assigned,
                }
            }
            TAG_SET_LOCATIONS => MetaRecord::SetLocations {
                block: BlockId(get_u64(buf, &mut pos)?),
                nodes: get_nodes(buf, &mut pos)?,
            },
            TAG_DROP_LOCATION => MetaRecord::DropLocation {
                block: BlockId(get_u64(buf, &mut pos)?),
                node: NodeId(get_u32(buf, &mut pos)?),
            },
            TAG_ADD_LOCATION => MetaRecord::AddLocation {
                block: BlockId(get_u64(buf, &mut pos)?),
                node: NodeId(get_u32(buf, &mut pos)?),
            },
            TAG_SEAL_STRIPE => MetaRecord::SealStripe {
                stripe: StripeId(get_u64(buf, &mut pos)?),
                blocks: get_blocks(buf, &mut pos)?,
                plan: get_plan(buf, &mut pos)?,
            },
            TAG_ENCODE_COMMIT => MetaRecord::EncodeCommit {
                stripe: StripeId(get_u64(buf, &mut pos)?),
                data: get_blocks(buf, &mut pos)?,
                parity: get_blocks(buf, &mut pos)?,
            },
            _ => return None,
        };
        (pos == buf.len()).then_some(rec)
    }
}

// ---------------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------------

/// Durable per-block metadata.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BlockRec {
    /// Current replica locations.
    pub locations: Vec<NodeId>,
    /// The allocation-time layout (data blocks only; `None` for parity).
    pub assigned: Option<Vec<NodeId>>,
}

/// A stripe awaiting encoding, in durable form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StripeEntry {
    /// The stripe's id.
    pub id: StripeId,
    /// Its data blocks in stripe order.
    pub blocks: Vec<BlockId>,
    /// Its placement plan.
    pub plan: PlanRecord,
}

/// An encoded stripe, in durable form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedEntry {
    /// The stripe's id.
    pub id: StripeId,
    /// Data block ids in generator order.
    pub data: Vec<BlockId>,
    /// Parity block ids in generator-row order.
    pub parity: Vec<BlockId>,
}

/// The complete durable metadata image: what a checkpoint stores and what
/// replay rebuilds. Ordered containers only (L2 determinism): two
/// snapshots of equal state compare and encode bit-identically.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetaSnapshot {
    /// Every known block, keyed (and therefore iterated) by id.
    pub blocks: BTreeMap<BlockId, BlockRec>,
    /// Blocks allocated but not yet sealed into a stripe, in seal order.
    pub unsealed: Vec<BlockId>,
    /// Stripes awaiting encoding, in stripe-id order.
    pub pending: Vec<StripeEntry>,
    /// Encoded stripes, in stripe-id order.
    pub encoded: Vec<EncodedEntry>,
    /// Next block id to allocate.
    pub next_block: u64,
    /// Next stripe id to seal.
    pub next_stripe: u64,
}

impl MetaSnapshot {
    /// Applies one record. Re-apply-safe: `apply(r); apply(r)` equals
    /// `apply(r)` for every record, which is what lets replay run over a
    /// checkpoint whose snapshot already absorbed a suffix of the log.
    pub fn apply(&mut self, rec: &MetaRecord) {
        match rec {
            MetaRecord::Allocate {
                block,
                locations,
                assigned,
            } => {
                self.blocks.insert(
                    *block,
                    BlockRec {
                        locations: locations.clone(),
                        assigned: assigned.then(|| locations.clone()),
                    },
                );
                if *assigned && !self.unsealed.contains(block) {
                    self.unsealed.push(*block);
                }
                self.next_block = self.next_block.max(block.0 + 1);
            }
            MetaRecord::SetLocations { block, nodes } => {
                self.blocks.entry(*block).or_default().locations = nodes.clone();
            }
            MetaRecord::DropLocation { block, node } => {
                if let Some(meta) = self.blocks.get_mut(block) {
                    meta.locations.retain(|n| n != node);
                }
            }
            MetaRecord::AddLocation { block, node } => {
                let meta = self.blocks.entry(*block).or_default();
                if !meta.locations.contains(node) {
                    meta.locations.push(*node);
                }
            }
            MetaRecord::SealStripe {
                stripe,
                blocks,
                plan,
            } => {
                self.unsealed.retain(|b| !blocks.contains(b));
                if !self.pending.iter().any(|s| s.id == *stripe)
                    && !self.encoded.iter().any(|s| s.id == *stripe)
                {
                    self.pending.push(StripeEntry {
                        id: *stripe,
                        blocks: blocks.clone(),
                        plan: plan.clone(),
                    });
                    self.pending.sort_by_key(|s| s.id);
                }
                self.next_stripe = self.next_stripe.max(stripe.0 + 1);
            }
            MetaRecord::EncodeCommit {
                stripe,
                data,
                parity,
            } => {
                self.pending.retain(|s| s.id != *stripe);
                if !self.encoded.iter().any(|s| s.id == *stripe) {
                    self.encoded.push(EncodedEntry {
                        id: *stripe,
                        data: data.clone(),
                        parity: parity.clone(),
                    });
                    self.encoded.sort_by_key(|s| s.id);
                }
                self.next_stripe = self.next_stripe.max(stripe.0 + 1);
            }
        }
    }

    /// Byte form of the snapshot (the checkpoint payload).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_u64(&mut out, self.blocks.len() as u64);
        for (id, meta) in &self.blocks {
            put_u64(&mut out, id.0);
            put_nodes(&mut out, &meta.locations);
            match &meta.assigned {
                Some(nodes) => {
                    out.push(1);
                    put_nodes(&mut out, nodes);
                }
                None => out.push(0),
            }
        }
        put_blocks(&mut out, &self.unsealed);
        put_u32(&mut out, self.pending.len() as u32);
        for s in &self.pending {
            put_u64(&mut out, s.id.0);
            put_blocks(&mut out, &s.blocks);
            put_plan(&mut out, &s.plan);
        }
        put_u32(&mut out, self.encoded.len() as u32);
        for s in &self.encoded {
            put_u64(&mut out, s.id.0);
            put_blocks(&mut out, &s.data);
            put_blocks(&mut out, &s.parity);
        }
        put_u64(&mut out, self.next_block);
        put_u64(&mut out, self.next_stripe);
        out
    }

    /// Decodes a snapshot, requiring full consumption.
    pub fn decode(buf: &[u8]) -> Option<MetaSnapshot> {
        let mut pos = 0usize;
        let n_blocks = get_u64(buf, &mut pos)? as usize;
        // Each block entry is ≥ 17 bytes; reject counts the buffer can't hold.
        if buf.len().saturating_sub(pos) < n_blocks.checked_mul(17)? {
            return None;
        }
        let mut blocks = BTreeMap::new();
        for _ in 0..n_blocks {
            let id = BlockId(get_u64(buf, &mut pos)?);
            let locations = get_nodes(buf, &mut pos)?;
            let assigned = match get_u8(buf, &mut pos)? {
                0 => None,
                1 => Some(get_nodes(buf, &mut pos)?),
                _ => return None,
            };
            blocks.insert(
                id,
                BlockRec {
                    locations,
                    assigned,
                },
            );
        }
        let unsealed = get_blocks(buf, &mut pos)?;
        let n = get_count(buf, &mut pos, 8)?;
        let mut pending = Vec::with_capacity(n);
        for _ in 0..n {
            pending.push(StripeEntry {
                id: StripeId(get_u64(buf, &mut pos)?),
                blocks: get_blocks(buf, &mut pos)?,
                plan: get_plan(buf, &mut pos)?,
            });
        }
        let n = get_count(buf, &mut pos, 8)?;
        let mut encoded = Vec::with_capacity(n);
        for _ in 0..n {
            encoded.push(EncodedEntry {
                id: StripeId(get_u64(buf, &mut pos)?),
                data: get_blocks(buf, &mut pos)?,
                parity: get_blocks(buf, &mut pos)?,
            });
        }
        let next_block = get_u64(buf, &mut pos)?;
        let next_stripe = get_u64(buf, &mut pos)?;
        (pos == buf.len()).then_some(MetaSnapshot {
            blocks,
            unsealed,
            pending,
            encoded,
            next_block,
            next_stripe,
        })
    }
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Frames one record at `lsn`: `len | crc32c(body) | body` with
/// `body = lsn | record`.
pub fn encode_frame(lsn: u64, rec: &MetaRecord) -> Vec<u8> {
    let mut body = Vec::new();
    put_u64(&mut body, lsn);
    rec.encode(&mut body);
    let mut out = Vec::with_capacity(body.len() + 8);
    put_u32(&mut out, body.len() as u32);
    put_u32(&mut out, crc32c(&body));
    out.extend_from_slice(&body);
    out
}

/// Byte form of a committed checkpoint at `last_lsn`.
pub fn encode_checkpoint(snap: &MetaSnapshot, last_lsn: u64) -> Vec<u8> {
    let payload = snap.encode();
    let mut out = Vec::with_capacity(payload.len() + 24);
    put_u32(&mut out, CHECKPOINT_MAGIC);
    put_u32(&mut out, CHECKPOINT_VERSION);
    put_u64(&mut out, last_lsn);
    put_u32(&mut out, payload.len() as u32);
    put_u32(&mut out, crc32c(&payload));
    out.extend_from_slice(&payload);
    out
}

fn decode_checkpoint(buf: &[u8]) -> Result<(MetaSnapshot, u64)> {
    let mut pos = 0usize;
    let magic = get_u32(buf, &mut pos).ok_or_else(|| corrupt("checkpoint header truncated"))?;
    if magic != CHECKPOINT_MAGIC {
        return Err(corrupt("checkpoint magic mismatch"));
    }
    let version = get_u32(buf, &mut pos).ok_or_else(|| corrupt("checkpoint header truncated"))?;
    if version != CHECKPOINT_VERSION {
        return Err(corrupt(format!("unknown checkpoint version {version}")));
    }
    let last_lsn = get_u64(buf, &mut pos).ok_or_else(|| corrupt("checkpoint header truncated"))?;
    let len = get_u32(buf, &mut pos).ok_or_else(|| corrupt("checkpoint header truncated"))?;
    let crc = get_u32(buf, &mut pos).ok_or_else(|| corrupt("checkpoint header truncated"))?;
    let payload = take(buf, &mut pos, len as usize)
        .ok_or_else(|| corrupt("checkpoint payload truncated"))?;
    if pos != buf.len() {
        return Err(corrupt("checkpoint has trailing bytes"));
    }
    if crc32c(payload) != crc {
        return Err(corrupt("checkpoint payload crc mismatch"));
    }
    let snap =
        MetaSnapshot::decode(payload).ok_or_else(|| corrupt("checkpoint payload undecodable"))?;
    Ok((snap, last_lsn))
}

/// Outcome of scanning a log image: the decoded `(lsn, record)` prefix and
/// the byte length of that valid prefix (everything past it is a torn
/// tail).
///
/// # Errors
///
/// [`Error::WalCorrupt`] for a frame whose CRC verifies but whose body does
/// not decode — real corruption, distinct from a torn append.
pub fn scan_log(buf: &[u8]) -> Result<(Vec<(u64, MetaRecord)>, usize)> {
    let mut records = Vec::new();
    let mut pos = 0usize;
    let mut expected_lsn: Option<u64> = None;
    loop {
        let frame_start = pos;
        let mut cursor = pos;
        let Some(len) = get_u32(buf, &mut cursor) else {
            return Ok((records, frame_start));
        };
        let Some(crc) = get_u32(buf, &mut cursor) else {
            return Ok((records, frame_start));
        };
        if !(8..=MAX_RECORD).contains(&len) {
            return Ok((records, frame_start));
        }
        let Some(body) = take(buf, &mut cursor, len as usize) else {
            return Ok((records, frame_start));
        };
        if crc32c(body) != crc {
            return Ok((records, frame_start));
        }
        let mut bpos = 0usize;
        // The u64 take cannot fail: len >= 8 was checked above.
        let Some(lsn) = get_u64(body, &mut bpos) else {
            return Ok((records, frame_start));
        };
        if let Some(expected) = expected_lsn {
            if lsn != expected {
                return Ok((records, frame_start));
            }
        }
        let rec = body
            .get(8..)
            .and_then(MetaRecord::decode)
            .ok_or_else(|| corrupt(format!("record at lsn {lsn} has valid crc but no decoding")))?;
        records.push((lsn, rec));
        expected_lsn = Some(lsn + 1);
        pos = cursor;
    }
}

// ---------------------------------------------------------------------------
// MetaWal
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct WalInner {
    file: File,
    last_lsn: u64,
    since_checkpoint: u64,
}

/// The open write-ahead log of one NameNode.
///
/// Lock order: `wal` is the finest class (DESIGN.md §11) — it is taken
/// while a location shard or the stripe mutex is held (so log order equals
/// apply order) and never takes another lock itself.
#[derive(Debug)]
pub struct MetaWal {
    dir: PathBuf,
    sync: bool,
    checkpoint_every: u64,
    wal: Mutex<WalInner>,
}

fn fsync_dir(dir: &Path) -> Result<()> {
    File::open(dir)
        .and_then(|d| d.sync_all())
        .map_err(io_err(format!("fsync dir {}", dir.display())))
}

impl MetaWal {
    /// Opens (or creates) the log under `dir`, recovering the metadata
    /// image: checkpoint (if any) plus the valid log suffix. A torn tail
    /// is truncated in place; stale `.tmp` files from an interrupted
    /// checkpoint are removed.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] for host failures, [`Error::WalCorrupt`] for a
    /// corrupt committed checkpoint or a CRC-valid-but-undecodable record.
    pub fn open(dir: &Path, sync: bool, checkpoint_every: u64) -> Result<(MetaWal, MetaSnapshot)> {
        fs::create_dir_all(dir).map_err(io_err(format!("create {}", dir.display())))?;
        fn remove_stale(stale: &Path) -> Result<()> {
            match fs::remove_file(stale) {
                Ok(()) => Ok(()),
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
                Err(e) => Err(io_err(format!("remove {}", stale.display()))(e)),
            }
        }
        remove_stale(&dir.join(format!("{CHECKPOINT_FILE}.tmp")))?;
        remove_stale(&dir.join(format!("{WAL_FILE}.tmp")))?;

        let ckpt_path = dir.join(CHECKPOINT_FILE);
        let (mut snap, ckpt_lsn) = match fs::read(&ckpt_path) {
            Ok(bytes) => decode_checkpoint(&bytes)?,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => (MetaSnapshot::default(), 0),
            Err(e) => return Err(io_err(format!("read {}", ckpt_path.display()))(e)),
        };

        let wal_path = dir.join(WAL_FILE);
        let image = match fs::read(&wal_path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(io_err(format!("read {}", wal_path.display()))(e)),
        };
        let (records, valid_len) = scan_log(&image)?;
        let mut last_lsn = ckpt_lsn;
        let mut replayed = 0u64;
        for (lsn, rec) in &records {
            if *lsn > ckpt_lsn {
                snap.apply(rec);
                replayed += 1;
            }
            last_lsn = last_lsn.max(*lsn);
        }

        let file = OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(&wal_path)
            .map_err(io_err(format!("open {}", wal_path.display())))?;
        if valid_len < image.len() {
            // Torn tail from an interrupted append: cut it so the next
            // append starts at a frame boundary.
            file.set_len(valid_len as u64)
                .map_err(io_err("truncate torn wal tail"))?;
            if sync {
                file.sync_all().map_err(io_err("fsync truncated wal"))?;
            }
        }

        let wal = MetaWal {
            dir: dir.to_path_buf(),
            sync,
            checkpoint_every: checkpoint_every.max(1),
            wal: Mutex::new(WalInner {
                file,
                last_lsn,
                since_checkpoint: replayed,
            }),
        };
        Ok((wal, snap))
    }

    /// Appends one record, fsyncing before return when the log is in
    /// synchronous mode, and returns its LSN. Once this returns, the
    /// mutation is durable — callers acknowledge only after.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] if the write or fsync fails.
    pub fn append(&self, rec: &MetaRecord) -> Result<u64> {
        let mut wal = self.wal.lock();
        let lsn = wal.last_lsn + 1;
        let frame = encode_frame(lsn, rec);
        wal.file
            .write_all(&frame)
            .map_err(io_err("append wal record"))?;
        if self.sync {
            wal.file.sync_data().map_err(io_err("fsync wal append"))?;
        }
        wal.last_lsn = lsn;
        wal.since_checkpoint += 1;
        Ok(lsn)
    }

    /// LSN of the most recent append (0 if none ever happened).
    pub fn last_lsn(&self) -> u64 {
        self.wal.lock().last_lsn
    }

    /// Whether enough records accumulated since the last checkpoint to
    /// warrant another one.
    pub fn should_checkpoint(&self) -> bool {
        self.wal.lock().since_checkpoint >= self.checkpoint_every
    }

    /// Commits `snap` as the new checkpoint and compacts the log.
    ///
    /// `last_lsn` must be the log position read *before* `snap` was
    /// gathered: any record that raced in between is in the snapshot
    /// already *and* stays in the compacted log, which is safe because
    /// records are re-apply-safe.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] if any write, fsync, or rename fails.
    pub fn checkpoint(&self, snap: &MetaSnapshot, last_lsn: u64) -> Result<()> {
        let bytes = encode_checkpoint(snap, last_lsn);
        let tmp = self.dir.join(format!("{CHECKPOINT_FILE}.tmp"));
        let dst = self.dir.join(CHECKPOINT_FILE);
        {
            let mut f = File::create(&tmp).map_err(io_err(format!("create {}", tmp.display())))?;
            f.write_all(&bytes).map_err(io_err("write checkpoint"))?;
            if self.sync {
                f.sync_all().map_err(io_err("fsync checkpoint"))?;
            }
        }
        fs::rename(&tmp, &dst).map_err(io_err("commit checkpoint rename"))?;
        if self.sync {
            fsync_dir(&self.dir)?;
        }

        // The checkpoint is committed; now drop the log prefix it covers.
        // A crash anywhere in here leaves either the old (uncompacted) log
        // — replay just skips lsn ≤ last_lsn — or the new one.
        let mut wal = self.wal.lock();
        let wal_path = self.dir.join(WAL_FILE);
        let image = fs::read(&wal_path).map_err(io_err("read wal for compaction"))?;
        let (records, _) = scan_log(&image)?;
        let mut kept = Vec::new();
        for (lsn, rec) in &records {
            if *lsn > last_lsn {
                kept.extend_from_slice(&encode_frame(*lsn, rec));
            }
        }
        let tmp = self.dir.join(format!("{WAL_FILE}.tmp"));
        {
            let mut f = File::create(&tmp).map_err(io_err(format!("create {}", tmp.display())))?;
            f.write_all(&kept).map_err(io_err("write compacted wal"))?;
            if self.sync {
                f.sync_all().map_err(io_err("fsync compacted wal"))?;
            }
        }
        fs::rename(&tmp, &wal_path).map_err(io_err("commit compacted wal rename"))?;
        if self.sync {
            fsync_dir(&self.dir)?;
        }
        wal.file = OpenOptions::new()
            .read(true)
            .append(true)
            .open(&wal_path)
            .map_err(io_err("reopen compacted wal"))?;
        wal.since_checkpoint = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    fn tmp_dir() -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "ear-wal-test-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::SeqCst)
        ));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn sample_records() -> Vec<MetaRecord> {
        vec![
            MetaRecord::Allocate {
                block: BlockId(0),
                locations: vec![NodeId(1), NodeId(2), NodeId(3)],
                assigned: true,
            },
            MetaRecord::Allocate {
                block: BlockId(1),
                locations: vec![NodeId(4)],
                assigned: false,
            },
            MetaRecord::AddLocation {
                block: BlockId(0),
                node: NodeId(9),
            },
            MetaRecord::DropLocation {
                block: BlockId(0),
                node: NodeId(1),
            },
            MetaRecord::SealStripe {
                stripe: StripeId(0),
                blocks: vec![BlockId(0)],
                plan: PlanRecord {
                    layouts: vec![vec![NodeId(1), NodeId(2), NodeId(3)]],
                    core_rack: Some(RackId(1)),
                    target_racks: Some(vec![RackId(0), RackId(2)]),
                    retries: vec![2],
                },
            },
            MetaRecord::SetLocations {
                block: BlockId(0),
                nodes: vec![NodeId(2)],
            },
            MetaRecord::EncodeCommit {
                stripe: StripeId(0),
                data: vec![BlockId(0)],
                parity: vec![BlockId(1)],
            },
        ]
    }

    #[test]
    fn records_round_trip_through_bytes() {
        for rec in sample_records() {
            let mut buf = Vec::new();
            rec.encode(&mut buf);
            assert_eq!(MetaRecord::decode(&buf), Some(rec.clone()), "{rec:?}");
            // Truncations never decode.
            for cut in 0..buf.len() {
                assert_eq!(MetaRecord::decode(&buf[..cut]), None, "cut={cut} {rec:?}");
            }
        }
    }

    #[test]
    fn snapshot_round_trips_and_apply_is_idempotent() {
        let mut snap = MetaSnapshot::default();
        for rec in sample_records() {
            snap.apply(&rec);
        }
        let bytes = snap.encode();
        assert_eq!(MetaSnapshot::decode(&bytes), Some(snap.clone()));

        let mut twice = MetaSnapshot::default();
        for rec in sample_records() {
            twice.apply(&rec);
            twice.apply(&rec);
        }
        assert_eq!(twice, snap, "double-apply must converge");
    }

    #[test]
    fn append_and_reopen_recovers_everything() {
        let dir = tmp_dir();
        let (wal, snap) = MetaWal::open(&dir, true, 1000).unwrap();
        assert_eq!(snap, MetaSnapshot::default());
        let mut expected = MetaSnapshot::default();
        for rec in sample_records() {
            wal.append(&rec).unwrap();
            expected.apply(&rec);
        }
        assert_eq!(wal.last_lsn(), sample_records().len() as u64);
        drop(wal);

        let (wal, recovered) = MetaWal::open(&dir, true, 1000).unwrap();
        assert_eq!(recovered, expected);
        assert_eq!(wal.last_lsn(), sample_records().len() as u64);
        drop(wal);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_not_surfaced() {
        let dir = tmp_dir();
        let (wal, _) = MetaWal::open(&dir, true, 1000).unwrap();
        let recs = sample_records();
        for rec in &recs {
            wal.append(rec).unwrap();
        }
        drop(wal);
        let wal_path = dir.join(WAL_FILE);
        let image = fs::read(&wal_path).unwrap();
        // Cut mid-way through the last frame.
        fs::write(&wal_path, &image[..image.len() - 3]).unwrap();

        let (wal, recovered) = MetaWal::open(&dir, true, 1000).unwrap();
        let mut expected = MetaSnapshot::default();
        for rec in &recs[..recs.len() - 1] {
            expected.apply(rec);
        }
        assert_eq!(recovered, expected);
        // The torn bytes were physically removed; a fresh append lands at
        // a clean frame boundary and the log replays in full.
        wal.append(recs.last().unwrap()).unwrap();
        drop(wal);
        let (_, again) = MetaWal::open(&dir, true, 1000).unwrap();
        let mut full = MetaSnapshot::default();
        for rec in &recs {
            full.apply(rec);
        }
        assert_eq!(again, full);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_compacts_and_recovers() {
        let dir = tmp_dir();
        let (wal, _) = MetaWal::open(&dir, true, 4).unwrap();
        let recs = sample_records();
        let mut snap = MetaSnapshot::default();
        for rec in &recs[..4] {
            wal.append(rec).unwrap();
            snap.apply(rec);
        }
        assert!(wal.should_checkpoint());
        let l0 = wal.last_lsn();
        wal.checkpoint(&snap, l0).unwrap();
        assert!(!wal.should_checkpoint());
        for rec in &recs[4..] {
            wal.append(rec).unwrap();
        }
        drop(wal);

        // The compacted log holds only the suffix.
        let image = fs::read(dir.join(WAL_FILE)).unwrap();
        let (records, valid) = scan_log(&image).unwrap();
        assert_eq!(valid, image.len());
        assert_eq!(records.len(), recs.len() - 4);
        assert_eq!(records.first().unwrap().0, l0 + 1);

        let (_, recovered) = MetaWal::open(&dir, true, 4).unwrap();
        let mut expected = MetaSnapshot::default();
        for rec in &recs {
            expected.apply(rec);
        }
        assert_eq!(recovered, expected);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_checkpoint_is_a_typed_error() {
        let dir = tmp_dir();
        let (wal, _) = MetaWal::open(&dir, true, 1000).unwrap();
        let mut snap = MetaSnapshot::default();
        for rec in sample_records() {
            wal.append(&rec).unwrap();
            snap.apply(&rec);
        }
        wal.checkpoint(&snap, wal.last_lsn()).unwrap();
        drop(wal);
        let ckpt = dir.join(CHECKPOINT_FILE);
        let mut bytes = fs::read(&ckpt).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&ckpt, &bytes).unwrap();
        match MetaWal::open(&dir, true, 1000) {
            Err(Error::WalCorrupt { .. }) => {}
            other => panic!("expected WalCorrupt, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crc_valid_but_undecodable_record_is_corruption() {
        let dir = tmp_dir();
        fs::create_dir_all(&dir).unwrap();
        // A frame with a bogus tag but a correct CRC.
        let mut body = Vec::new();
        put_u64(&mut body, 1);
        body.push(0xEE);
        let mut frame = Vec::new();
        put_u32(&mut frame, body.len() as u32);
        put_u32(&mut frame, crc32c(&body));
        frame.extend_from_slice(&body);
        fs::write(dir.join(WAL_FILE), &frame).unwrap();
        match MetaWal::open(&dir, true, 1000) {
            Err(Error::WalCorrupt { .. }) => {}
            other => panic!("expected WalCorrupt, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn plan_record_validates_on_rebuild() {
        let good = PlanRecord {
            layouts: vec![vec![NodeId(0), NodeId(1)]],
            core_rack: None,
            target_racks: None,
            retries: vec![0],
        };
        let plan = good.to_plan().unwrap();
        assert_eq!(PlanRecord::from_plan(&plan), good);

        let dup = PlanRecord {
            layouts: vec![vec![NodeId(0), NodeId(0)]],
            ..good.clone()
        };
        assert!(matches!(dup.to_plan(), Err(Error::WalCorrupt { .. })));
        let empty = PlanRecord {
            layouts: vec![vec![]],
            ..good.clone()
        };
        assert!(matches!(empty.to_plan(), Err(Error::WalCorrupt { .. })));
        let skew = PlanRecord {
            retries: vec![0, 1],
            ..good
        };
        assert!(matches!(skew.to_plan(), Err(Error::WalCorrupt { .. })));
    }
}
