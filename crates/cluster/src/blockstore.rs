//! Pluggable block storage backends for the DataNodes (DESIGN.md §9).
//!
//! [`BlockStore`] is the seam between a DataNode's protocol surface and how
//! the replica bytes actually live on the machine. Payloads cross the seam
//! as [`Block`]s — shared immutable buffers — so a read never copies bytes
//! it can reference. Two backends ship:
//!
//! * [`ShardedMemStore`] — lock-striped in-memory `HashMap`s. Reads clone
//!   the stored `Block` (three words), so replicas of the same block share
//!   memory across nodes and a reader never copies payload bytes.
//! * [`FileStore`] — one file per block under a per-store temp root
//!   (`<root>/<block>.blk`, a 4-byte little-endian CRC32C header followed by
//!   the payload), so the testbed exercises real I/O syscalls. A read pulls
//!   the whole image into one buffer and returns the payload as a
//!   zero-copy sub-slice of it; a write streams header and payload through
//!   one `File` handle instead of assembling a joined copy. The root is
//!   removed when the store is dropped.
//!
//! Both keep the write-time CRC32C next to the bytes — the cluster's
//! end-to-end corruption check ([`crate::MiniCfs`]'s read path) re-hashes
//! what it received and compares against this stored value.

use ear_types::{Block, BlockId, Error, Result, StoreBackend};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of lock stripes per store. A power of two so the shard index is a
/// shift of the mixed key; 16 stripes keep contention negligible for the
/// node counts the testbed runs (tens of nodes, a few concurrent services).
const SHARDS: usize = 16;

/// Maps a block id onto a shard index by Fibonacci hashing: sequential ids
/// (the NameNode allocates them densely) land on different stripes.
fn shard_of(block: BlockId) -> usize {
    (block.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 60) as usize % SHARDS
}

/// Storage backend of one DataNode: keyed replica bytes plus their
/// write-time CRC32C.
///
/// Implementations must be safe to call from many cluster services at once
/// (client reads, the encoder, recovery, the healer); the provided backends
/// stripe their locks so concurrent operations on different blocks do not
/// serialize.
pub trait BlockStore: Send + Sync + fmt::Debug {
    /// Stores (or overwrites) a block replica with its write-time CRC32C.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] if the backing medium rejects the write (file backend
    /// only; the memory backend is infallible).
    fn put(&self, block: BlockId, data: Block, crc: u32) -> Result<()>;

    /// Fetches a block replica together with its write-time CRC32C.
    fn get_with_crc(&self, block: BlockId) -> Option<(Block, u32)>;

    /// The write-time CRC32C of a stored replica, without reading the bytes.
    fn stored_crc(&self, block: BlockId) -> Option<u32>;

    /// Deletes a block replica; returns whether it existed.
    fn delete(&self, block: BlockId) -> bool;

    /// Whether this store holds the block.
    fn contains(&self, block: BlockId) -> bool;

    /// Number of block replicas stored.
    fn block_count(&self) -> usize;

    /// Total payload bytes stored (each replica counted at full size, as on
    /// a real disk).
    fn bytes_stored(&self) -> u64;

    /// Which backend this store is (for stats and bench labels).
    fn backend(&self) -> StoreBackend;
}

/// One stored replica of the memory backend: the bytes plus the CRC32C
/// computed at write time, as HDFS stores a checksum file beside every block
/// file.
#[derive(Debug, Clone)]
struct StoredBlock {
    data: Block,
    crc: u32,
}

/// The in-memory backend: `SHARDS` independently locked `HashMap` stripes.
///
/// The stripe index is a pure function of the block id, so two operations
/// contend only when they touch blocks that hash to the same stripe — the
/// single coarse `Mutex<HashMap>` this replaces serialized every pair.
#[derive(Debug, Default)]
pub struct ShardedMemStore {
    shards: Vec<Mutex<HashMap<BlockId, StoredBlock>>>,
}

impl ShardedMemStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        ShardedMemStore {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }

    /// The lock stripe owning `block`. The subscript is `shard_of()`, a
    /// `% SHARDS` reduction over a `SHARDS`-long vec, so it is provably in
    /// range (the one allowlisted L3/index site for this file).
    fn stripe_for(&self, block: BlockId) -> &Mutex<HashMap<BlockId, StoredBlock>> {
        &self.shards[shard_of(block)]
    }
}

impl BlockStore for ShardedMemStore {
    fn put(&self, block: BlockId, data: Block, crc: u32) -> Result<()> {
        self.stripe_for(block)
            .lock()
            .insert(block, StoredBlock { data, crc });
        Ok(())
    }

    fn get_with_crc(&self, block: BlockId) -> Option<(Block, u32)> {
        self.stripe_for(block)
            .lock()
            .get(&block)
            .map(|s| (s.data.clone(), s.crc))
    }

    fn stored_crc(&self, block: BlockId) -> Option<u32> {
        self.stripe_for(block).lock().get(&block).map(|s| s.crc)
    }

    fn delete(&self, block: BlockId) -> bool {
        self.stripe_for(block).lock().remove(&block).is_some()
    }

    fn contains(&self, block: BlockId) -> bool {
        self.stripe_for(block).lock().contains_key(&block)
    }

    fn block_count(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    fn bytes_stored(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock().values().map(|b| b.data.len() as u64).sum::<u64>())
            .sum()
    }

    fn backend(&self) -> StoreBackend {
        StoreBackend::Memory
    }
}

/// Process-wide counter making every [`FileStore`] root unique, so parallel
/// tests and clusters never collide under the shared temp directory.
static STORE_SEQ: AtomicU64 = AtomicU64::new(0);

/// Metadata the file backend keeps in memory per block: the write-time CRC
/// and payload length, so `stored_crc`/`bytes_stored`/`contains` answer
/// without touching the disk.
#[derive(Debug, Clone, Copy)]
struct FileMeta {
    crc: u32,
    len: u64,
}

/// The file-backed backend: one file per block under a unique temp root.
///
/// Each block is written to `<root>/<id>.blk.tmp` and atomically renamed to
/// `<root>/<id>.blk`, so a concurrent reader sees either the old or the new
/// complete replica, never a torn one. The file layout is a 4-byte
/// little-endian CRC32C header followed by the payload — the checksum
/// travels with the bytes, as HDFS keeps block checksums on disk. The whole
/// root is removed on drop.
#[derive(Debug)]
pub struct FileStore {
    root: PathBuf,
    index: Vec<Mutex<HashMap<BlockId, FileMeta>>>,
    /// Persistent stores keep their root on drop and recover it on open.
    persistent: bool,
    /// Synchronous stores fsync file and directory before acknowledging.
    sync: bool,
}

impl FileStore {
    /// Creates an empty store rooted at a fresh unique directory under the
    /// system temp dir.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] if the root directory cannot be created.
    pub fn new(label: &str) -> Result<Self> {
        let seq = STORE_SEQ.fetch_add(1, Ordering::Relaxed);
        let root = std::env::temp_dir().join(format!(
            "ear-store-{}-{}-{}",
            std::process::id(),
            seq,
            label
        ));
        fs::create_dir_all(&root).map_err(|e| Error::Io {
            context: format!("create {}: {e}", root.display()),
        })?;
        Ok(FileStore {
            root,
            index: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            persistent: false,
            sync: false,
        })
    }

    /// Opens (or creates) a persistent store rooted at `root`, rebuilding
    /// the in-memory index from the `<id>.blk` files found there. Stale
    /// `.tmp` files (a write cut before its rename) and short files are
    /// removed — the rename protocol means they were never acknowledged.
    /// The root is kept on drop.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] if the directory cannot be created or scanned.
    pub fn open_at(root: &std::path::Path, sync: bool) -> Result<Self> {
        fs::create_dir_all(root).map_err(|e| Error::Io {
            context: format!("create {}: {e}", root.display()),
        })?;
        let store = FileStore {
            root: root.to_path_buf(),
            index: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            persistent: true,
            sync,
        };
        let entries = fs::read_dir(root).map_err(|e| Error::Io {
            context: format!("scan {}: {e}", root.display()),
        })?;
        for entry in entries {
            let entry = entry.map_err(|e| Error::Io {
                context: format!("scan {}: {e}", root.display()),
            })?;
            let path = entry.path();
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.ends_with(".tmp") {
                remove_stale(&path)?;
                continue;
            }
            let Some(id) = name
                .strip_suffix(".blk")
                .and_then(|s| s.parse::<u64>().ok())
            else {
                continue;
            };
            let bytes = fs::read(&path).map_err(|e| Error::Io {
                context: format!("read {}: {e}", path.display()),
            })?;
            let Some(hdr) = bytes.get(0..4) else {
                // Shorter than its own header: never a committed block.
                remove_stale(&path)?;
                continue;
            };
            let mut crc = [0u8; 4];
            crc.copy_from_slice(hdr);
            let block = BlockId(id);
            store.stripe_for(block).lock().insert(
                block,
                FileMeta {
                    crc: u32::from_le_bytes(crc),
                    len: bytes.len() as u64 - 4,
                },
            );
        }
        Ok(store)
    }

    /// The temp root this store writes under (removed on drop).
    pub fn root(&self) -> &std::path::Path {
        &self.root
    }

    fn path_of(&self, block: BlockId) -> PathBuf {
        self.root.join(format!("{}.blk", block.0))
    }

    /// The index stripe owning `block`; same provably-in-range subscript as
    /// [`ShardedMemStore::stripe_for`].
    fn stripe_for(&self, block: BlockId) -> &Mutex<HashMap<BlockId, FileMeta>> {
        &self.index[shard_of(block)]
    }
}

/// Removes a stale artifact (interrupted-write `.tmp`, headerless block)
/// found while scanning a store directory. Already-gone is success; any
/// other failure is propagated — a scan that cannot clean what it found
/// would replay the same junk on every reopen.
fn remove_stale(path: &std::path::Path) -> Result<()> {
    match fs::remove_file(path) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(Error::Io {
            context: format!("remove stale {}: {e}", path.display()),
        }),
    }
}

impl Drop for FileStore {
    fn drop(&mut self) {
        // Best-effort: the root lives under the OS temp dir, so anything a
        // dying process leaks is reclaimed by the host eventually anyway.
        // Persistent stores are the whole point of the durability layer —
        // their root stays.
        if !self.persistent {
            let _ = fs::remove_dir_all(&self.root);
        }
    }
}

impl BlockStore for FileStore {
    fn put(&self, block: BlockId, data: Block, crc: u32) -> Result<()> {
        let path = self.path_of(block);
        let tmp = self.root.join(format!("{}.blk.tmp", block.0));
        // Header and payload go through one handle: no `Vec` holding a
        // joined copy of the whole block ever exists.
        let write = fs::File::create(&tmp).and_then(|mut f| {
            f.write_all(&crc.to_le_bytes())?;
            f.write_all(&data)?;
            if self.sync {
                f.sync_all()?;
            }
            Ok(())
        });
        write.map_err(|e| Error::Io {
            context: format!("write {}: {e}", tmp.display()),
        })?;
        fs::rename(&tmp, &path).map_err(|e| Error::Io {
            context: format!("rename {}: {e}", path.display()),
        })?;
        if self.sync {
            fs::File::open(&self.root)
                .and_then(|d| d.sync_all())
                .map_err(|e| Error::Io {
                    context: format!("fsync {}: {e}", self.root.display()),
                })?;
        }
        self.stripe_for(block).lock().insert(
            block,
            FileMeta {
                crc,
                len: data.len() as u64,
            },
        );
        Ok(())
    }

    fn get_with_crc(&self, block: BlockId) -> Option<(Block, u32)> {
        // The index is consulted first so a deleted block never hits the
        // disk; the read itself runs outside any lock.
        self.stripe_for(block).lock().get(&block)?;
        let bytes = fs::read(self.path_of(block)).ok()?;
        if bytes.len() < 4 {
            return None;
        }
        let crc = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
        // The payload is a sub-slice of the single on-disk image read —
        // shared allocation, no second copy.
        let image = Block::from(bytes);
        Some((image.suffix(4)?, crc))
    }

    fn stored_crc(&self, block: BlockId) -> Option<u32> {
        self.stripe_for(block).lock().get(&block).map(|m| m.crc)
    }

    fn delete(&self, block: BlockId) -> bool {
        let mut shard = self.stripe_for(block).lock();
        if !shard.contains_key(&block) {
            return false;
        }
        match fs::remove_file(self.path_of(block)) {
            Ok(()) => {
                shard.remove(&block);
                true
            }
            // An already-missing file still deletes cleanly: the index entry
            // was the last thing making the block visible.
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                shard.remove(&block);
                true
            }
            // The bytes are still on disk and the unlink failed: keep the
            // index entry so the store stays honest about what it holds,
            // and report the delete as not done.
            Err(_) => false,
        }
    }

    fn contains(&self, block: BlockId) -> bool {
        self.stripe_for(block).lock().contains_key(&block)
    }

    fn block_count(&self) -> usize {
        self.index.iter().map(|s| s.lock().len()).sum()
    }

    fn bytes_stored(&self) -> u64 {
        self.index
            .iter()
            .map(|s| s.lock().values().map(|m| m.len).sum::<u64>())
            .sum()
    }

    fn backend(&self) -> StoreBackend {
        StoreBackend::File
    }
}

/// Builds a store of the requested backend (`label` names the file root).
///
/// # Errors
///
/// [`Error::Io`] if the file or extent backend cannot create its root.
pub fn open_store(backend: StoreBackend, label: &str) -> Result<Box<dyn BlockStore>> {
    Ok(match backend {
        StoreBackend::Memory => Box::new(ShardedMemStore::new()),
        StoreBackend::File => Box::new(FileStore::new(label)?),
        StoreBackend::Extent => Box::new(crate::extent::ExtentStore::new(label)?),
    })
}

/// Builds a *persistent* store of the requested backend rooted at `root`:
/// existing state is recovered on open and the root is kept on drop. The
/// memory backend cannot satisfy this and returns a typed error — a typo'd
/// `EAR_STORE` must never silently produce a cluster that forgets on
/// restart (DESIGN.md §13).
///
/// # Errors
///
/// [`Error::NotDurable`] for the memory backend; [`Error::Io`] /
/// [`Error::WalCorrupt`] if the on-disk state cannot be opened or
/// recovered.
pub fn open_store_at(
    backend: StoreBackend,
    root: &std::path::Path,
    sync: bool,
) -> Result<Box<dyn BlockStore>> {
    Ok(match backend {
        StoreBackend::Memory => {
            return Err(Error::NotDurable { backend: "memory" });
        }
        StoreBackend::File => Box::new(FileStore::open_at(root, sync)?),
        StoreBackend::Extent => Box::new(crate::extent::ExtentStore::open_at(root, sync)?),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ear_faults::crc32c;

    fn roundtrip(store: &dyn BlockStore) {
        let data = Block::from(vec![7u8; 500]);
        let crc = crc32c(&data);
        store.put(BlockId(42), data.clone(), crc).unwrap();
        assert!(store.contains(BlockId(42)));
        assert_eq!(store.block_count(), 1);
        assert_eq!(store.bytes_stored(), 500);
        assert_eq!(store.stored_crc(BlockId(42)), Some(crc));
        let (bytes, got) = store.get_with_crc(BlockId(42)).unwrap();
        assert_eq!(bytes.as_slice(), data.as_slice());
        assert_eq!(got, crc);
        assert!(store.delete(BlockId(42)));
        assert!(!store.delete(BlockId(42)));
        assert!(store.get_with_crc(BlockId(42)).is_none());
        assert_eq!(store.block_count(), 0);
        assert_eq!(store.bytes_stored(), 0);
    }

    #[test]
    fn memory_roundtrip() {
        let s = ShardedMemStore::new();
        roundtrip(&s);
        assert_eq!(s.backend(), StoreBackend::Memory);
    }

    #[test]
    fn file_roundtrip() {
        let s = FileStore::new("t0").unwrap();
        roundtrip(&s);
        assert_eq!(s.backend(), StoreBackend::File);
    }

    #[test]
    fn memory_reads_share_the_stored_allocation() {
        // The zero-copy contract of the memory backend: what `get` returns
        // views the very buffer `put` stored.
        let s = ShardedMemStore::new();
        let data = Block::from(vec![3u8; 256]);
        s.put(BlockId(1), data.clone(), crc32c(&data)).unwrap();
        let (back, _) = s.get_with_crc(BlockId(1)).unwrap();
        assert!(back.shares_buffer(&data));
    }

    #[test]
    fn file_reads_slice_the_single_disk_image() {
        // The zero-copy contract of the file backend: one `fs::read`, and
        // the returned payload is a sub-view of that image (offset past the
        // 4-byte header), not a second copy.
        let s = FileStore::new("t2").unwrap();
        let data = Block::from(vec![0x5Au8; 300]);
        s.put(BlockId(9), data.clone(), crc32c(&data)).unwrap();
        let (a, crc) = s.get_with_crc(BlockId(9)).unwrap();
        let (b, _) = s.get_with_crc(BlockId(9)).unwrap();
        assert_eq!(a.as_slice(), data.as_slice());
        assert_eq!(crc, crc32c(&data));
        assert_eq!(a.len(), 300);
        assert!(!a.shares_buffer(&b), "each read is its own disk image");
        // A clone of one read shares; this pins that the sub-slice kept
        // the allocation instead of copying out of it.
        let c = a.clone();
        assert!(c.shares_buffer(&a));
        assert_eq!(a.ref_count(), 2);
    }

    #[test]
    fn file_store_persists_bytes_on_disk_and_cleans_up() {
        let s = FileStore::new("t1").unwrap();
        let root = s.root().to_path_buf();
        let data = Block::from(vec![0xA5u8; 128]);
        s.put(BlockId(7), data.clone(), crc32c(&data)).unwrap();
        let on_disk = fs::read(root.join("7.blk")).unwrap();
        assert_eq!(on_disk.len(), 4 + 128, "crc header plus payload");
        assert_eq!(&on_disk[4..], data.as_slice());
        drop(s);
        assert!(!root.exists(), "temp root must be removed on drop");
    }

    #[test]
    fn file_roots_are_unique_per_store() {
        let a = FileStore::new("dup").unwrap();
        let b = FileStore::new("dup").unwrap();
        assert_ne!(a.root(), b.root());
    }

    #[test]
    fn sequential_ids_spread_over_shards() {
        let hit: std::collections::HashSet<usize> =
            (0..64u64).map(|i| shard_of(BlockId(i))).collect();
        assert!(hit.len() > SHARDS / 2, "dense ids must stripe: {hit:?}");
    }

    #[test]
    fn file_delete_of_externally_removed_block_still_deletes() {
        // Pin: an already-unlinked file (NotFound) is a clean delete —
        // the index entry was the last thing making the block visible.
        let s = FileStore::new("t3").unwrap();
        let data = Block::from(vec![1u8; 64]);
        s.put(BlockId(5), data.clone(), crc32c(&data)).unwrap();
        fs::remove_file(s.path_of(BlockId(5))).unwrap();
        assert!(s.delete(BlockId(5)), "NotFound unlink still deletes");
        assert!(!s.contains(BlockId(5)));
        assert!(!s.delete(BlockId(5)), "second delete finds nothing");
    }

    #[test]
    fn open_scan_cleans_stale_artifacts_and_keeps_committed_blocks() {
        // Pin: reopen removes interrupted-write `.tmp` files and headerless
        // blocks (and errors no longer vanish via `let _` — remove_stale
        // propagates anything but NotFound), while committed blocks index.
        let root = std::env::temp_dir().join(format!(
            "ear-store-scan-{}-{}",
            std::process::id(),
            STORE_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        {
            let s = FileStore::open_at(&root, true).unwrap();
            let data = Block::from(vec![2u8; 32]);
            s.put(BlockId(1), data.clone(), crc32c(&data)).unwrap();
        }
        fs::write(root.join("9.blk.tmp"), b"torn write").unwrap();
        fs::write(root.join("8.blk"), [0u8; 2]).unwrap();
        let s = FileStore::open_at(&root, true).unwrap();
        assert!(s.contains(BlockId(1)), "committed block survives reopen");
        assert!(!s.contains(BlockId(8)));
        assert!(!root.join("9.blk.tmp").exists(), "stale tmp removed");
        assert!(!root.join("8.blk").exists(), "headerless block removed");
        drop(s);
        fs::remove_dir_all(&root).unwrap();
    }
}
