//! A miniature MapReduce engine over the mini-CFS, for Experiment A.3:
//! replaying SWIM-like workloads to show that EAR's placement does not hurt
//! pre-encoding MapReduce performance.

use crate::cluster::MiniCfs;
use crate::reliability::OpClass;
use crate::sync::{locked, wait_until};
use ear_types::{BlockId, NodeId, Result};
use ear_workloads::MapReduceJob;
use std::sync::{Condvar, Mutex};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Instant;

/// Outcome of one replayed job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobResult {
    /// The job id.
    pub id: usize,
    /// When the job started, seconds from replay start.
    pub start: f64,
    /// When the job finished, seconds from replay start.
    pub finish: f64,
}

/// Counting semaphore limiting concurrent tasks per node (the paper
/// configures 4 map slots per TaskTracker).
#[derive(Debug)]
struct Slots {
    available: Mutex<usize>,
    cv: Condvar,
}

impl Slots {
    fn new(n: usize) -> Self {
        Slots {
            available: Mutex::new(n),
            cv: Condvar::new(),
        }
    }

    /// Blocks until a slot frees up, then takes it. A poisoned slot counter
    /// (a task panicked while holding it) surfaces as a typed error instead
    /// of cascading the panic through every waiting task.
    fn acquire(&self) -> Result<()> {
        let guard = locked(&self.available, "task slots")?;
        let mut a = wait_until(&self.cv, guard, "task slots", |&n| n > 0)?;
        *a -= 1;
        Ok(())
    }

    fn release(&self) -> Result<()> {
        *locked(&self.available, "task slots")? += 1;
        self.cv.notify_one();
        Ok(())
    }
}

/// Writes every job's input blocks into the CFS (the pre-replay setup of
/// Experiment A.3) and returns the block lists per job.
///
/// # Errors
///
/// Propagates write failures.
pub fn prepare_inputs(cfs: &MiniCfs, jobs: &[MapReduceJob]) -> Result<Vec<Vec<BlockId>>> {
    let nodes = cfs.topology().num_nodes() as u32;
    let mut out = Vec::with_capacity(jobs.len());
    let mut tag = 0u64;
    for job in jobs {
        let blocks = job.input_blocks(cfs.config().block_size);
        let mut ids = Vec::with_capacity(blocks);
        for _ in 0..blocks {
            let data = cfs.make_block(tag);
            let client = NodeId((tag % nodes as u64) as u32);
            ids.push(cfs.write_block(client, data)?);
            tag += 1;
        }
        out.push(ids);
    }
    Ok(out)
}

/// Replays `jobs` against the CFS with `slots_per_node` concurrent tasks per
/// node, honouring (time-scaled) arrival times. Returns per-job results in
/// completion order.
///
/// `time_scale` compresses the workload's arrival timeline (e.g. 0.01 turns
/// a 500-second trace into 5 seconds) so replays fit in a test budget.
///
/// # Errors
///
/// Propagates read/write failures from task bodies.
pub fn run_jobs(
    cfs: &MiniCfs,
    jobs: &[MapReduceJob],
    inputs: &[Vec<BlockId>],
    slots_per_node: usize,
    time_scale: f64,
) -> Result<Vec<JobResult>> {
    assert_eq!(jobs.len(), inputs.len(), "one input list per job");
    let slots: Vec<Slots> = (0..cfs.topology().num_nodes())
        .map(|_| Slots::new(slots_per_node.max(1)))
        .collect();
    let start = Instant::now();
    let results = Mutex::new(Vec::new());

    std::thread::scope(|scope| -> Result<()> {
        let mut handles = Vec::new();
        for (job, input) in jobs.iter().zip(inputs) {
            let slots = &slots;
            let results = &results;
            handles.push(scope.spawn(move || -> Result<()> {
                // Honour the (scaled) arrival time.
                let arrival = job.arrival * time_scale;
                let since = start.elapsed().as_secs_f64();
                if arrival > since {
                    std::thread::sleep(std::time::Duration::from_secs_f64(arrival - since));
                }
                let job_start = start.elapsed().as_secs_f64();
                run_one_job(cfs, job, input, slots)?;
                let finish = start.elapsed().as_secs_f64();
                locked(results, "job results")?.push(JobResult {
                    id: job.id,
                    start: job_start,
                    finish,
                });
                Ok(())
            }));
        }
        for h in handles {
            h.join()
                .map_err(|_| ear_types::Error::Invariant("job thread panicked".into()))??;
        }
        Ok(())
    })?;

    let mut results = results
        .into_inner()
        .map_err(|_| ear_types::Error::LockPoisoned { what: "job results" })?;
    results.sort_by(|a, b| a.finish.total_cmp(&b.finish));
    Ok(results)
}

/// Executes one job: map tasks read input blocks (nearest replica), the
/// shuffle moves bytes map-node → reduce-node, reducers write output blocks.
fn run_one_job(
    cfs: &MiniCfs,
    job: &MapReduceJob,
    input: &[BlockId],
    slots: &[Slots],
) -> Result<()> {
    let mut rng = ChaCha8Rng::seed_from_u64(job.id as u64 ^ 0xA53);
    let all_nodes: Vec<NodeId> = cfs.topology().nodes().collect();
    // Reducers: one per input block, capped at 4, chosen at random.
    let reducers: Vec<NodeId> = {
        let n = input.len().clamp(1, 4);
        all_nodes.choose_multiple(&mut rng, n).copied().collect()
    };
    let shuffle_per_pair = if job.shuffle_bytes == 0 || input.is_empty() {
        0
    } else {
        job.shuffle_bytes / (input.len() as u64 * reducers.len() as u64)
    };

    // Map phase: schedule each map task on a replica holder (data-local, as
    // the JobTracker prefers), bounded by that node's slots.
    std::thread::scope(|scope| -> Result<()> {
        let mut handles = Vec::new();
        for &block in input {
            let locations = cfs
                .namenode()
                .locations(block)
                .ok_or_else(|| ear_types::Error::Invariant(format!("unknown {block}")))?;
            let map_node = *locations
                .choose(&mut rng)
                .ok_or(ear_types::Error::BlockUnavailable { block })?;
            let reducers = reducers.clone();
            handles.push(scope.spawn(move || -> Result<()> {
                slots[map_node.index()].acquire()?;
                // Data-local read: the map node holds a replica. Runs as a
                // client-read op, so map tasks are admitted at the highest
                // priority and hedge against stragglers like any client.
                let ctx = cfs.reliability().ctx(OpClass::ClientRead)?;
                let _data = cfs.read_block_in(&ctx, map_node, block)?;
                // Shuffle: stream this map's partitions to every reducer
                // through the accounted I/O path.
                for &r in &reducers {
                    if shuffle_per_pair > 0 {
                        cfs.io().transfer(map_node, r, shuffle_per_pair);
                    }
                }
                slots[map_node.index()].release()?;
                Ok(())
            }));
        }
        for h in handles {
            h.join()
                .map_err(|_| ear_types::Error::Invariant("map task panicked".into()))??;
        }
        Ok(())
    })?;

    // Reduce/output phase: write output blocks through the normal write
    // path (this is where placement policy matters again).
    let out_blocks = job.output_blocks(cfs.config().block_size);
    std::thread::scope(|scope| -> Result<()> {
        let mut handles = Vec::new();
        for i in 0..out_blocks {
            let node = reducers[i % reducers.len()];
            handles.push(scope.spawn(move || -> Result<()> {
                slots[node.index()].acquire()?;
                let data = cfs.make_block((job.id as u64) << 32 | i as u64);
                cfs.write_block(node, data)?;
                slots[node.index()].release()?;
                Ok(())
            }));
        }
        for h in handles {
            h.join()
                .map_err(|_| ear_types::Error::Invariant("reduce task panicked".into()))??;
        }
        Ok(())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{ClusterConfig, ClusterPolicy};
    use ear_types::{
        Bandwidth, ByteSize, CacheConfig, EarConfig, ErasureParams, ReplicationConfig,
        StoreBackend,
    };
    use ear_workloads::SwimGenerator;

    fn boot(policy: ClusterPolicy) -> MiniCfs {
        let ear = EarConfig::new(
            ErasureParams::new(6, 4).unwrap(),
            ReplicationConfig::two_way(),
            1,
        )
        .unwrap();
        let cfg = ClusterConfig {
            racks: 6,
            nodes_per_rack: 2,
            block_size: ByteSize::kib(64),
            node_bandwidth: Bandwidth::bytes_per_sec(128e6),
            rack_bandwidth: Bandwidth::bytes_per_sec(128e6),
            ear,
            policy,
            seed: 7,
            store: StoreBackend::from_env(),
            cache: CacheConfig::from_env(),
            durability: Default::default(),
            reliability: Default::default(),
            encode_path: ear_types::EncodePath::from_env(),
            repair_path: ear_types::RepairPath::from_env(),
        };
        MiniCfs::new(cfg).unwrap()
    }

    fn tiny_jobs(count: usize) -> Vec<ear_workloads::MapReduceJob> {
        let mut gen = SwimGenerator::miniature();
        gen.max_bytes = 256 * 1024;
        gen.arrival_rate = 100.0;
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        gen.generate(count, &mut rng)
    }

    #[test]
    fn jobs_complete_and_report_times() {
        let cfs = boot(ClusterPolicy::Ear);
        let jobs = tiny_jobs(6);
        let inputs = prepare_inputs(&cfs, &jobs).unwrap();
        let results = run_jobs(&cfs, &jobs, &inputs, 4, 0.01).unwrap();
        assert_eq!(results.len(), 6);
        for r in &results {
            assert!(r.finish >= r.start);
        }
        // Completion order is sorted.
        for w in results.windows(2) {
            assert!(w[0].finish <= w[1].finish);
        }
    }

    #[test]
    fn both_policies_complete_the_same_workload() {
        let jobs = tiny_jobs(5);
        for policy in [ClusterPolicy::Rr, ClusterPolicy::Ear] {
            let cfs = boot(policy);
            let inputs = prepare_inputs(&cfs, &jobs).unwrap();
            let results = run_jobs(&cfs, &jobs, &inputs, 4, 0.01).unwrap();
            assert_eq!(results.len(), 5, "{policy:?}");
        }
    }

    #[test]
    fn prepare_inputs_writes_all_blocks() {
        let cfs = boot(ClusterPolicy::Rr);
        let jobs = tiny_jobs(4);
        let inputs = prepare_inputs(&cfs, &jobs).unwrap();
        let expected: usize = jobs
            .iter()
            .map(|j| j.input_blocks(cfs.config().block_size))
            .sum();
        assert_eq!(inputs.iter().map(Vec::len).sum::<usize>(), expected);
        assert_eq!(cfs.namenode().block_count() as usize, expected);
    }
}
