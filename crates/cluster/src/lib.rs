//! An in-process mini clustered file system: the HDFS stand-in for the
//! paper's testbed experiments (Section IV–V.A).
//!
//! The crate emulates the 13-machine testbed in one process:
//!
//! * [`NameNode`] — metadata (lock-striped block→location shards plus the
//!   stripe state), the placement policy, and the *pre-encoding store* that
//!   groups blocks into stripes (Section IV-B);
//! * [`DataNode`] — a block store per emulated machine over a pluggable
//!   [`BlockStore`] backend: lock-striped memory, file-per-block, or the
//!   extent engine (`EAR_STORE=memory|file|extent`), fronted by an
//!   optional [`BlockCache`] (`EAR_CACHE=off|<hot>,<cold>`);
//! * [`cache`] — the deterministic multi-level block cache (hot LRU + cold
//!   clock + metadata side table) behind every DataNode's read path;
//! * [`ClusterIo`] — the unified data-plane I/O service: every block fetch
//!   and store goes through its fault-injection + netem + checksum seam,
//!   with replica fallback, retry/backoff, verified-once CRC over cache
//!   hits, and per-op byte and latency accounting ([`IoStats`]);
//! * [`MiniCfs`] — the client API: replication-pipeline writes and
//!   nearest-replica reads, with every byte paced through the token-bucket
//!   network of `ear-netem`;
//! * [`RaidNode`] — encoding jobs ("map tasks") that download a stripe's
//!   blocks, Reed–Solomon-encode them for real, upload parity, and delete
//!   redundant replicas — plus the BlockMover that repairs RR's
//!   fault-tolerance violations;
//! * [`mapreduce`] — a miniature MapReduce engine for the SWIM workload
//!   replay of Experiment A.3;
//! * [`health`] / [`healer`] — the self-healing control plane: seeded-clock
//!   heartbeats into a phi-style failure detector, degraded-state priority
//!   queues, and the budgeted background repair scheduler (DESIGN.md §8);
//! * [`reliability`] — the deterministic reliability substrate under every
//!   `ClusterIo` consumer (DESIGN.md §14): virtual-clock deadlines, per-class
//!   retry budgets and admission/load-shed priorities, phi-fed per-node
//!   circuit breakers, and seeded hedged reads with degraded-EC fallback;
//! * [`wal`] / [`ExtentStore`] / [`crashsim`] — the durability layer
//!   (DESIGN.md §13): a CRC-framed metadata write-ahead log with periodic
//!   checkpoint compaction, the extent/allocator block engine with
//!   header-last commits and explicit fsync barriers, and the
//!   deterministic crash/power-loss simulator that kill-point-tests both.
//!   A cluster given `DurabilityConfig::at(dir)` survives
//!   [`MiniCfs::reopen`] with a bit-identical metadata snapshot.
//!
//! # Example
//!
//! ```no_run
//! use ear_cluster::{ClusterConfig, ClusterPolicy, MiniCfs, RaidNode};
//! use ear_types::{EarConfig, ErasureParams, NodeId, ReplicationConfig};
//!
//! let ear = EarConfig::new(
//!     ErasureParams::new(10, 8).unwrap(),
//!     ReplicationConfig::two_way(),
//!     1,
//! ).unwrap();
//! let cfs = MiniCfs::new(ClusterConfig::testbed(ClusterPolicy::Ear, ear))?;
//! for i in 0..96u64 {
//!     let data = cfs.make_block(i);
//!     cfs.write_block(NodeId((i % 12) as u32), data)?;
//! }
//! let (stats, _relocations) = RaidNode::encode_all(&cfs, 12)?;
//! println!("encoding throughput: {:.1} MiB/s", stats.throughput_mibps());
//! # Ok::<(), ear_types::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blockstore;
pub mod cache;
pub mod chaos;
mod cluster;
pub mod crashsim;
mod datanode;
mod extent;
pub mod healer;
pub mod health;
mod io;
pub mod mapreduce;
mod monitor;
mod namenode;
mod pipeline;
mod raidnode;
mod recovery;
pub mod reliability;
pub mod sync;
pub mod wal;

pub use blockstore::{BlockStore, FileStore, ShardedMemStore};
pub use extent::{ExtentStore, WriteEvent};
pub use cache::{BlockCache, CacheStats};
pub use chaos::{
    run_heal_plan, run_plan, ChaosConfig, ChaosReport, HealSoakConfig, HealSoakReport,
};
pub use cluster::{ClusterConfig, ClusterPolicy, MiniCfs};
pub use datanode::{CachedRead, DataNode};
pub use io::{ClusterIo, DeadNodeSet, IoStats};
pub use healer::{Healer, HealerConfig, RoundReport};
pub use health::{
    DegradedTracker, FailureDetector, HealthConfig, HealthTransition, RepairKind, RepairTask,
};
pub use monitor::{plan_repairs, scan, Violation};
pub use namenode::{EncodedStripe, NameNode, PendingStripe};
pub use wal::{MetaRecord, MetaSnapshot, MetaWal, PlanRecord};
pub use raidnode::{EncodeStats, RaidNode, Relocation};
pub use recovery::{recover_node, RecoveryStats};
pub use reliability::{
    BreakerState, ClassPolicy, OpClass, OpContext, Reliability, ReliabilityConfig,
    ReliabilityStats,
};
pub use sync::locked;
