//! Failure recovery: the RaidNode's degraded-read path.
//!
//! After encoding, each block of a stripe has exactly one copy. When a node
//! fails, every block it held must be rebuilt by downloading `k` surviving
//! blocks of its stripe and decoding (Section III-D of the paper). The
//! cross-rack cost of that download is what EAR's `c > 1` / target-racks
//! variant trades fault tolerance against: with `c` blocks of a stripe per
//! rack, a recovery node co-located with surviving stripe blocks can fetch
//! `c - 1` of its `k` inputs intra-rack.

use crate::cluster::MiniCfs;
use crate::reliability::{OpClass, OpContext};
use ear_erasure::ParityAccum;
use ear_types::{Block, BlockId, Error, NodeId, RackId, RepairPath, Result};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::{BTreeMap, HashMap};

/// Outcome of rebuilding one stripe block by degraded read — enough for the
/// caller to account traffic (every count is in whole blocks; multiply by the
/// block size for bytes).
#[derive(Debug, Clone, Copy)]
pub(crate) struct ShardRepair {
    /// Where the rebuilt block now lives.
    pub placement: NodeId,
    /// Block-sized transfers the rebuild paid: whole shards downloaded
    /// plus, under the rack-aware plan, the folded partials shipped
    /// (exactly `k` under the direct plan).
    pub downloads: usize,
    /// Transfers that crossed racks (shards or folded partials).
    pub cross_rack_downloads: usize,
    /// Whether the rebuilt block was shipped from the recovery node to a
    /// different node (`false` when it stayed where it was decoded).
    pub uploaded: bool,
    /// Whether that shipment crossed racks.
    pub upload_cross_rack: bool,
}

/// Rebuilds the single stripe block `block` (a member of `members`, the
/// stripe's blocks in generator order) by downloading any `k` surviving
/// members, decoding, and placing the rebuilt copy where the stripe's
/// rack-level constraint (≤ `c` blocks per rack, distinct nodes) still holds.
/// Updates the NameNode's location map and the destination DataNode's store.
///
/// `live` says which nodes the caller trusts for I/O (the failure detector's
/// view for the healer, the injector's for direct node recovery); `bad_dst`
/// vetoes placement destinations the caller knows serve corrupt copies of
/// this block. Both sources and the recovery node are drawn from `live`.
///
/// This is the shared core of [`recover_node`] and the background healer.
/// The caller's `ctx` bounds the whole reconstruction on the virtual clock:
/// every shard download charges it, and a blown deadline or dry retry
/// budget stops the repair typed instead of letting it stall its round.
///
/// Which download plan runs is the cluster's
/// [`RepairPath`](ear_types::RepairPath): `Direct` pulls `k` whole shards
/// to the recovery node; `RackAware` first GF-folds each source rack's
/// shards at a local aggregator so only one partial crosses each rack
/// boundary (DESIGN.md §15), falling back to `Direct` if the two-phase
/// plan trips on a fault. Both rebuild byte-identical block contents (any
/// `k` shards decode to the same bytes under an MDS code).
pub(crate) fn reconstruct_stripe_block(
    cfs: &MiniCfs,
    ctx: &OpContext<'_>,
    members: &[BlockId],
    block: BlockId,
    live: &dyn Fn(NodeId) -> bool,
    bad_dst: &dyn Fn(NodeId) -> bool,
    rng: &mut ChaCha8Rng,
) -> Result<ShardRepair> {
    match cfs.config().repair_path {
        RepairPath::Direct => reconstruct_direct(cfs, ctx, members, block, live, bad_dst, rng),
        RepairPath::RackAware => {
            // Attempt the two-phase plan with a cloned RNG: if it trips on
            // a fault, the direct fallback replays from the original state
            // and makes exactly the choices a direct-only run would have.
            let mut attempt_rng = rng.clone();
            match reconstruct_rack_aware(cfs, ctx, members, block, live, bad_dst, &mut attempt_rng)
            {
                Ok(repair) => {
                    *rng = attempt_rng;
                    Ok(repair)
                }
                Err(
                    e @ (Error::DeadlineExceeded { .. }
                    | Error::RetryBudgetExhausted { .. }
                    | Error::Overloaded { .. }),
                ) => Err(e),
                Err(_) => reconstruct_direct(cfs, ctx, members, block, live, bad_dst, rng),
            }
        }
    }
}

/// The repair's cast: where to decode, which nodes already hold stripe
/// shards, who is alive, and the surviving sources in preference order.
struct RepairSite {
    recovery_node: NodeId,
    /// Nodes already holding a shard of this stripe (down or not — they
    /// stay "used" for placement purposes).
    used: Vec<NodeId>,
    all_live: Vec<NodeId>,
    /// `(member index, block, live holder)`, intra-rack sources first.
    sources: Vec<(usize, BlockId, NodeId)>,
}

/// Chooses the recovery node (a live non-holder in the rack with the most
/// reachable surviving shards — the best case Section III-D argues about)
/// and lists the reachable sources, intra-rack first. Shared by both repair
/// paths so they agree on the plan and differ only in how shards travel.
fn plan_repair_site(
    cfs: &MiniCfs,
    members: &[BlockId],
    block: BlockId,
    live: &dyn Fn(NodeId) -> bool,
    rng: &mut ChaCha8Rng,
) -> Result<RepairSite> {
    let topo = cfs.topology();
    let holder_any = |b: BlockId| -> Option<NodeId> {
        cfs.namenode().locations(b).and_then(|l| l.first().copied())
    };
    let holder_live = |b: BlockId| -> Option<NodeId> {
        cfs.namenode()
            .locations(b)
            .and_then(|l| l.into_iter().find(|&h| live(h)))
    };
    // BTreeMap: the argmax below must not depend on hash order (ties are
    // broken by rack id, and the soak reports are compared bit-for-bit).
    let mut rack_count: BTreeMap<u32, usize> = BTreeMap::new();
    for &m in members {
        if m == block {
            continue;
        }
        if let Some(h) = holder_live(m) {
            *rack_count.entry(topo.rack_of(h).0).or_insert(0) += 1;
        }
    }
    let best_rack = rack_count
        .iter()
        .max_by_key(|&(r, c)| (*c, std::cmp::Reverse(*r)))
        .map(|(&r, _)| ear_types::RackId(r))
        .ok_or_else(|| Error::Invariant("stripe has no surviving blocks".into()))?;
    let used: Vec<NodeId> = members.iter().filter_map(|&m| holder_any(m)).collect();
    let all_live: Vec<NodeId> = topo.nodes().filter(|&nd| live(nd)).collect();
    let recovery_node = match topo
        .nodes_in_rack(best_rack)
        .iter()
        .copied()
        .filter(|nd| !used.contains(nd) && live(*nd))
        .collect::<Vec<_>>()
        .choose(rng)
        .copied()
    {
        Some(nd) => nd,
        None => *all_live
            .choose(rng)
            .ok_or_else(|| Error::Invariant("no live node to run recovery".into()))?,
    };
    let mut sources: Vec<(usize, BlockId, NodeId)> = members
        .iter()
        .enumerate()
        .filter(|&(_, &m)| m != block)
        .filter_map(|(idx, &m)| holder_live(m).map(|h| (idx, m, h)))
        .collect();
    // Intra-rack sources first; remote sources grouped densest-rack-first.
    // The direct plan's cross-rack count only depends on how many remote
    // shards it needs, but keeping each remote rack's shards adjacent means
    // a prefix of this list hands the rack-aware plan whole racks to fold —
    // the denser the rack, the more shards one partial replaces.
    let mut rack_sources: BTreeMap<u32, usize> = BTreeMap::new();
    for &(_, _, h) in &sources {
        *rack_sources.entry(topo.rack_of(h).0).or_insert(0) += 1;
    }
    let recovery_rack = topo.rack_of(recovery_node);
    sources.sort_by_key(|&(idx, _, h)| {
        let r = topo.rack_of(h);
        (
            r != recovery_rack,
            std::cmp::Reverse(rack_sources.get(&r.0).copied().unwrap_or(0)),
            r.0,
            idx,
        )
    });
    Ok(RepairSite {
        recovery_node,
        used,
        all_live,
        sources,
    })
}

/// Places the rebuilt bytes where the stripe's rack constraint still holds
/// (a rack with fewer than `c` surviving stripe blocks, on a node not
/// already holding one and not known to corrupt this block), pays the
/// shipment if the block moves, and publishes store + location. Shared tail
/// of both repair paths.
fn place_rebuilt(
    cfs: &MiniCfs,
    block: BlockId,
    rebuilt: Vec<u8>,
    site: &RepairSite,
    bad_dst: &dyn Fn(NodeId) -> bool,
    rng: &mut ChaCha8Rng,
    repair: &mut ShardRepair,
) -> Result<()> {
    let topo = cfs.topology();
    let recovery_node = site.recovery_node;
    let c = cfs.config().ear.c();
    let mut per_rack: HashMap<u32, usize> = HashMap::new();
    for &h in &site.used {
        *per_rack.entry(topo.rack_of(h).0).or_insert(0) += 1;
    }
    let placement = if per_rack
        .get(&topo.rack_of(recovery_node).0)
        .copied()
        .unwrap_or(0)
        < c
        && !site.used.contains(&recovery_node)
        && !bad_dst(recovery_node)
    {
        recovery_node
    } else {
        site.all_live
            .iter()
            .copied()
            .filter(|&nd| {
                !site.used.contains(&nd)
                    && !bad_dst(nd)
                    && per_rack.get(&topo.rack_of(nd).0).copied().unwrap_or(0) < c
            })
            .collect::<Vec<_>>()
            .choose(rng)
            .copied()
            .unwrap_or(recovery_node)
    };
    if placement != recovery_node {
        cfs.io()
            .transfer(recovery_node, placement, rebuilt.len() as u64);
        repair.uploaded = true;
        repair.upload_cross_rack = topo.rack_of(placement) != topo.rack_of(recovery_node);
    }
    repair.placement = placement;
    cfs.datanode(placement).put(block, Block::from(rebuilt))?;
    cfs.namenode().set_locations(block, vec![placement])?;
    Ok(())
}

/// The direct plan: download any `k` reachable surviving blocks to the
/// recovery node (intra-rack sources first, skipping past sources that
/// keep failing) and decode.
fn reconstruct_direct(
    cfs: &MiniCfs,
    ctx: &OpContext<'_>,
    members: &[BlockId],
    block: BlockId,
    live: &dyn Fn(NodeId) -> bool,
    bad_dst: &dyn Fn(NodeId) -> bool,
    rng: &mut ChaCha8Rng,
) -> Result<ShardRepair> {
    let topo = cfs.topology();
    let k = cfs.codec().params().k();
    let n = cfs.codec().params().n();
    debug_assert_eq!(members.len(), n);
    let site = plan_repair_site(cfs, members, block, live, rng)?;
    let recovery_node = site.recovery_node;
    if site.sources.len() < k {
        return Err(Error::NotEnoughShards {
            available: site.sources.len(),
            required: k,
        });
    }
    let mut repair = ShardRepair {
        placement: recovery_node,
        downloads: 0,
        cross_rack_downloads: 0,
        uploaded: false,
        upload_cross_rack: false,
    };
    let mut shards: Vec<Option<Vec<u8>>> = vec![None; n];
    let mut got = 0usize;
    for &(idx, m, h) in &site.sources {
        if got == k {
            break;
        }
        // One holder per member: a single-source fallback read retries
        // transient faults and gives up on anything else, moving on to the
        // next surviving member.
        let Some(slot) = shards.get_mut(idx) else {
            continue; // member index outside the stripe: skip, never panic
        };
        match cfs
            .io()
            .read_with_fallback(ctx, recovery_node, m, &[h], None, None)
        {
            Ok((data, _)) => {
                if topo.rack_of(h) != topo.rack_of(recovery_node) {
                    repair.cross_rack_downloads += 1;
                }
                repair.downloads += 1;
                *slot = Some(data.to_vec());
                got += 1;
            }
            // A substrate stop ends the repair typed, within its deadline —
            // it must not keep grinding through the remaining sources.
            Err(
                e @ (Error::DeadlineExceeded { .. }
                | Error::RetryBudgetExhausted { .. }
                | Error::Overloaded { .. }),
            ) => return Err(e),
            Err(_) => {}
        }
    }
    if got < k {
        return Err(Error::NotEnoughShards {
            available: got,
            required: k,
        });
    }
    cfs.codec().reconstruct(&mut shards)?;
    let lost_idx = members
        .iter()
        .position(|&m| m == block)
        .ok_or_else(|| Error::Invariant(format!("{block} not a member of its stripe")))?;
    let rebuilt = shards
        .get_mut(lost_idx)
        .and_then(Option::take)
        .ok_or_else(|| Error::Invariant(format!("{block} not reconstructed")))?;
    place_rebuilt(cfs, block, rebuilt, &site, bad_dst, rng, &mut repair)?;
    Ok(repair)
}

/// The two-phase rack-aware plan (DESIGN.md §15): commit to the first `k`
/// sources in preference order, express the lost shard as their GF(2⁸)
/// linear combination
/// ([`recovery_coefficients`](ear_erasure::ReedSolomon::recovery_coefficients)),
/// and fold each source rack's contribution locally before it crosses a
/// rack boundary:
///
/// * **Phase 1 (intra-rack):** every remote rack holding ≥ 2 of the chosen
///   sources reads them at a local aggregator (its lowest-indexed holder)
///   and folds them into one weighted partial.
/// * **Phase 2 (cross-rack):** each such rack ships exactly one
///   block-sized partial to the recovery node; sparse racks (one source)
///   and the recovery node's own rack ship/read their shards directly, as
///   the direct plan would.
///
/// The partials XOR-merge at the recovery node into the rebuilt bytes —
/// identical to the direct decode, with cross-rack traffic of
/// `Σ min(sᵣ, 1)` instead of `Σ sᵣ` blocks over remote racks. Any failure
/// surfaces as a typed error; the dispatcher retries on the direct plan.
fn reconstruct_rack_aware(
    cfs: &MiniCfs,
    ctx: &OpContext<'_>,
    members: &[BlockId],
    block: BlockId,
    live: &dyn Fn(NodeId) -> bool,
    bad_dst: &dyn Fn(NodeId) -> bool,
    rng: &mut ChaCha8Rng,
) -> Result<ShardRepair> {
    let topo = cfs.topology();
    let k = cfs.codec().params().k();
    let n = cfs.codec().params().n();
    debug_assert_eq!(members.len(), n);
    let site = plan_repair_site(cfs, members, block, live, rng)?;
    let recovery_node = site.recovery_node;
    let recovery_rack = topo.rack_of(recovery_node);
    if site.sources.len() < k {
        return Err(Error::NotEnoughShards {
            available: site.sources.len(),
            required: k,
        });
    }
    let selected = site.sources.get(..k).ok_or(Error::NotEnoughShards {
        available: site.sources.len(),
        required: k,
    })?;
    let lost_idx = members
        .iter()
        .position(|&m| m == block)
        .ok_or_else(|| Error::Invariant(format!("{block} not a member of its stripe")))?;
    let rows: Vec<usize> = selected.iter().map(|&(idx, _, _)| idx).collect();
    let coeffs = cfs.codec().recovery_coefficients(&rows, lost_idx)?;

    let mut repair = ShardRepair {
        placement: recovery_node,
        downloads: 0,
        cross_rack_downloads: 0,
        uploaded: false,
        upload_cross_rack: false,
    };

    // Group the chosen sources by holder rack, keeping each one's
    // recovery coefficient alongside.
    let mut by_rack: BTreeMap<RackId, Vec<(BlockId, NodeId, u8)>> = BTreeMap::new();
    for (&(_, m, h), &w) in selected.iter().zip(coeffs.iter()) {
        by_rack.entry(topo.rack_of(h)).or_default().push((m, h, w));
    }

    // The running weighted sum at the recovery node, sized lazily to the
    // first shard observed.
    let mut total: Option<ParityAccum> = None;
    let kernel = cfs.codec().kernel();
    for (rack, group) in &by_rack {
        if *rack != recovery_rack && group.len() >= 2 {
            // Phase 1: fold this rack's shards at a local aggregator...
            let aggregator = group
                .iter()
                .map(|&(_, h, _)| h)
                .min_by_key(|h: &NodeId| h.index())
                .ok_or_else(|| Error::Invariant("empty repair rack group".into()))?;
            let mut partial: Option<ParityAccum> = None;
            for &(m, h, w) in group {
                let (data, _) = cfs
                    .io()
                    .read_with_fallback(ctx, aggregator, m, &[h], None, None)?;
                repair.downloads += 1;
                partial
                    .get_or_insert_with(|| ParityAccum::new(kernel, data.len()))
                    .absorb(w, &data)?;
            }
            let partial = partial
                .ok_or_else(|| Error::Invariant("empty repair rack group".into()))?;
            // ...phase 2: exactly one block-sized partial crosses the rack
            // boundary.
            cfs.io().stream_partial(
                ctx,
                aggregator,
                recovery_node,
                partial.as_slice().len() as u64,
            )?;
            repair.downloads += 1;
            repair.cross_rack_downloads += 1;
            match total.as_mut() {
                Some(t) => t.merge(&partial)?,
                None => total = Some(partial),
            }
        } else {
            // A sparse rack or the recovery node's own: shards travel
            // whole, exactly as the direct plan moves them.
            for &(m, h, w) in group {
                let (data, _) = cfs
                    .io()
                    .read_with_fallback(ctx, recovery_node, m, &[h], None, None)?;
                repair.downloads += 1;
                if topo.rack_of(h) != recovery_rack {
                    repair.cross_rack_downloads += 1;
                }
                total
                    .get_or_insert_with(|| ParityAccum::new(kernel, data.len()))
                    .absorb(w, &data)?;
            }
        }
    }
    let rebuilt = total
        .ok_or_else(|| Error::Invariant("rack-aware repair folded no sources".into()))?
        .finish(k)?;
    place_rebuilt(cfs, block, rebuilt, &site, bad_dst, rng, &mut repair)?;
    Ok(repair)
}

/// Reconstructs `block`'s bytes at `reader` from any `k` surviving members
/// of its stripe *without* re-placing the block or touching metadata — the
/// proactive leg of a hedged read whose last replica is straggling. Shard
/// downloads charge `ctx`; the caller adds the fixed decode cost when it
/// scores the race.
///
/// # Errors
///
/// * [`Error::BlockUnavailable`] if the block belongs to no encoded stripe.
/// * [`Error::NotEnoughShards`] if fewer than `k` members are readable.
/// * [`Error::DeadlineExceeded`] / [`Error::RetryBudgetExhausted`] from the
///   substrate.
pub(crate) fn degraded_read(
    cfs: &MiniCfs,
    ctx: &OpContext<'_>,
    reader: NodeId,
    block: BlockId,
) -> Result<Block> {
    let k = cfs.codec().params().k();
    let n = cfs.codec().params().n();
    let encoded = cfs.namenode().encoded_stripes();
    let es = encoded
        .iter()
        .find(|es| es.data.contains(&block) || es.parity.contains(&block))
        .ok_or(Error::BlockUnavailable { block })?;
    let members: Vec<BlockId> = es.data.iter().chain(es.parity.iter()).copied().collect();
    let mut shards: Vec<Option<Vec<u8>>> = vec![None; n];
    let mut got = 0usize;
    for (idx, &m) in members.iter().enumerate() {
        if got == k {
            break;
        }
        if m == block {
            continue;
        }
        let holders: Vec<NodeId> = cfs
            .namenode()
            .locations(m)
            .unwrap_or_default()
            .into_iter()
            .filter(|&h| !cfs.injector().node_down(h))
            .collect();
        if holders.is_empty() {
            continue;
        }
        let Some(slot) = shards.get_mut(idx) else {
            continue;
        };
        match cfs.io().read_with_fallback(ctx, reader, m, &holders, None, None) {
            Ok((data, _)) => {
                *slot = Some(data.to_vec());
                got += 1;
            }
            Err(
                e @ (Error::DeadlineExceeded { .. }
                | Error::RetryBudgetExhausted { .. }
                | Error::Overloaded { .. }),
            ) => return Err(e),
            Err(_) => {}
        }
    }
    if got < k {
        return Err(Error::NotEnoughShards {
            available: got,
            required: k,
        });
    }
    cfs.codec().reconstruct(&mut shards)?;
    let lost_idx = members
        .iter()
        .position(|&m| m == block)
        .ok_or_else(|| Error::Invariant(format!("{block} not a member of its stripe")))?;
    let data = shards
        .get_mut(lost_idx)
        .and_then(Option::take)
        .ok_or_else(|| Error::Invariant(format!("{block} not reconstructed")))?;
    Ok(Block::from(data))
}

/// Statistics of one node-recovery operation.
#[derive(Debug, Clone, Default)]
pub struct RecoveryStats {
    /// Blocks rebuilt.
    pub blocks_recovered: usize,
    /// Surviving blocks downloaded in total.
    pub blocks_downloaded: usize,
    /// Downloads that crossed racks.
    pub cross_rack_downloads: usize,
    /// Rebuilt blocks that had to be uploaded across racks to a rack with
    /// spare stripe capacity.
    pub cross_rack_uploads: usize,
    /// Wall-clock duration, seconds.
    pub wall_seconds: f64,
    /// Name of the GF(2⁸) kernel tier the codec dispatched to for degraded
    /// reads (`scalar`, `swar`, `ssse3`, `avx2`).
    pub gf_kernel: &'static str,
    /// The fault-plan seed active during recovery, `None` when the cluster
    /// runs fault-free.
    pub fault_seed: Option<u64>,
}

/// Rebuilds every encoded-stripe block lost with `failed` and re-registers
/// the rebuilt copies on healthy nodes. Pre-encoding (replicated) blocks are
/// healed by re-replicating a surviving copy.
///
/// Returns the recovery statistics.
///
/// # Errors
///
/// Returns [`Error::NotEnoughShards`] (via the codec) if a stripe lost more
/// than `n - k` blocks, or [`Error::Invariant`] on metadata inconsistencies.
pub fn recover_node(cfs: &MiniCfs, failed: NodeId) -> Result<RecoveryStats> {
    let start = std::time::Instant::now();
    let mut stats = RecoveryStats {
        gf_kernel: cfs.codec().kernel().name(),
        fault_seed: cfs.fault_seed(),
        ..RecoveryStats::default()
    };
    let mut rng = ChaCha8Rng::seed_from_u64(failed.0 as u64 ^ 0x5EC0);
    let topo = cfs.topology();

    // Index encoded stripes by member block for quick lookup.
    let encoded = cfs.namenode().encoded_stripes();
    let mut stripe_of: HashMap<BlockId, usize> = HashMap::new();
    for (si, es) in encoded.iter().enumerate() {
        for &b in es.data.iter().chain(es.parity.iter()) {
            stripe_of.insert(b, si);
        }
    }

    // Collect the blocks the failed node held, then mark it dead.
    let lost: Vec<BlockId> = (0..cfs.namenode().block_count())
        .map(BlockId)
        .filter(|&b| {
            cfs.namenode()
                .locations(b)
                .is_some_and(|locs| locs.contains(&failed))
        })
        .collect();
    for &b in &lost {
        let locs: Vec<NodeId> = cfs
            .namenode()
            .locations(b)
            .ok_or_else(|| Error::Invariant(format!("unknown {b}")))?
            .into_iter()
            .filter(|&nd| nd != failed)
            .collect();
        cfs.namenode().set_locations(b, locs)?;
        cfs.datanode(failed).delete(b);
    }

    // "Healthy" excludes both the node being recovered and anything the
    // fault plan has taken down in the meantime.
    let healthy: Vec<NodeId> = topo
        .nodes()
        .filter(|&nd| nd != failed && !cfs.injector().node_down(nd))
        .collect();
    for &block in &lost {
        let survivors = cfs
            .namenode()
            .locations(block)
            .ok_or_else(|| Error::Invariant(format!("unknown {block}")))?;
        if !survivors.is_empty() {
            // Replicated block: copy from a surviving replica, falling back
            // across replicas and retrying transient failures.
            let dst = *healthy
                .iter()
                .filter(|&&nd| !survivors.contains(&nd))
                .collect::<Vec<_>>()
                .choose(&mut rng)
                .ok_or_else(|| Error::Invariant("no healthy node for re-replication".into()))?;
            let reachable: Vec<NodeId> = survivors
                .iter()
                .copied()
                .filter(|&s| !cfs.injector().node_down(s))
                .collect();
            let ctx = cfs.reliability().ctx(OpClass::Heal)?;
            let (data, src) =
                cfs.io()
                    .read_with_fallback(&ctx, *dst, block, &reachable, None, None)?;
            cfs.datanode(*dst).put(block, data)?;
            let mut locs = survivors;
            locs.push(*dst);
            cfs.namenode().set_locations(block, locs)?;
            if topo.rack_of(src) != topo.rack_of(*dst) {
                stats.cross_rack_downloads += 1;
            }
            stats.blocks_downloaded += 1;
            stats.blocks_recovered += 1;
            continue;
        }

        // Erasure-coded block: degraded read over its stripe.
        let si = *stripe_of
            .get(&block)
            .ok_or_else(|| Error::Invariant(format!("{block} has no replicas and no stripe")))?;
        let es = encoded
            .get(si)
            .ok_or_else(|| Error::Invariant(format!("stripe index {si} out of range")))?;
        let members: Vec<BlockId> = es.data.iter().chain(es.parity.iter()).copied().collect();
        let live = |nd: NodeId| nd != failed && !cfs.injector().node_down(nd);
        let ctx = cfs.reliability().ctx(OpClass::Heal)?;
        let repair =
            reconstruct_stripe_block(cfs, &ctx, &members, block, &live, &|_| false, &mut rng)?;
        stats.blocks_downloaded += repair.downloads;
        stats.cross_rack_downloads += repair.cross_rack_downloads;
        if repair.upload_cross_rack {
            stats.cross_rack_uploads += 1;
        }
        stats.blocks_recovered += 1;
    }

    stats.wall_seconds = start.elapsed().as_secs_f64();
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{ClusterConfig, ClusterPolicy};
    use crate::raidnode::RaidNode;
    use ear_types::{
        Bandwidth, ByteSize, CacheConfig, EarConfig, ErasureParams, ReplicationConfig,
        StoreBackend,
    };

    fn boot(policy: ClusterPolicy, c: usize, racks: usize, nodes_per_rack: usize) -> MiniCfs {
        let ear = EarConfig::new(
            ErasureParams::new(6, 4).unwrap(),
            ReplicationConfig::two_way(),
            c,
        )
        .unwrap();
        let cfg = ClusterConfig {
            racks,
            nodes_per_rack,
            block_size: ByteSize::kib(64),
            node_bandwidth: Bandwidth::bytes_per_sec(512e6),
            rack_bandwidth: Bandwidth::bytes_per_sec(512e6),
            ear,
            policy,
            seed: 11,
            store: StoreBackend::from_env(),
            cache: CacheConfig::from_env(),
            durability: Default::default(),
            reliability: Default::default(),
            encode_path: ear_types::EncodePath::from_env(),
            repair_path: ear_types::RepairPath::from_env(),
        };
        MiniCfs::new(cfg).unwrap()
    }

    fn write_and_encode(cfs: &MiniCfs, stripes: usize) {
        let nodes = cfs.topology().num_nodes() as u64;
        let mut i = 0u64;
        while cfs.namenode().pending_stripe_count() < stripes {
            let data = cfs.make_block(i);
            cfs.write_block(NodeId((i % nodes) as u32), data).unwrap();
            i += 1;
        }
        RaidNode::encode_all(cfs, 4).unwrap();
    }

    #[test]
    fn recovers_encoded_blocks_byte_for_byte() {
        let cfs = boot(ClusterPolicy::Ear, 1, 8, 2);
        write_and_encode(&cfs, 2);
        // Fail a node that holds at least one encoded block.
        let victim = cfs
            .namenode()
            .encoded_stripes()
            .iter()
            .flat_map(|es| es.data.clone())
            .find_map(|b| cfs.namenode().locations(b).unwrap().first().copied())
            .expect("some encoded block exists");
        let lost: Vec<BlockId> = cfs
            .namenode()
            .encoded_stripes()
            .iter()
            .flat_map(|es| es.data.clone())
            .filter(|&b| cfs.namenode().locations(b).unwrap().contains(&victim))
            .collect();
        assert!(!lost.is_empty());
        let stats = recover_node(&cfs, victim).unwrap();
        assert!(stats.blocks_recovered >= lost.len());
        assert!(
            !stats.gf_kernel.is_empty(),
            "recovery stats must report the GF kernel tier"
        );
        for b in lost {
            let loc = cfs.namenode().locations(b).unwrap()[0];
            assert_ne!(loc, victim);
            let got = cfs.datanode(loc).get(b).unwrap();
            assert_eq!(
                got.as_slice(),
                cfs.make_block(b.0).as_slice(),
                "block {b} corrupted"
            );
        }
    }

    #[test]
    fn recovery_downloads_k_blocks_per_lost_block() {
        let cfs = boot(ClusterPolicy::Ear, 1, 8, 2);
        write_and_encode(&cfs, 1);
        let es = &cfs.namenode().encoded_stripes()[0];
        let victim = cfs.namenode().locations(es.data[0]).unwrap()[0];
        // Count how many stripe blocks the victim held (it can hold at most
        // one per stripe by the EAR invariant).
        let held: usize = es
            .data
            .iter()
            .chain(es.parity.iter())
            .filter(|&&b| cfs.namenode().locations(b).unwrap().contains(&victim))
            .count();
        assert_eq!(held, 1, "EAR places at most one stripe block per node");
        let stats = recover_node(&cfs, victim).unwrap();
        // Every encoded block lost needs k downloads; replicated (unsealed)
        // blocks need one.
        assert!(stats.blocks_downloaded >= 4);
        assert!(stats.cross_rack_downloads <= stats.blocks_downloaded);
    }

    #[test]
    fn larger_c_reduces_cross_rack_recovery_traffic() {
        // Section III-D: with c = 3 and R' = 2 target racks, most recovery
        // sources are intra-rack; with c = 1 almost all are cross-rack.
        let mut cross_c1 = 0usize;
        let mut cross_c3 = 0usize;
        let mut down_c1 = 0usize;
        let mut down_c3 = 0usize;
        {
            let cfs = boot(ClusterPolicy::Ear, 1, 8, 4);
            write_and_encode(&cfs, 3);
            for es in cfs.namenode().encoded_stripes() {
                let victim = cfs.namenode().locations(es.data[0]).unwrap()[0];
                let stats = recover_node(&cfs, victim).unwrap();
                cross_c1 += stats.cross_rack_downloads;
                down_c1 += stats.blocks_downloaded;
            }
        }
        {
            let ear = EarConfig::new(
                ErasureParams::new(6, 4).unwrap(),
                ReplicationConfig::two_way(),
                3,
            )
            .unwrap()
            .with_target_racks(2)
            .unwrap();
            let cfg = ClusterConfig {
                racks: 8,
                nodes_per_rack: 4,
                block_size: ByteSize::kib(64),
                node_bandwidth: Bandwidth::bytes_per_sec(512e6),
                rack_bandwidth: Bandwidth::bytes_per_sec(512e6),
                ear,
                policy: ClusterPolicy::Ear,
                seed: 11,
                store: StoreBackend::from_env(),
                cache: CacheConfig::from_env(),
                durability: Default::default(),
                reliability: Default::default(),
                encode_path: ear_types::EncodePath::from_env(),
                repair_path: ear_types::RepairPath::from_env(),
            };
            let cfs = MiniCfs::new(cfg).unwrap();
            write_and_encode(&cfs, 3);
            for es in cfs.namenode().encoded_stripes() {
                let victim = cfs.namenode().locations(es.data[0]).unwrap()[0];
                let stats = recover_node(&cfs, victim).unwrap();
                cross_c3 += stats.cross_rack_downloads;
                down_c3 += stats.blocks_downloaded;
            }
        }
        let frac_c1 = cross_c1 as f64 / down_c1 as f64;
        let frac_c3 = cross_c3 as f64 / down_c3 as f64;
        assert!(
            frac_c3 < frac_c1,
            "c=3 cross-rack fraction {frac_c3} should beat c=1's {frac_c1}"
        );
    }

    /// An EAR cluster with `c = 2` over 3 target racks (each stripe spans 3
    /// racks, 2 blocks per rack) and an explicit repair path — the shape
    /// where two-phase repair has remote racks worth folding.
    fn boot_repair(path: RepairPath) -> MiniCfs {
        let ear = EarConfig::new(
            ErasureParams::new(6, 4).unwrap(),
            ReplicationConfig::two_way(),
            2,
        )
        .unwrap()
        .with_target_racks(3)
        .unwrap();
        let cfg = ClusterConfig {
            racks: 8,
            nodes_per_rack: 4,
            block_size: ByteSize::kib(64),
            node_bandwidth: Bandwidth::bytes_per_sec(512e6),
            rack_bandwidth: Bandwidth::bytes_per_sec(512e6),
            ear,
            policy: ClusterPolicy::Ear,
            seed: 11,
            store: StoreBackend::from_env(),
            cache: CacheConfig::from_env(),
            durability: Default::default(),
            reliability: Default::default(),
            encode_path: ear_types::EncodePath::from_env(),
            repair_path: path,
        };
        MiniCfs::new(cfg).unwrap()
    }

    #[test]
    fn rack_aware_repair_is_byte_identical_and_cuts_cross_rack_traffic() {
        // Two identical clusters, one per repair path; recover the same
        // victims and compare. Rack-aware must rebuild the exact same bytes
        // (MDS decoding is unique) while strictly fewer block-sized
        // transfers cross racks: a remote rack with two chosen sources
        // ships one folded partial instead of two whole shards.
        let mut cross = [0usize; 2];
        let mut downs = [0usize; 2];
        for (i, path) in [RepairPath::Direct, RepairPath::RackAware]
            .into_iter()
            .enumerate()
        {
            let cfs = boot_repair(path);
            write_and_encode(&cfs, 3);
            let stripes = cfs.namenode().encoded_stripes();
            assert!(!stripes.is_empty());
            for es in &stripes {
                let victim = cfs.namenode().locations(es.data[0]).unwrap()[0];
                let stats = recover_node(&cfs, victim).unwrap();
                cross[i] += stats.cross_rack_downloads;
                downs[i] += stats.blocks_downloaded;
            }
            // Every data block of every stripe must decode back to its
            // original bytes, whatever path rebuilt it.
            for es in &stripes {
                for &b in &es.data {
                    let loc = cfs.namenode().locations(b).unwrap()[0];
                    let got = cfs.datanode(loc).get(b).unwrap();
                    assert_eq!(
                        got.as_slice(),
                        cfs.make_block(b.0).as_slice(),
                        "{path:?}: block {b} corrupted"
                    );
                }
            }
        }
        assert!(
            cross[1] < cross[0],
            "rack-aware cross-rack transfers {} must beat direct's {}",
            cross[1],
            cross[0]
        );
        assert!(downs[0] > 0 && downs[1] > 0);
    }

    #[test]
    fn losing_too_many_blocks_fails_cleanly() {
        let cfs = boot(ClusterPolicy::Ear, 1, 8, 2);
        write_and_encode(&cfs, 1);
        let es = &cfs.namenode().encoded_stripes()[0];
        // Destroy 3 blocks of a (6,4) stripe outright (only n-k=2
        // tolerable), then try to recover a fourth loss.
        let all: Vec<BlockId> = es.data.iter().chain(es.parity.iter()).copied().collect();
        for &b in all.iter().take(3) {
            let loc = cfs.namenode().locations(b).unwrap()[0];
            cfs.datanode(loc).delete(b);
            cfs.namenode().set_locations(b, vec![]).unwrap();
        }
        // Recovering any node holding a surviving stripe block must fail for
        // that block.
        let victim = cfs.namenode().locations(all[3]).unwrap()[0];
        let err = recover_node(&cfs, victim);
        assert!(err.is_err());
    }
}
