//! [`ExtentStore`] — the extent/allocator block engine (DESIGN.md §13).
//!
//! Instead of one file per block ([`crate::FileStore`]), blocks are packed
//! into a handful of large, 4 KiB-aligned segment files through a free-list
//! allocator — the layout real SSD-era stores use, and the layout whose
//! crash behaviour the kill-point simulator exercises.
//!
//! On-disk format. A segment is `ext-<i>.seg`, a fixed-size file carved
//! into extents. An extent starts with a 64-byte header:
//!
//! ```text
//! off  size  field
//!   0     4  magic
//!   4     1  kind (1 = put, 2 = tombstone)
//!   5     3  pad (zero)
//!   8     8  block id
//!  16     8  sequence number (store-wide, monotonic)
//!  24     4  payload length
//!  28     4  payload crc32c
//!  32     4  header crc32c (over bytes 0..32)
//!  36    28  pad (zero)
//!  64     …  payload
//! ```
//!
//! Commit protocol (**header-last**): payload bytes are written first, the
//! header after, then one fsync — and only then is the write acknowledged.
//! A crash mid-write leaves either no valid header (invisible) or a valid
//! header over a payload that fails its CRC (discarded on recovery): a torn
//! write can never surface as data. Overwrites allocate a fresh extent and
//! win by sequence number; deletes commit a durable tombstone before any
//! header is zeroed, so a crash can lose the *operation* but never
//! resurrect deleted data once acknowledged. Recovery walks every segment,
//! keeps the highest-sequence valid record per block, re-zeroes losers, and
//! rebuilds the free list as the complement of the winners.
//!
//! (The CRC is 32 bits: a torn header that accidentally verifies has
//! probability 2⁻³², which the crash-matrix in EXPERIMENTS.md accepts.)

use crate::blockstore::BlockStore;
use ear_faults::crc32c;
use ear_types::{Block, BlockId, Error, Result, StoreBackend};
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, HashMap};
use std::fs::{self, File, OpenOptions};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Extent alignment: every extent starts and ends on a 4 KiB boundary.
pub const ALIGN: u64 = 4096;
/// Default segment size; records too large for one segment get a dedicated
/// segment of their own (rounded up to [`ALIGN`]).
pub const SEG_SIZE: u64 = 8 << 20;
/// Bytes of header at the start of every extent.
pub const HEADER_LEN: u64 = 64;

const MAGIC: u32 = 0x4558_5445; // "EXTE"
const KIND_PUT: u8 = 1;
const KIND_TOMB: u8 = 2;
const SHARDS: usize = 16;

fn shard_of(block: BlockId) -> usize {
    (block.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 60) as usize % SHARDS
}

fn align_up(v: u64) -> u64 {
    v.div_ceil(ALIGN) * ALIGN
}

fn extent_len(payload_len: u32) -> u64 {
    align_up(HEADER_LEN + payload_len as u64)
}

fn io_err(context: impl Into<String>) -> impl FnOnce(std::io::Error) -> Error {
    let context = context.into();
    move |e| Error::Io {
        context: format!("{context}: {e}"),
    }
}

// ---------------------------------------------------------------------------
// Header codec
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Header {
    kind: u8,
    block: BlockId,
    seq: u64,
    payload_len: u32,
    payload_crc: u32,
}

fn encode_header(h: &Header) -> [u8; 64] {
    let mut out = [0u8; 64];
    out[0..4].copy_from_slice(&MAGIC.to_le_bytes());
    out[4] = h.kind;
    out[8..16].copy_from_slice(&h.block.0.to_le_bytes());
    out[16..24].copy_from_slice(&h.seq.to_le_bytes());
    out[24..28].copy_from_slice(&h.payload_len.to_le_bytes());
    out[28..32].copy_from_slice(&h.payload_crc.to_le_bytes());
    let crc = crc32c(&out[0..32]);
    out[32..36].copy_from_slice(&crc.to_le_bytes());
    out
}

fn read_u32(buf: &[u8], at: usize) -> Option<u32> {
    let s = buf.get(at..at.checked_add(4)?)?;
    let mut b = [0u8; 4];
    b.copy_from_slice(s);
    Some(u32::from_le_bytes(b))
}

fn read_u64(buf: &[u8], at: usize) -> Option<u64> {
    let s = buf.get(at..at.checked_add(8)?)?;
    let mut b = [0u8; 8];
    b.copy_from_slice(s);
    Some(u64::from_le_bytes(b))
}

fn decode_header(buf: &[u8]) -> Option<Header> {
    let magic = read_u32(buf, 0)?;
    if magic != MAGIC {
        return None;
    }
    let stored = read_u32(buf, 32)?;
    if crc32c(buf.get(0..32)?) != stored {
        return None;
    }
    let kind = *buf.get(4)?;
    if kind != KIND_PUT && kind != KIND_TOMB {
        return None;
    }
    Some(Header {
        kind,
        block: BlockId(read_u64(buf, 8)?),
        seq: read_u64(buf, 16)?,
        payload_len: read_u32(buf, 24)?,
        payload_crc: read_u32(buf, 28)?,
    })
}

// ---------------------------------------------------------------------------
// Journal (crash-simulator hook)
// ---------------------------------------------------------------------------

/// One logical event of the store's write stream, captured when the store
/// is journaled ([`ExtentStore::journaled`]). The crash simulator
/// materializes a prefix of these events into a fresh directory — cutting
/// and tearing past the last `Barrier` — and reopens the result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WriteEvent {
    /// A segment file came into existence at `size` bytes.
    Create {
        /// Segment index (file `ext-<seg>.seg`).
        seg: usize,
        /// File size in bytes.
        size: u64,
    },
    /// Bytes were written at an offset of a segment.
    Write {
        /// Segment index.
        seg: usize,
        /// Byte offset within the segment.
        off: u64,
        /// The bytes written.
        data: Vec<u8>,
    },
    /// An fsync point. The first barrier of an operation's event span is
    /// its acknowledgment: everything written before a barrier is durable.
    Barrier,
}

// ---------------------------------------------------------------------------
// Allocator
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ExtentRef {
    seg: usize,
    off: u64,
    len: u64,
}

/// First-fit free-list allocator over the segment space. Kept sorted by
/// (segment, offset); adjacent frees coalesce.
#[derive(Debug, Default)]
struct Allocator {
    free: Vec<ExtentRef>,
}

impl Allocator {
    fn alloc(&mut self, need: u64) -> Option<ExtentRef> {
        let pos = self.free.iter().position(|e| e.len >= need)?;
        let mut found = self.free.remove(pos);
        if found.len > need {
            self.free.insert(
                pos,
                ExtentRef {
                    seg: found.seg,
                    off: found.off + need,
                    len: found.len - need,
                },
            );
            found.len = need;
        }
        Some(found)
    }

    fn release(&mut self, ext: ExtentRef) {
        let pos = self
            .free
            .partition_point(|e| (e.seg, e.off) < (ext.seg, ext.off));
        self.free.insert(pos, ext);
        // Coalesce with the successor, then the predecessor.
        if let (Some(cur), Some(next)) = (self.free.get(pos).copied(), self.free.get(pos + 1)) {
            if cur.seg == next.seg && cur.off + cur.len == next.off {
                let add = next.len;
                self.free.remove(pos + 1);
                if let Some(c) = self.free.get_mut(pos) {
                    c.len += add;
                }
            }
        }
        if pos > 0 {
            if let (Some(prev), Some(cur)) =
                (self.free.get(pos - 1).copied(), self.free.get(pos).copied())
            {
                if prev.seg == cur.seg && prev.off + prev.len == cur.off {
                    self.free.remove(pos);
                    if let Some(p) = self.free.get_mut(pos - 1) {
                        p.len += cur.len;
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The store
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct Segment {
    file: File,
    size: u64,
}

#[derive(Debug, Clone, Copy)]
struct IndexEntry {
    ext: ExtentRef,
    payload_len: u32,
    crc: u32,
}

static STORE_SEQ: AtomicU64 = AtomicU64::new(0);

/// The extent-based block engine. See the module docs for the on-disk
/// format and the crash-consistency argument.
#[derive(Debug)]
pub struct ExtentStore {
    root: PathBuf,
    sync: bool,
    persistent: bool,
    segments: RwLock<Vec<Segment>>,
    alloc: Mutex<Allocator>,
    index: Vec<Mutex<HashMap<BlockId, IndexEntry>>>,
    seq: AtomicU64,
    journal: Option<Mutex<Vec<WriteEvent>>>,
}

impl ExtentStore {
    /// An empty throwaway store under a unique temp root (removed on drop),
    /// with fsync off — the configuration the test matrix runs.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] if the root cannot be created.
    pub fn new(label: &str) -> Result<Self> {
        let seq = STORE_SEQ.fetch_add(1, Ordering::Relaxed);
        let root = std::env::temp_dir().join(format!(
            "ear-extent-{}-{}-{}",
            std::process::id(),
            seq,
            label
        ));
        Self::build(root, false, false, false)
    }

    /// Like [`ExtentStore::new`], but recording every write to the journal
    /// for the crash simulator ([`WriteEvent`]).
    ///
    /// # Errors
    ///
    /// [`Error::Io`] if the root cannot be created.
    pub fn journaled(label: &str) -> Result<Self> {
        let seq = STORE_SEQ.fetch_add(1, Ordering::Relaxed);
        let root = std::env::temp_dir().join(format!(
            "ear-extent-j-{}-{}-{}",
            std::process::id(),
            seq,
            label
        ));
        Self::build(root, false, false, true)
    }

    /// Opens (or creates) a persistent store rooted at `root`, running
    /// torn-write recovery over whatever the directory holds. The root is
    /// kept on drop.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] for host failures; [`Error::WalCorrupt`] if the
    /// segment files on disk are not a recognizable store (e.g. a gap in
    /// the segment numbering).
    pub fn open_at(root: &Path, sync: bool) -> Result<Self> {
        let store = Self::build(root.to_path_buf(), sync, true, false)?;
        store.recover()?;
        Ok(store)
    }

    fn build(root: PathBuf, sync: bool, persistent: bool, journaled: bool) -> Result<Self> {
        fs::create_dir_all(&root).map_err(io_err(format!("create {}", root.display())))?;
        Ok(ExtentStore {
            root,
            sync,
            persistent,
            segments: RwLock::new(Vec::new()),
            alloc: Mutex::new(Allocator::default()),
            index: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            seq: AtomicU64::new(1),
            journal: journaled.then(|| Mutex::new(Vec::new())),
        })
    }

    /// The directory this store writes under.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Drains the captured write stream (journaled stores only).
    pub fn take_journal(&self) -> Vec<WriteEvent> {
        match &self.journal {
            Some(j) => std::mem::take(&mut *j.lock()),
            None => Vec::new(),
        }
    }

    fn seg_path(root: &Path, seg: usize) -> PathBuf {
        root.join(format!("ext-{seg}.seg"))
    }

    fn record(&self, ev: WriteEvent) {
        if let Some(j) = &self.journal {
            j.lock().push(ev);
        }
    }

    /// Appends a fresh segment of `size` bytes and returns its index.
    fn create_segment(&self, size: u64) -> Result<usize> {
        let mut segments = self.segments.write();
        let seg = segments.len();
        let path = Self::seg_path(&self.root, seg);
        let file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .read(true)
            .write(true)
            .open(&path)
            .map_err(io_err(format!("create {}", path.display())))?;
        file.set_len(size)
            .map_err(io_err(format!("size {}", path.display())))?;
        segments.push(Segment { file, size });
        drop(segments);
        self.record(WriteEvent::Create { seg, size });
        Ok(seg)
    }

    fn write_seg(&self, seg: usize, off: u64, data: &[u8]) -> Result<()> {
        {
            let segments = self.segments.read();
            let s = segments
                .get(seg)
                .ok_or_else(|| Error::Invariant(format!("extent segment {seg} out of range")))?;
            s.file
                .write_all_at(data, off)
                .map_err(io_err(format!("write segment {seg} at {off}")))?;
        }
        self.record(WriteEvent::Write {
            seg,
            off,
            data: data.to_vec(),
        });
        Ok(())
    }

    fn read_seg(&self, seg: usize, off: u64, len: usize) -> Result<Vec<u8>> {
        let segments = self.segments.read();
        let s = segments
            .get(seg)
            .ok_or_else(|| Error::Invariant(format!("extent segment {seg} out of range")))?;
        let mut buf = vec![0u8; len];
        s.file
            .read_exact_at(&mut buf, off)
            .map_err(io_err(format!("read segment {seg} at {off}")))?;
        Ok(buf)
    }

    /// An fsync point: flushes the segment (when the store is synchronous)
    /// and marks the barrier in the journal. The first barrier of an
    /// operation is its acknowledgment.
    fn barrier(&self, seg: usize) -> Result<()> {
        if self.sync {
            let segments = self.segments.read();
            let s = segments
                .get(seg)
                .ok_or_else(|| Error::Invariant(format!("extent segment {seg} out of range")))?;
            s.file
                .sync_data()
                .map_err(io_err(format!("fsync segment {seg}")))?;
        }
        self.record(WriteEvent::Barrier);
        Ok(())
    }

    /// Carves an extent of at least `need` bytes, growing the segment space
    /// when the free list is dry.
    fn allocate(&self, need: u64) -> Result<ExtentRef> {
        if let Some(ext) = self.alloc.lock().alloc(need) {
            return Ok(ext);
        }
        let size = if need <= SEG_SIZE { SEG_SIZE } else { align_up(need) };
        let seg = self.create_segment(size)?;
        let mut alloc = self.alloc.lock();
        alloc.release(ExtentRef { seg, off: 0, len: size });
        alloc
            .alloc(need)
            .ok_or_else(|| Error::Invariant("fresh extent segment cannot satisfy alloc".into()))
    }

    /// Writes and commits one record (payload first, header last, fsync),
    /// returning its extent. This is the durability point of every
    /// mutation.
    fn commit_record(&self, header: &Header, payload: &[u8]) -> Result<ExtentRef> {
        let ext = self.allocate(extent_len(header.payload_len))?;
        if !payload.is_empty() {
            self.write_seg(ext.seg, ext.off + HEADER_LEN, payload)?;
        }
        self.write_seg(ext.seg, ext.off, &encode_header(header))?;
        self.barrier(ext.seg)?;
        Ok(ext)
    }

    /// Zeroes a record's header so recovery no longer sees it, then returns
    /// the extent to the allocator. Post-acknowledgment maintenance: a
    /// crash before the zero reaches disk just leaves a stale record that
    /// loses by sequence number.
    fn retire(&self, ext: ExtentRef) -> Result<()> {
        self.write_seg(ext.seg, ext.off, &[0u8; 64])?;
        self.barrier(ext.seg)?;
        self.alloc.lock().release(ext);
        Ok(())
    }

    /// The index stripe owning `block`; the subscript is a `% SHARDS`
    /// reduction over a `SHARDS`-long vec, provably in range.
    fn stripe_for(&self, block: BlockId) -> &Mutex<HashMap<BlockId, IndexEntry>> {
        match self.index.get(shard_of(block)) {
            Some(s) => s,
            // Unreachable: shard_of() < SHARDS == index.len().
            None => &self.index[0],
        }
    }

    // -- recovery ----------------------------------------------------------

    /// Walks every segment, keeps the highest-sequence valid record per
    /// block, zeroes everything else, and rebuilds allocator + index.
    fn recover(&self) -> Result<()> {
        let mut names = Vec::new();
        for entry in
            fs::read_dir(&self.root).map_err(io_err(format!("scan {}", self.root.display())))?
        {
            let entry = entry.map_err(io_err("scan extent dir"))?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if let Some(i) = name
                .strip_prefix("ext-")
                .and_then(|s| s.strip_suffix(".seg"))
                .and_then(|s| s.parse::<usize>().ok())
            {
                names.push(i);
            }
        }
        names.sort_unstable();
        for (pos, &i) in names.iter().enumerate() {
            if pos != i {
                return Err(Error::WalCorrupt {
                    context: format!("extent segment numbering has a gap before ext-{i}.seg"),
                });
            }
        }

        struct Candidate {
            header: Header,
            ext: ExtentRef,
        }
        let mut winners: BTreeMap<BlockId, Candidate> = BTreeMap::new();
        let mut discard: Vec<ExtentRef> = Vec::new();
        let mut max_seq = 0u64;

        {
            let mut segments = self.segments.write();
            for &seg in &names {
                let path = Self::seg_path(&self.root, seg);
                let file = OpenOptions::new()
                    .read(true)
                    .write(true)
                    .open(&path)
                    .map_err(io_err(format!("open {}", path.display())))?;
                let size = file
                    .metadata()
                    .map_err(io_err(format!("stat {}", path.display())))?
                    .len();
                segments.push(Segment { file, size });
            }
        }

        let segments = self.segments.read();
        for (seg, s) in segments.iter().enumerate() {
            let mut off = 0u64;
            while off + HEADER_LEN <= s.size {
                let mut hdr = [0u8; 64];
                s.file
                    .read_exact_at(&mut hdr, off)
                    .map_err(io_err(format!("read header in segment {seg}")))?;
                let Some(header) = decode_header(&hdr) else {
                    off += ALIGN;
                    continue;
                };
                let len = extent_len(header.payload_len);
                if off + len > s.size {
                    // Length runs past the segment: torn header that
                    // happened to verify is astronomically unlikely, but a
                    // record from a mis-sized segment is not — skip it.
                    off += ALIGN;
                    continue;
                }
                let ext = ExtentRef { seg, off, len };
                max_seq = max_seq.max(header.seq);
                let mut valid = true;
                if header.kind == KIND_PUT && header.payload_len > 0 {
                    let mut payload = vec![0u8; header.payload_len as usize];
                    s.file
                        .read_exact_at(&mut payload, off + HEADER_LEN)
                        .map_err(io_err(format!("read payload in segment {seg}")))?;
                    valid = crc32c(&payload) == header.payload_crc;
                }
                if !valid {
                    // Header committed but payload torn: the write was
                    // never acknowledged — discard it.
                    discard.push(ext);
                } else {
                    match winners.get(&header.block) {
                        Some(cur) if cur.header.seq >= header.seq => discard.push(ext),
                        _ => {
                            if let Some(prev) = winners.insert(header.block, Candidate { header, ext })
                            {
                                discard.push(prev.ext);
                            }
                        }
                    }
                }
                off += len;
            }
        }
        drop(segments);

        // Tombstone winners delete their block; they are retired like the
        // losers.
        let mut live: Vec<(BlockId, Candidate)> = Vec::new();
        for (block, cand) in winners {
            if cand.header.kind == KIND_TOMB {
                discard.push(cand.ext);
            } else {
                live.push((block, cand));
            }
        }

        for ext in &discard {
            self.write_seg(ext.seg, ext.off, &[0u8; 64])?;
        }
        if self.sync && !discard.is_empty() {
            let segments = self.segments.read();
            for s in segments.iter() {
                s.file.sync_data().map_err(io_err("fsync recovered segment"))?;
            }
        }

        // Free list = complement of the live extents, per segment.
        let mut used: Vec<ExtentRef> = live.iter().map(|(_, c)| c.ext).collect();
        used.sort_unstable_by_key(|e| (e.seg, e.off));
        {
            let segments = self.segments.read();
            let mut alloc = self.alloc.lock();
            let mut it = used.iter().peekable();
            for (seg, s) in segments.iter().enumerate() {
                let mut off = 0u64;
                while let Some(e) = it.peek() {
                    if e.seg != seg {
                        break;
                    }
                    if e.off > off {
                        alloc.release(ExtentRef {
                            seg,
                            off,
                            len: e.off - off,
                        });
                    }
                    off = e.off + e.len;
                    it.next();
                }
                if off < s.size {
                    alloc.release(ExtentRef {
                        seg,
                        off,
                        len: s.size - off,
                    });
                }
            }
        }

        for (block, cand) in live {
            self.stripe_for(block).lock().insert(
                block,
                IndexEntry {
                    ext: cand.ext,
                    payload_len: cand.header.payload_len,
                    crc: cand.header.payload_crc,
                },
            );
        }
        self.seq.store(max_seq + 1, Ordering::SeqCst);
        Ok(())
    }
}

impl Drop for ExtentStore {
    fn drop(&mut self) {
        if !self.persistent {
            let _ = fs::remove_dir_all(&self.root);
        }
    }
}

impl BlockStore for ExtentStore {
    fn put(&self, block: BlockId, data: Block, crc: u32) -> Result<()> {
        let seq = self.seq.fetch_add(1, Ordering::SeqCst);
        let header = Header {
            kind: KIND_PUT,
            block,
            seq,
            payload_len: data.len() as u32,
            payload_crc: crc,
        };
        let ext = self.commit_record(&header, &data)?;
        let prev = self.stripe_for(block).lock().insert(
            block,
            IndexEntry {
                ext,
                payload_len: header.payload_len,
                crc,
            },
        );
        if let Some(old) = prev {
            self.retire(old.ext)?;
        }
        Ok(())
    }

    fn get_with_crc(&self, block: BlockId) -> Option<(Block, u32)> {
        let entry = *self.stripe_for(block).lock().get(&block)?;
        let payload = self
            .read_seg(entry.ext.seg, entry.ext.off + HEADER_LEN, entry.payload_len as usize)
            .ok()?;
        Some((Block::from(payload), entry.crc))
    }

    fn stored_crc(&self, block: BlockId) -> Option<u32> {
        self.stripe_for(block).lock().get(&block).map(|e| e.crc)
    }

    fn delete(&self, block: BlockId) -> bool {
        let Some(entry) = self.stripe_for(block).lock().remove(&block) else {
            return false;
        };
        // Durable tombstone first (the acknowledgment), then retire the put
        // record, then the tombstone itself. Recovery handles every crash
        // window in between by sequence order.
        let seq = self.seq.fetch_add(1, Ordering::SeqCst);
        let header = Header {
            kind: KIND_TOMB,
            block,
            seq,
            payload_len: 0,
            payload_crc: 0,
        };
        let committed = self.commit_record(&header, &[]);
        match committed {
            Ok(tomb) => {
                let _ = self.retire(entry.ext);
                let _ = self.retire(tomb);
                true
            }
            // The tombstone never committed: put the index entry back so
            // the caller sees a failed (not half-applied) delete.
            Err(_) => {
                self.stripe_for(block).lock().insert(block, entry);
                false
            }
        }
    }

    fn contains(&self, block: BlockId) -> bool {
        self.stripe_for(block).lock().contains_key(&block)
    }

    fn block_count(&self) -> usize {
        self.index.iter().map(|s| s.lock().len()).sum()
    }

    fn bytes_stored(&self) -> u64 {
        self.index
            .iter()
            .map(|s| s.lock().values().map(|e| e.payload_len as u64).sum::<u64>())
            .sum()
    }

    fn backend(&self) -> StoreBackend {
        StoreBackend::Extent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blk(n: usize, fill: u8) -> (Block, u32) {
        let data = Block::from(vec![fill; n]);
        let crc = crc32c(&data);
        (data, crc)
    }

    #[test]
    fn align_and_extent_len() {
        assert_eq!(align_up(0), 0);
        assert_eq!(align_up(1), ALIGN);
        assert_eq!(align_up(ALIGN), ALIGN);
        assert_eq!(extent_len(0), ALIGN);
        assert_eq!(extent_len((ALIGN - HEADER_LEN) as u32), ALIGN);
        assert_eq!(extent_len((ALIGN - HEADER_LEN) as u32 + 1), 2 * ALIGN);
    }

    #[test]
    fn header_round_trip_and_rejection() {
        let h = Header {
            kind: KIND_PUT,
            block: BlockId(77),
            seq: 12345,
            payload_len: 999,
            payload_crc: 0xDEAD_BEEF,
        };
        let bytes = encode_header(&h);
        assert_eq!(decode_header(&bytes), Some(h));
        assert_eq!(decode_header(&[0u8; 64]), None, "zeroed header is free");
        let mut torn = bytes;
        torn[20] ^= 1;
        assert_eq!(decode_header(&torn), None, "bit flip breaks the crc");
    }

    #[test]
    fn allocator_splits_and_coalesces() {
        let mut a = Allocator::default();
        a.release(ExtentRef { seg: 0, off: 0, len: 4 * ALIGN });
        let x = a.alloc(ALIGN).unwrap();
        assert_eq!((x.off, x.len), (0, ALIGN));
        let y = a.alloc(2 * ALIGN).unwrap();
        assert_eq!((y.off, y.len), (ALIGN, 2 * ALIGN));
        a.release(x);
        a.release(y);
        // Everything coalesced back into one run.
        assert_eq!(a.free.len(), 1);
        assert_eq!(a.free[0], ExtentRef { seg: 0, off: 0, len: 4 * ALIGN });
        assert!(a.alloc(5 * ALIGN).is_none());
    }

    #[test]
    fn basic_roundtrip_matches_trait_contract() {
        let s = ExtentStore::new("rt").unwrap();
        let (data, crc) = blk(500, 7);
        s.put(BlockId(42), data.clone(), crc).unwrap();
        assert!(s.contains(BlockId(42)));
        assert_eq!(s.block_count(), 1);
        assert_eq!(s.bytes_stored(), 500);
        assert_eq!(s.stored_crc(BlockId(42)), Some(crc));
        let (bytes, got) = s.get_with_crc(BlockId(42)).unwrap();
        assert_eq!(bytes.as_slice(), data.as_slice());
        assert_eq!(got, crc);
        assert!(s.delete(BlockId(42)));
        assert!(!s.delete(BlockId(42)));
        assert!(s.get_with_crc(BlockId(42)).is_none());
        assert_eq!(s.block_count(), 0);
        assert_eq!(s.backend(), StoreBackend::Extent);
    }

    #[test]
    fn overwrite_returns_latest_and_reuses_space() {
        let s = ExtentStore::new("ow").unwrap();
        let (a, ca) = blk(1000, 1);
        let (b, cb) = blk(2000, 2);
        s.put(BlockId(5), a, ca).unwrap();
        s.put(BlockId(5), b.clone(), cb).unwrap();
        let (bytes, crc) = s.get_with_crc(BlockId(5)).unwrap();
        assert_eq!(bytes.as_slice(), b.as_slice());
        assert_eq!(crc, cb);
        assert_eq!(s.block_count(), 1);
        assert_eq!(s.bytes_stored(), 2000);
    }

    #[test]
    fn oversized_record_gets_a_dedicated_segment() {
        let s = ExtentStore::new("big").unwrap();
        let n = (SEG_SIZE + ALIGN) as usize;
        let (data, crc) = blk(n, 9);
        s.put(BlockId(1), data.clone(), crc).unwrap();
        let (bytes, _) = s.get_with_crc(BlockId(1)).unwrap();
        assert_eq!(bytes.len(), n);
        assert_eq!(bytes.as_slice(), data.as_slice());
    }

    #[test]
    fn persistent_store_survives_reopen() {
        let dir = std::env::temp_dir().join(format!(
            "ear-extent-persist-{}-{}",
            std::process::id(),
            STORE_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        {
            let s = ExtentStore::open_at(&dir, true).unwrap();
            for i in 0..20u64 {
                let (data, crc) = blk(100 + i as usize * 37, i as u8);
                s.put(BlockId(i), data, crc).unwrap();
            }
            // Overwrite some, delete some.
            for i in 0..5u64 {
                let (data, crc) = blk(64, 0xAA);
                s.put(BlockId(i), data, crc).unwrap();
            }
            for i in 15..20u64 {
                assert!(s.delete(BlockId(i)));
            }
        }
        let s = ExtentStore::open_at(&dir, true).unwrap();
        assert_eq!(s.block_count(), 15);
        for i in 0..5u64 {
            let (bytes, _) = s.get_with_crc(BlockId(i)).unwrap();
            assert_eq!(bytes.as_slice(), &vec![0xAAu8; 64][..]);
        }
        for i in 5..15u64 {
            let (bytes, _) = s.get_with_crc(BlockId(i)).unwrap();
            assert_eq!(bytes.as_slice(), &vec![i as u8; 100 + i as usize * 37][..]);
        }
        for i in 15..20u64 {
            assert!(!s.contains(BlockId(i)), "deleted block resurrected");
        }
        // New writes after recovery land in reclaimed space and read back.
        let (data, crc) = blk(512, 0x5C);
        s.put(BlockId(99), data.clone(), crc).unwrap();
        let (bytes, _) = s.get_with_crc(BlockId(99)).unwrap();
        assert_eq!(bytes.as_slice(), data.as_slice());
        drop(s);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn journal_captures_commit_order() {
        let s = ExtentStore::journaled("j").unwrap();
        let (data, crc) = blk(100, 3);
        s.put(BlockId(0), data, crc).unwrap();
        let ev = s.take_journal();
        // Create, payload write, header write, barrier.
        assert!(matches!(ev[0], WriteEvent::Create { seg: 0, .. }));
        assert!(
            matches!(&ev[1], WriteEvent::Write { off, data, .. } if *off == HEADER_LEN && data.len() == 100)
        );
        assert!(matches!(&ev[2], WriteEvent::Write { off: 0, data, .. } if data.len() == 64));
        assert!(matches!(ev[3], WriteEvent::Barrier));
        assert_eq!(ev.len(), 4);
    }

    #[test]
    fn temp_root_is_removed_on_drop() {
        let s = ExtentStore::new("drop").unwrap();
        let root = s.root().to_path_buf();
        let (data, crc) = blk(10, 1);
        s.put(BlockId(0), data, crc).unwrap();
        assert!(root.exists());
        drop(s);
        assert!(!root.exists());
    }
}
