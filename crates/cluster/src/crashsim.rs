//! Deterministic crash/power-loss simulator (DESIGN.md §13).
//!
//! Each runner builds a durable artifact from a seeded script, cuts its
//! write stream at an arbitrary kill point — byte-granular for the WAL and
//! checkpoint, event-granular with seeded write tearing for the extent
//! engine — then recovers and checks the three durability invariants:
//!
//! 1. **No acknowledged write is lost.** Everything whose commit barrier
//!    (full frame on disk / fsync returned) precedes the cut is recovered.
//! 2. **No unacknowledged write is half-visible.** An operation cut before
//!    its barrier either fully happened or fully did not; torn bytes never
//!    surface as data.
//! 3. **Recovery is deterministic.** Reopening twice from the same kill
//!    point yields the identical image.
//!
//! Everything is a pure function of `(seed, kill)` — a failing pair
//! printed by proptest or the CLI replays bit-identically anywhere
//! (the RNG is `ear-faults`' own ChaCha8 stream, not an external crate's).

use crate::extent::{ExtentStore, WriteEvent};
use crate::wal::{
    encode_checkpoint, encode_frame, MetaRecord, MetaSnapshot, MetaWal, PlanRecord,
    CHECKPOINT_FILE, WAL_FILE,
};
use crate::BlockStore;
use ear_faults::{crc32c, ChaCha8};
use ear_types::{Block, BlockId, Error, NodeId, RackId, Result, StripeId};
use std::collections::BTreeMap;
use std::fs;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Outcome of one kill-point run, for smoke-test output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KillSummary {
    /// Operations (records) in the generated script.
    pub ops: usize,
    /// Where the write stream was cut (bytes or events, per surface).
    pub cut: usize,
    /// Operations that were durable at the cut and survived recovery.
    pub survivors: usize,
}

static SIM_SEQ: AtomicU64 = AtomicU64::new(0);

fn sim_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "ear-crashsim-{}-{}-{}",
        std::process::id(),
        SIM_SEQ.fetch_add(1, Ordering::Relaxed),
        tag
    ))
}

fn invariant(msg: String) -> Error {
    Error::Invariant(msg)
}

/// Removes a simulation's scratch directory. Already-gone is success;
/// anything else is a real error — a verdict computed while the scratch
/// tree cannot be torn down would leak state into the next scenario.
fn cleanup(dir: &Path) -> Result<()> {
    match fs::remove_dir_all(dir) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(Error::Io {
            context: format!("remove {}: {e}", dir.display()),
        }),
    }
}

// ---------------------------------------------------------------------------
// Script generation
// ---------------------------------------------------------------------------

fn random_nodes(rng: &mut ChaCha8, max: u32, count: usize) -> Vec<NodeId> {
    rng.sample_indices(max as usize, count)
        .into_iter()
        .map(|i| NodeId(i as u32))
        .collect()
}

/// A uniformly drawn element of `v`, or `None` when it is empty.
fn pick(rng: &mut ChaCha8, v: &[BlockId]) -> Option<BlockId> {
    v.get(rng.below(v.len() as u64) as usize).copied()
}

fn random_plan(rng: &mut ChaCha8, k: usize) -> PlanRecord {
    let layouts: Vec<Vec<NodeId>> = (0..k).map(|_| random_nodes(rng, 32, 3)).collect();
    let core_rack = (rng.below(2) == 0).then(|| RackId(rng.below(8) as u32));
    let target_racks = (rng.below(2) == 0)
        .then(|| (0..rng.below(4) as usize).map(|_| RackId(rng.below(8) as u32)).collect());
    PlanRecord {
        retries: (0..k).map(|_| rng.below(4)).collect(),
        layouts,
        core_rack,
        target_racks,
    }
}

/// Expands `seed` into a deterministic script of ~40 metadata mutations:
/// allocations, location churn, stripe seals, and encode commits, in a
/// dependency-respecting order.
pub fn wal_script(seed: u64) -> Vec<MetaRecord> {
    let mut rng = ChaCha8::from_seed(seed ^ 0x57A1_5C21_D06A_11CE);
    let mut records = Vec::new();
    let mut next_block = 0u64;
    let mut next_stripe = 0u64;
    let mut unsealed: Vec<BlockId> = Vec::new();
    let mut pending: Vec<StripeId> = Vec::new();
    let mut known: Vec<BlockId> = Vec::new();
    for _ in 0..40 {
        match rng.below(10) {
            0..=3 => {
                let block = BlockId(next_block);
                next_block += 1;
                let assigned = rng.below(4) != 0;
                let count = 1 + rng.below(3) as usize;
                records.push(MetaRecord::Allocate {
                    block,
                    locations: random_nodes(&mut rng, 32, count),
                    assigned,
                });
                if assigned {
                    unsealed.push(block);
                }
                known.push(block);
            }
            4 if !known.is_empty() => {
                let block = pick(&mut rng, &known).unwrap_or(BlockId(0));
                let count = 1 + rng.below(3) as usize;
                records.push(MetaRecord::SetLocations {
                    block,
                    nodes: random_nodes(&mut rng, 32, count),
                });
            }
            5 if !known.is_empty() => {
                let block = pick(&mut rng, &known).unwrap_or(BlockId(0));
                records.push(MetaRecord::DropLocation {
                    block,
                    node: NodeId(rng.below(32) as u32),
                });
            }
            6 if !known.is_empty() => {
                let block = pick(&mut rng, &known).unwrap_or(BlockId(0));
                records.push(MetaRecord::AddLocation {
                    block,
                    node: NodeId(rng.below(32) as u32),
                });
            }
            7 | 8 if unsealed.len() >= 2 => {
                let k = 2 + rng.below((unsealed.len() - 1) as u64) as usize;
                let blocks: Vec<BlockId> = unsealed.drain(..k).collect();
                let stripe = StripeId(next_stripe);
                next_stripe += 1;
                let plan = random_plan(&mut rng, blocks.len());
                records.push(MetaRecord::SealStripe {
                    stripe,
                    blocks,
                    plan,
                });
                pending.push(stripe);
            }
            9 if !pending.is_empty() => {
                let stripe = pending.remove(rng.below(pending.len() as u64) as usize);
                let data = random_nodes(&mut rng, 32, 2)
                    .iter()
                    .map(|n| BlockId(n.0 as u64))
                    .collect();
                let parity = vec![BlockId(next_block), BlockId(next_block + 1)];
                next_block += 2;
                records.push(MetaRecord::EncodeCommit {
                    stripe,
                    data,
                    parity,
                });
            }
            _ => {
                // The drawn op had no eligible target; fall back to an
                // allocation so the script always reaches its length.
                let block = BlockId(next_block);
                next_block += 1;
                records.push(MetaRecord::Allocate {
                    block,
                    locations: random_nodes(&mut rng, 32, 2),
                    assigned: true,
                });
                unsealed.push(block);
                known.push(block);
            }
        }
    }
    records
}

// ---------------------------------------------------------------------------
// Surface 1: WAL replay
// ---------------------------------------------------------------------------

/// Cuts a WAL byte image at `kill` and proves recovery equals the apply of
/// exactly the fully-framed prefix — twice.
///
/// # Errors
///
/// [`Error::Invariant`] describing the first violated recovery invariant,
/// or the underlying typed error if recovery itself fails.
pub fn run_wal_kill(seed: u64, kill: u64) -> Result<KillSummary> {
    let records = wal_script(seed);

    // Frame the full log and remember each record's commit boundary.
    let mut image = Vec::new();
    let mut commit_at = Vec::new(); // byte length at which record i is acked
    for (i, rec) in records.iter().enumerate() {
        image.extend_from_slice(&encode_frame(i as u64 + 1, rec));
        commit_at.push(image.len());
    }
    let cut = (kill % (image.len() as u64 + 1)) as usize;

    // The expected image: every record whose full frame precedes the cut.
    let mut expected = MetaSnapshot::default();
    let mut survivors = 0usize;
    for (rec, &end) in records.iter().zip(&commit_at) {
        if end <= cut {
            expected.apply(rec);
            survivors += 1;
        }
    }

    let dir = sim_dir("wal");
    fs::create_dir_all(&dir).map_err(|e| Error::Io {
        context: format!("create {}: {e}", dir.display()),
    })?;
    let mut torn = image.get(..cut).unwrap_or_default().to_vec();
    // Half the time, smear seeded garbage after the cut — a torn sector
    // carries old bytes, not neat truncation.
    let mut rng = ChaCha8::from_seed(seed ^ kill.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    if rng.below(2) == 0 {
        let tail = 1 + rng.below(48) as usize;
        for _ in 0..tail {
            torn.push(rng.next_u32() as u8);
        }
    }
    fs::write(dir.join(WAL_FILE), &torn).map_err(|e| Error::Io {
        context: format!("write torn wal: {e}"),
    })?;

    let verdict = (|| {
        let (_, recovered) = MetaWal::open(&dir, true, 1 << 20)?;
        if recovered != expected {
            return Err(invariant(format!(
                "wal kill (seed {seed}, cut {cut}): recovered image diverges from the \
                 {survivors}-record prefix"
            )));
        }
        // Determinism: a second open (after the torn tail was truncated)
        // recovers the identical image.
        let (_, again) = MetaWal::open(&dir, true, 1 << 20)?;
        if again != recovered {
            return Err(invariant(format!(
                "wal kill (seed {seed}, cut {cut}): second recovery differs from the first"
            )));
        }
        Ok(())
    })();
    let cleaned = cleanup(&dir);
    verdict?;
    cleaned?;
    Ok(KillSummary {
        ops: records.len(),
        cut,
        survivors,
    })
}

// ---------------------------------------------------------------------------
// Surface 2: checkpoint load
// ---------------------------------------------------------------------------

/// Kills the checkpoint protocol in each of its three crash windows —
/// partial `CHECKPOINT.tmp`, committed checkpoint with an uncompacted log,
/// and a corrupt committed checkpoint — and proves recovery lands on the
/// full image (first two) or a typed [`Error::WalCorrupt`] (third).
///
/// # Errors
///
/// [`Error::Invariant`] describing the violated invariant.
pub fn run_checkpoint_kill(seed: u64, kill: u64) -> Result<KillSummary> {
    let records = wal_script(seed);
    let mid = records.len() / 2;

    let mut full = MetaSnapshot::default();
    let mut at_mid = MetaSnapshot::default();
    let mut image = Vec::new();
    let mut suffix = Vec::new();
    for (i, rec) in records.iter().enumerate() {
        full.apply(rec);
        if i < mid {
            at_mid.apply(rec);
        } else {
            suffix.extend_from_slice(&encode_frame(i as u64 + 1, rec));
        }
        image.extend_from_slice(&encode_frame(i as u64 + 1, rec));
    }
    let ckpt = encode_checkpoint(&at_mid, mid as u64);

    let dir = sim_dir("ckpt");
    let verdict = (|| {
        // (a) Crash mid-checkpoint-write: a partial CHECKPOINT.tmp next to
        // the full log. The tmp is discarded; replay covers everything.
        fs::create_dir_all(&dir).map_err(|e| Error::Io {
            context: format!("create {}: {e}", dir.display()),
        })?;
        let tmp_cut = (kill % (ckpt.len() as u64 + 1)) as usize;
        fs::write(
            dir.join(format!("{CHECKPOINT_FILE}.tmp")),
            ckpt.get(..tmp_cut).unwrap_or_default(),
        )
        .map_err(|e| Error::Io {
            context: format!("write partial checkpoint tmp: {e}"),
        })?;
        fs::write(dir.join(WAL_FILE), &image).map_err(|e| Error::Io {
            context: format!("write wal: {e}"),
        })?;
        let (_, recovered) = MetaWal::open(&dir, true, 1 << 20)?;
        if recovered != full {
            return Err(invariant(format!(
                "checkpoint kill (seed {seed}, cut {tmp_cut}): partial tmp leaked into recovery"
            )));
        }

        // (b) Crash after the rename but before compaction: committed
        // checkpoint + full (uncompacted) log. Replay must skip lsn ≤ mid
        // and still land on the full image.
        cleanup(&dir)?;
        fs::create_dir_all(&dir).map_err(|e| Error::Io {
            context: format!("create {}: {e}", dir.display()),
        })?;
        fs::write(dir.join(CHECKPOINT_FILE), &ckpt).map_err(|e| Error::Io {
            context: format!("write checkpoint: {e}"),
        })?;
        fs::write(dir.join(WAL_FILE), &image).map_err(|e| Error::Io {
            context: format!("write wal: {e}"),
        })?;
        let (_, recovered) = MetaWal::open(&dir, true, 1 << 20)?;
        if recovered != full {
            return Err(invariant(format!(
                "checkpoint kill (seed {seed}): lsn-skip replay over an uncompacted log diverged"
            )));
        }
        let (_, again) = MetaWal::open(&dir, true, 1 << 20)?;
        if again != recovered {
            return Err(invariant(format!(
                "checkpoint kill (seed {seed}): second recovery differs from the first"
            )));
        }

        // (c) A torn *committed* checkpoint (can only come from real
        // corruption — the rename protocol never exposes one) must surface
        // as a typed error, never a panic or a silent empty image.
        cleanup(&dir)?;
        fs::create_dir_all(&dir).map_err(|e| Error::Io {
            context: format!("create {}: {e}", dir.display()),
        })?;
        let cut = (kill % ckpt.len() as u64) as usize; // strictly short
        fs::write(dir.join(CHECKPOINT_FILE), ckpt.get(..cut).unwrap_or_default()).map_err(
            |e| Error::Io {
                context: format!("write torn checkpoint: {e}"),
            },
        )?;
        fs::write(dir.join(WAL_FILE), &suffix).map_err(|e| Error::Io {
            context: format!("write wal suffix: {e}"),
        })?;
        match MetaWal::open(&dir, true, 1 << 20) {
            Err(Error::WalCorrupt { .. }) => Ok(()),
            Err(e) => Err(invariant(format!(
                "checkpoint kill (seed {seed}, cut {cut}): torn checkpoint raised {e} instead of \
                 a corruption error"
            ))),
            Ok(_) => Err(invariant(format!(
                "checkpoint kill (seed {seed}, cut {cut}): torn checkpoint recovered silently"
            ))),
        }
    })();
    let cleaned = cleanup(&dir);
    verdict?;
    cleaned?;
    Ok(KillSummary {
        ops: records.len(),
        cut: (kill % (ckpt.len() as u64 + 1)) as usize,
        survivors: records.len(),
    })
}

// ---------------------------------------------------------------------------
// Surface 3: extent reopen
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum ExtOp {
    Put { block: BlockId, data: Vec<u8> },
    Delete { block: BlockId },
}

fn extent_script(seed: u64) -> Vec<ExtOp> {
    let mut rng = ChaCha8::from_seed(seed ^ 0xE47E_0D5A_93B1_77F3);
    let mut live: Vec<BlockId> = Vec::new();
    let mut ops = Vec::new();
    for _ in 0..24 {
        let delete = !live.is_empty() && rng.below(5) == 0;
        if delete {
            let block = pick(&mut rng, &live).unwrap_or(BlockId(0));
            live.retain(|&b| b != block);
            ops.push(ExtOp::Delete { block });
        } else {
            let block = BlockId(rng.below(10));
            let len = 1 + rng.below(6000) as usize;
            let mut data = vec![0u8; len];
            for b in data.iter_mut() {
                *b = rng.next_u32() as u8;
            }
            if !live.contains(&block) {
                live.push(block);
            }
            ops.push(ExtOp::Put { block, data });
        }
    }
    ops
}

/// One operation's slice of the journaled write stream.
struct OpSpan {
    start: usize,
    ack: usize,
    end: usize,
}

/// Replays a seeded put/overwrite/delete script through a journaled
/// [`ExtentStore`], materializes the write stream cut (and seeded-torn)
/// at `kill`, reopens, and proves the acked prefix — and nothing torn —
/// is what comes back. Reopens twice for determinism.
///
/// # Errors
///
/// [`Error::Invariant`] describing the violated invariant, or the
/// underlying error if the store itself fails.
pub fn run_extent_kill(seed: u64, kill: u64) -> Result<KillSummary> {
    let ops = extent_script(seed);
    let store = ExtentStore::journaled("sim")?;
    let mut spans: Vec<OpSpan> = Vec::new();
    let mut events: Vec<WriteEvent> = Vec::new();
    // States[i] = expected contents after ops[0..i] all acked.
    let mut states: Vec<BTreeMap<BlockId, Vec<u8>>> = vec![BTreeMap::new()];
    for op in &ops {
        // The journal is drained after every op, so this op's events start
        // at the running count.
        let start = events.len();
        match op {
            ExtOp::Put { block, data } => {
                let crc = crc32c(data);
                store.put(*block, Block::from(data.clone()), crc)?;
            }
            ExtOp::Delete { block } => {
                store.delete(*block);
            }
        }
        let mut chunk = store.take_journal();
        let ack = chunk
            .iter()
            .position(|e| matches!(e, WriteEvent::Barrier))
            .map(|p| start + p)
            .unwrap_or(start);
        events.append(&mut chunk);
        let end = events.len();
        spans.push(OpSpan { start, ack, end });
        let mut next = states.last().cloned().unwrap_or_default();
        match op {
            ExtOp::Put { block, data } => {
                next.insert(*block, data.clone());
            }
            ExtOp::Delete { block } => {
                next.remove(block);
            }
        }
        states.push(next);
    }
    drop(store);

    let cut = (kill % (events.len() as u64 + 1)) as usize;
    // Every op whose ack barrier lies before the cut is durable.
    let acked = spans.iter().take_while(|s| s.ack < cut).count();
    // The op (if any) whose span straddles the cut may atomically be
    // present or absent.
    let straddler = spans
        .iter()
        .enumerate()
        .find(|(_, s)| s.start < cut && cut <= s.end && s.ack >= cut)
        .map(|(i, _)| i);

    // Writes after the last barrier before the cut may be lost, torn, or
    // reordered by the device; every one gets an independent seeded fate.
    let last_barrier = events
        .iter()
        .take(cut)
        .rposition(|e| matches!(e, WriteEvent::Barrier))
        .map(|p| p + 1)
        .unwrap_or(0);

    let dir = sim_dir("extent");
    let verdict = (|| {
        fs::create_dir_all(&dir).map_err(|e| Error::Io {
            context: format!("create {}: {e}", dir.display()),
        })?;
        let mut rng = ChaCha8::from_seed(seed ^ kill.wrapping_mul(0xC2B2_AE3D_27D4_EB4F));
        let mut files: BTreeMap<usize, fs::File> = BTreeMap::new();
        let mut dropped_segs: Vec<usize> = Vec::new();
        for (i, ev) in events.iter().take(cut).enumerate() {
            let in_window = i >= last_barrier;
            match ev {
                WriteEvent::Create { seg, size } => {
                    if in_window && rng.below(4) == 0 {
                        // The file creation itself never became durable.
                        dropped_segs.push(*seg);
                        continue;
                    }
                    let path = dir.join(format!("ext-{seg}.seg"));
                    let f = fs::OpenOptions::new()
                        .create(true)
                        .truncate(false)
                        .read(true)
                        .write(true)
                        .open(&path)
                        .map_err(|e| Error::Io {
                            context: format!("materialize {}: {e}", path.display()),
                        })?;
                    f.set_len(*size).map_err(|e| Error::Io {
                        context: format!("size {}: {e}", path.display()),
                    })?;
                    files.insert(*seg, f);
                }
                WriteEvent::Write { seg, off, data } => {
                    if dropped_segs.contains(seg) {
                        continue;
                    }
                    let keep = if in_window {
                        match rng.below(4) {
                            0 => 0,                                  // lost entirely
                            1 => rng.below(data.len() as u64 + 1) as usize, // torn
                            _ => data.len(),                         // made it
                        }
                    } else {
                        data.len()
                    };
                    if keep == 0 {
                        continue;
                    }
                    if let Some(f) = files.get(seg) {
                        f.write_all_at(data.get(..keep).unwrap_or_default(), *off)
                            .map_err(|e| Error::Io {
                                context: format!("materialize write seg {seg}: {e}"),
                            })?;
                    }
                }
                WriteEvent::Barrier => {}
            }
        }
        drop(files);

        let recovered = ExtentStore::open_at(&dir, true)?;
        let base = states.get(acked).cloned().unwrap_or_default();
        let after = straddler
            .and_then(|i| states.get(i + 1))
            .cloned()
            .unwrap_or_default();
        let straddle_block = straddler.and_then(|i| ops.get(i)).map(|op| match op {
            ExtOp::Put { block, .. } | ExtOp::Delete { block } => *block,
        });

        let mut candidates: Vec<BlockId> = base.keys().copied().collect();
        if let Some(b) = straddle_block {
            if !candidates.contains(&b) {
                candidates.push(b);
            }
        }
        for block in candidates {
            let got = recovered.get_with_crc(block);
            let want_base = base.get(&block);
            if Some(block) == straddle_block {
                let want_after = after.get(&block);
                let matches_base = contents_match(&got, want_base);
                let matches_after = contents_match(&got, want_after);
                if !matches_base && !matches_after {
                    return Err(invariant(format!(
                        "extent kill (seed {seed}, cut {cut}): {block:?} is neither its \
                         pre-crash nor its in-flight image"
                    )));
                }
            } else if !contents_match(&got, want_base) {
                return Err(invariant(format!(
                    "extent kill (seed {seed}, cut {cut}): acked content of {block:?} lost or \
                     altered"
                )));
            }
            // Whatever came back must carry a self-consistent CRC: torn
            // payloads may never surface.
            if let Some((bytes, crc)) = &got {
                if crc32c(bytes) != *crc {
                    return Err(invariant(format!(
                        "extent kill (seed {seed}, cut {cut}): {block:?} surfaced with a \
                         mismatched crc"
                    )));
                }
            }
        }

        // Determinism: a second recovery sees the same image.
        type Image = Vec<(BlockId, Option<(Vec<u8>, u32)>)>;
        fn image_of(store: &ExtentStore) -> Image {
            (0u64..10)
                .map(BlockId)
                .map(|b| {
                    (
                        b,
                        store.get_with_crc(b).map(|(d, c)| (d.as_slice().to_vec(), c)),
                    )
                })
                .collect()
        }
        let first = image_of(&recovered);
        drop(recovered);
        let reopened = ExtentStore::open_at(&dir, true)?;
        let second = image_of(&reopened);
        if first != second {
            return Err(invariant(format!(
                "extent kill (seed {seed}, cut {cut}): second recovery differs from the first"
            )));
        }
        Ok(())
    })();
    let cleaned = cleanup(&dir);
    verdict?;
    cleaned?;
    Ok(KillSummary {
        ops: ops.len(),
        cut,
        survivors: acked,
    })
}

fn contents_match(got: &Option<(Block, u32)>, want: Option<&Vec<u8>>) -> bool {
    match (got, want) {
        (None, None) => true,
        (Some((bytes, _)), Some(w)) => bytes.as_slice() == w.as_slice(),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripts_are_deterministic() {
        assert_eq!(wal_script(7), wal_script(7));
        assert_ne!(wal_script(7), wal_script(8));
        let a = format!("{:?}", extent_script(7));
        assert_eq!(a, format!("{:?}", extent_script(7)));
    }

    #[test]
    fn wal_kill_sweep_smoke() {
        for seed in 0..3u64 {
            for kill in [0u64, 13, 97, 511, 4093, u64::MAX] {
                run_wal_kill(seed, kill).unwrap();
            }
        }
    }

    #[test]
    fn checkpoint_kill_sweep_smoke() {
        for seed in 0..3u64 {
            for kill in [0u64, 13, 97, 511, u64::MAX] {
                run_checkpoint_kill(seed, kill).unwrap();
            }
        }
    }

    #[test]
    fn extent_kill_sweep_smoke() {
        for seed in 0..3u64 {
            for kill in [0u64, 3, 17, 40, 101, u64::MAX] {
                run_extent_kill(seed, kill).unwrap();
            }
        }
    }
}
