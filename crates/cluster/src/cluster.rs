//! The mini-CFS facade: DataNodes + NameNode + emulated network.

use crate::datanode::DataNode;
use crate::health::{FailureDetector, HealthConfig, HealthTransition};
use crate::io::{ClusterIo, IoStats};
use crate::namenode::NameNode;
use crate::reliability::{self, OpClass, OpContext, Reliability, ReliabilityConfig};
use crate::wal::MetaWal;
use ear_core::{EncodingAwareReplication, PlacementPolicy, RandomReplicationPolicy};
use ear_erasure::ReedSolomon;
use ear_faults::{FaultInjector, FaultPlan};
use ear_netem::EmulatedNetwork;
use ear_types::{
    Bandwidth, Block, BlockId, ByteSize, CacheConfig, ClusterTopology, DurabilityConfig,
    EarConfig, EncodePath, Error, NodeHealth, NodeId, RepairPath, Result, StoreBackend,
};
use std::fs;
use std::path::Path;
use std::sync::{Arc, Mutex};

use crate::sync::locked;

/// Which placement policy the cluster runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterPolicy {
    /// Random replication.
    Rr,
    /// Encoding-aware replication.
    Ear,
}

/// Configuration of a [`MiniCfs`].
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of racks.
    pub racks: usize,
    /// Nodes per rack (the paper's testbed: 1).
    pub nodes_per_rack: usize,
    /// Block size. Scaled down from HDFS's 64 MiB so experiments run in
    /// seconds (the bandwidth scales with it).
    pub block_size: ByteSize,
    /// Node link bandwidth.
    pub node_bandwidth: Bandwidth,
    /// Rack (top-of-rack uplink) bandwidth.
    pub rack_bandwidth: Bandwidth,
    /// Shared placement/encoding parameters.
    pub ear: EarConfig,
    /// Placement policy.
    pub policy: ClusterPolicy,
    /// RNG seed for the NameNode's policy.
    pub seed: u64,
    /// Which block-storage backend the DataNodes run on.
    pub store: StoreBackend,
    /// The DataNodes' block-cache configuration (DESIGN.md §12).
    pub cache: CacheConfig,
    /// The durability layer (DESIGN.md §13). Default: volatile — no data
    /// directory, no WAL, state dies with the process, exactly the
    /// pre-durability testbed.
    pub durability: DurabilityConfig,
    /// The reliability substrate (DESIGN.md §14): deadlines, retry budgets,
    /// circuit breakers, hedged reads, and admission control.
    pub reliability: ReliabilityConfig,
    /// Which encode data path `RaidNode` uses (DESIGN.md §15). Both paths
    /// emit bit-identical parity and metadata; they differ only in traffic
    /// shape.
    pub encode_path: EncodePath,
    /// Which repair data path recovery/healing uses (DESIGN.md §15). Both
    /// paths rebuild byte-identical shards.
    pub repair_path: RepairPath,
}

impl ClusterConfig {
    /// A scaled-down version of the paper's 13-machine testbed: 12
    /// single-node racks, 4 MiB blocks, 2-way replication, links scaled so a
    /// block transfer takes a few tens of milliseconds.
    pub fn testbed(policy: ClusterPolicy, ear: EarConfig) -> Self {
        ClusterConfig {
            racks: 12,
            nodes_per_rack: 1,
            block_size: ByteSize::mib(4),
            node_bandwidth: Bandwidth::bytes_per_sec(128e6),
            rack_bandwidth: Bandwidth::bytes_per_sec(128e6),
            ear,
            policy,
            seed: 1,
            store: StoreBackend::from_env(),
            cache: CacheConfig::from_env(),
            durability: DurabilityConfig::default(),
            reliability: ReliabilityConfig::default(),
            encode_path: EncodePath::from_env(),
            repair_path: RepairPath::from_env(),
        }
    }
}

/// Validates (or, on first boot, writes) the data directory's MANIFEST:
/// the shape parameters a durable cluster must be reopened with. A reopen
/// under a different shape would silently mis-route every block, so a
/// mismatch is a hard [`Error::Invariant`].
fn check_manifest(dir: &Path, config: &ClusterConfig) -> Result<()> {
    let expected = format!(
        "store={}\nracks={}\nnodes_per_rack={}\nblock_size={}\npolicy={}\nseed={}\n",
        config.store.name(),
        config.racks,
        config.nodes_per_rack,
        config.block_size.as_u64(),
        match config.policy {
            ClusterPolicy::Rr => "rr",
            ClusterPolicy::Ear => "ear",
        },
        config.seed,
    );
    let path = dir.join("MANIFEST");
    match fs::read_to_string(&path) {
        Ok(found) => {
            if found != expected {
                return Err(Error::Invariant(format!(
                    "manifest mismatch at {}: directory was written as\n{found}but is being \
                     reopened as\n{expected}",
                    path.display()
                )));
            }
            Ok(())
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            fs::create_dir_all(dir).map_err(|e| Error::Io {
                context: format!("create {}: {e}", dir.display()),
            })?;
            // Durable first-boot publish (L4): payload synced before the
            // rename makes it visible, directory synced after so the name
            // itself survives a crash — a half-written MANIFEST would brick
            // every future reopen with a spurious mismatch.
            let tmp = dir.join("MANIFEST.tmp");
            fs::write(&tmp, &expected)
                .and_then(|()| fs::File::open(&tmp).and_then(|f| f.sync_all()))
                .and_then(|()| fs::rename(&tmp, &path))
                .and_then(|()| fs::File::open(dir).and_then(|d| d.sync_all()))
                .map_err(|e| Error::Io {
                    context: format!("write {}: {e}", path.display()),
                })
        }
        Err(e) => Err(Error::Io {
            context: format!("read {}: {e}", path.display()),
        }),
    }
}

/// An in-process clustered file system: the HDFS stand-in for the paper's
/// testbed experiments. Real bytes move through an emulated network and are
/// really Reed–Solomon encoded.
pub struct MiniCfs {
    config: ClusterConfig,
    topo: ClusterTopology,
    namenode: NameNode,
    io: ClusterIo,
    codec: ReedSolomon,
    health: Mutex<FailureDetector>,
    reliability: Arc<Reliability>,
}

impl MiniCfs {
    /// Boots a cluster with no fault injection.
    ///
    /// # Errors
    ///
    /// Returns validation errors when the topology cannot host the
    /// configured policies.
    pub fn new(config: ClusterConfig) -> Result<Self> {
        Self::boot(config, None)
    }

    /// Boots a cluster that executes `plan`: its stragglers are throttled
    /// immediately, and every subsequent block read/write consults the
    /// plan's injector.
    ///
    /// # Errors
    ///
    /// Returns validation errors when the topology cannot host the
    /// configured policies.
    pub fn with_faults(config: ClusterConfig, plan: FaultPlan) -> Result<Self> {
        Self::boot(config, Some(plan))
    }

    /// Reopens a durable cluster from its data directory: validates the
    /// manifest, replays the NameNode's checkpoint + WAL suffix, and
    /// recovers every DataNode's on-disk store. Equivalent to [`MiniCfs::new`]
    /// with the same durable config — this alias exists so restart tests
    /// and the `recover` CLI read as what they are.
    ///
    /// # Errors
    ///
    /// * [`Error::NotDurable`] if the config carries no data directory (or
    ///   the memory backend, which cannot persist).
    /// * [`Error::Invariant`] if the manifest on disk disagrees with the
    ///   config.
    /// * [`Error::WalCorrupt`] if recovery finds corrupt committed state.
    pub fn reopen(config: ClusterConfig) -> Result<Self> {
        if !config.durability.is_durable() {
            return Err(Error::NotDurable {
                backend: config.store.name(),
            });
        }
        Self::boot(config, None)
    }

    /// Forces a NameNode checkpoint now (no-op on a volatile cluster):
    /// snapshot the metadata, persist it, compact the WAL.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] if the checkpoint cannot be persisted.
    pub fn checkpoint(&self) -> Result<()> {
        self.namenode.checkpoint_now()
    }

    fn boot(config: ClusterConfig, plan: Option<FaultPlan>) -> Result<Self> {
        let topo = ClusterTopology::uniform(config.racks, config.nodes_per_rack);
        let policy: Box<dyn PlacementPolicy> = match config.policy {
            ClusterPolicy::Rr => Box::new(RandomReplicationPolicy::new(config.ear, topo.clone())?),
            ClusterPolicy::Ear => Box::new(EncodingAwareReplication::new(config.ear, topo.clone())),
        };
        let (namenode, datanodes) = match config.durability.data_dir.clone() {
            Some(dir) => {
                check_manifest(&dir, &config)?;
                let (wal, recovered) = MetaWal::open(
                    &dir.join("meta"),
                    config.durability.sync_writes,
                    config.durability.checkpoint_every,
                )?;
                let namenode =
                    NameNode::with_wal(topo.clone(), policy, config.seed, wal, &recovered)?;
                let datanodes: Vec<DataNode> = topo
                    .nodes()
                    .map(|n| {
                        DataNode::with_backend_at(
                            n,
                            config.store,
                            &dir.join("nodes").join(format!("n{}", n.0)),
                            config.durability.sync_writes,
                            config.cache,
                            config.seed,
                        )
                    })
                    .collect::<Result<_>>()?;
                (namenode, datanodes)
            }
            None => {
                let namenode = NameNode::new(topo.clone(), policy, config.seed);
                let datanodes: Vec<DataNode> = topo
                    .nodes()
                    .map(|n| DataNode::with_backend(n, config.store, config.cache, config.seed))
                    .collect::<Result<_>>()?;
                (namenode, datanodes)
            }
        };
        let net = EmulatedNetwork::new(&topo, config.node_bandwidth, config.rack_bandwidth);
        let codec = ReedSolomon::new(config.ear.erasure());
        let injector = match plan {
            Some(p) => FaultInjector::new(p, topo.clone()),
            None => FaultInjector::disabled(),
        };
        for &(node, factor) in injector.stragglers() {
            net.throttle_node(node, factor);
        }
        let health = Mutex::new(FailureDetector::new(
            topo.num_nodes(),
            HealthConfig::default(),
        ));
        let reliability = Arc::new(Reliability::new(
            config.reliability,
            config.seed,
            topo.num_nodes(),
        ));
        let io = ClusterIo::new(topo.clone(), datanodes, net, injector, reliability.clone());
        Ok(MiniCfs {
            config,
            topo,
            namenode,
            io,
            codec,
            health,
            reliability,
        })
    }

    /// Advances the heartbeat clock one tick: every DataNode that is up
    /// emits a beat (a beat may still be lost in transit per the fault
    /// plan's heartbeat-loss rate), and the NameNode-side failure detector
    /// observes the arrivals. Returns the health transitions the tick
    /// caused. Deterministic: which beats arrive is a pure function of the
    /// fault seed, the tick number, and the injector's crash activations.
    ///
    /// # Errors
    ///
    /// [`Error::LockPoisoned`] if a thread panicked mid-update in the
    /// failure detector.
    pub fn heartbeat_tick(&self) -> Result<Vec<HealthTransition>> {
        let mut det = locked(&self.health, "failure detector")?;
        let tick = det.next_tick();
        let injector = self.io.injector();
        let beats: Vec<bool> = self
            .topo
            .nodes()
            .map(|n| !injector.node_down(n) && !injector.drops_heartbeat(n, tick))
            .collect();
        let transitions = det.observe(&beats);
        // The breakers' only input: detector verdicts, never data-plane
        // failures — breaker state stays a pure function of the heartbeat
        // schedule. Half-open probes drain on the same control-plane tick.
        self.reliability.on_transitions(&transitions);
        self.reliability.drain_probes();
        Ok(transitions)
    }

    /// The failure detector's current view of one node.
    ///
    /// # Errors
    ///
    /// [`Error::LockPoisoned`] if the detector's lock is poisoned.
    ///
    /// # Panics
    ///
    /// Panics if the node id is out of range.
    pub fn node_health(&self, node: NodeId) -> Result<NodeHealth> {
        Ok(locked(&self.health, "failure detector")?.health(node))
    }

    /// The failure detector's view of every node, indexed by node id.
    ///
    /// # Errors
    ///
    /// [`Error::LockPoisoned`] if the detector's lock is poisoned.
    pub fn health_snapshot(&self) -> Result<Vec<NodeHealth>> {
        Ok(locked(&self.health, "failure detector")?.snapshot())
    }

    /// The fault injector in force (a no-op one unless the cluster was
    /// booted with [`MiniCfs::with_faults`]).
    pub fn injector(&self) -> &FaultInjector {
        self.io.injector()
    }

    /// The active fault-plan seed, or `None` when no faults are injected —
    /// recorded into experiment statistics so every printed result names
    /// the chaos it survived.
    pub fn fault_seed(&self) -> Option<u64> {
        self.io.injector().seed()
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// The topology.
    pub fn topology(&self) -> &ClusterTopology {
        &self.topo
    }

    /// The NameNode.
    pub fn namenode(&self) -> &NameNode {
        &self.namenode
    }

    /// The emulated network (for traffic statistics and injection).
    pub fn network(&self) -> &EmulatedNetwork {
        self.io.network()
    }

    /// The unified I/O service every data-plane operation goes through
    /// (DESIGN.md §9).
    pub fn io(&self) -> &ClusterIo {
        &self.io
    }

    /// The reliability substrate (DESIGN.md §14): admits operations, owns
    /// the retry budgets and circuit breakers, and sets hedging policy.
    pub fn reliability(&self) -> &Arc<Reliability> {
        &self.reliability
    }

    /// Snapshot of the cluster's per-op I/O accounting.
    pub fn io_stats(&self) -> IoStats {
        self.io.stats()
    }

    /// The Reed–Solomon codec in force.
    pub fn codec(&self) -> &ReedSolomon {
        &self.codec
    }

    /// Access to a DataNode.
    ///
    /// # Panics
    ///
    /// Panics if the node id is out of range.
    pub fn datanode(&self, node: NodeId) -> &DataNode {
        self.io.datanode(node)
    }

    /// Writes one block from `client` through the replication pipeline:
    /// client → replica 1 → replica 2 → …, paying the network cost of each
    /// hop.
    ///
    /// # Errors
    ///
    /// * [`Error::Invariant`] if `data` does not match the block size.
    /// * [`Error::Overloaded`] if the admission gate sheds the write.
    /// * Placement errors from the NameNode.
    pub fn write_block(&self, client: NodeId, data: Vec<u8>) -> Result<BlockId> {
        if data.len() as u64 != self.config.block_size.as_u64() {
            return Err(Error::Invariant(format!(
                "block must be exactly {} bytes, got {}",
                self.config.block_size.as_u64(),
                data.len()
            )));
        }
        let ctx = self.reliability.ctx(OpClass::ClientWrite)?;
        let (id, layout) = self.namenode.allocate_block()?;
        let data = Block::from(data);
        let (stored, err) = self.io.write_replicated(&ctx, client, id, &data, &layout);
        if let Some(e) = err {
            // The write is not acknowledged; record honestly which replicas
            // actually landed so later repair can see them.
            self.namenode.set_locations(id, stored)?;
            return Err(e);
        }
        Ok(id)
    }

    /// Reads a block to `reader`, trying replicas nearest-first (local, then
    /// intra-rack, then remote) as HDFS does. A replica that is down, slow
    /// to answer, or fails checksum verification is skipped in favour of the
    /// next; transient failures are retried with backoff.
    ///
    /// # Errors
    ///
    /// * [`Error::Invariant`] if the block id was never allocated.
    /// * [`Error::BlockUnavailable`] if the block has no replicas at all.
    /// * [`Error::Overloaded`] if the admission gate sheds the read.
    /// * The last per-replica error ([`Error::NodeDown`],
    ///   [`Error::CorruptBlock`], …) if every replica failed every attempt.
    pub fn read_block(&self, reader: NodeId, id: BlockId) -> Result<Block> {
        let ctx = self.reliability.ctx(OpClass::ClientRead)?;
        self.read_block_in(&ctx, reader, id)
    }

    /// [`read_block`](Self::read_block) under a caller-supplied op context
    /// — the entry point for consumers that measure or bound the read on
    /// the virtual clock (chaos latency probes, MapReduce map tasks).
    ///
    /// Beyond the replica-fallback hedging inside
    /// [`ClusterIo::read_with_fallback`], this is where the last-resort
    /// hedge lives: when exactly one replica remains and it straggles past
    /// the hedging threshold, the read races a proactive degraded-EC
    /// reconstruction from the block's stripe and completes at the
    /// virtual-clock winner.
    ///
    /// # Errors
    ///
    /// As [`read_block`](Self::read_block), minus admission (the caller
    /// already holds a context).
    pub fn read_block_in(&self, ctx: &OpContext<'_>, reader: NodeId, id: BlockId) -> Result<Block> {
        let locations = self
            .namenode
            .locations(id)
            .ok_or_else(|| Error::Invariant(format!("unknown {id}")))?;
        if locations.is_empty() {
            return Err(Error::BlockUnavailable { block: id });
        }
        let ordered = self.by_proximity(reader, &locations);
        if let [only] = ordered.as_slice() {
            if self.reliability.hedging_enabled() {
                let delay = self.io.injector().straggler_delay_ticks(
                    *only,
                    id,
                    0,
                    reliability::NOMINAL_SERVICE_TICKS,
                );
                if delay > self.reliability.hedge_threshold_ticks() {
                    return self.hedged_degraded_read(ctx, reader, id, *only);
                }
            }
        }
        self.io
            .read_with_fallback(ctx, reader, id, &ordered, None, None)
            .map(|(data, _)| data)
    }

    /// Races the last straggling replica against a degraded-EC
    /// reconstruction: the reconstruct leg launches at the hedging
    /// threshold on the virtual clock (plus a fixed decode cost) under its
    /// own admitted context, and the read completes at whichever leg
    /// finishes first. Replicas are exhausted here, so losing the race to
    /// the decoder is the difference between tail latency and a timeout.
    fn hedged_degraded_read(
        &self,
        ctx: &OpContext<'_>,
        reader: NodeId,
        id: BlockId,
        src: NodeId,
    ) -> Result<Block> {
        self.io.note_hedge_launched();
        let (primary, primary_cost) = self.io.fetch_costed(src, reader, id, 0);
        let hedge_ctx = self.reliability.ctx(ctx.class())?;
        let hedge = crate::recovery::degraded_read(self, &hedge_ctx, reader, id);
        let hedge_total = self
            .reliability
            .hedge_threshold_ticks()
            .saturating_add(hedge_ctx.elapsed_ticks())
            .saturating_add(reliability::DECODE_TICKS);
        match (primary, hedge) {
            (Ok(data), Ok(hdata)) => {
                if hedge_total < primary_cost {
                    self.io.note_hedge_won();
                    ctx.charge(hedge_total)?;
                    Ok(hdata)
                } else {
                    ctx.charge(primary_cost)?;
                    Ok(data)
                }
            }
            (Err(_), Ok(hdata)) => {
                self.io.note_hedge_won();
                ctx.charge(hedge_total)?;
                Ok(hdata)
            }
            (Ok(data), Err(_)) => {
                ctx.charge(primary_cost)?;
                Ok(data)
            }
            (Err(e), Err(_)) => {
                ctx.charge(primary_cost.max(hedge_total))?;
                Err(e)
            }
        }
    }

    /// Reads `block` from the specific replica on `src`, shipping the bytes
    /// to `dst` and verifying their checksum against the write-time CRC32C.
    /// This is the single injection boundary every read goes through:
    /// corruption enters here (the fault layer hands back a copy with
    /// flipped bits) and is caught here (the checksum mismatch becomes
    /// [`Error::CorruptBlock`]).
    ///
    /// # Errors
    ///
    /// * [`Error::NodeDown`] / [`Error::TransientIo`] from the fault layer.
    /// * [`Error::BlockUnavailable`] if `src` does not hold the block.
    /// * [`Error::CorruptBlock`] if the received bytes fail verification.
    /// * [`Error::Overloaded`] if the admission gate sheds the read.
    pub fn fetch_block_from(
        &self,
        src: NodeId,
        dst: NodeId,
        block: BlockId,
        attempt: u32,
    ) -> Result<Block> {
        let ctx = self.reliability.ctx(OpClass::ClientRead)?;
        self.io.fetch_from(&ctx, src, dst, block, attempt)
    }

    /// Writes `block`'s bytes from `src` onto `dst`'s store, through the
    /// fault layer. The single injection boundary for writes.
    ///
    /// # Errors
    ///
    /// [`Error::NodeDown`] / [`Error::TransientIo`] from the fault layer,
    /// or [`Error::Overloaded`] if the admission gate sheds the write.
    pub fn store_block_at(
        &self,
        src: NodeId,
        dst: NodeId,
        block: BlockId,
        data: Block,
        attempt: u32,
    ) -> Result<()> {
        let ctx = self.reliability.ctx(OpClass::ClientWrite)?;
        self.io.store_at(&ctx, src, dst, block, data, attempt)
    }

    /// Orders `locations` by proximity to `reader`: the reader itself,
    /// then same-rack nodes, then the rest (stable within each class).
    fn by_proximity(&self, reader: NodeId, locations: &[NodeId]) -> Vec<NodeId> {
        let reader_rack = self.topo.rack_of(reader);
        let mut ordered = locations.to_vec();
        ordered.sort_by_key(|&n| {
            if n == reader {
                0u8
            } else if self.topo.rack_of(n) == reader_rack {
                1
            } else {
                2
            }
        });
        ordered
    }

    /// A block of deterministic pseudo-random content, sized to the
    /// configured block size (test/benchmark payloads).
    pub fn make_block(&self, tag: u64) -> Vec<u8> {
        let len = self.config.block_size.as_u64() as usize;
        let mut v = Vec::with_capacity(len);
        let mut state = tag.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        while v.len() < len {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            v.extend_from_slice(&state.to_le_bytes());
        }
        v.truncate(len);
        v
    }

    /// Per-rack stored byte counts (storage balance of Experiment C.1).
    pub fn rack_storage(&self) -> Vec<u64> {
        let mut per_rack = vec![0u64; self.topo.num_racks()];
        for n in self.topo.nodes() {
            let dn = self.io.datanode(n);
            per_rack[self.topo.rack_of(dn.id()).index()] += dn.bytes_stored();
        }
        per_rack
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ear_types::{ErasureParams, ReplicationConfig};

    fn small_cfg(policy: ClusterPolicy) -> ClusterConfig {
        let ear = EarConfig::new(
            ErasureParams::new(6, 4).unwrap(),
            ReplicationConfig::two_way(),
            1,
        )
        .unwrap();
        ClusterConfig {
            racks: 8,
            nodes_per_rack: 1,
            block_size: ByteSize::kib(64),
            node_bandwidth: Bandwidth::bytes_per_sec(64e6),
            rack_bandwidth: Bandwidth::bytes_per_sec(64e6),
            ear,
            policy,
            seed: 3,
            store: StoreBackend::from_env(),
            cache: CacheConfig::from_env(),
            durability: DurabilityConfig::default(),
            reliability: ReliabilityConfig::default(),
            encode_path: EncodePath::from_env(),
            repair_path: RepairPath::from_env(),
        }
    }

    #[test]
    fn write_stores_all_replicas() {
        let cfs = MiniCfs::new(small_cfg(ClusterPolicy::Rr)).unwrap();
        let data = cfs.make_block(42);
        let id = cfs.write_block(NodeId(0), data.clone()).unwrap();
        let locs = cfs.namenode().locations(id).unwrap();
        assert_eq!(locs.len(), 2);
        for n in locs {
            assert_eq!(cfs.datanode(n).get(id).unwrap().as_slice(), data.as_slice());
        }
    }

    #[test]
    fn read_returns_written_bytes() {
        let cfs = MiniCfs::new(small_cfg(ClusterPolicy::Ear)).unwrap();
        let data = cfs.make_block(7);
        let id = cfs.write_block(NodeId(2), data.clone()).unwrap();
        let back = cfs.read_block(NodeId(5), id).unwrap();
        assert_eq!(back.as_slice(), data.as_slice());
    }

    #[test]
    fn wrong_block_size_rejected() {
        let cfs = MiniCfs::new(small_cfg(ClusterPolicy::Rr)).unwrap();
        assert!(cfs.write_block(NodeId(0), vec![0u8; 100]).is_err());
    }

    #[test]
    fn unknown_block_read_fails() {
        let cfs = MiniCfs::new(small_cfg(ClusterPolicy::Rr)).unwrap();
        assert!(cfs.read_block(NodeId(0), BlockId(99)).is_err());
    }

    #[test]
    fn make_block_is_deterministic_and_sized() {
        let cfs = MiniCfs::new(small_cfg(ClusterPolicy::Rr)).unwrap();
        let a = cfs.make_block(1);
        let b = cfs.make_block(1);
        let c = cfs.make_block(2);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len() as u64, ByteSize::kib(64).as_u64());
    }

    #[test]
    fn rack_storage_accounts_replicas() {
        let cfs = MiniCfs::new(small_cfg(ClusterPolicy::Ear)).unwrap();
        for i in 0..4 {
            let data = cfs.make_block(i);
            cfs.write_block(NodeId((i % 8) as u32), data).unwrap();
        }
        let total: u64 = cfs.rack_storage().iter().sum();
        assert_eq!(total, 4 * 2 * ByteSize::kib(64).as_u64());
    }

    #[test]
    fn manifest_first_boot_publishes_durably_and_reopens() {
        // Pin for the L4 fix: the first-boot MANIFEST goes through
        // write-tmp → fsync → rename → fsync-dir, so no `.tmp` lingers,
        // the published file validates on reopen, and a shape change is
        // still a hard mismatch.
        let dir = std::env::temp_dir().join(format!(
            "ear-manifest-test-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = small_cfg(ClusterPolicy::Ear);
        check_manifest(&dir, &cfg).unwrap();
        assert!(dir.join("MANIFEST").exists());
        assert!(
            !dir.join("MANIFEST.tmp").exists(),
            "publish must leave no temp file behind"
        );
        check_manifest(&dir, &cfg).unwrap();
        let mut other = small_cfg(ClusterPolicy::Rr);
        other.seed = cfg.seed;
        assert!(
            check_manifest(&dir, &other).is_err(),
            "a different shape must be rejected"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
