//! The mini-CFS facade: DataNodes + NameNode + emulated network.

use crate::datanode::DataNode;
use crate::namenode::NameNode;
use ear_core::{EncodingAwareReplication, PlacementPolicy, RandomReplicationPolicy};
use ear_erasure::ReedSolomon;
use ear_netem::EmulatedNetwork;
use ear_types::{Bandwidth, BlockId, ByteSize, ClusterTopology, EarConfig, Error, NodeId, Result};
use std::sync::Arc;

/// Which placement policy the cluster runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterPolicy {
    /// Random replication.
    Rr,
    /// Encoding-aware replication.
    Ear,
}

/// Configuration of a [`MiniCfs`].
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of racks.
    pub racks: usize,
    /// Nodes per rack (the paper's testbed: 1).
    pub nodes_per_rack: usize,
    /// Block size. Scaled down from HDFS's 64 MiB so experiments run in
    /// seconds (the bandwidth scales with it).
    pub block_size: ByteSize,
    /// Node link bandwidth.
    pub node_bandwidth: Bandwidth,
    /// Rack (top-of-rack uplink) bandwidth.
    pub rack_bandwidth: Bandwidth,
    /// Shared placement/encoding parameters.
    pub ear: EarConfig,
    /// Placement policy.
    pub policy: ClusterPolicy,
    /// RNG seed for the NameNode's policy.
    pub seed: u64,
}

impl ClusterConfig {
    /// A scaled-down version of the paper's 13-machine testbed: 12
    /// single-node racks, 4 MiB blocks, 2-way replication, links scaled so a
    /// block transfer takes a few tens of milliseconds.
    pub fn testbed(policy: ClusterPolicy, ear: EarConfig) -> Self {
        ClusterConfig {
            racks: 12,
            nodes_per_rack: 1,
            block_size: ByteSize::mib(4),
            node_bandwidth: Bandwidth::bytes_per_sec(128e6),
            rack_bandwidth: Bandwidth::bytes_per_sec(128e6),
            ear,
            policy,
            seed: 1,
        }
    }
}

/// An in-process clustered file system: the HDFS stand-in for the paper's
/// testbed experiments. Real bytes move through an emulated network and are
/// really Reed–Solomon encoded.
pub struct MiniCfs {
    config: ClusterConfig,
    topo: ClusterTopology,
    namenode: NameNode,
    datanodes: Vec<DataNode>,
    net: EmulatedNetwork,
    codec: ReedSolomon,
}

impl MiniCfs {
    /// Boots a cluster.
    ///
    /// # Errors
    ///
    /// Returns validation errors when the topology cannot host the
    /// configured policies.
    pub fn new(config: ClusterConfig) -> Result<Self> {
        let topo = ClusterTopology::uniform(config.racks, config.nodes_per_rack);
        let policy: Box<dyn PlacementPolicy> = match config.policy {
            ClusterPolicy::Rr => Box::new(RandomReplicationPolicy::new(config.ear, topo.clone())?),
            ClusterPolicy::Ear => Box::new(EncodingAwareReplication::new(config.ear, topo.clone())),
        };
        let namenode = NameNode::new(topo.clone(), policy, config.seed);
        let datanodes = topo.nodes().map(DataNode::new).collect();
        let net = EmulatedNetwork::new(&topo, config.node_bandwidth, config.rack_bandwidth);
        let codec = ReedSolomon::new(config.ear.erasure());
        Ok(MiniCfs {
            config,
            topo,
            namenode,
            datanodes,
            net,
            codec,
        })
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// The topology.
    pub fn topology(&self) -> &ClusterTopology {
        &self.topo
    }

    /// The NameNode.
    pub fn namenode(&self) -> &NameNode {
        &self.namenode
    }

    /// The emulated network (for traffic statistics and injection).
    pub fn network(&self) -> &EmulatedNetwork {
        &self.net
    }

    /// The Reed–Solomon codec in force.
    pub fn codec(&self) -> &ReedSolomon {
        &self.codec
    }

    /// Access to a DataNode.
    ///
    /// # Panics
    ///
    /// Panics if the node id is out of range.
    pub fn datanode(&self, node: NodeId) -> &DataNode {
        &self.datanodes[node.index()]
    }

    /// Writes one block from `client` through the replication pipeline:
    /// client → replica 1 → replica 2 → …, paying the network cost of each
    /// hop.
    ///
    /// # Errors
    ///
    /// * [`Error::Invariant`] if `data` does not match the block size.
    /// * Placement errors from the NameNode.
    pub fn write_block(&self, client: NodeId, data: Vec<u8>) -> Result<BlockId> {
        if data.len() as u64 != self.config.block_size.as_u64() {
            return Err(Error::Invariant(format!(
                "block must be exactly {} bytes, got {}",
                self.config.block_size.as_u64(),
                data.len()
            )));
        }
        let (id, layout) = self.namenode.allocate_block()?;
        let data = Arc::new(data);
        let mut src = client;
        for &dst in &layout {
            self.net.transfer(src, dst, data.len() as u64);
            self.datanodes[dst.index()].put(id, Arc::clone(&data));
            src = dst;
        }
        Ok(id)
    }

    /// Reads a block to `reader`, choosing the nearest replica (local, then
    /// intra-rack, then any) as HDFS does.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Invariant`] if the block is unknown or all replicas
    /// are lost.
    pub fn read_block(&self, reader: NodeId, id: BlockId) -> Result<Arc<Vec<u8>>> {
        let locations = self
            .namenode
            .locations(id)
            .ok_or_else(|| Error::Invariant(format!("unknown {id}")))?;
        let source = self.pick_nearest(reader, &locations)?;
        let data = self.datanodes[source.index()]
            .get(id)
            .ok_or_else(|| Error::Invariant(format!("{source} lost its replica of {id}")))?;
        self.net.transfer(source, reader, data.len() as u64);
        Ok(data)
    }

    /// Picks the closest of `locations` to `reader`: the reader itself if it
    /// holds a replica, else a same-rack node, else the first location.
    fn pick_nearest(&self, reader: NodeId, locations: &[NodeId]) -> Result<NodeId> {
        if locations.is_empty() {
            return Err(Error::Invariant("block has no replicas".into()));
        }
        if locations.contains(&reader) {
            return Ok(reader);
        }
        let reader_rack = self.topo.rack_of(reader);
        Ok(locations
            .iter()
            .copied()
            .find(|&n| self.topo.rack_of(n) == reader_rack)
            .unwrap_or(locations[0]))
    }

    /// A block of deterministic pseudo-random content, sized to the
    /// configured block size (test/benchmark payloads).
    pub fn make_block(&self, tag: u64) -> Vec<u8> {
        let len = self.config.block_size.as_u64() as usize;
        let mut v = Vec::with_capacity(len);
        let mut state = tag.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        while v.len() < len {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            v.extend_from_slice(&state.to_le_bytes());
        }
        v.truncate(len);
        v
    }

    /// Per-rack stored byte counts (storage balance of Experiment C.1).
    pub fn rack_storage(&self) -> Vec<u64> {
        let mut per_rack = vec![0u64; self.topo.num_racks()];
        for dn in &self.datanodes {
            per_rack[self.topo.rack_of(dn.id()).index()] += dn.bytes_stored();
        }
        per_rack
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ear_types::{ErasureParams, ReplicationConfig};

    fn small_cfg(policy: ClusterPolicy) -> ClusterConfig {
        let ear = EarConfig::new(
            ErasureParams::new(6, 4).unwrap(),
            ReplicationConfig::two_way(),
            1,
        )
        .unwrap();
        ClusterConfig {
            racks: 8,
            nodes_per_rack: 1,
            block_size: ByteSize::kib(64),
            node_bandwidth: Bandwidth::bytes_per_sec(64e6),
            rack_bandwidth: Bandwidth::bytes_per_sec(64e6),
            ear,
            policy,
            seed: 3,
        }
    }

    #[test]
    fn write_stores_all_replicas() {
        let cfs = MiniCfs::new(small_cfg(ClusterPolicy::Rr)).unwrap();
        let data = cfs.make_block(42);
        let id = cfs.write_block(NodeId(0), data.clone()).unwrap();
        let locs = cfs.namenode().locations(id).unwrap();
        assert_eq!(locs.len(), 2);
        for n in locs {
            assert_eq!(cfs.datanode(n).get(id).unwrap().as_slice(), data.as_slice());
        }
    }

    #[test]
    fn read_returns_written_bytes() {
        let cfs = MiniCfs::new(small_cfg(ClusterPolicy::Ear)).unwrap();
        let data = cfs.make_block(7);
        let id = cfs.write_block(NodeId(2), data.clone()).unwrap();
        let back = cfs.read_block(NodeId(5), id).unwrap();
        assert_eq!(back.as_slice(), data.as_slice());
    }

    #[test]
    fn wrong_block_size_rejected() {
        let cfs = MiniCfs::new(small_cfg(ClusterPolicy::Rr)).unwrap();
        assert!(cfs.write_block(NodeId(0), vec![0u8; 100]).is_err());
    }

    #[test]
    fn unknown_block_read_fails() {
        let cfs = MiniCfs::new(small_cfg(ClusterPolicy::Rr)).unwrap();
        assert!(cfs.read_block(NodeId(0), BlockId(99)).is_err());
    }

    #[test]
    fn make_block_is_deterministic_and_sized() {
        let cfs = MiniCfs::new(small_cfg(ClusterPolicy::Rr)).unwrap();
        let a = cfs.make_block(1);
        let b = cfs.make_block(1);
        let c = cfs.make_block(2);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len() as u64, ByteSize::kib(64).as_u64());
    }

    #[test]
    fn rack_storage_accounts_replicas() {
        let cfs = MiniCfs::new(small_cfg(ClusterPolicy::Ear)).unwrap();
        for i in 0..4 {
            let data = cfs.make_block(i);
            cfs.write_block(NodeId((i % 8) as u32), data).unwrap();
        }
        let total: u64 = cfs.rack_storage().iter().sum();
        assert_eq!(total, 4 * 2 * ByteSize::kib(64).as_u64());
    }
}
