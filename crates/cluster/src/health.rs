//! Heartbeat failure detection and degraded-state tracking: the sensing
//! half of the self-healing control plane (DESIGN.md §8).
//!
//! DataNodes emit heartbeats on a seeded emulated clock (one tick per
//! [`MiniCfs::heartbeat_tick`](crate::MiniCfs::heartbeat_tick)); the
//! NameNode-side [`FailureDetector`] turns arrival history into a phi-style
//! suspicion level per node and drives the `Live → Suspect → Dead →
//! Rejoined` state machine. Everything is deterministic: which heartbeats
//! are emitted is decided by the `ear-faults` plan (crashed nodes stop,
//! lossy links drop beats by a pure hash of `(seed, node, tick)`), so a
//! detector run replays exactly from a seed.
//!
//! The [`DegradedTracker`] is the bookkeeping between detection and repair:
//! it scans cluster metadata against the detector's view and maintains
//! priority queues of repair work keyed by *remaining redundancy* — a
//! stripe that can lose zero more shards is drained before one that can
//! still lose two, mirroring the priority tiers of HDFS's replication
//! monitor (Section II-B of the paper).

use crate::cluster::MiniCfs;
use ear_types::{BlockId, NodeHealth, NodeId, StripeId};
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};

/// Thresholds and windows of the phi-style failure detector.
#[derive(Debug, Clone)]
pub struct HealthConfig {
    /// Suspicion level (missed-interval multiples) at which a `Live` node
    /// becomes `Suspect`.
    pub phi_suspect: f64,
    /// Suspicion level at which a `Suspect` node is declared `Dead`.
    pub phi_dead: f64,
    /// Heartbeat inter-arrival history window used to estimate the mean
    /// interval (the adaptive part: lossy links inflate the estimate and
    /// thereby the patience).
    pub window: usize,
    /// Consecutive heartbeats a `Rejoined` node must deliver before it is
    /// trusted as `Live` again.
    pub rejoin_heartbeats: u32,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            phi_suspect: 3.0,
            phi_dead: 8.0,
            window: 16,
            rejoin_heartbeats: 3,
        }
    }
}

/// One observed state transition, for logs and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthTransition {
    /// Clock tick at which the transition happened.
    pub tick: u64,
    /// The node.
    pub node: NodeId,
    /// Previous state.
    pub from: NodeHealth,
    /// New state.
    pub to: NodeHealth,
}

#[derive(Debug, Clone)]
struct NodeTracker {
    state: NodeHealth,
    /// Tick of the most recent heartbeat (boot counts as one).
    last_beat: u64,
    /// Recent inter-arrival intervals, in ticks.
    intervals: VecDeque<u64>,
    /// Consecutive heartbeats since rejoining.
    rejoin_streak: u32,
}

impl NodeTracker {
    fn new() -> Self {
        NodeTracker {
            state: NodeHealth::Live,
            last_beat: 0,
            intervals: VecDeque::new(),
            rejoin_streak: 0,
        }
    }

    /// Mean heartbeat inter-arrival estimate, floored at one tick.
    fn mean_interval(&self) -> f64 {
        if self.intervals.is_empty() {
            return 1.0;
        }
        let sum: u64 = self.intervals.iter().sum();
        (sum as f64 / self.intervals.len() as f64).max(1.0)
    }
}

/// The NameNode's phi-style failure detector over every DataNode.
#[derive(Debug)]
pub struct FailureDetector {
    cfg: HealthConfig,
    nodes: Vec<NodeTracker>,
    /// The emulated clock: number of `observe` calls so far.
    now: u64,
}

impl FailureDetector {
    /// A detector for `num_nodes` DataNodes, all initially `Live`.
    pub fn new(num_nodes: usize, cfg: HealthConfig) -> Self {
        FailureDetector {
            cfg,
            nodes: vec![NodeTracker::new(); num_nodes],
            now: 0,
        }
    }

    /// The current clock tick (number of observations so far).
    pub fn tick(&self) -> u64 {
        self.now
    }

    /// The tick the *next* `observe` call will be stamped with.
    pub fn next_tick(&self) -> u64 {
        self.now + 1
    }

    /// Feeds one clock tick of heartbeat arrivals (`beats[node]` = a beat
    /// from that node arrived this tick) and returns the state transitions
    /// it caused.
    ///
    /// # Panics
    ///
    /// Panics if `beats.len()` differs from the node count.
    pub fn observe(&mut self, beats: &[bool]) -> Vec<HealthTransition> {
        assert_eq!(beats.len(), self.nodes.len(), "one beat slot per node");
        self.now += 1;
        let now = self.now;
        let window = self.cfg.window;
        let mut transitions = Vec::new();
        for (i, tracker) in self.nodes.iter_mut().enumerate() {
            let from = tracker.state;
            if beats[i] {
                let interval = now - tracker.last_beat;
                tracker.intervals.push_back(interval);
                while tracker.intervals.len() > window {
                    tracker.intervals.pop_front();
                }
                tracker.last_beat = now;
                tracker.state = match from {
                    NodeHealth::Live => NodeHealth::Live,
                    NodeHealth::Suspect => NodeHealth::Live,
                    NodeHealth::Dead => {
                        tracker.rejoin_streak = 1;
                        NodeHealth::Rejoined
                    }
                    NodeHealth::Rejoined => {
                        tracker.rejoin_streak += 1;
                        if tracker.rejoin_streak >= self.cfg.rejoin_heartbeats {
                            NodeHealth::Live
                        } else {
                            NodeHealth::Rejoined
                        }
                    }
                };
            } else {
                let phi = (now - tracker.last_beat) as f64 / tracker.mean_interval();
                tracker.state = match from {
                    NodeHealth::Dead => NodeHealth::Dead,
                    // A missed beat right after rejoining resets trust.
                    NodeHealth::Rejoined => {
                        tracker.rejoin_streak = 0;
                        NodeHealth::Suspect
                    }
                    NodeHealth::Live | NodeHealth::Suspect => {
                        if phi >= self.cfg.phi_dead {
                            NodeHealth::Dead
                        } else if phi >= self.cfg.phi_suspect {
                            NodeHealth::Suspect
                        } else {
                            from
                        }
                    }
                };
            }
            if tracker.state != from {
                transitions.push(HealthTransition {
                    tick: now,
                    node: NodeId(i as u32),
                    from,
                    to: tracker.state,
                });
            }
        }
        transitions
    }

    /// Current state of one node.
    ///
    /// # Panics
    ///
    /// Panics if the node id is out of range.
    pub fn health(&self, node: NodeId) -> NodeHealth {
        self.nodes[node.index()].state
    }

    /// Current suspicion level of one node: elapsed ticks since its last
    /// heartbeat over its mean inter-arrival estimate.
    ///
    /// # Panics
    ///
    /// Panics if the node id is out of range.
    pub fn phi(&self, node: NodeId) -> f64 {
        let t = &self.nodes[node.index()];
        (self.now - t.last_beat) as f64 / t.mean_interval()
    }

    /// Snapshot of every node's state, indexed by node id.
    pub fn snapshot(&self) -> Vec<NodeHealth> {
        self.nodes.iter().map(|t| t.state).collect()
    }

    /// Nodes currently declared `Dead`.
    pub fn dead_nodes(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, t)| t.state == NodeHealth::Dead)
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }
}

/// What kind of repair a degraded block needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairKind {
    /// A pre-encoding (replicated) block below its target replica count.
    ReReplicate {
        /// Live replicas remaining.
        have: usize,
        /// Target replica count.
        want: usize,
    },
    /// An encoded-stripe shard with no live copy; rebuild by degraded read.
    Reconstruct {
        /// The stripe the shard belongs to.
        stripe: StripeId,
    },
}

/// One queued repair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepairTask {
    /// The block to repair.
    pub block: BlockId,
    /// What to do.
    pub kind: RepairKind,
    /// Failures this block (or its stripe) can still absorb — the priority
    /// key; 0 means the next failure loses data (*critical*).
    pub remaining_redundancy: usize,
}

/// Priority queues of degraded state, keyed by remaining redundancy
/// (ascending: critical work first). Built by scanning cluster metadata
/// against the failure detector's view; rebuild each healer round.
#[derive(Debug, Default)]
pub struct DegradedTracker {
    queues: BTreeMap<usize, VecDeque<RepairTask>>,
    len: usize,
    /// Blocks with zero live, uncorrupted sources anywhere — more
    /// simultaneous failures than the redundancy scheme tolerates; the
    /// healer cannot help them.
    pub beyond_tolerance: Vec<BlockId>,
}

impl DegradedTracker {
    /// Scans every block and stripe of `cfs` against the health `snapshot`
    /// (indexed by node id) and queues the repairs. `known_bad` lists
    /// `(node, block)` copies the scrubber has already found corrupt; they
    /// do not count as live sources.
    pub fn scan(
        cfs: &MiniCfs,
        snapshot: &[NodeHealth],
        known_bad: &HashSet<(NodeId, BlockId)>,
    ) -> Self {
        let nn = cfs.namenode();
        let k = cfs.codec().params().k();
        let want = cfs.config().ear.replication().replicas();
        let alive = |n: NodeId, b: BlockId| -> bool {
            snapshot[n.index()] != NodeHealth::Dead && !known_bad.contains(&(n, b))
        };

        let mut tracker = DegradedTracker::default();
        let encoded = nn.encoded_stripes();
        let mut in_stripe: HashMap<BlockId, ()> = HashMap::new();
        for es in &encoded {
            let members: Vec<BlockId> =
                es.data.iter().chain(es.parity.iter()).copied().collect();
            for &b in &members {
                in_stripe.insert(b, ());
            }
            let live_members = members
                .iter()
                .filter(|&&b| {
                    nn.locations(b)
                        .is_some_and(|locs| locs.iter().any(|&h| alive(h, b)))
                })
                .count();
            if live_members == members.len() {
                continue;
            }
            if live_members < k {
                // Unreconstructable: > n - k shards gone at once.
                tracker.beyond_tolerance.extend(
                    members.iter().filter(|&&b| {
                        !nn.locations(b)
                            .is_some_and(|locs| locs.iter().any(|&h| alive(h, b)))
                    }),
                );
                continue;
            }
            let remaining = live_members - k;
            for &b in &members {
                let has_live = nn
                    .locations(b)
                    .is_some_and(|locs| locs.iter().any(|&h| alive(h, b)));
                if !has_live {
                    tracker.push(RepairTask {
                        block: b,
                        kind: RepairKind::Reconstruct { stripe: es.id },
                        remaining_redundancy: remaining,
                    });
                }
            }
        }

        // Pre-encoding blocks: everything allocated that is not a stripe
        // member. Blocks with an empty location set are unreferenced parity
        // ids from rolled-back encodes — nothing to repair.
        for b in (0..nn.block_count()).map(BlockId) {
            if in_stripe.contains_key(&b) {
                continue;
            }
            let Some(locs) = nn.locations(b) else { continue };
            if locs.is_empty() {
                continue;
            }
            let have = locs.iter().filter(|&&h| alive(h, b)).count();
            if have == 0 {
                tracker.beyond_tolerance.push(b);
            } else if have < want {
                tracker.push(RepairTask {
                    block: b,
                    kind: RepairKind::ReReplicate { have, want },
                    remaining_redundancy: have - 1,
                });
            }
        }
        tracker.beyond_tolerance.sort_unstable();
        tracker.beyond_tolerance.dedup();
        tracker
    }

    fn push(&mut self, task: RepairTask) {
        self.queues
            .entry(task.remaining_redundancy)
            .or_default()
            .push_back(task);
        self.len += 1;
    }

    /// Pops the most urgent task (lowest remaining redundancy first,
    /// FIFO within a priority).
    pub fn pop(&mut self) -> Option<RepairTask> {
        let (&key, queue) = self.queues.iter_mut().next()?;
        let task = queue.pop_front();
        if queue.is_empty() {
            self.queues.remove(&key);
        }
        if task.is_some() {
            self.len -= 1;
        }
        task
    }

    /// Queued repairs.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no repairs are queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Queued repairs at zero remaining redundancy (the critical tier).
    pub fn critical(&self) -> usize {
        self.queues.get(&0).map_or(0, VecDeque::len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detector() -> FailureDetector {
        FailureDetector::new(4, HealthConfig::default())
    }

    fn tick_all(det: &mut FailureDetector, up: &[bool], times: usize) -> Vec<HealthTransition> {
        let mut all = Vec::new();
        for _ in 0..times {
            all.extend(det.observe(up));
        }
        all
    }

    #[test]
    fn steady_heartbeats_stay_live() {
        let mut det = detector();
        let t = tick_all(&mut det, &[true; 4], 50);
        assert!(t.is_empty());
        for n in 0..4 {
            assert_eq!(det.health(NodeId(n)), NodeHealth::Live);
            assert!(det.phi(NodeId(n)) <= 1.0);
        }
    }

    #[test]
    fn silent_node_walks_live_suspect_dead() {
        let mut det = detector();
        tick_all(&mut det, &[true; 4], 10);
        let beats = [false, true, true, true];
        // phi_suspect = 3 intervals of ~1 tick.
        tick_all(&mut det, &beats, 3);
        assert_eq!(det.health(NodeId(0)), NodeHealth::Suspect);
        assert_eq!(det.health(NodeId(1)), NodeHealth::Live);
        tick_all(&mut det, &beats, 10);
        assert_eq!(det.health(NodeId(0)), NodeHealth::Dead);
        assert_eq!(det.dead_nodes(), vec![NodeId(0)]);
    }

    #[test]
    fn dead_node_rejoins_then_earns_live() {
        let mut det = detector();
        tick_all(&mut det, &[true; 4], 5);
        tick_all(&mut det, &[false, true, true, true], 20);
        assert_eq!(det.health(NodeId(0)), NodeHealth::Dead);
        let t = det.observe(&[true; 4]);
        assert_eq!(det.health(NodeId(0)), NodeHealth::Rejoined);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].to, NodeHealth::Rejoined);
        // Default rejoin_heartbeats = 3: two more consecutive beats.
        det.observe(&[true; 4]);
        assert_eq!(det.health(NodeId(0)), NodeHealth::Rejoined);
        det.observe(&[true; 4]);
        assert_eq!(det.health(NodeId(0)), NodeHealth::Live);
    }

    #[test]
    fn missed_beat_while_rejoined_resets_trust() {
        let mut det = detector();
        tick_all(&mut det, &[true; 4], 5);
        tick_all(&mut det, &[false, true, true, true], 20);
        det.observe(&[true; 4]);
        assert_eq!(det.health(NodeId(0)), NodeHealth::Rejoined);
        det.observe(&[false, true, true, true]);
        assert_eq!(det.health(NodeId(0)), NodeHealth::Suspect);
    }

    #[test]
    fn lossy_links_inflate_patience() {
        // A node that beats every other tick trains a mean interval of ~2,
        // so three silent ticks (phi 1.5) leave it Live.
        let mut det = detector();
        for i in 0..30 {
            let beat = i % 2 == 0;
            det.observe(&[beat, true, true, true]);
        }
        tick_all(&mut det, &[false, true, true, true], 3);
        assert_eq!(det.health(NodeId(0)), NodeHealth::Live);
    }

    #[test]
    fn observation_is_deterministic() {
        let mut a = detector();
        let mut b = detector();
        for i in 0..100u64 {
            let beats = [i % 3 != 0, true, i % 7 != 0, true];
            assert_eq!(a.observe(&beats), b.observe(&beats));
        }
        assert_eq!(a.snapshot(), b.snapshot());
    }

    #[test]
    fn tracker_orders_by_remaining_redundancy() {
        let mut t = DegradedTracker::default();
        t.push(RepairTask {
            block: BlockId(1),
            kind: RepairKind::ReReplicate { have: 2, want: 3 },
            remaining_redundancy: 1,
        });
        t.push(RepairTask {
            block: BlockId(2),
            kind: RepairKind::Reconstruct { stripe: StripeId(0) },
            remaining_redundancy: 0,
        });
        t.push(RepairTask {
            block: BlockId(3),
            kind: RepairKind::Reconstruct { stripe: StripeId(1) },
            remaining_redundancy: 2,
        });
        assert_eq!(t.len(), 3);
        assert_eq!(t.critical(), 1);
        assert_eq!(t.pop().unwrap().block, BlockId(2));
        assert_eq!(t.pop().unwrap().block, BlockId(1));
        assert_eq!(t.pop().unwrap().block, BlockId(3));
        assert!(t.pop().is_none());
        assert!(t.is_empty());
    }
}
