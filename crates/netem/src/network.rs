//! The emulated CFS network: per-node and per-rack token-bucket links.

use crate::bucket::TokenBucket;
use ear_types::{Bandwidth, ClusterTopology, NodeId};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Chunk size for pacing transfers: small enough that concurrent transfers
/// interleave fairly, large enough that bookkeeping stays cheap.
const CHUNK: u64 = 64 * 1024;

/// The emulated network of a CFS: node uplinks/downlinks and rack
/// uplinks/downlinks, mirroring the topology of Fig. 1. Threads emulate data
/// movement by drawing tokens along their transfer's path, chunk by chunk;
/// contention on shared links emerges naturally.
///
/// Cloneable (`Arc` inside) so every emulated component can hold a handle.
#[derive(Debug, Clone)]
pub struct EmulatedNetwork {
    inner: Arc<Inner>,
}

#[derive(Debug)]
struct Inner {
    topo: ClusterTopology,
    /// Unthrottled node-link bandwidth, kept so throttle factors compose
    /// idempotently (always relative to the base, not the current rate).
    node_base_rate: f64,
    node_up: Vec<TokenBucket>,
    node_down: Vec<TokenBucket>,
    rack_up: Vec<TokenBucket>,
    rack_down: Vec<TokenBucket>,
    cross_rack_bytes: AtomicU64,
    intra_rack_bytes: AtomicU64,
}

impl EmulatedNetwork {
    /// Builds the network for `topo` with the given node and rack link
    /// bandwidths.
    pub fn new(topo: &ClusterTopology, node_bw: Bandwidth, rack_bw: Bandwidth) -> Self {
        let inner = Inner {
            topo: topo.clone(),
            node_base_rate: node_bw.as_bytes_per_sec(),
            node_up: (0..topo.num_nodes())
                .map(|_| TokenBucket::new(node_bw.as_bytes_per_sec()))
                .collect(),
            node_down: (0..topo.num_nodes())
                .map(|_| TokenBucket::new(node_bw.as_bytes_per_sec()))
                .collect(),
            rack_up: (0..topo.num_racks())
                .map(|_| TokenBucket::new(rack_bw.as_bytes_per_sec()))
                .collect(),
            rack_down: (0..topo.num_racks())
                .map(|_| TokenBucket::new(rack_bw.as_bytes_per_sec()))
                .collect(),
            cross_rack_bytes: AtomicU64::new(0),
            intra_rack_bytes: AtomicU64::new(0),
        };
        EmulatedNetwork {
            inner: Arc::new(inner),
        }
    }

    /// The topology this network spans.
    pub fn topology(&self) -> &ClusterTopology {
        &self.inner.topo
    }

    /// Moves `bytes` from `src` to `dst`, blocking the calling thread for as
    /// long as the transfer would occupy the network. Local transfers
    /// (`src == dst`) return immediately.
    pub fn transfer(&self, src: NodeId, dst: NodeId, bytes: u64) {
        if src == dst || bytes == 0 {
            return;
        }
        let i = &self.inner;
        let sr = i.topo.rack_of(src);
        let dr = i.topo.rack_of(dst);
        let cross = sr != dr;
        if cross {
            i.cross_rack_bytes.fetch_add(bytes, Ordering::Relaxed);
        } else {
            i.intra_rack_bytes.fetch_add(bytes, Ordering::Relaxed);
        }
        let mut left = bytes;
        while left > 0 {
            let chunk = left.min(CHUNK);
            i.node_up[src.index()].acquire(chunk);
            if cross {
                i.rack_up[sr.index()].acquire(chunk);
                i.rack_down[dr.index()].acquire(chunk);
            }
            i.node_down[dst.index()].acquire(chunk);
            left -= chunk;
        }
    }

    /// Injects load on a node's links without a destination (the Iperf UDP
    /// background traffic of Experiment A.1): draws `bytes` from the node's
    /// uplink and, if `cross_rack`, its rack's uplink.
    pub fn inject_upstream(&self, src: NodeId, bytes: u64, cross_rack: bool) {
        let i = &self.inner;
        let sr = i.topo.rack_of(src);
        let mut left = bytes;
        while left > 0 {
            let chunk = left.min(CHUNK);
            i.node_up[src.index()].acquire(chunk);
            if cross_rack {
                i.rack_up[sr.index()].acquire(chunk);
            }
            left -= chunk;
        }
    }

    /// Throttles (or restores) a node's uplink and downlink to `factor`
    /// times the base node bandwidth — the straggler knob of the fault
    /// layer. Factors are always relative to the construction-time rate, so
    /// `throttle_node(n, 1.0)` restores full speed regardless of history.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not finite and positive.
    pub fn throttle_node(&self, node: NodeId, factor: f64) {
        assert!(
            factor.is_finite() && factor > 0.0,
            "throttle factor must be finite and positive"
        );
        let i = &self.inner;
        let rate = i.node_base_rate * factor;
        i.node_up[node.index()].set_rate(rate);
        i.node_down[node.index()].set_rate(rate);
    }

    /// Total bytes moved across racks so far.
    pub fn cross_rack_bytes(&self) -> u64 {
        self.inner.cross_rack_bytes.load(Ordering::Relaxed)
    }

    /// Total bytes moved within racks so far.
    pub fn intra_rack_bytes(&self) -> u64 {
        self.inner.intra_rack_bytes.load(Ordering::Relaxed)
    }

    /// A point-in-time reading of both traffic counters. Phases that want
    /// per-phase traffic (encode vs repair, say) take a snapshot at the
    /// phase boundary and subtract with [`TrafficSnapshot::delta`] — no
    /// reset, so concurrent readers never race each other's zeroing.
    pub fn snapshot(&self) -> TrafficSnapshot {
        TrafficSnapshot {
            cross_rack_bytes: self.cross_rack_bytes(),
            intra_rack_bytes: self.intra_rack_bytes(),
        }
    }
}

/// Cumulative traffic counters at one instant (see
/// [`EmulatedNetwork::snapshot`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TrafficSnapshot {
    /// Bytes that crossed a rack boundary.
    pub cross_rack_bytes: u64,
    /// Bytes that stayed within one rack.
    pub intra_rack_bytes: u64,
}

impl TrafficSnapshot {
    /// The traffic accrued since `earlier` — the per-phase reading.
    /// Saturating, so a stale pair of snapshots reads as zero rather than
    /// wrapping.
    pub fn delta(&self, earlier: &TrafficSnapshot) -> TrafficSnapshot {
        TrafficSnapshot {
            cross_rack_bytes: self.cross_rack_bytes.saturating_sub(earlier.cross_rack_bytes),
            intra_rack_bytes: self.intra_rack_bytes.saturating_sub(earlier.intra_rack_bytes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ear_types::ByteSize;
    use std::time::Instant;

    fn bw(mb: f64) -> Bandwidth {
        Bandwidth::bytes_per_sec(mb * 1e6)
    }

    #[test]
    fn local_transfer_is_free() {
        let topo = ClusterTopology::uniform(2, 2);
        let net = EmulatedNetwork::new(&topo, bw(1.0), bw(1.0));
        let start = Instant::now();
        net.transfer(NodeId(0), NodeId(0), ByteSize::mib(100).as_u64());
        assert!(start.elapsed().as_secs_f64() < 0.05);
        assert_eq!(net.cross_rack_bytes(), 0);
        assert_eq!(net.intra_rack_bytes(), 0);
    }

    #[test]
    fn transfer_duration_matches_bandwidth() {
        let topo = ClusterTopology::uniform(2, 1);
        let net = EmulatedNetwork::new(&topo, bw(20.0), bw(20.0));
        let start = Instant::now();
        net.transfer(NodeId(0), NodeId(1), 4_000_000); // 0.2 s at 20 MB/s
        let elapsed = start.elapsed().as_secs_f64();
        assert!(
            (0.1..0.8).contains(&elapsed),
            "expected ~0.2 s, got {elapsed}"
        );
        assert_eq!(net.cross_rack_bytes(), 4_000_000);
    }

    #[test]
    fn rack_uplink_is_a_shared_bottleneck() {
        // Two intra-rack-sourced cross-rack transfers from different nodes
        // share the rack uplink: together they take about twice as long as
        // one alone.
        let topo = ClusterTopology::uniform(2, 2);
        let net = EmulatedNetwork::new(&topo, bw(50.0), bw(10.0));
        let start = Instant::now();
        std::thread::scope(|s| {
            let n1 = net.clone();
            let n2 = net.clone();
            s.spawn(move || n1.transfer(NodeId(0), NodeId(2), 1_000_000));
            s.spawn(move || n2.transfer(NodeId(1), NodeId(3), 1_000_000));
        });
        let elapsed = start.elapsed().as_secs_f64();
        // 2 MB over a shared 10 MB/s rack link: ~0.2 s.
        assert!(
            (0.12..0.8).contains(&elapsed),
            "expected ~0.2 s, got {elapsed}"
        );
    }

    #[test]
    fn intra_rack_avoids_rack_links() {
        let topo = ClusterTopology::uniform(1, 2);
        // Rack links are tiny, but intra-rack transfers never touch them.
        let net = EmulatedNetwork::new(&topo, bw(20.0), bw(0.001));
        let start = Instant::now();
        net.transfer(NodeId(0), NodeId(1), 2_000_000);
        assert!(start.elapsed().as_secs_f64() < 0.8);
        assert_eq!(net.intra_rack_bytes(), 2_000_000);
    }

    #[test]
    fn snapshot_delta_separates_phases() {
        let topo = ClusterTopology::uniform(2, 2);
        let net = EmulatedNetwork::new(&topo, bw(50.0), bw(50.0));
        net.transfer(NodeId(0), NodeId(1), 1_000); // intra
        let phase1 = net.snapshot();
        net.transfer(NodeId(0), NodeId(2), 2_000); // cross
        net.transfer(NodeId(2), NodeId(3), 3_000); // intra
        let phase2 = net.snapshot().delta(&phase1);
        assert_eq!(phase1.cross_rack_bytes, 0);
        assert_eq!(phase1.intra_rack_bytes, 1_000);
        assert_eq!(phase2.cross_rack_bytes, 2_000);
        assert_eq!(phase2.intra_rack_bytes, 3_000);
        // Deltas saturate instead of wrapping if snapshots are swapped.
        assert_eq!(phase1.delta(&net.snapshot()).cross_rack_bytes, 0);
    }

    #[test]
    fn throttled_node_slows_and_restores() {
        let topo = ClusterTopology::uniform(2, 1);
        let net = EmulatedNetwork::new(&topo, bw(50.0), bw(50.0));
        net.throttle_node(NodeId(0), 0.04); // 2 MB/s
        let start = Instant::now();
        net.transfer(NodeId(0), NodeId(1), 400_000);
        assert!(start.elapsed().as_secs_f64() > 0.1, "straggler must pace");
        net.throttle_node(NodeId(0), 1.0);
        let start = Instant::now();
        net.transfer(NodeId(0), NodeId(1), 400_000);
        assert!(start.elapsed().as_secs_f64() < 0.1, "restore must unpace");
    }

    #[test]
    fn inject_upstream_consumes_bandwidth() {
        let topo = ClusterTopology::uniform(2, 1);
        let net = EmulatedNetwork::new(&topo, bw(10.0), bw(10.0));
        let start = Instant::now();
        net.inject_upstream(NodeId(0), 1_000_000, true);
        assert!(start.elapsed().as_secs_f64() > 0.05);
    }
}
