//! A blocking token bucket: the building block of the emulated network.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A token bucket refilled continuously at a fixed byte rate.
///
/// Threads call [`acquire`](TokenBucket::acquire) to draw tokens before
/// moving bytes; when the bucket is empty the call sleeps just long enough
/// for the deficit to refill, pacing all users of the link to its bandwidth
/// in aggregate.
///
/// The bucket capacity (burst) is 5 ms worth of tokens (at least one
/// 64 KiB chunk), so idle links cannot bank credit that would let later
/// transfers bypass pacing.
#[derive(Debug)]
pub struct TokenBucket {
    /// Refill rate in bytes/s, stored as `f64` bits so it can be retuned at
    /// runtime (straggler emulation) without taking the state lock on reads.
    rate_bits: AtomicU64,
    burst: f64,
    state: Mutex<State>,
}

#[derive(Debug)]
struct State {
    available: f64,
    last_refill: Instant,
}

impl TokenBucket {
    /// Creates a bucket refilled at `rate_bytes_per_sec`.
    ///
    /// # Panics
    ///
    /// Panics if the rate is not finite and positive.
    pub fn new(rate_bytes_per_sec: f64) -> Self {
        assert!(
            rate_bytes_per_sec.is_finite() && rate_bytes_per_sec > 0.0,
            "token bucket rate must be finite and positive"
        );
        TokenBucket {
            rate_bits: AtomicU64::new(rate_bytes_per_sec.to_bits()),
            burst: (rate_bytes_per_sec * 0.005).max(64.0 * 1024.0),
            state: Mutex::new(State {
                available: 0.0,
                last_refill: Instant::now(),
            }),
        }
    }

    /// The refill rate in bytes per second.
    pub fn rate(&self) -> f64 {
        f64::from_bits(self.rate_bits.load(Ordering::Relaxed))
    }

    /// Retunes the refill rate (straggler emulation: a slow NIC or an
    /// oversubscribed link). Tokens accrued so far are settled at the old
    /// rate first, so a rate change never retroactively re-prices the past.
    ///
    /// # Panics
    ///
    /// Panics if the rate is not finite and positive.
    pub fn set_rate(&self, rate_bytes_per_sec: f64) {
        assert!(
            rate_bytes_per_sec.is_finite() && rate_bytes_per_sec > 0.0,
            "token bucket rate must be finite and positive"
        );
        let mut s = self.state.lock();
        let now = Instant::now();
        let elapsed = now.duration_since(s.last_refill).as_secs_f64();
        s.available = (s.available + elapsed * self.rate()).min(self.burst);
        s.last_refill = now;
        self.rate_bits
            .store(rate_bytes_per_sec.to_bits(), Ordering::Relaxed);
    }

    /// Blocks until `bytes` tokens have been drawn from the bucket.
    pub fn acquire(&self, bytes: u64) {
        let mut remaining = bytes as f64;
        while remaining > 0.0 {
            let rate = self.rate();
            let wait = {
                let mut s = self.state.lock();
                let now = Instant::now();
                let elapsed = now.duration_since(s.last_refill).as_secs_f64();
                s.available = (s.available + elapsed * rate).min(self.burst);
                s.last_refill = now;
                if s.available > 0.0 {
                    let take = s.available.min(remaining);
                    s.available -= take;
                    remaining -= take;
                    None
                } else {
                    // Sleep for the time one chunk of the deficit needs,
                    // capped to keep wakeups responsive under contention.
                    let deficit = remaining.min(self.burst / 8.0).max(1.0);
                    Some(Duration::from_secs_f64(deficit / rate))
                }
            };
            if let Some(d) = wait {
                std::thread::sleep(d);
            }
        }
    }

    /// Tries to draw `bytes` without blocking; returns whether it succeeded.
    pub fn try_acquire(&self, bytes: u64) -> bool {
        let mut s = self.state.lock();
        let now = Instant::now();
        let elapsed = now.duration_since(s.last_refill).as_secs_f64();
        s.available = (s.available + elapsed * self.rate()).min(self.burst);
        s.last_refill = now;
        if s.available >= bytes as f64 {
            s.available -= bytes as f64;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn acquire_paces_to_rate() {
        // 10 MB/s bucket, 2 MB acquisition from an empty bucket should take
        // roughly 0.2 s.
        let b = TokenBucket::new(10e6);
        let start = Instant::now();
        b.acquire(2_000_000);
        let elapsed = start.elapsed().as_secs_f64();
        assert!(
            (0.12..0.6).contains(&elapsed),
            "expected ~0.2 s, got {elapsed}"
        );
    }

    #[test]
    fn concurrent_users_share_the_rate() {
        // Two threads drawing 1 MB each from a 10 MB/s bucket together take
        // about 0.2 s (not 0.1 s).
        let b = Arc::new(TokenBucket::new(10e6));
        let start = Instant::now();
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || b.acquire(1_000_000))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let elapsed = start.elapsed().as_secs_f64();
        assert!(
            (0.12..0.7).contains(&elapsed),
            "expected ~0.2 s aggregate, got {elapsed}"
        );
    }

    #[test]
    fn try_acquire_does_not_block() {
        let b = TokenBucket::new(1e6);
        // Empty bucket: immediate failure.
        assert!(!b.try_acquire(500_000));
        std::thread::sleep(Duration::from_millis(120));
        // ~120 KB refilled.
        assert!(b.try_acquire(50_000));
    }

    #[test]
    fn burst_is_capped() {
        let b = TokenBucket::new(1e6);
        std::thread::sleep(Duration::from_millis(50));
        // Even after a long idle period the bucket never exceeds 1 s of
        // tokens; a 3 s request from idle must block for ~2+ s of refill.
        let start = Instant::now();
        b.acquire(1_200_000);
        assert!(start.elapsed().as_secs_f64() > 0.1);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn zero_rate_rejected() {
        let _ = TokenBucket::new(0.0);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn set_rate_rejects_nonpositive() {
        TokenBucket::new(1e6).set_rate(-1.0);
    }

    #[test]
    fn set_rate_slows_future_acquires() {
        // Throttle a 50 MB/s bucket to 2 MB/s: a 400 KB acquisition from an
        // empty bucket now takes ~0.2 s instead of ~8 ms.
        let b = TokenBucket::new(50e6);
        b.set_rate(2e6);
        assert_eq!(b.rate(), 2e6);
        let start = Instant::now();
        b.acquire(400_000);
        let elapsed = start.elapsed().as_secs_f64();
        assert!(
            (0.1..0.8).contains(&elapsed),
            "expected ~0.2 s, got {elapsed}"
        );
    }
}
