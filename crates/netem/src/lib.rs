//! Real-time token-bucket network emulation for the mini-CFS testbed.
//!
//! The paper's testbed experiments (Section V-A) run on 13 machines behind a
//! 1 Gb/s switch where "network transfer is the bottleneck". This crate
//! emulates that environment in-process: every node has an uplink and a
//! downlink, every rack an uplink and a downlink to the core, and each link
//! is a token bucket that real threads draw from as they move real bytes.
//! Bandwidths are typically scaled down (and block sizes with them) so
//! experiments complete in seconds while preserving contention behaviour.
//!
//! # Example
//!
//! ```
//! use ear_netem::EmulatedNetwork;
//! use ear_types::{Bandwidth, ByteSize, ClusterTopology, NodeId};
//!
//! let topo = ClusterTopology::uniform(2, 1);
//! let net = EmulatedNetwork::new(
//!     &topo,
//!     Bandwidth::bytes_per_sec(50e6),
//!     Bandwidth::bytes_per_sec(50e6),
//! );
//! // Moves 1 MiB from node 0 to node 1, paced at 50 MB/s.
//! net.transfer(NodeId(0), NodeId(1), ByteSize::mib(1).as_u64());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bucket;
mod network;

pub use bucket::TokenBucket;
pub use network::{EmulatedNetwork, TrafficSnapshot};
