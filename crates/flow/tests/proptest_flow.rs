//! Property-based tests for the flow substrate: max-flow bounds, agreement
//! between the Dinic and Hopcroft–Karp formulations, and validity of the
//! stripe matching under arbitrary replica layouts.

use ear_flow::{hopcroft_karp, max_kept_matching, FlowNetwork};
use ear_types::{ClusterTopology, NodeId};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

/// Random bipartite adjacency: left size, right size, edge density seed.
fn bipartite_strategy() -> impl Strategy<Value = (usize, usize, Vec<Vec<usize>>)> {
    (1usize..=10, 1usize..=10).prop_flat_map(|(l, r)| {
        proptest::collection::vec(proptest::collection::vec(0..r, 0..=r), l).prop_map(
            move |mut adj| {
                for nbrs in &mut adj {
                    nbrs.sort_unstable();
                    nbrs.dedup();
                }
                (l, r, adj)
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Hopcroft–Karp and the flow formulation agree on matching size.
    #[test]
    fn matching_formulations_agree((l, r, adj) in bipartite_strategy()) {
        let m = hopcroft_karp(l, r, &adj);
        let hk_size = m.iter().flatten().count() as u64;

        let mut net = FlowNetwork::new(l + r + 2);
        let (s, t) = (l + r, l + r + 1);
        for li in 0..l {
            net.add_edge(s, li, 1);
        }
        for ri in 0..r {
            net.add_edge(l + ri, t, 1);
        }
        for (li, nbrs) in adj.iter().enumerate() {
            for &ri in nbrs {
                net.add_edge(li, l + ri, 1);
            }
        }
        prop_assert_eq!(hk_size, net.max_flow(s, t));

        // The matching itself is valid: edges exist, right vertices unique.
        let mut used = HashSet::new();
        for (li, r_opt) in m.iter().enumerate() {
            if let Some(ri) = r_opt {
                prop_assert!(adj[li].contains(ri));
                prop_assert!(used.insert(*ri));
            }
        }
    }

    /// Max flow is bounded by both the source and sink cut capacities, and
    /// is monotone under capacity increase.
    #[test]
    fn max_flow_respects_cuts(
        caps_out in proptest::collection::vec(0u64..20, 1..8),
        caps_in in proptest::collection::vec(0u64..20, 1..8),
        bump in 1u64..10,
    ) {
        // Star network: s -> mid_i -> t.
        let n = caps_out.len().min(caps_in.len());
        let mut net = FlowNetwork::new(n + 2);
        let (s, t) = (n, n + 1);
        for i in 0..n {
            net.add_edge(s, i, caps_out[i]);
            net.add_edge(i, t, caps_in[i]);
        }
        let flow = net.max_flow(s, t);
        let expected: u64 = (0..n).map(|i| caps_out[i].min(caps_in[i])).sum();
        prop_assert_eq!(flow, expected);

        // Monotonicity: adding a parallel edge can only increase max flow.
        let mut net2 = FlowNetwork::new(n + 2);
        for i in 0..n {
            net2.add_edge(s, i, caps_out[i] + bump);
            net2.add_edge(i, t, caps_in[i]);
        }
        prop_assert!(net2.max_flow(s, t) >= flow);
    }

    /// For arbitrary replica layouts, the kept matching never violates the
    /// node/rack constraints, and its size is maximal with respect to the
    /// trivial upper bounds.
    #[test]
    fn kept_matching_is_always_valid(
        racks in 2usize..8,
        nodes_per_rack in 1usize..4,
        c in 1usize..3,
        layout_seed in proptest::collection::vec(
            proptest::collection::vec(0u32..32, 1..4), 1..8),
    ) {
        let topo = ClusterTopology::uniform(racks, nodes_per_rack);
        let total = topo.num_nodes() as u32;
        let layouts: Vec<Vec<NodeId>> = layout_seed
            .iter()
            .map(|nodes| {
                let mut v: Vec<NodeId> = nodes.iter().map(|&x| NodeId(x % total)).collect();
                v.sort_unstable();
                v.dedup();
                v
            })
            .collect();
        let outcome = max_kept_matching(&topo, &layouts, c, None);

        // Constraint validity.
        let mut node_used = HashSet::new();
        let mut rack_load: HashMap<u32, usize> = HashMap::new();
        for (i, kept) in outcome.kept.iter().enumerate() {
            if let Some(node) = kept {
                prop_assert!(layouts[i].contains(node));
                prop_assert!(node_used.insert(*node));
                *rack_load.entry(topo.rack_of(*node).0).or_insert(0) += 1;
            }
        }
        for (_, load) in rack_load {
            prop_assert!(load <= c);
        }

        // Upper bounds: cannot exceed block count, distinct replica nodes,
        // or total rack capacity.
        let distinct_nodes: HashSet<NodeId> =
            layouts.iter().flatten().copied().collect();
        prop_assert!(outcome.size <= layouts.len());
        prop_assert!(outcome.size <= distinct_nodes.len());
        prop_assert!(outcome.size <= racks * c);
    }
}
