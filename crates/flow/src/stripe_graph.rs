//! The flow graph of the EAR algorithm (Fig. 4(b), Fig. 5, Fig. 6 of the
//! paper).
//!
//! Given the replica layouts of the data blocks of one stripe, we build a
//! four-layer network
//!
//! ```text
//! S --1--> block --1--> node --1--> rack --c--> T
//! ```
//!
//! where a `block -> node` edge exists iff a replica of that block lives on
//! that node. A max flow equal to the number of blocks certifies that a
//! *maximum matching* exists: a choice of exactly one replica to keep per
//! block such that no node keeps two blocks and no rack keeps more than `c`
//! blocks of the stripe — i.e. the stripe will satisfy node-level and
//! rack-level fault tolerance after encoding without relocating anything.
//!
//! The *target racks* variant (Section III-D) simply omits the `rack -> T`
//! edges of non-target racks.

use crate::dinic::{EdgeId, FlowNetwork};
use ear_types::{ClusterTopology, NodeId, RackId};

/// Result of the matching computation on a stripe's replica layouts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchingOutcome {
    /// Size of the maximum matching (the max flow).
    pub size: usize,
    /// For each block, the node whose replica is kept — `Some` for matched
    /// blocks. All `Some` exactly when `size == layouts.len()`.
    pub kept: Vec<Option<NodeId>>,
}

impl MatchingOutcome {
    /// Whether every block was matched (the layout is feasible).
    pub fn is_complete(&self) -> bool {
        self.kept.iter().all(Option::is_some)
    }
}

/// Computes the maximum "kept replica" matching for a stripe.
///
/// * `topo` — the cluster topology.
/// * `layouts` — `layouts[i]` lists the nodes holding replicas of data block
///   `i` of the stripe.
/// * `c` — maximum blocks of the stripe allowed per rack after encoding.
/// * `eligible_racks` — if `Some`, only these racks may hold blocks after
///   encoding (the target racks of Section III-D); replicas elsewhere can
///   still exist but cannot be the kept copy.
///
/// ```
/// use ear_flow::max_kept_matching;
/// use ear_types::{ClusterTopology, NodeId};
///
/// // Fig. 4: 4 racks x 2 nodes, 3 blocks, c = 1.
/// let topo = ClusterTopology::uniform(4, 2);
/// let layouts = vec![
///     vec![NodeId(0), NodeId(2)], // block 1: racks 0 and 1
///     vec![NodeId(1), NodeId(4)], // block 2: racks 0 and 2
///     vec![NodeId(3), NodeId(6)], // block 3: racks 1 and 3
/// ];
/// let m = max_kept_matching(&topo, &layouts, 1, None);
/// assert!(m.is_complete());
/// ```
///
/// # Panics
///
/// Panics if `c == 0` or a layout references a node outside the topology.
pub fn max_kept_matching(
    topo: &ClusterTopology,
    layouts: &[Vec<NodeId>],
    c: usize,
    eligible_racks: Option<&[RackId]>,
) -> MatchingOutcome {
    assert!(c > 0, "c must be positive");
    let b = layouts.len();
    if b == 0 {
        return MatchingOutcome {
            size: 0,
            kept: Vec::new(),
        };
    }
    let n_nodes = topo.num_nodes();
    let n_racks = topo.num_racks();

    let eligible = |r: RackId| -> bool {
        match eligible_racks {
            None => true,
            Some(set) => set.contains(&r),
        }
    };

    // Vertex layout: S, T, blocks, nodes, racks.
    let s = 0usize;
    let t = 1usize;
    let block_v = |i: usize| 2 + i;
    let node_v = |v: NodeId| 2 + b + v.index();
    let rack_v = |r: RackId| 2 + b + n_nodes + r.index();

    let mut net = FlowNetwork::new(2 + b + n_nodes + n_racks);
    let mut block_edges: Vec<Vec<(EdgeId, NodeId)>> = vec![Vec::new(); b];

    for (i, layout) in layouts.iter().enumerate() {
        net.add_edge(s, block_v(i), 1);
        for &node in layout {
            assert!(node.index() < n_nodes, "layout node outside topology");
            if eligible(topo.rack_of(node)) {
                let e = net.add_edge(block_v(i), node_v(node), 1);
                block_edges[i].push((e, node));
            }
        }
    }
    // node -> rack and rack -> T edges only for nodes that actually hold
    // replicas (keeps the graph minimal) and eligible racks.
    let mut node_added = vec![false; n_nodes];
    let mut rack_added = vec![false; n_racks];
    for layout in layouts {
        for &node in layout {
            let rack = topo.rack_of(node);
            if !eligible(rack) {
                continue;
            }
            if !node_added[node.index()] {
                node_added[node.index()] = true;
                net.add_edge(node_v(node), rack_v(rack), 1);
            }
            if !rack_added[rack.index()] {
                rack_added[rack.index()] = true;
                net.add_edge(rack_v(rack), t, c as u64);
            }
        }
    }

    let size = net.max_flow(s, t) as usize;
    let kept = block_edges
        .iter()
        .map(|edges| {
            edges
                .iter()
                .find(|(e, _)| net.flow_on(*e) == 1)
                .map(|&(_, node)| node)
        })
        .collect();
    MatchingOutcome { size, kept }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Checks the matching result against the constraints it must satisfy.
    fn assert_matching_valid(
        topo: &ClusterTopology,
        layouts: &[Vec<NodeId>],
        c: usize,
        eligible: Option<&[RackId]>,
        outcome: &MatchingOutcome,
    ) {
        let mut node_used = std::collections::HashSet::new();
        let mut rack_count = std::collections::HashMap::new();
        for (i, kept) in outcome.kept.iter().enumerate() {
            if let Some(node) = kept {
                assert!(layouts[i].contains(node), "kept replica must exist");
                assert!(node_used.insert(*node), "node keeps at most one block");
                let r = topo.rack_of(*node);
                if let Some(set) = eligible {
                    assert!(set.contains(&r), "kept replica in eligible rack");
                }
                *rack_count.entry(r).or_insert(0usize) += 1;
            }
        }
        for (_, count) in rack_count {
            assert!(count <= c, "rack holds at most c blocks");
        }
        assert_eq!(
            outcome.size,
            outcome.kept.iter().flatten().count(),
            "size equals matched blocks"
        );
    }

    #[test]
    fn feasible_layout_is_matched_completely() {
        let topo = ClusterTopology::uniform(4, 2);
        let layouts = vec![
            vec![NodeId(0), NodeId(2)],
            vec![NodeId(1), NodeId(4)],
            vec![NodeId(3), NodeId(6)],
        ];
        let m = max_kept_matching(&topo, &layouts, 1, None);
        assert!(m.is_complete());
        assert_matching_valid(&topo, &layouts, 1, None, &m);
    }

    #[test]
    fn infeasible_layout_detected() {
        // Section III-A's availability-violation example: three blocks whose
        // replicas all live in the same two racks, c = 1 — at most 2 blocks
        // can be kept on distinct racks.
        let topo = ClusterTopology::uniform(4, 3);
        let layouts = vec![
            vec![NodeId(0), NodeId(3)],
            vec![NodeId(1), NodeId(4)],
            vec![NodeId(2), NodeId(5)],
        ];
        let m = max_kept_matching(&topo, &layouts, 1, None);
        assert_eq!(m.size, 2);
        assert!(!m.is_complete());
        assert_matching_valid(&topo, &layouts, 1, None, &m);
    }

    #[test]
    fn larger_c_relaxes_rack_constraint() {
        let topo = ClusterTopology::uniform(4, 3);
        let layouts = vec![
            vec![NodeId(0), NodeId(3)],
            vec![NodeId(1), NodeId(4)],
            vec![NodeId(2), NodeId(5)],
        ];
        // With c = 2 the same layout becomes feasible (2 blocks in one rack,
        // 1 in the other).
        let m = max_kept_matching(&topo, &layouts, 2, None);
        assert!(m.is_complete());
        assert_matching_valid(&topo, &layouts, 2, None, &m);
    }

    #[test]
    fn node_collision_limits_matching() {
        // Two blocks whose only replica is the same node.
        let topo = ClusterTopology::uniform(2, 2);
        let layouts = vec![vec![NodeId(0)], vec![NodeId(0)]];
        let m = max_kept_matching(&topo, &layouts, 2, None);
        assert_eq!(m.size, 1);
    }

    #[test]
    fn target_racks_restrict_kept_copies() {
        // Section III-D example: (6,3), c = 3, R' = 2 target racks.
        let topo = ClusterTopology::uniform(6, 4);
        let targets = [RackId(0), RackId(1)];
        // All blocks have a replica in rack 0 (core) and one in rack 2
        // (not a target) — only the rack-0 copies can be kept.
        let layouts = vec![
            vec![NodeId(0), NodeId(8)],
            vec![NodeId(1), NodeId(9)],
            vec![NodeId(2), NodeId(10)],
        ];
        let m = max_kept_matching(&topo, &layouts, 3, Some(&targets));
        assert!(m.is_complete());
        assert_matching_valid(&topo, &layouts, 3, Some(&targets), &m);
        for kept in m.kept.iter().flatten() {
            assert_eq!(topo.rack_of(*kept), RackId(0));
        }
    }

    #[test]
    fn target_racks_can_make_layout_infeasible() {
        let topo = ClusterTopology::uniform(3, 2);
        let targets = [RackId(2)];
        // No replica in rack 2 at all.
        let layouts = vec![vec![NodeId(0), NodeId(2)]];
        let m = max_kept_matching(&topo, &layouts, 1, Some(&targets));
        assert_eq!(m.size, 0);
        assert!(!m.is_complete());
    }

    #[test]
    fn empty_stripe() {
        let topo = ClusterTopology::uniform(2, 2);
        let m = max_kept_matching(&topo, &[], 1, None);
        assert_eq!(m.size, 0);
        assert!(m.is_complete());
    }

    #[test]
    fn paper_fig4_example() {
        // Fig. 4: 8 nodes in 4 racks (2 per rack), 3 blocks, c = 1.
        // Block 1 on nodes {0 (rack1), 2 (rack2)}; block 2 on {1 (rack1),
        // 4 (rack3)}; block 3 on {3 (rack2), 5 (rack3)}. Max matching = 3.
        let topo = ClusterTopology::uniform(4, 2);
        let layouts = vec![
            vec![NodeId(0), NodeId(2)],
            vec![NodeId(1), NodeId(4)],
            vec![NodeId(3), NodeId(5)],
        ];
        let m = max_kept_matching(&topo, &layouts, 1, None);
        assert!(m.is_complete());
        assert_matching_valid(&topo, &layouts, 1, None, &m);
        // All three kept replicas are in distinct racks.
        let racks: std::collections::HashSet<_> =
            m.kept.iter().flatten().map(|n| topo.rack_of(*n)).collect();
        assert_eq!(racks.len(), 3);
    }
}
