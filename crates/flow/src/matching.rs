//! Hopcroft–Karp maximum bipartite matching.
//!
//! The EAR feasibility check can be phrased either as a max-flow problem
//! (the paper's formulation, see [`crate::FlowNetwork`]) or — when `c = 1`
//! and racks are collapsed into nodes — as a plain bipartite matching. This
//! module provides Hopcroft–Karp as the alternative formulation; the
//! `micro_substrates` bench compares the two.

use std::collections::VecDeque;

/// Maximum bipartite matching between `left_count` left vertices and
/// `right_count` right vertices, given adjacency `adj[l] = right neighbours`.
///
/// Returns the matching as `match_of_left[l] = Some(r)`.
///
/// ```
/// use ear_flow::hopcroft_karp;
/// // 0-0, 0-1, 1-0: maximum matching has size 2.
/// let m = hopcroft_karp(2, 2, &[vec![0, 1], vec![0]]);
/// assert_eq!(m.iter().flatten().count(), 2);
/// ```
///
/// # Panics
///
/// Panics if `adj.len() != left_count` or any neighbour index is out of
/// range.
pub fn hopcroft_karp(
    left_count: usize,
    right_count: usize,
    adj: &[Vec<usize>],
) -> Vec<Option<usize>> {
    assert_eq!(adj.len(), left_count, "adjacency size mismatch");
    for nbrs in adj {
        for &r in nbrs {
            assert!(r < right_count, "right vertex out of range");
        }
    }

    const INF: u32 = u32::MAX;
    let mut match_l: Vec<Option<usize>> = vec![None; left_count];
    let mut match_r: Vec<Option<usize>> = vec![None; right_count];
    let mut dist = vec![INF; left_count];

    loop {
        // BFS phase: layer free left vertices.
        let mut queue = VecDeque::new();
        for l in 0..left_count {
            if match_l[l].is_none() {
                dist[l] = 0;
                queue.push_back(l);
            } else {
                dist[l] = INF;
            }
        }
        let mut found_augmenting = false;
        while let Some(l) = queue.pop_front() {
            for &r in &adj[l] {
                match match_r[r] {
                    None => found_augmenting = true,
                    Some(l2) => {
                        if dist[l2] == INF {
                            dist[l2] = dist[l] + 1;
                            queue.push_back(l2);
                        }
                    }
                }
            }
        }
        if !found_augmenting {
            break;
        }
        // DFS phase: find vertex-disjoint augmenting paths.
        for l in 0..left_count {
            if match_l[l].is_none() {
                dfs(l, adj, &mut match_l, &mut match_r, &mut dist);
            }
        }
    }
    match_l
}

fn dfs(
    l: usize,
    adj: &[Vec<usize>],
    match_l: &mut [Option<usize>],
    match_r: &mut [Option<usize>],
    dist: &mut [u32],
) -> bool {
    for &r in &adj[l] {
        let advance = match match_r[r] {
            None => true,
            Some(l2) => dist[l2] == dist[l] + 1 && dfs(l2, adj, match_l, match_r, dist),
        };
        if advance {
            match_l[l] = Some(r);
            match_r[r] = Some(l);
            return true;
        }
    }
    dist[l] = u32::MAX;
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matching_size(m: &[Option<usize>]) -> usize {
        m.iter().flatten().count()
    }

    fn assert_valid(m: &[Option<usize>], adj: &[Vec<usize>]) {
        let mut used = std::collections::HashSet::new();
        for (l, r) in m.iter().enumerate() {
            if let Some(r) = r {
                assert!(adj[l].contains(r), "matched pair must be an edge");
                assert!(used.insert(*r), "right vertex matched twice");
            }
        }
    }

    #[test]
    fn perfect_matching_on_cycle() {
        // Even cycle as bipartite graph: perfect matching exists.
        let adj = vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![3, 0]];
        let m = hopcroft_karp(4, 4, &adj);
        assert_eq!(matching_size(&m), 4);
        assert_valid(&m, &adj);
    }

    #[test]
    fn saturated_left_vertex() {
        // Two left vertices compete for one right vertex.
        let adj = vec![vec![0], vec![0]];
        let m = hopcroft_karp(2, 1, &adj);
        assert_eq!(matching_size(&m), 1);
        assert_valid(&m, &adj);
    }

    #[test]
    fn empty_graph() {
        let m = hopcroft_karp(3, 3, &[vec![], vec![], vec![]]);
        assert_eq!(matching_size(&m), 0);
    }

    #[test]
    fn augmenting_path_is_found() {
        // Greedy left-to-right would match 0-0 and strand 1; an augmenting
        // path re-routes 0 to 1.
        let adj = vec![vec![0, 1], vec![0]];
        let m = hopcroft_karp(2, 2, &adj);
        assert_eq!(matching_size(&m), 2);
        assert_valid(&m, &adj);
    }

    #[test]
    fn agrees_with_flow_formulation_on_random_graphs() {
        use crate::FlowNetwork;
        let mut state = 0x12345678u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as usize
        };
        for trial in 0..50 {
            let l = 1 + next() % 8;
            let r = 1 + next() % 8;
            let mut adj = vec![Vec::new(); l];
            for (li, nbrs) in adj.iter_mut().enumerate() {
                for ri in 0..r {
                    if (next() + li) % 3 == 0 {
                        nbrs.push(ri);
                    }
                }
            }
            let m = hopcroft_karp(l, r, &adj);
            // Flow formulation.
            let mut net = FlowNetwork::new(l + r + 2);
            let (s, t) = (l + r, l + r + 1);
            for li in 0..l {
                net.add_edge(s, li, 1);
            }
            for ri in 0..r {
                net.add_edge(l + ri, t, 1);
            }
            for (li, nbrs) in adj.iter().enumerate() {
                for &ri in nbrs {
                    net.add_edge(li, l + ri, 1);
                }
            }
            assert_eq!(
                matching_size(&m) as u64,
                net.max_flow(s, t),
                "trial {trial}: matching and flow disagree"
            );
            assert_valid(&m, &adj);
        }
    }
}
