//! Dinic's maximum-flow algorithm on small integer-capacity networks.
//!
//! The EAR placement algorithm (Section III-B of the paper) reduces the
//! "can we keep one replica per block on distinct nodes with at most `c`
//! blocks per rack" question to a max-flow computation on a four-layer
//! network; this module provides the solver.

use std::collections::VecDeque;

/// Identifier of a directed edge in a [`FlowNetwork`]; returned by
/// [`FlowNetwork::add_edge`] so callers can query per-edge flow after a
/// max-flow run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EdgeId(usize);

#[derive(Debug, Clone)]
struct Edge {
    to: usize,
    /// Remaining capacity.
    cap: u64,
    /// Index of the reverse edge in `edges`.
    rev: usize,
    /// Original capacity, kept so flow = original - cap and for reset.
    original: u64,
}

/// A directed flow network with integer capacities, solved with Dinic's
/// algorithm (O(V²E), far more than fast enough for EAR's graphs of a few
/// hundred vertices).
///
/// ```
/// use ear_flow::FlowNetwork;
///
/// // s -> a -> t and s -> b -> t, unit capacities: max flow 2.
/// let mut net = FlowNetwork::new(4);
/// let (s, a, b, t) = (0, 1, 2, 3);
/// net.add_edge(s, a, 1);
/// net.add_edge(s, b, 1);
/// net.add_edge(a, t, 1);
/// net.add_edge(b, t, 1);
/// assert_eq!(net.max_flow(s, t), 2);
/// ```
#[derive(Debug, Clone)]
pub struct FlowNetwork {
    graph: Vec<Vec<usize>>,
    edges: Vec<Edge>,
}

impl FlowNetwork {
    /// Creates a network with `vertices` vertices and no edges.
    pub fn new(vertices: usize) -> Self {
        FlowNetwork {
            graph: vec![Vec::new(); vertices],
            edges: Vec::new(),
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.graph.len()
    }

    /// Adds a directed edge `from -> to` with capacity `cap` and returns its
    /// id. A residual edge of capacity 0 is added automatically.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, from: usize, to: usize, cap: u64) -> EdgeId {
        assert!(from < self.graph.len(), "edge source out of range");
        assert!(to < self.graph.len(), "edge target out of range");
        let fwd = self.edges.len();
        let bwd = fwd + 1;
        self.edges.push(Edge {
            to,
            cap,
            rev: bwd,
            original: cap,
        });
        self.edges.push(Edge {
            to: from,
            cap: 0,
            rev: fwd,
            original: 0,
        });
        self.graph[from].push(fwd);
        self.graph[to].push(bwd);
        EdgeId(fwd)
    }

    /// Flow currently routed through `edge` (after a [`max_flow`] call).
    ///
    /// [`max_flow`]: FlowNetwork::max_flow
    pub fn flow_on(&self, edge: EdgeId) -> u64 {
        let e = &self.edges[edge.0];
        e.original - e.cap
    }

    /// Restores all capacities, discarding any routed flow.
    pub fn reset(&mut self) {
        for e in &mut self.edges {
            e.cap = e.original;
        }
    }

    /// Computes the maximum flow from `source` to `sink`.
    ///
    /// Subsequent calls continue from the current residual state; call
    /// [`reset`](FlowNetwork::reset) first to start over.
    ///
    /// # Panics
    ///
    /// Panics if `source == sink` or either is out of range.
    pub fn max_flow(&mut self, source: usize, sink: usize) -> u64 {
        assert!(source < self.graph.len() && sink < self.graph.len());
        assert_ne!(source, sink, "source and sink must differ");
        let mut total = 0;
        loop {
            let level = self.bfs_levels(source);
            if level[sink].is_none() {
                return total;
            }
            let mut iter = vec![0usize; self.graph.len()];
            loop {
                let pushed = self.dfs_augment(source, sink, u64::MAX, &level, &mut iter);
                if pushed == 0 {
                    break;
                }
                total += pushed;
            }
        }
    }

    fn bfs_levels(&self, source: usize) -> Vec<Option<u32>> {
        let mut level = vec![None; self.graph.len()];
        let mut queue = VecDeque::new();
        level[source] = Some(0);
        queue.push_back(source);
        while let Some(v) = queue.pop_front() {
            let lv = level[v].expect("queued vertices have levels");
            for &ei in &self.graph[v] {
                let e = &self.edges[ei];
                if e.cap > 0 && level[e.to].is_none() {
                    level[e.to] = Some(lv + 1);
                    queue.push_back(e.to);
                }
            }
        }
        level
    }

    fn dfs_augment(
        &mut self,
        v: usize,
        sink: usize,
        limit: u64,
        level: &[Option<u32>],
        iter: &mut [usize],
    ) -> u64 {
        if v == sink {
            return limit;
        }
        while iter[v] < self.graph[v].len() {
            let ei = self.graph[v][iter[v]];
            let (to, cap) = {
                let e = &self.edges[ei];
                (e.to, e.cap)
            };
            let advance = cap > 0
                && match (level[v], level[to]) {
                    (Some(a), Some(b)) => b == a + 1,
                    _ => false,
                };
            if advance {
                let pushed = self.dfs_augment(to, sink, limit.min(cap), level, iter);
                if pushed > 0 {
                    let rev = self.edges[ei].rev;
                    self.edges[ei].cap -= pushed;
                    self.edges[rev].cap += pushed;
                    return pushed;
                }
            }
            iter[v] += 1;
        }
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_edge() {
        let mut net = FlowNetwork::new(2);
        let e = net.add_edge(0, 1, 5);
        assert_eq!(net.max_flow(0, 1), 5);
        assert_eq!(net.flow_on(e), 5);
    }

    #[test]
    fn classic_diamond() {
        // s=0, t=3, two paths with a cross edge.
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 10);
        net.add_edge(0, 2, 10);
        net.add_edge(1, 2, 1);
        net.add_edge(1, 3, 6);
        net.add_edge(2, 3, 10);
        assert_eq!(net.max_flow(0, 3), 16);
    }

    #[test]
    fn bottleneck_limits_flow() {
        // s -> a (100) -> t (3)
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 100);
        net.add_edge(1, 2, 3);
        assert_eq!(net.max_flow(0, 2), 3);
    }

    #[test]
    fn disconnected_sink_gives_zero() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 4);
        assert_eq!(net.max_flow(0, 2), 0);
    }

    #[test]
    fn reset_restores_capacity() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 7);
        assert_eq!(net.max_flow(0, 1), 7);
        assert_eq!(net.max_flow(0, 1), 0); // residual exhausted
        net.reset();
        assert_eq!(net.max_flow(0, 1), 7);
    }

    #[test]
    fn bipartite_as_flow() {
        // 3 left, 3 right; left i connects to right i and right (i+1)%3.
        // Perfect matching exists: flow 3.
        let mut net = FlowNetwork::new(8);
        let (s, t) = (0, 7);
        for i in 0..3 {
            net.add_edge(s, 1 + i, 1);
            net.add_edge(4 + i, t, 1);
        }
        for i in 0..3 {
            net.add_edge(1 + i, 4 + i, 1);
            net.add_edge(1 + i, 4 + (i + 1) % 3, 1);
        }
        assert_eq!(net.max_flow(s, t), 3);
    }

    #[test]
    fn flow_conservation_on_edges() {
        let mut net = FlowNetwork::new(4);
        let e1 = net.add_edge(0, 1, 2);
        let e2 = net.add_edge(0, 2, 2);
        let e3 = net.add_edge(1, 3, 2);
        let e4 = net.add_edge(2, 3, 1);
        assert_eq!(net.max_flow(0, 3), 3);
        assert_eq!(net.flow_on(e1) + net.flow_on(e2), 3);
        assert_eq!(net.flow_on(e3) + net.flow_on(e4), 3);
    }

    #[test]
    #[should_panic(expected = "must differ")]
    fn same_source_sink_panics() {
        let mut net = FlowNetwork::new(2);
        net.max_flow(1, 1);
    }
}
