//! Max-flow and bipartite matching for encoding-aware replica placement.
//!
//! The heart of the EAR algorithm (Section III-B of the paper) is a
//! feasibility question: given where the replicas of a stripe's data blocks
//! currently live, can the system keep exactly one replica per block such
//! that every node keeps at most one block and every rack keeps at most `c`
//! blocks? The paper answers it by building a flow network
//! (`S → blocks → nodes → racks → T`) and checking whether the max flow
//! saturates all blocks.
//!
//! This crate provides:
//!
//! * [`FlowNetwork`] — a Dinic max-flow solver.
//! * [`hopcroft_karp`] — maximum bipartite matching, the alternative
//!   formulation used as an ablation.
//! * [`max_kept_matching`] — the stripe-level feasibility check and matching
//!   extraction, including the *target racks* variant of Section III-D.
//!
//! # Example
//!
//! ```
//! use ear_flow::max_kept_matching;
//! use ear_types::{ClusterTopology, NodeId};
//!
//! let topo = ClusterTopology::uniform(4, 2);
//! let layouts = vec![
//!     vec![NodeId(0), NodeId(2)],
//!     vec![NodeId(1), NodeId(4)],
//! ];
//! let outcome = max_kept_matching(&topo, &layouts, 1, None);
//! assert!(outcome.is_complete());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dinic;
mod matching;
mod stripe_graph;

pub use dinic::{EdgeId, FlowNetwork};
pub use matching::hopcroft_karp;
pub use stripe_graph::{max_kept_matching, MatchingOutcome};
