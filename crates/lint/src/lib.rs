//! `ear-lint` — the workspace invariant linter.
//!
//! Three rule families, each encoding an invariant the EAR implementation
//! relies on but `rustc` cannot see (DESIGN.md §11):
//!
//! - **L1 lock-order** ([`rules::lock_order`]): nested lock acquisitions in
//!   `ear-cluster` must follow the NameNode's declared coarse→fine order.
//! - **L2 determinism hygiene** ([`rules::determinism`]): deterministic
//!   crates must not consult wall clocks, ambient RNGs, or hash-ordered
//!   iteration — the chaos/heal soaks assert bit-identical reports.
//! - **L3 panic-freedom** ([`rules::panic_free`]): the data-plane hot-path
//!   files must propagate typed errors, never panic.
//!
//! Suppressions live in `lint-allowlist.txt` at the workspace root; every
//! entry carries a reason and goes stale (becomes an error) once the code
//! it excused is cleaned up.
//!
//! The crate is dependency-free by design: it lexes Rust itself
//! ([`lexer`]) instead of using `syn`, so it builds in the registry-less
//! verification containers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allowlist;
pub mod diag;
pub mod lexer;
pub mod rules;

pub use allowlist::Allowlist;
pub use diag::{Diagnostic, Rule};

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Crates whose code must stay deterministic (L2 scope).
pub const DETERMINISTIC_CRATES: &[&str] = &["cluster", "faults", "sim", "des", "erasure"];

/// Data-plane hot-path files (L3 scope), relative to `crates/cluster/src/`.
pub const DATA_PLANE_FILES: &[&str] = &[
    "io.rs",
    "datanode.rs",
    "blockstore.rs",
    "cache.rs",
    "recovery.rs",
    "raidnode.rs",
    "pipeline.rs",
    "healer.rs",
    "reliability.rs",
    "wal.rs",
    "extent.rs",
    "crashsim.rs",
];

/// Runs every applicable rule on one source file. `path` is the
/// workspace-relative path with `/` separators; it selects which rules
/// apply (so fixtures can opt into a scope by naming themselves into it).
pub fn check_source(path: &str, src: &str) -> Vec<Diagnostic> {
    let toks = lexer::lex_non_test(src);
    let mut out = Vec::new();
    if path.starts_with("crates/cluster/src/") {
        out.extend(rules::lock_order::check(path, &toks));
    }
    if DETERMINISTIC_CRATES
        .iter()
        .any(|c| path.starts_with(&format!("crates/{c}/src/")))
    {
        out.extend(rules::determinism::check(path, &toks));
    }
    if DATA_PLANE_FILES
        .iter()
        .any(|f| path == format!("crates/cluster/src/{f}"))
    {
        out.extend(rules::panic_free::check(path, &toks));
    }
    out
}

/// Result of a workspace check, before allowlisting.
#[derive(Debug, Default)]
pub struct CheckReport {
    /// Every diagnostic found, sorted by (path, line, col, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

/// Lints every `crates/*/src/**/*.rs` file under `root`.
///
/// # Errors
///
/// Propagates I/O errors from directory walking and file reads.
pub fn check_workspace(root: &Path) -> io::Result<CheckReport> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    for entry in fs::read_dir(&crates_dir)? {
        let src = entry?.path().join("src");
        if src.is_dir() {
            collect_rs_files(&src, &mut files)?;
        }
    }
    // Sorted walk: diagnostics come out in a stable order.
    files.sort();

    let mut report = CheckReport::default();
    for file in files {
        let rel = relativize(root, &file);
        let src = fs::read_to_string(&file)?;
        report.diagnostics.extend(check_source(&rel, &src));
        report.files_scanned += 1;
    }
    report
        .diagnostics
        .sort_by(|a, b| (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule)));
    Ok(report)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn relativize(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Locates the workspace root: walks up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoping_selects_rules_by_path() {
        let src = "fn f(m: &HashMap<u32, u32>) { for k in m.keys() { v.unwrap(); } }";
        // In the cluster crate: L2 applies everywhere, L3 only to hot-path files.
        let d = check_source("crates/cluster/src/chaos.rs", src);
        assert!(d.iter().any(|d| d.rule == Rule::L2));
        assert!(!d.iter().any(|d| d.rule == Rule::L3));
        let d = check_source("crates/cluster/src/io.rs", src);
        assert!(d.iter().any(|d| d.rule == Rule::L3));
        // Outside the deterministic crates nothing applies.
        let d = check_source("crates/cli/src/main.rs", src);
        assert!(d.is_empty(), "{d:?}");
    }
}
