//! `ear-lint` — the workspace invariant linter.
//!
//! Six rule families, each encoding an invariant the EAR implementation
//! relies on but `rustc` cannot see (DESIGN.md §11, §16):
//!
//! - **L1 lock-order** ([`rules::lock_order`]): nested lock acquisitions
//!   in `ear-cluster` must stay acyclic. v2 derives the coarse→fine
//!   order from a workspace-wide lock-acquisition graph (per-file facts
//!   joined, SCC cycle detection) instead of a hand-listed table.
//! - **L2 determinism hygiene** ([`rules::determinism`]): deterministic
//!   crates must not consult wall clocks, ambient RNGs, or hash-ordered
//!   iteration — the chaos/heal soaks assert bit-identical reports.
//! - **L3 panic-freedom** ([`rules::panic_free`]): the data-plane
//!   hot-path files must propagate typed errors, never panic.
//! - **L4 durability ordering** ([`rules::durability`]): the durable
//!   stores must fsync before acknowledging, fsync directories after
//!   renames, and keep headers the last write of a commit.
//! - **L5 context/retry hygiene** ([`rules::context`]): data-plane
//!   methods thread `&OpContext`; sleeps, retries, and error drops must
//!   go through the reliability substrate.
//! - **L6 zero-copy hygiene** ([`rules::zero_copy`]): hot-path code must
//!   not materialize `Block` payloads with `to_vec()`/`to_owned()`.
//!
//! Suppressions live in `lint-allowlist.txt` at the workspace root; every
//! entry carries a reason and goes stale (becomes an error) once the code
//! it excused is cleaned up.
//!
//! The crate is dependency-free by design: it lexes Rust itself
//! ([`lexer`]) instead of using `syn`, so it builds in the registry-less
//! verification containers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allowlist;
pub mod diag;
pub mod lexer;
pub mod rules;

pub use allowlist::Allowlist;
pub use diag::{Diagnostic, Rule};
pub use rules::lock_order::LockGraph;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Crates whose code must stay deterministic (L2 scope).
pub const DETERMINISTIC_CRATES: &[&str] = &["cluster", "faults", "sim", "des", "erasure"];

/// Data-plane hot-path files (L3 + L5 scope), relative to
/// `crates/cluster/src/`.
pub const DATA_PLANE_FILES: &[&str] = &[
    "io.rs",
    "datanode.rs",
    "blockstore.rs",
    "cache.rs",
    "recovery.rs",
    "raidnode.rs",
    "pipeline.rs",
    "healer.rs",
    "reliability.rs",
    "wal.rs",
    "extent.rs",
    "crashsim.rs",
];

/// Files with durable-write protocols (L4 scope), relative to
/// `crates/cluster/src/`. crashsim.rs is deliberately absent: it writes
/// torn states on purpose.
pub const DURABILITY_FILES: &[&str] = &["wal.rs", "extent.rs", "blockstore.rs", "cluster.rs"];

/// Hot read-path files (L6 scope), relative to `crates/cluster/src/`.
/// The repair/encode paths (recovery.rs, raidnode.rs) legitimately
/// assemble fresh buffers and are out of scope.
pub const HOT_READ_PATH_FILES: &[&str] =
    &["io.rs", "datanode.rs", "blockstore.rs", "cache.rs", "pipeline.rs"];

fn in_cluster_set(path: &str, set: &[&str]) -> bool {
    set.iter().any(|f| path == format!("crates/cluster/src/{f}"))
}

/// The per-file rules (everything except the workspace lock graph).
fn file_diagnostics(path: &str, toks: &[lexer::Tok]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if DETERMINISTIC_CRATES
        .iter()
        .any(|c| path.starts_with(&format!("crates/{c}/src/")))
    {
        out.extend(rules::determinism::check(path, toks));
    }
    if in_cluster_set(path, DATA_PLANE_FILES) {
        out.extend(rules::panic_free::check(path, toks));
        out.extend(rules::context::check(path, toks));
    }
    if in_cluster_set(path, DURABILITY_FILES) {
        out.extend(rules::durability::check(path, toks));
    }
    if in_cluster_set(path, HOT_READ_PATH_FILES) {
        out.extend(rules::zero_copy::check(path, toks));
    }
    out
}

/// Runs every applicable rule on one source file. `path` is the
/// workspace-relative path with `/` separators; it selects which rules
/// apply (so fixtures can opt into a scope by naming themselves into it).
///
/// The lock graph is built from this file alone here; the workspace
/// runner ([`check_workspace`]) joins facts across files instead, which
/// is where cross-file cycles surface.
pub fn check_source(path: &str, src: &str) -> Vec<Diagnostic> {
    let toks = lexer::lex_non_test(src);
    let mut out = file_diagnostics(path, &toks);
    if path.starts_with("crates/cluster/src/") {
        out.extend(rules::lock_order::check(path, &toks));
    }
    sort_diags(&mut out);
    out
}

fn sort_diags(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule)));
}

/// Result of a workspace check, before allowlisting.
#[derive(Debug, Default)]
pub struct CheckReport {
    /// Every diagnostic found, sorted by (path, line, col, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// The workspace lock-acquisition graph (L1's evidence; also dumped
    /// by `ear-lint graph`).
    pub lock_graph: LockGraph,
}

/// Lints every `crates/*/src/**/*.rs` file under `root`: pass 1 runs the
/// per-file rules and collects lock facts, pass 2 joins the facts into
/// the workspace lock graph and appends its cycle diagnostics.
///
/// # Errors
///
/// Propagates I/O errors from directory walking and file reads.
pub fn check_workspace(root: &Path) -> io::Result<CheckReport> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    for entry in fs::read_dir(&crates_dir)? {
        let src = entry?.path().join("src");
        if src.is_dir() {
            collect_rs_files(&src, &mut files)?;
        }
    }
    // Sorted walk: diagnostics come out in a stable order.
    files.sort();

    let mut report = CheckReport::default();
    let mut facts = Vec::new();
    for file in files {
        let rel = relativize(root, &file);
        let src = fs::read_to_string(&file)?;
        let toks = lexer::lex_non_test(&src);
        report.diagnostics.extend(file_diagnostics(&rel, &toks));
        if rel.starts_with("crates/cluster/src/") {
            facts.push(rules::lock_order::facts(&rel, &toks));
        }
        report.files_scanned += 1;
    }
    report.lock_graph = rules::lock_order::analyze(&facts);
    report.diagnostics.extend(report.lock_graph.diagnostics());
    sort_diags(&mut report.diagnostics);
    Ok(report)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn relativize(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Locates the workspace root: walks up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoping_selects_rules_by_path() {
        let src = "fn f(m: &HashMap<u32, u32>) { for k in m.keys() { v.unwrap(); } }";
        // In the cluster crate: L2 applies everywhere, L3 only to hot-path files.
        let d = check_source("crates/cluster/src/chaos.rs", src);
        assert!(d.iter().any(|d| d.rule == Rule::L2));
        assert!(!d.iter().any(|d| d.rule == Rule::L3));
        let d = check_source("crates/cluster/src/io.rs", src);
        assert!(d.iter().any(|d| d.rule == Rule::L3));
        // Outside the deterministic crates nothing applies.
        let d = check_source("crates/cli/src/main.rs", src);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn new_rule_scoping() {
        let durable = "pub fn save(&self) { fs::write(&tmp, &b); }";
        assert!(check_source("crates/cluster/src/wal.rs", durable)
            .iter()
            .any(|d| d.rule == Rule::L4));
        // crashsim writes torn states on purpose — L4 does not apply.
        assert!(!check_source("crates/cluster/src/crashsim.rs", durable)
            .iter()
            .any(|d| d.rule == Rule::L4));

        let ctx = "fn f() { let _ = send(); }";
        assert!(check_source("crates/cluster/src/io.rs", ctx)
            .iter()
            .any(|d| d.rule == Rule::L5));
        assert!(!check_source("crates/cluster/src/chaos.rs", ctx)
            .iter()
            .any(|d| d.rule == Rule::L5));

        let hot = "fn f(block: &Block) { block.to_vec(); }";
        assert!(check_source("crates/cluster/src/cache.rs", hot)
            .iter()
            .any(|d| d.rule == Rule::L6));
        assert!(!check_source("crates/cluster/src/recovery.rs", hot)
            .iter()
            .any(|d| d.rule == Rule::L6));
    }
}
