//! A small self-contained Rust lexer.
//!
//! `ear-lint` runs in registry-less containers, so it cannot depend on
//! `syn`/`proc-macro2`. The rules it enforces (lock order, determinism
//! hygiene, panic-freedom) only need a faithful token stream with source
//! positions — not a full AST — so this module lexes Rust source into a
//! flat `Vec<Tok>`: identifiers, literals, lifetimes, and punctuation,
//! with comments and whitespace dropped and strings kept opaque.
//!
//! The lexer is intentionally forgiving: on malformed input it produces
//! *some* token stream rather than erroring, because the linter must never
//! block a build on code that `rustc` itself accepts.

/// Kinds of lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`self`, `lock`, `fn`, ...).
    Ident,
    /// Lifetime (`'a`) — text excludes the quote.
    Lifetime,
    /// Numeric literal (`0`, `0x1F`, `1.5`).
    Num,
    /// String / raw-string / byte-string literal (text is the raw slice).
    Str,
    /// Character or byte-character literal.
    Char,
    /// Punctuation. Multi-character operators `::`, `..=`, `..`, `->`,
    /// `=>` are joined into single tokens; everything else is one char.
    Punct,
}

/// One lexed token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// What kind of token this is.
    pub kind: TokKind,
    /// The token text (identifier name, punct characters, literal slice).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column (in bytes).
    pub col: u32,
    /// Byte offset of the token start.
    pub off: usize,
}

impl Tok {
    /// True if this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True if this token is the punctuation `s`.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c >= 0x80
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80
}

/// Lexes `src` into a token stream, dropping comments and whitespace.
pub fn lex(src: &str) -> Vec<Tok> {
    let mut cur = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = Vec::new();
    while let Some(c) = cur.peek() {
        let (line, col, off) = (cur.line, cur.col, cur.pos);
        if c.is_ascii_whitespace() {
            cur.bump();
            continue;
        }
        // Comments.
        if c == b'/' && cur.peek_at(1) == Some(b'/') {
            while let Some(c) = cur.peek() {
                if c == b'\n' {
                    break;
                }
                cur.bump();
            }
            continue;
        }
        if c == b'/' && cur.peek_at(1) == Some(b'*') {
            cur.bump();
            cur.bump();
            let mut depth = 1usize;
            while depth > 0 {
                match cur.bump() {
                    None => break,
                    Some(b'/') if cur.peek() == Some(b'*') => {
                        cur.bump();
                        depth += 1;
                    }
                    Some(b'*') if cur.peek() == Some(b'/') => {
                        cur.bump();
                        depth -= 1;
                    }
                    Some(_) => {}
                }
            }
            continue;
        }
        // Raw strings and raw/byte prefixes: r"..", r#".."#, br".." , b"..".
        if (c == b'r' || c == b'b') && raw_string_ahead(&cur) {
            lex_raw_or_prefixed_string(&mut cur);
            push(&mut out, TokKind::Str, src, off, cur.pos, line, col);
            continue;
        }
        if c == b'b' && cur.peek_at(1) == Some(b'\'') {
            cur.bump(); // b
            cur.bump(); // '
            lex_char_body(&mut cur);
            push(&mut out, TokKind::Char, src, off, cur.pos, line, col);
            continue;
        }
        if c == b'"' {
            cur.bump();
            lex_string_body(&mut cur);
            push(&mut out, TokKind::Str, src, off, cur.pos, line, col);
            continue;
        }
        if c == b'\'' {
            // Lifetime vs char literal.
            cur.bump();
            if lifetime_ahead(&cur) {
                while cur.peek().is_some_and(is_ident_continue) {
                    cur.bump();
                }
                push(&mut out, TokKind::Lifetime, src, off + 1, cur.pos, line, col);
            } else {
                lex_char_body(&mut cur);
                push(&mut out, TokKind::Char, src, off, cur.pos, line, col);
            }
            continue;
        }
        if is_ident_start(c) {
            // Raw identifiers: r#ident.
            if c == b'r' && cur.peek_at(1) == Some(b'#') && cur.peek_at(2).is_some_and(is_ident_start)
            {
                cur.bump();
                cur.bump();
            }
            let start = cur.pos;
            while cur.peek().is_some_and(is_ident_continue) {
                cur.bump();
            }
            push(&mut out, TokKind::Ident, src, start, cur.pos, line, col);
            continue;
        }
        if c.is_ascii_digit() {
            while cur.peek().is_some_and(is_ident_continue) {
                cur.bump();
            }
            // A fractional part, but never the start of a `..` range.
            if cur.peek() == Some(b'.') && cur.peek_at(1).is_some_and(|c| c.is_ascii_digit()) {
                cur.bump();
                while cur.peek().is_some_and(is_ident_continue) {
                    cur.bump();
                }
            }
            push(&mut out, TokKind::Num, src, off, cur.pos, line, col);
            continue;
        }
        // Punctuation, joining the few multi-char operators the rules use.
        let joined: &[&str] = &["::", "..=", "..", "->", "=>"];
        let rest = &src[cur.pos..];
        let mut emitted = false;
        for j in joined {
            if rest.starts_with(j) {
                for _ in 0..j.len() {
                    cur.bump();
                }
                out.push(Tok {
                    kind: TokKind::Punct,
                    text: (*j).to_string(),
                    line,
                    col,
                    off,
                });
                emitted = true;
                break;
            }
        }
        if !emitted {
            cur.bump();
            out.push(Tok {
                kind: TokKind::Punct,
                text: (c as char).to_string(),
                line,
                col,
                off,
            });
        }
    }
    out
}

fn push(out: &mut Vec<Tok>, kind: TokKind, src: &str, start: usize, end: usize, line: u32, col: u32) {
    out.push(Tok {
        kind,
        text: src[start..end].to_string(),
        line,
        col,
        off: start,
    });
}

/// After consuming a `'`, decide lifetime vs char literal: `'a` followed by
/// anything other than a closing `'` is a lifetime; `'a'`, `'\n'`, `'\''`
/// are char literals.
fn lifetime_ahead(cur: &Cursor<'_>) -> bool {
    match cur.peek() {
        Some(b'\\') => false,
        Some(c) if is_ident_start(c) => {
            let mut i = 1;
            while cur.peek_at(i).is_some_and(is_ident_continue) {
                i += 1;
            }
            cur.peek_at(i) != Some(b'\'')
        }
        _ => false,
    }
}

/// Consumes a char-literal body after the opening quote.
fn lex_char_body(cur: &mut Cursor<'_>) {
    if cur.bump() == Some(b'\\') {
        cur.bump();
        // \x41 and \u{..} escapes: consume until the closing quote.
        while cur.peek().is_some() && cur.peek() != Some(b'\'') {
            cur.bump();
        }
    }
    while cur.peek().is_some() && cur.peek() != Some(b'\'') {
        cur.bump();
    }
    cur.bump(); // closing '
}

/// Consumes a string-literal body after the opening quote.
fn lex_string_body(cur: &mut Cursor<'_>) {
    while let Some(c) = cur.bump() {
        match c {
            b'\\' => {
                cur.bump();
            }
            b'"' => break,
            _ => {}
        }
    }
}

/// Does a raw or prefixed string start here? (`r"`, `r#`, `br"`, `br#`, `b"`)
fn raw_string_ahead(cur: &Cursor<'_>) -> bool {
    let (a, b, c) = (cur.peek(), cur.peek_at(1), cur.peek_at(2));
    match (a, b) {
        (Some(b'r'), Some(b'"')) | (Some(b'r'), Some(b'#')) => {
            // `r#ident` is a raw identifier, not a raw string.
            !(b == Some(b'#') && c.is_some_and(is_ident_start))
        }
        (Some(b'b'), Some(b'"')) => true,
        (Some(b'b'), Some(b'r')) => matches!(c, Some(b'"') | Some(b'#')),
        _ => false,
    }
}

/// Consumes `r"..."`, `r#"..."#`, `b"..."`, `br#"..."#` forms.
fn lex_raw_or_prefixed_string(cur: &mut Cursor<'_>) {
    // Skip prefix letters.
    while matches!(cur.peek(), Some(b'r') | Some(b'b')) {
        cur.bump();
    }
    let mut hashes = 0usize;
    while cur.peek() == Some(b'#') {
        hashes += 1;
        cur.bump();
    }
    if cur.peek() != Some(b'"') {
        return;
    }
    cur.bump(); // opening quote
    if hashes == 0 {
        if cur.src.get(cur.pos.wrapping_sub(2)) == Some(&b'b') {
            // b"..." supports escapes.
            lex_string_body(cur);
            return;
        }
        // r"..." — no escapes, ends at first quote.
        while let Some(c) = cur.bump() {
            if c == b'"' {
                return;
            }
        }
        return;
    }
    // Ends at `"` followed by `hashes` #s.
    loop {
        match cur.bump() {
            None => return,
            Some(b'"') => {
                let mut n = 0usize;
                while n < hashes && cur.peek() == Some(b'#') {
                    cur.bump();
                    n += 1;
                }
                if n == hashes {
                    return;
                }
            }
            Some(_) => {}
        }
    }
}

/// Byte ranges of test-only code: any item annotated `#[test]`, `#[cfg(test)]`
/// or similar (an attribute whose tokens mention `test`), extending to the end
/// of the item's `{ ... }` block (or trailing `;` for block-less items).
///
/// The linter drops tokens inside these ranges before running rules — tests
/// are allowed to `unwrap()`, iterate `HashMap`s, and take locks freely.
pub fn test_code_spans(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut spans: Vec<(usize, usize)> = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_punct("#") && toks.get(i + 1).is_some_and(|t| t.is_punct("[")) {
            let start_off = toks[i].off;
            // Find the matching `]` of the attribute.
            let mut j = i + 2;
            let mut depth = 1usize;
            let mut mentions_test = false;
            while j < toks.len() && depth > 0 {
                if toks[j].is_punct("[") {
                    depth += 1;
                } else if toks[j].is_punct("]") {
                    depth -= 1;
                } else if toks[j].is_ident("test") {
                    mentions_test = true;
                }
                j += 1;
            }
            if mentions_test {
                // Skip any further attributes, then run to the end of the item.
                let mut k = j;
                while k < toks.len() && toks[k].is_punct("#") && toks.get(k + 1).is_some_and(|t| t.is_punct("["))
                {
                    let mut d = 1usize;
                    k += 2;
                    while k < toks.len() && d > 0 {
                        if toks[k].is_punct("[") {
                            d += 1;
                        } else if toks[k].is_punct("]") {
                            d -= 1;
                        }
                        k += 1;
                    }
                }
                // The item ends at its first top-level `;`, or at the brace
                // block that starts at the first `{`.
                while k < toks.len() && !toks[k].is_punct("{") && !toks[k].is_punct(";") {
                    k += 1;
                }
                if k < toks.len() && toks[k].is_punct("{") {
                    let mut d = 1usize;
                    k += 1;
                    while k < toks.len() && d > 0 {
                        if toks[k].is_punct("{") {
                            d += 1;
                        } else if toks[k].is_punct("}") {
                            d -= 1;
                        }
                        k += 1;
                    }
                }
                let end_off = toks
                    .get(k.saturating_sub(1))
                    .map(|t| t.off + t.text.len())
                    .unwrap_or(usize::MAX);
                spans.push((start_off, end_off));
                i = k;
                continue;
            }
            i = j;
            continue;
        }
        i += 1;
    }
    spans
}

/// Returns the tokens of `src` with test-only items removed.
pub fn lex_non_test(src: &str) -> Vec<Tok> {
    let toks = lex(src);
    let spans = test_code_spans(&toks);
    if spans.is_empty() {
        return toks;
    }
    toks.into_iter()
        .filter(|t| !spans.iter().any(|&(a, b)| t.off >= a && t.off < b))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_idents_puncts_and_joined_ops() {
        let toks = lex("self.policy.lock()?; a..=b; x -> y");
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(
            texts,
            vec!["self", ".", "policy", ".", "lock", "(", ")", "?", ";", "a", "..=", "b", ";", "x", "->", "y"]
        );
    }

    #[test]
    fn distinguishes_lifetimes_from_chars() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["a", "a"]);
        let chars = toks.iter().filter(|t| t.kind == TokKind::Char).count();
        assert_eq!(chars, 2);
    }

    #[test]
    fn strings_and_comments_are_opaque() {
        let toks = lex("// unwrap() in comment\nlet s = \"x.unwrap()\"; /* .lock() */ s");
        assert!(!toks.iter().any(|t| t.is_ident("unwrap")));
        assert!(!toks.iter().any(|t| t.is_ident("lock")));
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Str).count(), 1);
    }

    #[test]
    fn raw_strings_terminate_correctly() {
        let toks = lex(r####"let s = r#"has "quotes" inside"#; done"####);
        assert!(toks.iter().any(|t| t.is_ident("done")));
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Str).count(), 1);
    }

    #[test]
    fn raw_strings_with_adjacent_hashes_do_not_close_early() {
        // `"#` inside an `r##"..."##` string must not terminate it — only
        // a quote followed by the full hash count does. A premature close
        // would surface `unwrap` as a phantom token for the rules.
        let toks = lex(r#####"let s = r##"mid "# x.unwrap() "# end"##; done"#####);
        assert!(toks.iter().any(|t| t.is_ident("done")));
        assert!(!toks.iter().any(|t| t.is_ident("unwrap")));
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Str).count(), 1);
    }

    #[test]
    fn byte_and_byte_raw_strings_are_opaque() {
        // b"..." honours escapes (the \" must not close it); br#"..."# is
        // raw, so a lone backslash before the closing quote is literal.
        let toks = lex("let a = b\"esc \\\" .lock()\"; let b = br#\"raw \\ .unwrap()\"#; done");
        assert!(toks.iter().any(|t| t.is_ident("done")));
        assert!(!toks.iter().any(|t| t.is_ident("lock")));
        assert!(!toks.iter().any(|t| t.is_ident("unwrap")));
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Str).count(), 2);
    }

    #[test]
    fn empty_raw_string_and_raw_identifiers() {
        // r#"..."# with empty body, and r#match — a raw *identifier*, not
        // a raw string — must both lex cleanly; the raw identifier yields
        // its bare name so keyword-collision code still matches by ident.
        let toks = lex(r####"let r#match = r#""#; done"####);
        assert!(toks.iter().any(|t| t.is_ident("match")));
        assert!(toks.iter().any(|t| t.is_ident("done")));
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Str).count(), 1);
    }

    #[test]
    fn nested_block_comments_are_fully_skipped() {
        // Rust block comments nest: the inner `*/` closes only the inner
        // comment. Stopping at the first `*/` would leak `.lock()` tokens.
        let toks = lex("/* outer /* inner */ still .lock() comment */ done");
        assert!(toks.iter().any(|t| t.is_ident("done")));
        assert!(!toks.iter().any(|t| t.is_ident("lock")));
        let toks = lex("/**/ tight /*/ unbalanced-open-is-opaque");
        assert!(toks.iter().any(|t| t.is_ident("tight")));
        assert_eq!(toks.len(), 1, "unterminated comment swallows the rest");
    }

    #[test]
    fn strings_inside_comments_and_comments_inside_strings() {
        // A quote inside a comment must not open a string, and `/*` inside
        // a string must not open a comment.
        let toks = lex("/* \" */ a = \"/* not a comment */\"; done");
        assert!(toks.iter().any(|t| t.is_ident("done")));
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Str).count(), 1);
        assert!(!toks.iter().any(|t| t.is_ident("not")));
    }

    #[test]
    fn line_numbers_are_tracked() {
        let toks = lex("a\nb\n  c");
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 3);
        assert_eq!(toks[2].col, 3);
    }

    #[test]
    fn cfg_test_items_are_excluded() {
        let src = "fn real() { x.unwrap(); }\n#[cfg(test)]\nmod tests { fn t() { y.unwrap(); } }\nfn after() {}";
        let toks = lex_non_test(src);
        assert_eq!(toks.iter().filter(|t| t.is_ident("unwrap")).count(), 1);
        assert!(toks.iter().any(|t| t.is_ident("after")));
    }

    #[test]
    fn test_attr_fn_is_excluded() {
        let src = "#[test]\nfn t() { y.unwrap(); }\nfn real() { x.unwrap(); }";
        let toks = lex_non_test(src);
        assert_eq!(toks.iter().filter(|t| t.is_ident("unwrap")).count(), 1);
        assert!(toks.iter().any(|t| t.is_ident("real")));
    }
}
