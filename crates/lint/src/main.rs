//! CLI for `ear-lint`.
//!
//! ```text
//! cargo run -p ear-lint -- check [--root DIR] [--allowlist FILE]
//! ```
//!
//! Exit codes: 0 = clean, 1 = violations or stale allowlist entries,
//! 2 = usage / I/O / allowlist-parse error.

use ear_lint::{check_workspace, find_workspace_root, Allowlist};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root: Option<PathBuf> = None;
    let mut allowlist_path: Option<PathBuf> = None;
    let mut subcmd: Option<String> = None;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => match it.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => return usage("--root needs a value"),
            },
            "--allowlist" => match it.next() {
                Some(v) => allowlist_path = Some(PathBuf::from(v)),
                None => return usage("--allowlist needs a value"),
            },
            "check" if subcmd.is_none() => subcmd = Some(a.clone()),
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }
    if subcmd.as_deref() != Some("check") {
        return usage("expected the `check` subcommand");
    }

    let root = match root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("ear-lint: could not locate a workspace root (no Cargo.toml with [workspace])");
            return ExitCode::from(2);
        }
    };

    let allowlist_path = allowlist_path.unwrap_or_else(|| root.join("lint-allowlist.txt"));
    let allowlist = match std::fs::read_to_string(&allowlist_path) {
        Ok(text) => match Allowlist::parse(&text) {
            Ok(a) => a,
            Err(e) => {
                eprintln!(
                    "ear-lint: {}:{}: malformed allowlist entry: {}",
                    allowlist_path.display(),
                    e.line,
                    e.message
                );
                return ExitCode::from(2);
            }
        },
        // A missing allowlist is an empty allowlist.
        Err(_) => Allowlist::default(),
    };

    let report = match check_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ear-lint: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    let (kept, suppressed, stale) = allowlist.apply(report.diagnostics);
    for d in &kept {
        println!("{d}");
    }
    for e in &stale {
        println!(
            "{}:{}: stale allowlist entry `{} {} {}` matches nothing — remove it",
            allowlist_path.display(),
            e.line,
            e.rule,
            e.path_suffix,
            e.check
        );
    }
    eprintln!(
        "ear-lint: {} files scanned, {} violation(s), {} suppressed by allowlist, {} stale allowlist entrie(s)",
        report.files_scanned,
        kept.len(),
        suppressed.len(),
        stale.len()
    );
    if kept.is_empty() && stale.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("ear-lint: {msg}");
    eprintln!("usage: ear-lint check [--root DIR] [--allowlist FILE]");
    ExitCode::from(2)
}
