//! CLI for `ear-lint`.
//!
//! ```text
//! cargo run -p ear-lint -- check [--root DIR] [--allowlist FILE] [--rule LN] [--json]
//! cargo run -p ear-lint -- graph [--root DIR]
//! ```
//!
//! `check` exit codes: 0 = clean, 1 = violations or stale allowlist
//! entries, 2 = usage / I/O / allowlist-parse error. `--rule LN` runs a
//! single rule family (allowlist entries for other families are ignored
//! rather than reported stale). `--json` emits a machine-readable report
//! on stdout instead of human-format diagnostics.
//!
//! `graph` dumps the workspace lock-acquisition graph as GraphViz DOT on
//! stdout (cyclic edges red); CI uploads it as an artifact.

use ear_lint::{check_workspace, diag::json_escape, find_workspace_root, Allowlist, Rule};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root: Option<PathBuf> = None;
    let mut allowlist_path: Option<PathBuf> = None;
    let mut subcmd: Option<String> = None;
    let mut rule_filter: Option<Rule> = None;
    let mut json = false;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => match it.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => return usage("--root needs a value"),
            },
            "--allowlist" => match it.next() {
                Some(v) => allowlist_path = Some(PathBuf::from(v)),
                None => return usage("--allowlist needs a value"),
            },
            "--rule" => match it.next().map(|v| Rule::parse(v)) {
                Some(Some(r)) => rule_filter = Some(r),
                Some(None) => return usage("--rule expects L1..L6"),
                None => return usage("--rule needs a value"),
            },
            "--json" => json = true,
            "check" | "graph" if subcmd.is_none() => subcmd = Some(a.clone()),
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }
    let Some(subcmd) = subcmd else {
        return usage("expected the `check` or `graph` subcommand");
    };

    let root = match root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("ear-lint: could not locate a workspace root (no Cargo.toml with [workspace])");
            return ExitCode::from(2);
        }
    };

    let report = match check_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ear-lint: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if subcmd == "graph" {
        print!("{}", report.lock_graph.to_dot());
        return ExitCode::SUCCESS;
    }

    let allowlist_path = allowlist_path.unwrap_or_else(|| root.join("lint-allowlist.txt"));
    let mut allowlist = match std::fs::read_to_string(&allowlist_path) {
        Ok(text) => match Allowlist::parse(&text) {
            Ok(a) => a,
            Err(e) => {
                eprintln!(
                    "ear-lint: {}:{}: malformed allowlist entry: {}",
                    allowlist_path.display(),
                    e.line,
                    e.message
                );
                return ExitCode::from(2);
            }
        },
        // A missing allowlist is an empty allowlist.
        Err(_) => Allowlist::default(),
    };

    let mut diags = report.diagnostics;
    if let Some(rule) = rule_filter {
        diags.retain(|d| d.rule == rule);
        allowlist.retain_rule(rule);
    }

    let (kept, suppressed, stale) = allowlist.apply(diags);
    if json {
        let mut out = String::from("{\n  \"diagnostics\": [\n");
        for (i, d) in kept.iter().enumerate() {
            out.push_str("    ");
            out.push_str(&d.to_json());
            out.push_str(if i + 1 < kept.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ],\n  \"stale_allowlist_entries\": [\n");
        for (i, e) in stale.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"line\":{},\"rule\":\"{}\",\"path_suffix\":\"{}\",\"check\":\"{}\"}}{}",
                e.line,
                e.rule,
                json_escape(&e.path_suffix),
                json_escape(&e.check),
                if i + 1 < stale.len() { ",\n" } else { "\n" }
            ));
        }
        out.push_str(&format!(
            "  ],\n  \"files_scanned\": {},\n  \"violations\": {},\n  \"suppressed\": {},\n  \"stale\": {}\n}}\n",
            report.files_scanned,
            kept.len(),
            suppressed.len(),
            stale.len()
        ));
        print!("{out}");
    } else {
        for d in &kept {
            println!("{d}");
        }
        for e in &stale {
            println!(
                "{}:{}: stale allowlist entry `{} {} {}` matches nothing — remove it",
                allowlist_path.display(),
                e.line,
                e.rule,
                e.path_suffix,
                e.check
            );
        }
    }
    eprintln!(
        "ear-lint: {} files scanned, {} violation(s), {} suppressed by allowlist, {} stale allowlist entrie(s)",
        report.files_scanned,
        kept.len(),
        suppressed.len(),
        stale.len()
    );
    if kept.is_empty() && stale.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("ear-lint: {msg}");
    eprintln!("usage: ear-lint check [--root DIR] [--allowlist FILE] [--rule LN] [--json]");
    eprintln!("       ear-lint graph [--root DIR]");
    ExitCode::from(2)
}
