//! Diagnostic model shared by all rules.

use std::fmt;

/// The rule family a diagnostic belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Lock-order discipline in `ear-cluster`.
    L1,
    /// Determinism hygiene in the deterministic crates.
    L2,
    /// Data-plane panic-freedom in the hot-path files.
    L3,
    /// Durability ordering in the persistence layer (fsync-before-ack,
    /// rename-then-dir-fsync, header-last commits).
    L4,
    /// Context/retry hygiene in the data plane (OpContext threading, no
    /// naked sleeps or ad-hoc retry loops, no discarded `Result`s).
    L5,
    /// Zero-copy hygiene on the read path (no `Block` payload
    /// materialization in hot-path files).
    L6,
}

impl Rule {
    /// Parses `L1`..`L6`.
    pub fn parse(s: &str) -> Option<Rule> {
        match s {
            "L1" => Some(Rule::L1),
            "L2" => Some(Rule::L2),
            "L3" => Some(Rule::L3),
            "L4" => Some(Rule::L4),
            "L5" => Some(Rule::L5),
            "L6" => Some(Rule::L6),
            _ => None,
        }
    }

    /// The rule's canonical name (`L1`..`L6`).
    pub fn name(self) -> &'static str {
        match self {
            Rule::L1 => "L1",
            Rule::L2 => "L2",
            Rule::L3 => "L3",
            Rule::L4 => "L4",
            Rule::L5 => "L5",
            Rule::L6 => "L6",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// One finding, printed as `path:line:col: RULE/check: message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule family.
    pub rule: Rule,
    /// Short machine-matchable check name within the family
    /// (e.g. `wall-clock`, `map-iteration`, `unwrap`).
    pub check: &'static str,
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human explanation.
    pub message: String,
}

impl Diagnostic {
    /// Renders the diagnostic as a JSON object (the crate is
    /// dependency-free, so serialization is by hand).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"rule\":\"{}\",\"check\":\"{}\",\"path\":\"{}\",\"line\":{},\"col\":{},\"message\":\"{}\"}}",
            self.rule,
            json_escape(self.check),
            json_escape(&self.path),
            self.line,
            self.col,
            json_escape(&self.message)
        )
    }
}

/// Escapes a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: {}/{}: {}",
            self.path, self.line, self.col, self.rule, self.check, self.message
        )
    }
}
