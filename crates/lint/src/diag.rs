//! Diagnostic model shared by all rules.

use std::fmt;

/// The rule family a diagnostic belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Lock-order discipline in `ear-cluster`.
    L1,
    /// Determinism hygiene in the deterministic crates.
    L2,
    /// Data-plane panic-freedom in the hot-path files.
    L3,
}

impl Rule {
    /// Parses `L1`/`L2`/`L3`.
    pub fn parse(s: &str) -> Option<Rule> {
        match s {
            "L1" => Some(Rule::L1),
            "L2" => Some(Rule::L2),
            "L3" => Some(Rule::L3),
            _ => None,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rule::L1 => write!(f, "L1"),
            Rule::L2 => write!(f, "L2"),
            Rule::L3 => write!(f, "L3"),
        }
    }
}

/// One finding, printed as `path:line:col: RULE/check: message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule family.
    pub rule: Rule,
    /// Short machine-matchable check name within the family
    /// (e.g. `wall-clock`, `map-iteration`, `unwrap`).
    pub check: &'static str,
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: {}/{}: {}",
            self.path, self.line, self.col, self.rule, self.check, self.message
        )
    }
}
