//! The allowlist: explicit, justified suppressions.
//!
//! Format (one entry per line, `#` starts a comment):
//!
//! ```text
//! RULE  PATH-SUFFIX  CHECK  -- one-line reason
//! ```
//!
//! e.g.
//!
//! ```text
//! L2 crates/cluster/src/healer.rs wall-clock -- elapsed-time report fields only, never control flow
//! ```
//!
//! An entry suppresses every diagnostic whose rule equals `RULE`, whose path
//! ends with `PATH-SUFFIX`, and whose check name equals `CHECK` (or `*` to
//! match any check in the family). The reason is mandatory. An entry that
//! matches zero diagnostics is *stale* and is itself reported as an error —
//! the allowlist can only shrink as the code gets cleaner.

use crate::diag::{Diagnostic, Rule};

/// One parsed allowlist entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Rule family the entry applies to.
    pub rule: Rule,
    /// Path suffix the entry applies to.
    pub path_suffix: String,
    /// Check name (or `*`).
    pub check: String,
    /// Mandatory justification.
    pub reason: String,
    /// 1-based line in the allowlist file (for error reporting).
    pub line: u32,
}

impl Entry {
    fn matches(&self, d: &Diagnostic) -> bool {
        self.rule == d.rule
            && d.path.ends_with(&self.path_suffix)
            && (self.check == "*" || self.check == d.check)
    }
}

/// A parsed allowlist.
#[derive(Debug, Default)]
pub struct Allowlist {
    /// Entries in file order.
    pub entries: Vec<Entry>,
}

/// A malformed allowlist line.
#[derive(Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: u32,
    /// What is wrong.
    pub message: String,
}

impl Allowlist {
    /// Parses allowlist text. Malformed lines are hard errors: a suppression
    /// that silently fails to parse would un-suppress nothing and suppress
    /// nothing, which is exactly the confusion an allowlist must not create.
    pub fn parse(text: &str) -> Result<Allowlist, ParseError> {
        let mut entries = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let lineno = (idx + 1) as u32;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (spec, reason) = match line.split_once("--") {
                Some((s, r)) => (s.trim(), r.trim()),
                None => {
                    return Err(ParseError {
                        line: lineno,
                        message: "missing `-- reason` clause".to_string(),
                    })
                }
            };
            if reason.is_empty() {
                return Err(ParseError {
                    line: lineno,
                    message: "empty reason".to_string(),
                });
            }
            let fields: Vec<&str> = spec.split_whitespace().collect();
            if fields.len() != 3 {
                return Err(ParseError {
                    line: lineno,
                    message: format!(
                        "expected `RULE PATH CHECK -- reason`, found {} fields",
                        fields.len()
                    ),
                });
            }
            let rule = Rule::parse(fields[0]).ok_or_else(|| ParseError {
                line: lineno,
                message: format!("unknown rule {:?} (expected L1..L6)", fields[0]),
            })?;
            entries.push(Entry {
                rule,
                path_suffix: fields[1].to_string(),
                check: fields[2].to_string(),
                reason: reason.to_string(),
                line: lineno,
            });
        }
        Ok(Allowlist { entries })
    }

    /// Restricts the allowlist to one rule family (for `check --rule LN`:
    /// entries for other families must not be reported stale when their
    /// rules never ran).
    pub fn retain_rule(&mut self, rule: Rule) {
        self.entries.retain(|e| e.rule == rule);
    }

    /// Splits `diags` into (kept, suppressed) and returns any stale entries.
    ///
    /// Every diagnostic matched by at least one entry is suppressed; entries
    /// that match nothing are returned as stale.
    pub fn apply(&self, diags: Vec<Diagnostic>) -> (Vec<Diagnostic>, Vec<Diagnostic>, Vec<&Entry>) {
        let mut used = vec![false; self.entries.len()];
        let mut kept = Vec::new();
        let mut suppressed = Vec::new();
        for d in diags {
            let mut hit = false;
            for (i, e) in self.entries.iter().enumerate() {
                if e.matches(&d) {
                    used[i] = true;
                    hit = true;
                }
            }
            if hit {
                suppressed.push(d);
            } else {
                kept.push(d);
            }
        }
        let stale: Vec<&Entry> = self
            .entries
            .iter()
            .zip(&used)
            .filter(|(_, &u)| !u)
            .map(|(e, _)| e)
            .collect();
        (kept, suppressed, stale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(rule: Rule, path: &str, check: &'static str) -> Diagnostic {
        Diagnostic {
            rule,
            check,
            path: path.to_string(),
            line: 1,
            col: 1,
            message: "m".to_string(),
        }
    }

    #[test]
    fn suppresses_exact_matches_and_reports_stale() {
        let al = Allowlist::parse(
            "# comment\n\
             L2 crates/cluster/src/io.rs wall-clock -- documented wall-clock stats\n\
             L3 crates/cluster/src/never.rs unwrap -- stale entry\n",
        )
        .unwrap();
        let diags = vec![
            diag(Rule::L2, "crates/cluster/src/io.rs", "wall-clock"),
            diag(Rule::L2, "crates/cluster/src/io.rs", "map-iteration"),
        ];
        let (kept, suppressed, stale) = al.apply(diags);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].check, "map-iteration");
        assert_eq!(suppressed.len(), 1);
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].path_suffix, "crates/cluster/src/never.rs");
    }

    #[test]
    fn wildcard_check_matches_family() {
        let al = Allowlist::parse("L3 a.rs * -- everything in a.rs\n").unwrap();
        let (kept, suppressed, stale) = al.apply(vec![
            diag(Rule::L3, "crates/a.rs", "unwrap"),
            diag(Rule::L3, "crates/a.rs", "index"),
            diag(Rule::L2, "crates/a.rs", "wall-clock"),
        ]);
        assert_eq!(kept.len(), 1, "different rule family is not matched");
        assert_eq!(suppressed.len(), 2);
        assert!(stale.is_empty());
    }

    #[test]
    fn rejects_missing_reason() {
        assert!(Allowlist::parse("L1 a.rs lock-order\n").is_err());
        assert!(Allowlist::parse("L1 a.rs lock-order --   \n").is_err());
        assert!(Allowlist::parse("L9 a.rs x -- reason\n").is_err());
    }

    #[test]
    fn duplicate_entries_both_match_and_neither_is_stale() {
        // Duplicates are tolerated (e.g. a merge artifact): the diagnostic
        // is suppressed once, and *both* entries count as used — an entry
        // must only go stale when it excuses nothing, not because a twin
        // got there first.
        let al = Allowlist::parse(
            "L3 a.rs unwrap -- first copy\n\
             L3 a.rs unwrap -- second copy\n",
        )
        .unwrap();
        let (kept, suppressed, stale) = al.apply(vec![diag(Rule::L3, "crates/a.rs", "unwrap")]);
        assert!(kept.is_empty());
        assert_eq!(suppressed.len(), 1, "one diagnostic, suppressed once");
        assert!(stale.is_empty(), "both duplicates matched: {stale:?}");
    }

    #[test]
    fn wildcard_overlapping_specific_entry_keeps_both_live() {
        // A `*` entry and a specific entry covering the same diagnostic
        // both register as used; the wildcard alone covering the second
        // check keeps it from going stale too.
        let al = Allowlist::parse(
            "L3 a.rs unwrap -- the specific one\n\
             L3 a.rs * -- the blanket one\n",
        )
        .unwrap();
        let (kept, suppressed, stale) = al.apply(vec![
            diag(Rule::L3, "crates/a.rs", "unwrap"),
            diag(Rule::L3, "crates/a.rs", "index"),
        ]);
        assert!(kept.is_empty());
        assert_eq!(suppressed.len(), 2);
        assert!(stale.is_empty(), "overlap must not strand either entry: {stale:?}");
    }

    #[test]
    fn wildcard_covering_nothing_beyond_the_specific_entry_goes_stale() {
        // If the specific entry already accounts for the only diagnostic,
        // the wildcard still matches it — but a wildcard for a *different*
        // path that matches nothing is flagged.
        let al = Allowlist::parse(
            "L3 a.rs unwrap -- the specific one\n\
             L3 b.rs * -- matches nothing\n",
        )
        .unwrap();
        let (_, _, stale) = al.apply(vec![diag(Rule::L3, "crates/a.rs", "unwrap")]);
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].path_suffix, "b.rs");
    }

    #[test]
    fn crlf_line_endings_parse_cleanly() {
        // A checkout with autocrlf must not corrupt the trailing field:
        // `\r` has to be trimmed off the reason, not glued onto it, and a
        // `\r\n`-separated spec line must still split into three fields.
        let al = Allowlist::parse(
            "# header\r\nL2 src/io.rs wall-clock -- report fields only\r\n\r\nL3 src/io.rs unwrap -- startup\r\n",
        )
        .unwrap();
        assert_eq!(al.entries.len(), 2);
        assert_eq!(al.entries[0].reason, "report fields only");
        assert_eq!(al.entries[1].check, "unwrap");
        assert_eq!(al.entries[1].reason, "startup");
        let (kept, suppressed, stale) =
            al.apply(vec![diag(Rule::L2, "crates/cluster/src/io.rs", "wall-clock")]);
        assert!(kept.is_empty());
        assert_eq!(suppressed.len(), 1);
        assert_eq!(stale.len(), 1, "the unwrap entry is stale here");
    }
}
