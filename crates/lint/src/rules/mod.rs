//! The rule families and their shared token-walking helpers.

pub mod context;
pub mod determinism;
pub mod durability;
pub mod lock_order;
pub mod panic_free;
pub mod zero_copy;

use crate::lexer::{Tok, TokKind};

/// Walks backward from `i` (the index of the token *before* a `.method`
/// dot) to the identifier that anchors the receiver expression, skipping
/// one trailing `?` and balancing one `(...)` or `[...]` group.
///
/// `self.policy.lock()` → `policy` · `self.shard(b).read()` → `shard` ·
/// `self.shards[i].lock()` → `shards` · `guard.lock().keys()` → `lock`.
///
/// This is deliberately shallow: it identifies the *last named thing* the
/// call hangs off, which is what both the lock-class table and the
/// map-typed-name table key on.
pub fn receiver_ident(toks: &[Tok], i: usize) -> Option<String> {
    receiver_ident_at(toks, i).map(|j| toks[j].text.clone())
}

/// Like [`receiver_ident`], but returns the anchor's token index so a
/// caller can keep walking a method chain (`x.slice(..)?.to_vec()`).
pub fn receiver_ident_at(toks: &[Tok], mut i: usize) -> Option<usize> {
    loop {
        let t = toks.get(i)?;
        if t.is_punct("?") {
            i = i.checked_sub(1)?;
            continue;
        }
        if t.is_punct(")") || t.is_punct("]") {
            let open = if t.is_punct(")") { "(" } else { "[" };
            let close = &t.text;
            let mut depth = 1usize;
            loop {
                i = i.checked_sub(1)?;
                let u = toks.get(i)?;
                if u.is_punct(close) {
                    depth += 1;
                } else if u.is_punct(open) {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
            }
            i = i.checked_sub(1)?;
            continue;
        }
        if t.kind == TokKind::Ident {
            return Some(i);
        }
        return None;
    }
}

/// One `fn` item with a body: its name, visibility, enclosing-impl info,
/// and the token ranges of its signature and body.
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// The function's name.
    pub name: String,
    /// Token index of the name identifier.
    pub name_idx: usize,
    /// `pub` / `pub(crate)` / `pub(super)`.
    pub is_pub: bool,
    /// Visibility is restricted (`pub(crate)` / `pub(super)`): part of
    /// the crate plumbing, not the public API surface.
    pub pub_restricted: bool,
    /// Inside an `impl Trait for Type` block (methods there are public
    /// through the trait regardless of `pub`).
    pub in_trait_impl: bool,
    /// The `Type` of the enclosing `impl` block, if any.
    pub impl_type: Option<String>,
    /// Token range from `fn` to the body-opening `{` (exclusive) — the
    /// signature, including generics, params, and return type.
    pub sig: (usize, usize),
    /// Token range of the body: opening `{` to matching `}` (inclusive).
    pub body: (usize, usize),
}

/// Finds every `fn` item that has a body. Bodiless trait declarations are
/// skipped. Function-pointer types (`fn(` with no name) are ignored.
pub fn functions(toks: &[Tok]) -> Vec<FnSpan> {
    let impls = impl_spans(toks);
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_ident("fn") {
            i += 1;
            continue;
        }
        let Some(name_tok) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) else {
            i += 1;
            continue;
        };
        // Scan for the body `{` (or a `;` meaning no body) at bracket
        // depth 0, so parenthesized params and `Fn(..)` bounds don't fool
        // the scan.
        let mut depth = 0i32;
        let mut j = i + 2;
        let mut body_open = None;
        while j < toks.len() {
            let t = &toks[j];
            if t.is_punct("(") || t.is_punct("[") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") {
                depth -= 1;
            } else if depth == 0 && t.is_punct("{") {
                body_open = Some(j);
                break;
            } else if depth == 0 && t.is_punct(";") {
                break;
            }
            j += 1;
        }
        let Some(open) = body_open else {
            i += 1;
            continue;
        };
        let close = matching_brace(toks, open);
        let enclosing = impls.iter().rfind(|s| s.body.0 < i && i < s.body.1);
        let (is_pub, pub_restricted) = fn_visibility(toks, i);
        out.push(FnSpan {
            name: name_tok.text.clone(),
            name_idx: i + 1,
            is_pub,
            pub_restricted,
            in_trait_impl: enclosing.is_some_and(|s| s.is_trait),
            impl_type: enclosing.map(|s| s.ty.clone()),
            sig: (i, open),
            body: (open, close),
        });
        i += 2;
    }
    out
}

/// Returns `(is_pub, pub_restricted)` for the `fn` at `fn_idx`.
fn fn_visibility(toks: &[Tok], fn_idx: usize) -> (bool, bool) {
    let mut k = fn_idx;
    while k > 0
        && (toks[k - 1].is_ident("unsafe")
            || toks[k - 1].is_ident("const")
            || toks[k - 1].is_ident("async"))
    {
        k -= 1;
    }
    if k == 0 {
        return (false, false);
    }
    if toks[k - 1].is_punct(")") {
        // Possibly `pub(crate)` / `pub(super)`.
        let mut depth = 1usize;
        let mut m = k - 1;
        while depth > 0 && m > 0 {
            m -= 1;
            if toks[m].is_punct(")") {
                depth += 1;
            } else if toks[m].is_punct("(") {
                depth -= 1;
            }
        }
        let is_pub = m > 0 && toks[m - 1].is_ident("pub");
        return (is_pub, is_pub);
    }
    (toks[k - 1].is_ident("pub"), false)
}

/// Index of the `}` matching the `{` at `open` (or the last token).
pub fn matching_brace(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    let mut j = open;
    while j < toks.len() {
        if toks[j].is_punct("{") {
            depth += 1;
        } else if toks[j].is_punct("}") {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
        j += 1;
    }
    toks.len().saturating_sub(1)
}

struct ImplSpan {
    is_trait: bool,
    ty: String,
    body: (usize, usize),
}

fn impl_spans(toks: &[Tok]) -> Vec<ImplSpan> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_ident("impl") {
            continue;
        }
        // `-> impl Iterator` and friends are type positions, not blocks.
        if i > 0 {
            let p = &toks[i - 1];
            if p.is_punct("->")
                || p.is_punct("(")
                || p.is_punct(",")
                || p.is_punct("<")
                || p.is_punct("&")
                || p.is_punct("+")
                || p.is_punct("=")
            {
                continue;
            }
        }
        let mut j = i + 1;
        let mut is_trait = false;
        let mut last_ident = None;
        while j < toks.len() && !toks[j].is_punct("{") && !toks[j].is_punct(";") {
            if toks[j].is_ident("for") {
                is_trait = true;
            } else if toks[j].kind == TokKind::Ident {
                last_ident = Some(toks[j].text.clone());
            }
            j += 1;
        }
        if j >= toks.len() || !toks[j].is_punct("{") {
            continue;
        }
        let close = matching_brace(toks, j);
        out.push(ImplSpan {
            is_trait,
            ty: last_ident.unwrap_or_default(),
            body: (j, close),
        });
    }
    out
}

/// Index of the token starting the statement containing `i`: one past the
/// previous `;`, `{` or `}` (or 0).
pub fn stmt_start(toks: &[Tok], i: usize) -> usize {
    let mut j = i;
    while j > 0 {
        let t = &toks[j - 1];
        if t.is_punct(";") || t.is_punct("{") || t.is_punct("}") {
            return j;
        }
        j -= 1;
    }
    0
}

/// Scans forward from `i` to the end of the current statement (`;`, or a
/// `}` closing the enclosing block) and returns the token range scanned.
pub fn stmt_end(toks: &[Tok], i: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct("{") || t.is_punct("(") || t.is_punct("[") {
            depth += 1;
        } else if t.is_punct("}") || t.is_punct(")") || t.is_punct("]") {
            if depth == 0 {
                return j;
            }
            depth -= 1;
        } else if t.is_punct(";") && depth == 0 {
            return j;
        }
        j += 1;
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn recv(src: &str, method: &str) -> Option<String> {
        let toks = lex(src);
        let at = toks.iter().position(|t| t.is_ident(method))?;
        receiver_ident(&toks, at.checked_sub(2)?)
    }

    #[test]
    fn receiver_walks_fields_calls_and_indexing() {
        assert_eq!(recv("self.policy.lock()", "lock").as_deref(), Some("policy"));
        assert_eq!(recv("self.shard(b).read()", "read").as_deref(), Some("shard"));
        assert_eq!(recv("self.shards[i * 2].lock()", "lock").as_deref(), Some("shards"));
        assert_eq!(recv("acked.iter()", "iter").as_deref(), Some("acked"));
        assert_eq!(recv("f(x)?.keys()", "keys").as_deref(), Some("f"));
        assert_eq!(recv("(a + b).keys()", "keys"), None);
    }

    #[test]
    fn function_spans_see_visibility_impls_and_bodies() {
        let toks = lex(
            "trait T { fn decl(&self); }\n\
             impl T for S { fn decl(&self) { body(); } }\n\
             impl S { pub fn get(&self, b: BlockId) -> Result<u8> { 1 } fn private(&self) {} }\n\
             pub(crate) fn helper<F: Fn(u32) -> u32>(f: F) { f(1); }",
        );
        let fns = functions(&toks);
        let names: Vec<&str> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["decl", "get", "private", "helper"]);
        assert!(fns[0].in_trait_impl && fns[0].impl_type.as_deref() == Some("S"));
        assert!(fns[1].is_pub && !fns[1].in_trait_impl);
        assert_eq!(fns[1].impl_type.as_deref(), Some("S"));
        assert!(!fns[2].is_pub);
        assert!(fns[3].is_pub && fns[3].impl_type.is_none());
        // The helper's body excludes its Fn-bound parens.
        let (open, close) = fns[3].body;
        assert!(toks[open].is_punct("{") && toks[close].is_punct("}"));
    }

    #[test]
    fn stmt_bounds() {
        let toks = lex("let a = 1; let b = foo(x; y).bar; c");
        let b_pos = toks.iter().position(|t| t.is_ident("b")).unwrap();
        assert!(toks[stmt_start(&toks, b_pos) - 1].is_punct(";"));
        let end = stmt_end(&toks, b_pos);
        assert!(toks[end].is_punct(";"));
        assert!(toks[end - 1].is_ident("bar"));
    }
}
