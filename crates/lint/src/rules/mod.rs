//! The three rule families and their shared token-walking helpers.

pub mod determinism;
pub mod lock_order;
pub mod panic_free;

use crate::lexer::{Tok, TokKind};

/// Walks backward from `i` (the index of the token *before* a `.method`
/// dot) to the identifier that anchors the receiver expression, skipping
/// one trailing `?` and balancing one `(...)` or `[...]` group.
///
/// `self.policy.lock()` → `policy` · `self.shard(b).read()` → `shard` ·
/// `self.shards[i].lock()` → `shards` · `guard.lock().keys()` → `lock`.
///
/// This is deliberately shallow: it identifies the *last named thing* the
/// call hangs off, which is what both the lock-class table and the
/// map-typed-name table key on.
pub fn receiver_ident(toks: &[Tok], mut i: usize) -> Option<String> {
    loop {
        let t = toks.get(i)?;
        if t.is_punct("?") {
            i = i.checked_sub(1)?;
            continue;
        }
        if t.is_punct(")") || t.is_punct("]") {
            let open = if t.is_punct(")") { "(" } else { "[" };
            let close = &t.text;
            let mut depth = 1usize;
            loop {
                i = i.checked_sub(1)?;
                let u = toks.get(i)?;
                if u.is_punct(close) {
                    depth += 1;
                } else if u.is_punct(open) {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
            }
            i = i.checked_sub(1)?;
            continue;
        }
        if t.kind == TokKind::Ident {
            return Some(t.text.clone());
        }
        return None;
    }
}

/// Index of the token starting the statement containing `i`: one past the
/// previous `;`, `{` or `}` (or 0).
pub fn stmt_start(toks: &[Tok], i: usize) -> usize {
    let mut j = i;
    while j > 0 {
        let t = &toks[j - 1];
        if t.is_punct(";") || t.is_punct("{") || t.is_punct("}") {
            return j;
        }
        j -= 1;
    }
    0
}

/// Scans forward from `i` to the end of the current statement (`;`, or a
/// `}` closing the enclosing block) and returns the token range scanned.
pub fn stmt_end(toks: &[Tok], i: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct("{") || t.is_punct("(") || t.is_punct("[") {
            depth += 1;
        } else if t.is_punct("}") || t.is_punct(")") || t.is_punct("]") {
            if depth == 0 {
                return j;
            }
            depth -= 1;
        } else if t.is_punct(";") && depth == 0 {
            return j;
        }
        j += 1;
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn recv(src: &str, method: &str) -> Option<String> {
        let toks = lex(src);
        let at = toks.iter().position(|t| t.is_ident(method))?;
        receiver_ident(&toks, at.checked_sub(2)?)
    }

    #[test]
    fn receiver_walks_fields_calls_and_indexing() {
        assert_eq!(recv("self.policy.lock()", "lock").as_deref(), Some("policy"));
        assert_eq!(recv("self.shard(b).read()", "read").as_deref(), Some("shard"));
        assert_eq!(recv("self.shards[i * 2].lock()", "lock").as_deref(), Some("shards"));
        assert_eq!(recv("acked.iter()", "iter").as_deref(), Some("acked"));
        assert_eq!(recv("f(x)?.keys()", "keys").as_deref(), Some("f"));
        assert_eq!(recv("(a + b).keys()", "keys"), None);
    }

    #[test]
    fn stmt_bounds() {
        let toks = lex("let a = 1; let b = foo(x; y).bar; c");
        let b_pos = toks.iter().position(|t| t.is_ident("b")).unwrap();
        assert!(toks[stmt_start(&toks, b_pos) - 1].is_punct(";"));
        let end = stmt_end(&toks, b_pos);
        assert!(toks[end].is_punct(";"));
        assert!(toks[end - 1].is_ident("bar"));
    }
}
