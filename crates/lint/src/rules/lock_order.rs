//! L1 — lock-order discipline in `ear-cluster`.
//!
//! The NameNode's locking doc (namenode.rs) declares the coarse→fine
//! order: **policy → rng → stripes → shard** (location shards and the
//! lock-striped block store's shard array are the finest level). A thread
//! acquiring a coarser lock while holding a finer one creates a cycle
//! with `allocate_block`, which takes them in the declared order — the
//! classic two-thread deadlock.
//!
//! This pass walks each file linearly, tracking which classified locks
//! are held at the current brace depth:
//!
//! - `let g = <recv>.lock()/.read()/.write();` holds until the end of the
//!   enclosing block (or an explicit `drop(g)`);
//! - an un-bound acquisition (`self.stripes.lock().pending.push(..)`) is
//!   transient: it holds only to the end of its statement;
//! - acquiring a class **coarser than or equal to** one already held is
//!   flagged (`lock-order` / `recursive-lock`). parking_lot locks are not
//!   reentrant, so same-class nesting is a self-deadlock hazard too.
//!
//! Only receivers named in the class table participate; unrelated
//! `.read()`/`.write()` calls (I/O traits, channels) have either a
//! different receiver name or call arguments, and are ignored.

use super::{receiver_ident, stmt_end, stmt_start};
use crate::diag::{Diagnostic, Rule};
use crate::lexer::{Tok, TokKind};

/// The declared order, coarse → fine. Each class lists the receiver
/// identifiers that acquire it.
const ORDER: &[(&str, &[&str])] = &[
    ("policy", &["policy"]),
    ("rng", &["rng"]),
    ("stripes", &["stripes"]),
    ("shard", &["shard", "shards"]),
    ("wal", &["wal"]),
];

/// Human rendering of the declared order, used in messages.
const ORDER_TEXT: &str = "policy \u{2192} rng \u{2192} stripes \u{2192} shard \u{2192} wal";

fn classify(recv: &str) -> Option<(usize, &'static str)> {
    ORDER
        .iter()
        .enumerate()
        .find(|(_, (_, names))| names.contains(&recv))
        .map(|(rank, (class, _))| (rank, *class))
}

#[derive(Debug)]
struct Held {
    rank: usize,
    class: &'static str,
    /// Brace depth at acquisition; released when depth drops below this.
    depth: usize,
    /// Binding name for `drop(name)` tracking (let-bound only).
    name: Option<String>,
    /// Transient guards die at the end of their statement.
    transient: bool,
}

/// Runs the rule over one file's non-test tokens.
pub fn check(path: &str, toks: &[Tok]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut held: Vec<Held> = Vec::new();
    let mut depth = 0usize;

    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct("{") {
            depth += 1;
            i += 1;
            continue;
        }
        if t.is_punct("}") {
            depth = depth.saturating_sub(1);
            held.retain(|h| h.depth <= depth);
            i += 1;
            continue;
        }
        if t.is_punct(";") {
            held.retain(|h| !(h.transient && h.depth == depth));
            i += 1;
            continue;
        }
        // Explicit `drop(name)` releases a tracked guard.
        if t.is_ident("drop")
            && toks.get(i + 1).is_some_and(|t| t.is_punct("("))
            && toks.get(i + 3).is_some_and(|t| t.is_punct(")"))
        {
            if let Some(name) = toks.get(i + 2).filter(|t| t.kind == TokKind::Ident) {
                held.retain(|h| h.name.as_deref() != Some(name.text.as_str()));
            }
        }
        // A zero-argument `.lock()` / `.read()` / `.write()`.
        if (t.is_ident("lock") || t.is_ident("read") || t.is_ident("write"))
            && i >= 2
            && toks[i - 1].is_punct(".")
            && toks.get(i + 1).is_some_and(|t| t.is_punct("("))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(")"))
        {
            if let Some(recv) = receiver_ident(toks, i - 2) {
                if let Some((rank, class)) = classify(&recv) {
                    for h in &held {
                        if h.rank > rank {
                            out.push(diag(
                                path,
                                t,
                                "lock-order",
                                &format!(
                                    "`{class}` acquired while holding `{}` — violates the declared order {ORDER_TEXT}",
                                    h.class
                                ),
                            ));
                        } else if h.rank == rank {
                            out.push(diag(
                                path,
                                t,
                                "recursive-lock",
                                &format!(
                                    "`{class}` acquired while a `{}` lock is already held; parking_lot locks are not reentrant",
                                    h.class
                                ),
                            ));
                        }
                    }
                    let (transient, name) = binding_of(toks, i);
                    held.push(Held {
                        rank,
                        class,
                        depth,
                        name,
                        transient,
                    });
                }
            }
        }
        i += 1;
    }
    out
}

/// Is the acquisition at `i` `let`-bound (guard outlives the statement)?
/// Returns `(transient, binding_name)`.
fn binding_of(toks: &[Tok], i: usize) -> (bool, Option<String>) {
    let start = stmt_start(toks, i);
    let lets = toks[start..i].iter().position(|t| t.is_ident("let"));
    match lets {
        None => (true, None),
        Some(off) => {
            let mut j = start + off + 1;
            while toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            let name = toks
                .get(j)
                .filter(|t| t.kind == TokKind::Ident)
                .map(|t| t.text.clone());
            // `let g = x.lock().field;` binds a *projection*, not the guard —
            // the guard is a temporary and dies at the statement end.
            let end = stmt_end(toks, i);
            let guard_is_temporary = toks[i..end]
                .iter()
                .skip(3) // past `lock ( )`
                .any(|t| t.is_punct("."));
            (guard_is_temporary, name.filter(|_| !guard_is_temporary))
        }
    }
}

fn diag(path: &str, t: &Tok, check: &'static str, message: &str) -> Diagnostic {
    Diagnostic {
        rule: Rule::L1,
        check,
        path: path.to_string(),
        line: t.line,
        col: t.col,
        message: message.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex_non_test;

    fn run(src: &str) -> Vec<Diagnostic> {
        check("crates/cluster/src/namenode.rs", &lex_non_test(src))
    }

    #[test]
    fn declared_order_passes() {
        let d = run(
            "fn alloc(&self) {\n\
             let mut policy = self.policy.lock();\n\
             let mut rng = self.rng.lock();\n\
             let mut stripes = self.stripes.lock();\n\
             self.shard(id).write().insert(id, meta);\n\
             }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn reversed_order_is_flagged() {
        let d = run(
            "fn bad(&self) {\n\
             let shard = self.shard(id).write();\n\
             let mut policy = self.policy.lock();\n\
             }",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].check, "lock-order");
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn recursive_acquisition_is_flagged() {
        let d = run(
            "fn bad(&self) {\n\
             let a = self.shard(x).read();\n\
             let b = self.shard(y).read();\n\
             }",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].check, "recursive-lock");
    }

    #[test]
    fn guard_scope_ends_at_block_and_drop() {
        let ok_scoped = run(
            "fn f(&self) {\n\
             { let s = self.stripes.lock(); use_it(&s); }\n\
             let p = self.policy.lock();\n\
             }",
        );
        assert!(ok_scoped.is_empty(), "{ok_scoped:?}");
        let ok_dropped = run(
            "fn f(&self) {\n\
             let s = self.stripes.lock();\n\
             drop(s);\n\
             let p = self.policy.lock();\n\
             }",
        );
        assert!(ok_dropped.is_empty(), "{ok_dropped:?}");
    }

    #[test]
    fn transient_guards_die_at_statement_end() {
        let d = run(
            "fn f(&self) {\n\
             self.stripes.lock().pending.push(x);\n\
             let p = self.policy.lock();\n\
             }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn projection_bindings_do_not_hold_the_guard() {
        let d = run(
            "fn f(&self) {\n\
             let n = self.stripes.lock().pending.len();\n\
             let p = self.policy.lock();\n\
             }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn wal_is_the_finest_class() {
        // Appending to the log under a shard guard is the declared order…
        let ok = run(
            "fn f(&self) {\n\
             let mut shard = self.shard(b).write();\n\
             self.wal.lock().append(rec);\n\
             }",
        );
        assert!(ok.is_empty(), "{ok:?}");
        // …but taking a shard while holding the log is a deadlock hazard.
        let d = run(
            "fn bad(&self) {\n\
             let w = self.wal.lock();\n\
             let shard = self.shard(b).write();\n\
             }",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].check, "lock-order");
    }

    #[test]
    fn unrelated_read_write_calls_are_ignored() {
        let d = run("fn f(&self) { file.write(); sock.read(); self.queue.lock(); }");
        assert!(d.is_empty(), "{d:?}");
    }
}
