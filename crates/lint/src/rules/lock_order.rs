//! L1 — lock-order discipline via a workspace lock-acquisition graph.
//!
//! v1 of this rule hand-listed the NameNode's coarse→fine order
//! (`policy → rng → stripes → shard → wal`) and flagged any nesting that
//! contradicted the list. v2 derives the order instead of declaring it:
//!
//! 1. **Facts** ([`facts`]): each file contributes the lock classes it
//!    *declares* (fields/bindings typed `Mutex<…>`/`RwLock<…>`, possibly
//!    under `Arc`/`Vec`/`Box`/`Option` wrappers, and accessor fns
//!    returning `&Mutex<…>`/`&RwLock<…>`) and the *nestings* it exhibits
//!    (class B acquired while a guard of class A is held, using the same
//!    held-guard tracking as v1: `let`-bound guards live to end of block
//!    or `drop()`, transient/projection guards die at statement end).
//! 2. **Graph** ([`analyze`]): nestings whose endpoints are both declared
//!    classes become edges `A → B`. Classes are name-keyed workspace-wide
//!    (a trailing-`s` plural merges with its singular, so `shards[i]` and
//!    the `shard()` accessor are one class). Cycles are found via Tarjan
//!    SCC: any edge inside a non-trivial SCC is a deadlock hazard and is
//!    reported at its first observed site. The consistent order — the
//!    thing v1 hand-listed — falls out as the topological order of the
//!    acyclic graph (ties broken by name) and is what `ear-lint graph`
//!    prints as DOT.
//!
//! Same-class nesting (`shard` under `shard`) is still flagged per site
//! as `recursive-lock`: parking_lot locks are not reentrant.
//!
//! Because edges come from *observed* nesting, a brand-new lock class in
//! `namenode.rs`/`healer.rs`/`cache.rs` joins the graph automatically the
//! first time it participates in a nesting — no table to update. The
//! trade-off vs v1: a single nesting direction defines (not violates) the
//! order, so a contradiction needs both directions to exist somewhere in
//! the workspace — which is exactly the two-thread deadlock condition.

use super::{receiver_ident, stmt_end, stmt_start};
use crate::diag::{Diagnostic, Rule};
use crate::lexer::{Tok, TokKind};
use std::collections::{BTreeMap, BTreeSet};

/// Where a nesting was observed.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Site {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// One observed nesting: `inner` acquired while a guard for `outer` was
/// held.
#[derive(Debug, Clone)]
pub struct Nesting {
    /// The class already held.
    pub outer: String,
    /// The class being acquired.
    pub inner: String,
    /// Acquisition site of `inner`.
    pub site: Site,
}

/// Per-file lock facts, joined workspace-wide by [`analyze`].
#[derive(Debug, Default)]
pub struct FileLockFacts {
    /// Lock classes this file declares (field/binding/accessor names).
    pub declared: BTreeSet<String>,
    /// Nestings observed in this file (receiver names, pre-canonical).
    pub nestings: Vec<Nesting>,
}

/// Wrapper types looked through when resolving a lock declaration's name.
const WRAPPERS: &[&str] = &["Arc", "Vec", "Box", "Option", "VecDeque"];

/// Extracts lock facts from one file's non-test tokens.
pub fn facts(path: &str, toks: &[Tok]) -> FileLockFacts {
    let mut f = FileLockFacts::default();
    collect_declarations(toks, &mut f.declared);
    collect_nestings(path, toks, &mut f.nestings);
    f
}

fn collect_declarations(toks: &[Tok], out: &mut BTreeSet<String>) {
    for (i, t) in toks.iter().enumerate() {
        if !(t.is_ident("Mutex") || t.is_ident("RwLock")) {
            continue;
        }
        // `Mutex::new(..)` bound by `let name = …`.
        if toks.get(i + 1).is_some_and(|t| t.is_punct("::"))
            && toks.get(i + 2).is_some_and(|t| t.is_ident("new"))
        {
            let start = stmt_start(toks, i);
            if toks.get(start).is_some_and(|t| t.is_ident("let")) {
                let mut j = start + 1;
                while toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                    j += 1;
                }
                if let Some(name) = toks.get(j).filter(|t| t.kind == TokKind::Ident) {
                    out.insert(name.text.clone());
                }
            }
            continue;
        }
        // A type position: walk back over path segments (`parking_lot::`),
        // wrapper generics (`Arc<`, `Vec<`), and `&`/`mut` to the binder.
        let mut j = i;
        while let Some(p) = j.checked_sub(1).map(|k| &toks[k]) {
            let seg = p.is_punct("::") && j >= 2 && toks[j - 2].kind == TokKind::Ident;
            let wrap =
                p.is_punct("<") && j >= 2 && WRAPPERS.iter().any(|w| toks[j - 2].is_ident(w));
            if seg || wrap {
                j -= 2;
            } else if p.is_punct("&") || p.is_ident("mut") || p.kind == TokKind::Lifetime {
                j -= 1;
            } else {
                break;
            }
        }
        // `name: [&]Mutex<…>` — a field, param, or ascribed binding.
        if j >= 2 && toks[j - 1].is_punct(":") && toks[j - 2].kind == TokKind::Ident {
            out.insert(toks[j - 2].text.clone());
            continue;
        }
        // `fn name(..) -> &Mutex<…>` — an accessor that exposes the lock.
        if j >= 2 && toks[j - 1].is_punct("->") && toks[j - 2].is_punct(")") {
            let mut depth = 1usize;
            let mut k = j - 2;
            while depth > 0 && k > 0 {
                k -= 1;
                if toks[k].is_punct(")") {
                    depth += 1;
                } else if toks[k].is_punct("(") {
                    depth -= 1;
                }
            }
            if k >= 2
                && toks[k - 1].kind == TokKind::Ident
                && toks[k - 2].is_ident("fn")
            {
                out.insert(toks[k - 1].text.clone());
            }
        }
    }
}

#[derive(Debug)]
struct HeldGuard {
    class: String,
    /// Brace depth at acquisition; released when depth drops below this.
    depth: usize,
    /// Binding name for `drop(name)` tracking (let-bound only).
    name: Option<String>,
    /// Transient guards die at the end of their statement.
    transient: bool,
}

fn collect_nestings(path: &str, toks: &[Tok], out: &mut Vec<Nesting>) {
    let mut held: Vec<HeldGuard> = Vec::new();
    let mut depth = 0usize;

    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct("{") {
            depth += 1;
            i += 1;
            continue;
        }
        if t.is_punct("}") {
            depth = depth.saturating_sub(1);
            held.retain(|h| h.depth <= depth);
            i += 1;
            continue;
        }
        if t.is_punct(";") {
            held.retain(|h| !(h.transient && h.depth == depth));
            i += 1;
            continue;
        }
        // Explicit `drop(name)` releases a tracked guard.
        if t.is_ident("drop")
            && toks.get(i + 1).is_some_and(|t| t.is_punct("("))
            && toks.get(i + 3).is_some_and(|t| t.is_punct(")"))
        {
            if let Some(name) = toks.get(i + 2).filter(|t| t.kind == TokKind::Ident) {
                held.retain(|h| h.name.as_deref() != Some(name.text.as_str()));
            }
        }
        // Acquisition forms: `<recv>.lock()/.read()/.write()` with no
        // arguments, or the std-mutex helper `locked(&self.<recv>, ..)`.
        let acq = acquisition_at(toks, i);
        if let Some((recv, call_end)) = acq {
            for h in &held {
                out.push(Nesting {
                    outer: h.class.clone(),
                    inner: recv.clone(),
                    site: Site {
                        path: path.to_string(),
                        line: t.line,
                        col: t.col,
                    },
                });
            }
            let (transient, name) = binding_of(toks, i, call_end);
            held.push(HeldGuard {
                class: recv,
                depth,
                name,
                transient,
            });
        }
        i += 1;
    }
}

/// If the token at `i` begins a lock acquisition, returns the receiver
/// name and the index of the call's closing `)`.
fn acquisition_at(toks: &[Tok], i: usize) -> Option<(String, usize)> {
    let t = &toks[i];
    if (t.is_ident("lock") || t.is_ident("read") || t.is_ident("write"))
        && i >= 2
        && toks[i - 1].is_punct(".")
        && toks.get(i + 1).is_some_and(|t| t.is_punct("("))
        && toks.get(i + 2).is_some_and(|t| t.is_punct(")"))
    {
        return receiver_ident(toks, i - 2).map(|r| (r, i + 2));
    }
    // `locked(&self.health, "context")?` — the poison-tolerant std-mutex
    // helper in sync.rs. The class is the last ident of the first arg.
    if t.is_ident("locked")
        && toks.get(i + 1).is_some_and(|t| t.is_punct("("))
        && !toks.get(i.wrapping_sub(1)).is_some_and(|t| t.is_ident("fn"))
    {
        let mut depth = 1usize;
        let mut j = i + 2;
        let mut last_ident: Option<String> = None;
        let mut first_arg_end = None;
        while j < toks.len() && depth > 0 {
            let u = &toks[j];
            if u.is_punct("(") || u.is_punct("[") {
                depth += 1;
            } else if u.is_punct(")") || u.is_punct("]") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if u.is_punct(",") && depth == 1 && first_arg_end.is_none() {
                first_arg_end = Some(j);
            } else if u.kind == TokKind::Ident && depth == 1 && first_arg_end.is_none() {
                last_ident = Some(u.text.clone());
            }
            j += 1;
        }
        return last_ident.map(|r| (r, j));
    }
    None
}

/// Is the acquisition at `i` `let`-bound (guard outlives the statement)?
/// `call_end` is the index of the acquiring call's closing paren.
/// Returns `(transient, binding_name)`.
fn binding_of(toks: &[Tok], i: usize, call_end: usize) -> (bool, Option<String>) {
    let start = stmt_start(toks, i);
    let lets = toks[start..i].iter().position(|t| t.is_ident("let"));
    match lets {
        None => (true, None),
        Some(off) => {
            let mut j = start + off + 1;
            while toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            let name = toks
                .get(j)
                .filter(|t| t.kind == TokKind::Ident)
                .map(|t| t.text.clone());
            // `let g = x.lock().field;` binds a *projection*, not the guard —
            // the guard is a temporary and dies at the statement end.
            let end = stmt_end(toks, i);
            let guard_is_temporary = toks[call_end + 1..end.max(call_end + 1)]
                .iter()
                .any(|t| t.is_punct("."));
            (guard_is_temporary, name.filter(|_| !guard_is_temporary))
        }
    }
}

/// The workspace lock-acquisition graph, joined from per-file facts.
#[derive(Debug, Default)]
pub struct LockGraph {
    /// Canonical class names (singular-merged) declared anywhere.
    pub classes: BTreeSet<String>,
    /// Observed edges `outer → inner` with every site that exhibits them.
    pub edges: BTreeMap<(String, String), Vec<Site>>,
    /// Edges that lie inside a non-trivial SCC (deadlock hazards).
    pub cyclic: BTreeSet<(String, String)>,
    /// Derived coarse→fine order of classes that participate in edges
    /// (topological over the acyclic part, ties broken by name).
    pub order: Vec<String>,
    /// Same-class nestings: `(class, site)` — non-reentrant self-deadlock.
    pub recursive: Vec<(String, Site)>,
}

/// Canonicalizes a receiver name against the declared set: a trailing-`s`
/// plural collapses onto its declared singular (`shards` → `shard`).
fn canon(name: &str, declared: &BTreeSet<String>) -> String {
    if let Some(stem) = name.strip_suffix('s') {
        if !declared.contains(name) && declared.contains(stem) {
            return stem.to_string();
        }
        if declared.contains(name) && declared.contains(stem) {
            return stem.to_string();
        }
    }
    name.to_string()
}

/// Joins per-file facts into the workspace lock graph: filters nestings
/// to declared classes, finds SCC cycles, and derives the topo order.
pub fn analyze(all: &[FileLockFacts]) -> LockGraph {
    let mut declared: BTreeSet<String> = BTreeSet::new();
    for f in all {
        declared.extend(f.declared.iter().cloned());
    }

    let mut g = LockGraph {
        classes: declared.iter().map(|n| canon(n, &declared)).collect(),
        ..LockGraph::default()
    };

    for f in all {
        for n in &f.nestings {
            let outer = canon(&n.outer, &declared);
            let inner = canon(&n.inner, &declared);
            if !g.classes.contains(&outer) || !g.classes.contains(&inner) {
                continue; // not a lock we know about (I/O read/write, channels)
            }
            if outer == inner {
                g.recursive.push((inner, n.site.clone()));
            } else {
                g.edges
                    .entry((outer, inner))
                    .or_default()
                    .push(n.site.clone());
            }
        }
    }
    for sites in g.edges.values_mut() {
        sites.sort();
        sites.dedup();
    }
    g.recursive.sort_by(|a, b| (&a.1, &a.0).cmp(&(&b.1, &b.0)));

    let sccs = tarjan_sccs(&g.classes, &g.edges);
    let mut component: BTreeMap<&str, usize> = BTreeMap::new();
    for (idx, scc) in sccs.iter().enumerate() {
        for n in scc {
            component.insert(n, idx);
        }
    }
    for (a, b) in g.edges.keys() {
        let same = component.get(a.as_str()) == component.get(b.as_str());
        let nontrivial = component
            .get(a.as_str())
            .is_some_and(|i| sccs[*i].len() > 1);
        if same && nontrivial {
            g.cyclic.insert((a.clone(), b.clone()));
        }
    }

    g.order = derive_order(&g);
    g
}

/// Tarjan's strongly-connected components, deterministic (BTree order).
fn tarjan_sccs(
    nodes: &BTreeSet<String>,
    edges: &BTreeMap<(String, String), Vec<Site>>,
) -> Vec<Vec<String>> {
    let idx_of: BTreeMap<&str, usize> =
        nodes.iter().enumerate().map(|(i, n)| (n.as_str(), i)).collect();
    let names: Vec<&str> = nodes.iter().map(String::as_str).collect();
    let n = names.len();
    let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (a, b) in edges.keys() {
        succ[idx_of[a.as_str()]].push(idx_of[b.as_str()]);
    }

    struct State {
        index: Vec<Option<usize>>,
        low: Vec<usize>,
        on_stack: Vec<bool>,
        stack: Vec<usize>,
        next: usize,
        out: Vec<Vec<usize>>,
    }
    fn strongconnect(v: usize, succ: &[Vec<usize>], s: &mut State) {
        s.index[v] = Some(s.next);
        s.low[v] = s.next;
        s.next += 1;
        s.stack.push(v);
        s.on_stack[v] = true;
        for &w in &succ[v] {
            if s.index[w].is_none() {
                strongconnect(w, succ, s);
                s.low[v] = s.low[v].min(s.low[w]);
            } else if s.on_stack[w] {
                s.low[v] = s.low[v].min(s.index[w].unwrap_or(usize::MAX));
            }
        }
        if Some(s.low[v]) == s.index[v] {
            let mut scc = Vec::new();
            while let Some(w) = s.stack.pop() {
                s.on_stack[w] = false;
                scc.push(w);
                if w == v {
                    break;
                }
            }
            s.out.push(scc);
        }
    }
    let mut st = State {
        index: vec![None; n],
        low: vec![0; n],
        on_stack: vec![false; n],
        stack: Vec::new(),
        next: 0,
        out: Vec::new(),
    };
    for v in 0..n {
        if st.index[v].is_none() {
            strongconnect(v, &succ, &mut st);
        }
    }
    st.out
        .into_iter()
        .map(|scc| scc.into_iter().map(|i| names[i].to_string()).collect())
        .collect()
}

/// Kahn's algorithm over the acyclic part of the graph (cyclic edges
/// removed), ties broken lexicographically. Only classes that appear in
/// at least one edge are ordered — isolated classes carry no constraint.
fn derive_order(g: &LockGraph) -> Vec<String> {
    let mut nodes: BTreeSet<&str> = BTreeSet::new();
    for (a, b) in g.edges.keys() {
        nodes.insert(a);
        nodes.insert(b);
    }
    let acyclic: Vec<(&str, &str)> = g
        .edges
        .keys()
        .filter(|e| !g.cyclic.contains(*e))
        .map(|(a, b)| (a.as_str(), b.as_str()))
        .collect();
    let mut indeg: BTreeMap<&str, usize> = nodes.iter().map(|n| (*n, 0)).collect();
    for (_, b) in &acyclic {
        *indeg.entry(b).or_default() += 1;
    }
    let mut order = Vec::new();
    let mut remaining = nodes;
    while !remaining.is_empty() {
        let ready = remaining
            .iter()
            .find(|n| indeg.get(*n).copied().unwrap_or(0) == 0)
            .copied();
        // In-cycle nodes never reach in-degree 0 among themselves; break
        // the tie by taking the lexicographically first remaining node so
        // the order is still total and deterministic.
        let pick = ready.unwrap_or_else(|| remaining.iter().next().copied().unwrap_or(""));
        remaining.remove(pick);
        for (a, b) in &acyclic {
            if *a == pick && remaining.contains(b) {
                if let Some(d) = indeg.get_mut(b) {
                    *d = d.saturating_sub(1);
                }
            }
        }
        order.push(pick.to_string());
    }
    order
}

impl LockGraph {
    /// Human rendering of the derived order, used in messages.
    pub fn order_text(&self) -> String {
        if self.order.is_empty() {
            return "(no nestings observed)".to_string();
        }
        self.order.join(" \u{2192} ")
    }

    /// The diagnostics this graph implies: one `lock-cycle` per edge
    /// inside a non-trivial SCC (at its first observed site) and one
    /// `recursive-lock` per same-class nesting site.
    pub fn diagnostics(&self) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for ((a, b), sites) in &self.edges {
            if !self.cyclic.contains(&(a.clone(), b.clone())) {
                continue;
            }
            let Some(site) = sites.first() else { continue };
            let scc: Vec<&str> = self
                .cyclic
                .iter()
                .filter(|(x, y)| x == a || y == a || x == b || y == b)
                .flat_map(|(x, y)| [x.as_str(), y.as_str()])
                .collect::<BTreeSet<_>>()
                .into_iter()
                .collect();
            out.push(Diagnostic {
                rule: Rule::L1,
                check: "lock-cycle",
                path: site.path.clone(),
                line: site.line,
                col: site.col,
                message: format!(
                    "`{b}` acquired while holding `{a}` completes a lock cycle among \
                     {{{}}} — some other site nests them in the opposite direction",
                    scc.join(", ")
                ),
            });
        }
        for (class, site) in &self.recursive {
            out.push(Diagnostic {
                rule: Rule::L1,
                check: "recursive-lock",
                path: site.path.clone(),
                line: site.line,
                col: site.col,
                message: format!(
                    "`{class}` acquired while a `{class}` lock is already held; \
                     parking_lot locks are not reentrant"
                ),
            });
        }
        out.sort_by(|a, b| (&a.path, a.line, a.col, a.check).cmp(&(&b.path, b.line, b.col, b.check)));
        out
    }

    /// Renders the graph as GraphViz DOT. Cyclic edges are red; edge
    /// labels count observation sites; the derived order is the label.
    pub fn to_dot(&self) -> String {
        let mut s = String::from("digraph lock_order {\n");
        s.push_str("    rankdir=LR;\n");
        s.push_str(&format!(
            "    label=\"derived lock order: {}\";\n",
            self.order_text()
        ));
        s.push_str("    node [shape=box, fontname=\"monospace\"];\n");
        let mut in_edges: BTreeSet<&str> = BTreeSet::new();
        for (a, b) in self.edges.keys() {
            in_edges.insert(a);
            in_edges.insert(b);
        }
        for class in &self.classes {
            if in_edges.contains(class.as_str()) {
                s.push_str(&format!("    \"{class}\";\n"));
            } else {
                s.push_str(&format!("    \"{class}\" [style=dotted];\n"));
            }
        }
        for ((a, b), sites) in &self.edges {
            let attrs = if self.cyclic.contains(&(a.clone(), b.clone())) {
                format!("label=\"{} site(s)\", color=red, penwidth=2", sites.len())
            } else {
                format!("label=\"{} site(s)\"", sites.len())
            };
            s.push_str(&format!("    \"{a}\" -> \"{b}\" [{attrs}];\n"));
        }
        s.push_str("}\n");
        s
    }
}

/// Single-file convenience: extract facts and analyze them in isolation.
/// The workspace runner joins facts across files instead, so cross-file
/// contradictions surface there; fixtures use this entry point.
pub fn check(path: &str, toks: &[Tok]) -> Vec<Diagnostic> {
    analyze(&[facts(path, toks)]).diagnostics()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex_non_test;

    const DECLS: &str = "struct S { policy: Mutex<P>, rng: Mutex<R>, stripes: Mutex<T>, \
                         shards: Vec<RwLock<M>>, wal: Mutex<W> }\n\
                         impl S { fn shard(&self, b: BlockId) -> &RwLock<M> { &self.shards[0] } }\n";

    fn run(body: &str) -> Vec<Diagnostic> {
        let src = format!("{DECLS}{body}");
        check("crates/cluster/src/namenode.rs", &lex_non_test(&src))
    }

    #[test]
    fn declaration_scan_finds_fields_accessors_wrappers_and_lets() {
        let toks = lex_non_test(
            "struct A { wal: Mutex<W>, shards: Vec<RwLock<M>>, cache: Arc<parking_lot::Mutex<C>> }\n\
             fn stripe_for(&self, b: BlockId) -> &Mutex<Shard> { x }\n\
             fn main() { let queue = Arc::new(Mutex::new(Vec::new())); }\n\
             use parking_lot::Mutex;\n",
        );
        let f = facts("crates/cluster/src/x.rs", &toks);
        let got: Vec<&str> = f.declared.iter().map(String::as_str).collect();
        assert_eq!(got, vec!["cache", "queue", "shards", "stripe_for", "wal"]);
    }

    #[test]
    fn consistent_nesting_defines_an_order_without_diagnostics() {
        let d = run(
            "fn alloc(&self) {\n\
             let mut policy = self.policy.lock();\n\
             let mut rng = self.rng.lock();\n\
             let mut stripes = self.stripes.lock();\n\
             self.shard(id).write().insert(id, meta);\n\
             }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn derived_order_matches_observed_nesting() {
        let src = format!(
            "{DECLS}fn alloc(&self) {{\n\
             let mut policy = self.policy.lock();\n\
             let mut rng = self.rng.lock();\n\
             let mut stripes = self.stripes.lock();\n\
             let mut shard = self.shard(id).write();\n\
             self.wal.lock().append(rec);\n\
             }}"
        );
        let g = analyze(&[facts("a.rs", &lex_non_test(&src))]);
        assert_eq!(g.order, vec!["policy", "rng", "stripes", "shard", "wal"]);
        assert!(g.cyclic.is_empty());
    }

    #[test]
    fn opposite_directions_form_a_cycle() {
        let d = run(
            "fn one(&self) {\n\
             let p = self.policy.lock();\n\
             let s = self.stripes.lock();\n\
             }\n\
             fn two(&self) {\n\
             let s = self.stripes.lock();\n\
             let p = self.policy.lock();\n\
             }",
        );
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d.iter().all(|d| d.check == "lock-cycle"));
        assert!(d[0].message.contains("policy") && d[0].message.contains("stripes"));
    }

    #[test]
    fn cross_file_join_finds_cycles_one_file_cannot() {
        let a = facts(
            "a.rs",
            &lex_non_test(
                "struct S { policy: Mutex<P>, stripes: Mutex<T> }\n\
                 fn one(&self) { let p = self.policy.lock(); let s = self.stripes.lock(); }",
            ),
        );
        let b = facts(
            "b.rs",
            &lex_non_test(
                "fn two(&self) { let s = self.stripes.lock(); let p = self.policy.lock(); }",
            ),
        );
        assert!(analyze(&[a]).diagnostics().is_empty());
        let a = facts(
            "a.rs",
            &lex_non_test(
                "struct S { policy: Mutex<P>, stripes: Mutex<T> }\n\
                 fn one(&self) { let p = self.policy.lock(); let s = self.stripes.lock(); }",
            ),
        );
        let joined = analyze(&[a, b]);
        let d = joined.diagnostics();
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d.iter().any(|d| d.path == "b.rs"));
    }

    #[test]
    fn recursive_acquisition_is_flagged() {
        let d = run(
            "fn bad(&self) {\n\
             let a = self.shard(x).read();\n\
             let b = self.shard(y).read();\n\
             }",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].check, "recursive-lock");
    }

    #[test]
    fn plural_and_singular_receivers_share_a_class() {
        let d = run(
            "fn bad(&self) {\n\
             let a = self.shards[i].read();\n\
             let b = self.shard(y).read();\n\
             }",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].check, "recursive-lock");
    }

    #[test]
    fn guard_scope_ends_at_block_and_drop() {
        let ok_scoped = run(
            "fn f(&self) {\n\
             { let s = self.stripes.lock(); use_it(&s); }\n\
             let s2 = self.stripes.lock();\n\
             }",
        );
        assert!(ok_scoped.is_empty(), "{ok_scoped:?}");
        let ok_dropped = run(
            "fn f(&self) {\n\
             let s = self.stripes.lock();\n\
             drop(s);\n\
             let s2 = self.stripes.lock();\n\
             }",
        );
        assert!(ok_dropped.is_empty(), "{ok_dropped:?}");
    }

    #[test]
    fn transient_and_projection_guards_die_at_statement_end() {
        let d = run(
            "fn f(&self) {\n\
             self.stripes.lock().pending.push(x);\n\
             let n = self.stripes.lock().pending.len();\n\
             let s = self.stripes.lock();\n\
             }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn locked_helper_is_an_acquisition() {
        let src = "struct C { health: Mutex<F>, wal: Mutex<W> }\n\
                   fn a(&self) { let h = locked(&self.health, \"fd\")?; self.wal.lock().log(); }\n\
                   fn b(&self) { let w = self.wal.lock(); let h = locked(&self.health, \"fd\")?; }";
        let d = check("crates/cluster/src/cluster.rs", &lex_non_test(src));
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d.iter().all(|d| d.check == "lock-cycle"));
    }

    #[test]
    fn unrelated_read_write_calls_are_ignored() {
        let d = run("fn f(&self) { file.write(); sock.read(); self.undeclared.lock(); }");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn dot_output_marks_cycles_and_order() {
        let src = format!(
            "{DECLS}fn one(&self) {{ let p = self.policy.lock(); self.rng.lock().next(); }}\n\
             fn two(&self) {{ let r = self.rng.lock(); self.policy.lock().choose(); }}"
        );
        let g = analyze(&[facts("a.rs", &lex_non_test(&src))]);
        let dot = g.to_dot();
        assert!(dot.contains("digraph lock_order"));
        assert!(dot.contains("color=red"), "{dot}");
        assert!(dot.contains("\"policy\" -> \"rng\""));
    }
}
