//! L4 — durability ordering in the persistence layer.
//!
//! The durable stores (wal.rs, extent.rs, blockstore.rs FileStore, and
//! the MANIFEST writer in cluster.rs) rely on three protocols that rustc
//! cannot check (DESIGN.md §13):
//!
//! - **fsync-before-ack**: a function that is an acknowledgement point
//!   (public, or a trait-impl method — callers treat its `Ok` as "the
//!   bytes are durable") and that *transitively* performs a raw file
//!   write (`write_all`, `write_all_at`, `set_len`, `fs::write`) must
//!   also transitively reach a `sync_all`/`sync_data` call. Reachability
//!   is computed over the file-local call graph, so a private
//!   `write_seg` helper is fine as long as the public `put` that calls
//!   it also calls `barrier()` (which syncs).
//! - **rename-then-dir-fsync**: a `rename` is only durable once the
//!   parent directory is fsynced, so every `rename(..)` must be followed
//!   (later in the same function) by a `sync_all` / `sync_data` /
//!   `fsync_dir` call.
//! - **header-last commit**: within one function, a write whose
//!   arguments mention a `header` must come *after* every write whose
//!   arguments mention a `payload` — writing payload bytes after the
//!   header has been committed breaks the "header commits the record"
//!   crash guarantee.
//!
//! The checks are presence-based: stores that run with fsync off
//! (`sync: false` test configs) still *contain* the sync calls, which is
//! what the rule verifies.

use super::{functions, FnSpan};
use crate::diag::{Diagnostic, Rule};
use crate::lexer::{Tok, TokKind};
use std::collections::{BTreeMap, BTreeSet};

/// Raw file-write calls that make a function a durability concern.
const WRITE_FNS: &[&str] = &["write_all", "write_all_at", "set_len"];

/// Calls that make writes durable.
const SYNC_FNS: &[&str] = &["sync_all", "sync_data"];

/// Runs the rule over one file's non-test tokens.
pub fn check(path: &str, toks: &[Tok]) -> Vec<Diagnostic> {
    let fns = functions(toks);
    let mut out = Vec::new();
    out.extend(ack_without_sync(path, toks, &fns));
    out.extend(rename_without_dir_fsync(path, toks, &fns));
    out.extend(payload_after_header(path, toks, &fns));
    out
}

/// Does the token at `i` start a call (`ident (`)?
fn is_call(toks: &[Tok], i: usize) -> bool {
    toks[i].kind == TokKind::Ident && toks.get(i + 1).is_some_and(|t| t.is_punct("("))
}

/// Is the token at `i` a raw file-write call? (`fs::write` counts;
/// a bare `write` does not — it is also the lock-acquisition method.)
fn is_write_call(toks: &[Tok], i: usize) -> bool {
    if !is_call(toks, i) {
        return false;
    }
    if WRITE_FNS.iter().any(|w| toks[i].is_ident(w)) {
        return true;
    }
    toks[i].is_ident("write")
        && i >= 2
        && toks[i - 1].is_punct("::")
        && toks[i - 2].is_ident("fs")
}

fn ack_without_sync(path: &str, toks: &[Tok], fns: &[FnSpan]) -> Vec<Diagnostic> {
    // Per-function facts: does it write / sync directly, whom does it call?
    let mut writes: Vec<bool> = Vec::with_capacity(fns.len());
    let mut syncs: Vec<bool> = Vec::with_capacity(fns.len());
    let mut calls: Vec<BTreeSet<String>> = Vec::with_capacity(fns.len());
    for f in fns {
        let (open, close) = f.body;
        let mut w = false;
        let mut s = false;
        let mut c = BTreeSet::new();
        for i in open..=close.min(toks.len() - 1) {
            if is_write_call(toks, i) {
                w = true;
            }
            if is_call(toks, i) {
                if SYNC_FNS.iter().any(|x| toks[i].is_ident(x)) {
                    s = true;
                }
                c.insert(toks[i].text.clone());
            }
        }
        writes.push(w);
        syncs.push(s);
        calls.push(c);
    }

    // Transitive closure over the file-local call graph (by name; same-
    // named methods on different impls are merged conservatively).
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, f) in fns.iter().enumerate() {
        by_name.entry(f.name.as_str()).or_default().push(i);
    }
    let mut changed = true;
    while changed {
        changed = false;
        for i in 0..fns.len() {
            for callee in calls[i].clone() {
                for &j in by_name.get(callee.as_str()).into_iter().flatten() {
                    if writes[j] && !writes[i] {
                        writes[i] = true;
                        changed = true;
                    }
                    if syncs[j] && !syncs[i] {
                        syncs[i] = true;
                        changed = true;
                    }
                }
            }
        }
    }

    fns.iter()
        .enumerate()
        .filter(|(i, f)| (f.is_pub || f.in_trait_impl) && writes[*i] && !syncs[*i])
        .map(|(_, f)| {
            let t = &toks[f.name_idx];
            diag(
                path,
                t,
                "ack-without-sync",
                &format!(
                    "`{}` is an acknowledgement point that reaches a raw file write but no \
                     `sync_all`/`sync_data` — callers will treat unsynced bytes as durable",
                    f.name
                ),
            )
        })
        .collect()
}

fn rename_without_dir_fsync(path: &str, toks: &[Tok], fns: &[FnSpan]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !(t.is_ident("rename") && is_call(toks, i)) {
            continue;
        }
        let Some(f) = fns.iter().find(|f| f.body.0 < i && i < f.body.1) else {
            continue;
        };
        let rest = &toks[i..=f.body.1.min(toks.len() - 1)];
        let followed = rest.iter().any(|u| {
            SYNC_FNS.iter().any(|x| u.is_ident(x)) || u.is_ident("fsync_dir")
        });
        if !followed {
            out.push(diag(
                path,
                t,
                "rename-without-dir-fsync",
                "`rename` is not followed by a directory fsync in this function — the rename \
                 itself is not durable until the parent directory is synced",
            ));
        }
    }
    out
}

fn payload_after_header(path: &str, toks: &[Tok], fns: &[FnSpan]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for f in fns {
        let (open, close) = f.body;
        let mut header_seen = false;
        let mut i = open;
        while i < close.min(toks.len()) {
            let writeish = toks[i].kind == TokKind::Ident
                && toks[i].text.starts_with("write")
                && toks.get(i + 1).is_some_and(|t| t.is_punct("("));
            if writeish {
                // Classify by the idents inside the call's argument list.
                let mut depth = 0usize;
                let mut j = i + 1;
                let mut mentions_header = false;
                let mut mentions_payload = false;
                while j < toks.len() {
                    let u = &toks[j];
                    if u.is_punct("(") {
                        depth += 1;
                    } else if u.is_punct(")") {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    } else if u.kind == TokKind::Ident {
                        if u.text.contains("header") || u.text.contains("hdr") {
                            mentions_header = true;
                        }
                        if u.text.contains("payload") {
                            mentions_payload = true;
                        }
                    }
                    j += 1;
                }
                if mentions_payload && header_seen {
                    out.push(diag(
                        path,
                        &toks[i],
                        "payload-after-header",
                        &format!(
                            "`{}` writes payload bytes after the header has already been \
                             written — the header must be the last write of a commit",
                            f.name
                        ),
                    ));
                }
                if mentions_header && !mentions_payload {
                    header_seen = true;
                }
                i = j;
                continue;
            }
            i += 1;
        }
    }
    out
}

fn diag(path: &str, t: &Tok, check: &'static str, message: &str) -> Diagnostic {
    Diagnostic {
        rule: Rule::L4,
        check,
        path: path.to_string(),
        line: t.line,
        col: t.col,
        message: message.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex_non_test;

    fn run(src: &str) -> Vec<Diagnostic> {
        check("crates/cluster/src/wal.rs", &lex_non_test(src))
    }

    #[test]
    fn pub_write_without_sync_is_flagged() {
        let d = run("pub fn append(&self, rec: &[u8]) { self.file.write_all(rec); }");
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].check, "ack-without-sync");
    }

    #[test]
    fn sync_through_a_helper_is_reachable() {
        let d = run(
            "pub fn append(&self) { self.write_seg(b); self.barrier(); }\n\
             fn write_seg(&self, b: &[u8]) { self.file.write_all_at(b, 0); }\n\
             fn barrier(&self) { if self.sync { self.file.sync_data(); } }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn private_helpers_are_not_ack_points() {
        let d = run("fn write_seg(&self, b: &[u8]) { self.file.write_all_at(b, 0); }");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn trait_impl_methods_are_ack_points() {
        let d = run(
            "impl BlockStore for FileStore { fn put(&self, b: &[u8]) { f.write_all(b); } }",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].check, "ack-without-sync");
    }

    #[test]
    fn fs_write_counts_but_bare_write_does_not() {
        let d = run("pub fn save(&self) { fs::write(&tmp, &bytes); }");
        assert_eq!(d.len(), 1, "{d:?}");
        // `.write()` is the RwLock method; it must not look like file I/O.
        let d = run("pub fn update(&self) { self.shard(b).write().insert(k, v); }");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn rename_needs_a_following_dir_fsync() {
        let bad = run("pub fn commit(&self) { fs::rename(&tmp, &dst); }");
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert_eq!(bad[0].check, "rename-without-dir-fsync");
        let ok = run("pub fn commit(&self) { fs::rename(&tmp, &dst); fsync_dir(&self.dir); }");
        assert!(ok.is_empty(), "{ok:?}");
        let ok2 = run(
            "pub fn commit(&self) { fs::rename(&tmp, &dst); \
             File::open(&self.root).and_then(|d| d.sync_all()); }",
        );
        assert!(ok2.is_empty(), "{ok2:?}");
    }

    #[test]
    fn header_must_be_the_last_write() {
        let ok = run(
            "fn commit_record(&self) { self.write_seg(s, off + LEN, payload); \
             self.write_seg(s, off, &encode_header(header)); self.barrier(); }\n\
             fn barrier(&self) { self.file.sync_data(); }",
        );
        assert!(ok.is_empty(), "{ok:?}");
        let bad = run(
            "fn commit_record(&self) { self.write_seg(s, off, &encode_header(header)); \
             self.write_seg(s, off + LEN, payload); self.barrier(); }\n\
             fn barrier(&self) { self.file.sync_data(); }",
        );
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert_eq!(bad[0].check, "payload-after-header");
    }
}
