//! L2 — determinism hygiene.
//!
//! The chaos and heal soaks assert *bit-identical* reports across runs and
//! thread counts, and every placement / repair decision is driven by seeded
//! `ChaCha8Rng`s. That only holds if deterministic modules never consult
//! ambient state. This rule forbids, in the deterministic crates:
//!
//! - **wall-clock**: `SystemTime` and `Instant::now` (stat fields that are
//!   documented as wall-clock-only are allowlisted per file);
//! - **ambient-rng**: `thread_rng` and `rand::random`, which seed from the
//!   OS;
//! - **map-iteration**: iterating a `HashMap`/`HashSet` (`.iter()`,
//!   `.keys()`, `.values()`, `.drain()`, `for .. in map`), whose order
//!   varies run-to-run. Iteration is exempt when the same statement
//!   re-sorts the result or reduces it order-insensitively (`count`,
//!   `sum`, `min`, `max`, `all`, `any`) or collects it straight into
//!   another map/set.
//!
//! Map-typed names are discovered per file from type ascriptions
//! (`x: HashMap<..>`, fields, params) and constructor bindings
//! (`let x = HashMap::new()`); the analysis is intra-file and intentionally
//! simple — the sweep converts anything it flags to `BTreeMap`/`BTreeSet`
//! or a sorted `Vec`.

use super::{receiver_ident, stmt_end};
use crate::diag::{Diagnostic, Rule};
use crate::lexer::{Tok, TokKind};
use std::collections::BTreeSet;

const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
];

const ORDER_INSENSITIVE: &[&str] = &["count", "sum", "min", "max", "all", "any", "contains"];

const SORTERS: &[&str] = &["sort", "sort_by", "sort_by_key", "sort_unstable", "sort_unstable_by", "sort_unstable_by_key"];

const MAP_SINKS: &[&str] = &["HashMap", "HashSet", "BTreeMap", "BTreeSet"];

/// Runs the rule over one file's non-test tokens.
pub fn check(path: &str, toks: &[Tok]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let map_names = hash_typed_names(toks);

    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        // Wall-clock sources.
        if t.is_ident("SystemTime") {
            out.push(diag(path, t, "wall-clock", "SystemTime consulted in a deterministic module"));
        }
        if t.is_ident("Instant")
            && toks.get(i + 1).is_some_and(|t| t.is_punct("::"))
            && toks.get(i + 2).is_some_and(|t| t.is_ident("now"))
        {
            out.push(diag(path, t, "wall-clock", "Instant::now() consulted in a deterministic module"));
        }
        // Ambient RNGs.
        if t.is_ident("thread_rng") {
            out.push(diag(path, t, "ambient-rng", "thread_rng() is OS-seeded; use a ChaCha8Rng derived from the run seed"));
        }
        if t.is_ident("rand")
            && toks.get(i + 1).is_some_and(|t| t.is_punct("::"))
            && toks.get(i + 2).is_some_and(|t| t.is_ident("random"))
        {
            out.push(diag(path, t, "ambient-rng", "rand::random() is OS-seeded; use a ChaCha8Rng derived from the run seed"));
        }
        // `.iter()`-style calls on map-typed receivers.
        if t.kind == TokKind::Ident
            && ITER_METHODS.contains(&t.text.as_str())
            && i >= 2
            && toks[i - 1].is_punct(".")
            && toks.get(i + 1).is_some_and(|t| t.is_punct("("))
        {
            if let Some(recv) = receiver_ident(toks, i - 2) {
                if map_names.contains(recv.as_str()) && !statement_is_exempt(toks, i) {
                    out.push(diag(
                        path,
                        t,
                        "map-iteration",
                        &format!(
                            "iteration over hash-ordered `{recv}` leaks nondeterministic order; \
                             use BTreeMap/BTreeSet, sort the result, or reduce order-insensitively"
                        ),
                    ));
                }
            }
        }
        // `for pat in [&mut] map { .. }`.
        if t.is_ident("for") {
            if let Some((name_tok, recv)) = for_loop_over(toks, i) {
                if map_names.contains(recv.as_str()) {
                    out.push(diag(
                        path,
                        name_tok,
                        "map-iteration",
                        &format!(
                            "`for` over hash-ordered `{recv}` leaks nondeterministic order; \
                             use BTreeMap/BTreeSet or iterate a sorted copy"
                        ),
                    ));
                }
            }
        }
        i += 1;
    }
    out
}

/// Collects identifiers declared with a `HashMap`/`HashSet` type in this
/// file: type ascriptions (fields, params, lets) and constructor bindings.
fn hash_typed_names(toks: &[Tok]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for (i, t) in toks.iter().enumerate() {
        if !(t.is_ident("HashMap") || t.is_ident("HashSet")) {
            continue;
        }
        // Walk back over `std :: collections ::` path prefixes, `&`, `mut`
        // and lifetimes to find `name :` or `name =`.
        let mut j = i;
        while j >= 2 && toks[j - 1].is_punct("::") && toks[j - 2].kind == TokKind::Ident {
            j -= 2;
        }
        while j >= 1
            && (toks[j - 1].is_punct("&")
                || toks[j - 1].is_ident("mut")
                || toks[j - 1].kind == TokKind::Lifetime)
        {
            j -= 1;
        }
        if j >= 2 && (toks[j - 1].is_punct(":") || toks[j - 1].is_punct("=")) && toks[j - 2].kind == TokKind::Ident {
            let name = &toks[j - 2];
            // `=` bindings only count for constructor calls (`= HashMap::new()`).
            if (toks[j - 1].is_punct(":") || constructor_follows(toks, i))
                && !name.is_ident("mut")
            {
                names.insert(name.text.clone());
            }
        }
    }
    names
}

fn constructor_follows(toks: &[Tok], i: usize) -> bool {
    toks.get(i + 1).is_some_and(|t| t.is_punct("::"))
        && toks
            .get(i + 2)
            .is_some_and(|t| t.is_ident("new") || t.is_ident("with_capacity") || t.is_ident("default") || t.is_ident("from"))
}

/// Is the statement containing the iteration at `i` exempt? True when the
/// chain is re-sorted, reduced order-insensitively, or collected straight
/// back into a map/set, all within the same statement.
fn statement_is_exempt(toks: &[Tok], i: usize) -> bool {
    let end = stmt_end(toks, i);
    let mut j = i;
    while j < end {
        let t = &toks[j];
        if t.kind == TokKind::Ident && toks.get(j.wrapping_sub(1)).is_some_and(|p| p.is_punct(".")) {
            let m = t.text.as_str();
            if ORDER_INSENSITIVE.contains(&m) || SORTERS.contains(&m) {
                return true;
            }
            if m == "collect" && collect_target_is_map(toks, j, end) {
                return true;
            }
        }
        j += 1;
    }
    // `let x: HashMap<..> = y.iter()...collect();` — the ascription names the sink.
    let start = super::stmt_start(toks, i);
    toks[start..i].iter().any(|t| MAP_SINKS.contains(&t.text.as_str()))
}

fn collect_target_is_map(toks: &[Tok], j: usize, end: usize) -> bool {
    // `.collect::<HashMap<_, _>>()` — look for a map name in the turbofish.
    if toks.get(j + 1).is_some_and(|t| t.is_punct("::")) {
        let stop = end.min(j + 12);
        return toks[j + 2..stop].iter().any(|t| MAP_SINKS.contains(&t.text.as_str()));
    }
    false
}

/// If `toks[i]` is a `for` loop whose iterated expression is a plain
/// (possibly `&`/`&mut`-prefixed) identifier path, returns the token to
/// anchor the diagnostic on and the final identifier.
fn for_loop_over(toks: &[Tok], i: usize) -> Option<(&Tok, String)> {
    // Find the `in` at pattern depth 0, then the body `{` at expr depth 0.
    let mut j = i + 1;
    let mut depth = 0i32;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct("(") || t.is_punct("[") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") {
            depth -= 1;
        } else if t.is_ident("in") && depth == 0 {
            break;
        } else if t.is_punct("{") || t.is_punct(";") {
            return None; // not a for-loop header after all
        }
        j += 1;
    }
    let expr_start = j + 1;
    let mut k = expr_start;
    let mut depth = 0i32;
    while k < toks.len() {
        let t = &toks[k];
        if t.is_punct("(") || t.is_punct("[") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") {
            depth -= 1;
        } else if t.is_punct("{") && depth == 0 {
            break;
        }
        k += 1;
    }
    if k == expr_start || k >= toks.len() {
        return None;
    }
    // Expression must be `[&[mut]] ident[.ident]*` — anything else (calls,
    // ranges, indexing) is either covered by the method check or not a map.
    let expr = &toks[expr_start..k];
    let mut seen_ident = false;
    for (n, t) in expr.iter().enumerate() {
        let ok = (!seen_ident && (t.is_punct("&") || t.is_ident("mut")))
            || t.kind == TokKind::Ident
            || t.is_punct(".");
        if t.kind == TokKind::Ident {
            seen_ident = true;
        }
        if !ok || (t.is_punct(".") && n + 1 == expr.len()) {
            return None;
        }
    }
    let last = expr.iter().rev().find(|t| t.kind == TokKind::Ident)?;
    Some((&toks[i], last.text.clone()))
}

fn diag(path: &str, t: &Tok, check: &'static str, message: &str) -> Diagnostic {
    Diagnostic {
        rule: Rule::L2,
        check,
        path: path.to_string(),
        line: t.line,
        col: t.col,
        message: message.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex_non_test;

    fn run(src: &str) -> Vec<Diagnostic> {
        check("crates/cluster/src/x.rs", &lex_non_test(src))
    }

    #[test]
    fn flags_wall_clock_and_ambient_rng() {
        let d = run("fn f() { let t = Instant::now(); let s = SystemTime::now(); let r = thread_rng(); let v: u8 = rand::random(); }");
        let checks: Vec<&str> = d.iter().map(|d| d.check).collect();
        assert_eq!(checks, vec!["wall-clock", "wall-clock", "ambient-rng", "ambient-rng"]);
    }

    #[test]
    fn flags_map_iteration_but_not_ordered_reductions() {
        let src = "fn f(m: &HashMap<u32, u32>) {\n\
                   let bad: Vec<u32> = m.keys().copied().collect();\n\
                   let ok: usize = m.values().map(|v| *v as usize).sum();\n\
                   let ok2 = m.iter().count();\n\
                   for (k, v) in m { use_it(k, v); }\n\
                   }";
        let d = run(src);
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d.iter().all(|d| d.check == "map-iteration"));
        assert_eq!(d[0].line, 2);
        assert_eq!(d[1].line, 5);
    }

    #[test]
    fn sorting_in_same_statement_is_exempt() {
        let d = run(
            "fn f() { let mut m = HashMap::new(); m.insert(1, 2);\n\
             let mut v: Vec<_> = m.keys().copied().collect::<Vec<_>>(); v.sort();\n }",
        );
        // `.collect::<Vec<_>>()` alone is still flagged — the sort happens in
        // the *next* statement, which the analysis does not see.
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn collecting_into_a_map_is_exempt() {
        let d = run(
            "fn f(m: HashSet<u32>) { let n: HashSet<u32> = m.iter().map(|x| x + 1).collect(); \
             let o = m.iter().map(|x| (*x, 0)).collect::<BTreeMap<u32, u32>>(); }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn btree_maps_are_fine() {
        let d = run("fn f(m: &BTreeMap<u32, u32>) { for (k, v) in m { g(k, v); } let _: Vec<_> = m.keys().collect(); }");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn test_code_is_ignored() {
        let d = run("#[cfg(test)] mod tests { fn f() { let t = Instant::now(); } }");
        assert!(d.is_empty());
    }
}
