//! L5 — context/retry hygiene in the data plane.
//!
//! PR 8's reliability substrate (DESIGN.md §14) only bounds tail latency
//! if every data-plane operation participates: deadlines propagate via
//! `&OpContext`, pacing goes through `reliability`'s virtual-clock
//! helpers, retries consult budgets, and no error is silently dropped.
//! Four checks:
//!
//! - **ctx-threading**: public methods in the inherent `impl ClusterIo`
//!   block that handle a `BlockId` (the data-plane discriminator —
//!   accessors and node-level transfers legitimately have no context)
//!   must take `&OpContext` somewhere in their signature. `pub(crate)`
//!   helpers are plumbing, not API — the uncharged `fetch_costed`
//!   building block exists precisely so the hedging race can charge only
//!   the winner's cost.
//! - **naked-sleep**: `thread::sleep`/`.sleep(..)` calls are banned
//!   outside `reliability.rs` — pacing must route through the
//!   reliability substrate so the virtual clock and deadline charging
//!   stay coupled to real time.
//! - **ad-hoc-retry**: a retry loop (`for attempt in ..`,
//!   `while tries < ..`) whose body never consults the reliability
//!   substrate (`backoff_ticks`, `charge`, a budget, …) retries blind:
//!   no budget, no backoff, no deadline. Loops that do consult it are
//!   the sanctioned pattern.
//! - **discarded-result**: `let _ = ..;` and statement-level `.ok();` in
//!   data-plane files silently drop errors the caller was supposed to
//!   see. `Drop` impls are exempt (destructors have nowhere to report).

use super::{functions, FnSpan};
use crate::diag::{Diagnostic, Rule};
use crate::lexer::Tok;

/// Types whose inherent impl blocks form the data-plane API surface.
const CTX_TYPES: &[&str] = &["ClusterIo"];

/// Loop-variable names that mark a retry loop.
const RETRY_NAMES: &[&str] = &["attempt", "attempts", "tries", "retries", "retry"];

/// Idents whose presence in a retry-loop body shows it consults the
/// reliability substrate rather than retrying blind.
const SANCTIONED: &[&str] = &["backoff_ticks", "charge", "budget", "reliability", "breaker"];

/// Runs the rule over one file's non-test tokens.
pub fn check(path: &str, toks: &[Tok]) -> Vec<Diagnostic> {
    let fns = functions(toks);
    let mut out = Vec::new();
    out.extend(ctx_threading(path, toks, &fns));
    if !path.ends_with("reliability.rs") {
        out.extend(naked_sleep(path, toks));
    }
    out.extend(ad_hoc_retry(path, toks));
    out.extend(discarded_result(path, toks, &fns));
    out
}

fn sig_has(toks: &[Tok], f: &FnSpan, ident: &str) -> bool {
    toks[f.sig.0..f.sig.1].iter().any(|t| t.is_ident(ident))
}

fn ctx_threading(path: &str, toks: &[Tok], fns: &[FnSpan]) -> Vec<Diagnostic> {
    fns.iter()
        .filter(|f| {
            f.is_pub
                && !f.pub_restricted // pub(crate) helpers are plumbing, not API
                && !f.in_trait_impl
                && f.impl_type
                    .as_deref()
                    .is_some_and(|t| CTX_TYPES.contains(&t))
                && sig_has(toks, f, "BlockId")
                && !sig_has(toks, f, "OpContext")
        })
        .map(|f| {
            diag(
                path,
                &toks[f.name_idx],
                "ctx-threading",
                &format!(
                    "public data-plane method `{}` handles a BlockId but does not take \
                     `&OpContext` — deadlines and budgets cannot propagate through it",
                    f.name
                ),
            )
        })
        .collect()
}

fn naked_sleep(path: &str, toks: &[Tok]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.is_ident("sleep")
            && toks.get(i + 1).is_some_and(|t| t.is_punct("("))
            && !(i > 0 && toks[i - 1].is_ident("fn"))
        {
            out.push(diag(
                path,
                t,
                "naked-sleep",
                "raw sleep outside reliability.rs — pace through `reliability::pace` so \
                 waiting stays coupled to the virtual clock and deadline charging",
            ));
        }
    }
    out
}

fn ad_hoc_retry(path: &str, toks: &[Tok]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        let retry_head = (t.is_ident("for") || t.is_ident("while"))
            && toks
                .get(i + 1)
                .is_some_and(|n| RETRY_NAMES.iter().any(|r| n.is_ident(r)));
        if !retry_head {
            continue;
        }
        // Find the loop body: first `{` at bracket depth 0 after the head.
        let mut depth = 0i32;
        let mut j = i + 1;
        let mut open = None;
        while j < toks.len() {
            let u = &toks[j];
            if u.is_punct("(") || u.is_punct("[") {
                depth += 1;
            } else if u.is_punct(")") || u.is_punct("]") {
                depth -= 1;
            } else if depth == 0 && u.is_punct("{") {
                open = Some(j);
                break;
            } else if depth == 0 && u.is_punct(";") {
                break;
            }
            j += 1;
        }
        let Some(open) = open else { continue };
        let close = super::matching_brace(toks, open);
        let consults = toks[open..=close]
            .iter()
            .any(|u| SANCTIONED.iter().any(|s| u.is_ident(s)));
        if !consults {
            out.push(diag(
                path,
                t,
                "ad-hoc-retry",
                "retry loop never consults the reliability substrate (no backoff_ticks/\
                 charge/budget) — it retries blind, outside any deadline or budget",
            ));
        }
    }
    out
}

fn discarded_result(path: &str, toks: &[Tok], fns: &[FnSpan]) -> Vec<Diagnostic> {
    let drop_bodies: Vec<(usize, usize)> = fns
        .iter()
        .filter(|f| f.name == "drop")
        .map(|f| f.body)
        .collect();
    let exempt = |i: usize| drop_bodies.iter().any(|(o, c)| *o < i && i < *c);

    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if exempt(i) {
            continue;
        }
        // `let _ = expr;` — the wildcard exactly, not `_name`.
        if t.is_ident("let")
            && toks.get(i + 1).is_some_and(|u| u.is_ident("_"))
            && toks.get(i + 2).is_some_and(|u| u.is_punct("="))
        {
            out.push(diag(
                path,
                t,
                "discarded-result",
                "`let _ =` silently discards a Result in a data-plane file — handle the \
                 error, propagate it, or allowlist with the reason it is safe to drop",
            ));
        }
        // Statement-level `.ok();`.
        if t.is_ident("ok")
            && i >= 1
            && toks[i - 1].is_punct(".")
            && toks.get(i + 1).is_some_and(|u| u.is_punct("("))
            && toks.get(i + 2).is_some_and(|u| u.is_punct(")"))
            && toks.get(i + 3).is_some_and(|u| u.is_punct(";"))
        {
            out.push(diag(
                path,
                t,
                "discarded-result",
                "statement-level `.ok();` swallows an error in a data-plane file — handle \
                 it or allowlist with a reason",
            ));
        }
    }
    out
}

fn diag(path: &str, t: &Tok, check: &'static str, message: &str) -> Diagnostic {
    Diagnostic {
        rule: Rule::L5,
        check,
        path: path.to_string(),
        line: t.line,
        col: t.col,
        message: message.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex_non_test;

    fn run(src: &str) -> Vec<Diagnostic> {
        check("crates/cluster/src/io.rs", &lex_non_test(src))
    }

    #[test]
    fn data_plane_methods_must_thread_opcontext() {
        let bad = run(
            "impl ClusterIo { pub fn fetch_from(&self, node: NodeId, block: BlockId) \
             -> Result<Block> { x } }",
        );
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert_eq!(bad[0].check, "ctx-threading");
        let ok = run(
            "impl ClusterIo { pub fn fetch_from(&self, node: NodeId, block: BlockId, \
             ctx: &OpContext) -> Result<Block> { x } }",
        );
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn accessors_without_blockid_are_exempt() {
        let d = run(
            "impl ClusterIo { pub fn stats(&self) -> IoStats { x } \
             pub fn transfer(&self, from: NodeId, to: NodeId, bytes: u64) { x } }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn pub_crate_plumbing_is_exempt() {
        let d = run(
            "impl ClusterIo { pub(crate) fn fetch_costed(&self, src: NodeId, block: BlockId) \
             -> (Result<Block>, u64) { x } }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn naked_sleep_is_banned_outside_reliability() {
        let d = run("fn f() { std::thread::sleep(Duration::from_micros(t)); }");
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].check, "naked-sleep");
        // Defining a sleep fn (reliability's own pace impl) is not a call…
        let rel = check(
            "crates/cluster/src/reliability.rs",
            &lex_non_test("pub fn pace(t: u64) { std::thread::sleep(d(t)); }"),
        );
        assert!(rel.is_empty(), "{rel:?}");
    }

    #[test]
    fn blind_retry_loops_are_flagged_sanctioned_ones_pass() {
        let bad = run("fn f() { for attempt in 0..3 { try_once(); } }");
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert_eq!(bad[0].check, "ad-hoc-retry");
        let ok = run(
            "fn f(ctx: &OpContext) { for attempt in 0..IO_ATTEMPTS { \
             let t = rel.backoff_ticks(attempt); ctx.charge(t)?; } }",
        );
        assert!(ok.is_empty(), "{ok:?}");
        let bad_while = run("fn f() { while tries < 3 { tries += 1; } }");
        assert_eq!(bad_while.len(), 1, "{bad_while:?}");
    }

    #[test]
    fn discarded_results_are_errors_except_in_drop() {
        let d = run("fn f() { let _ = fs::remove_file(p); do_send().ok(); }");
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d.iter().all(|d| d.check == "discarded-result"));
        let ok = run("impl Drop for S { fn drop(&mut self) { let _ = self.flush(); } }");
        assert!(ok.is_empty(), "{ok:?}");
        // `let _guard = ..` is a named binding, not a discard.
        let named = run("fn f() { let _guard = m.lock(); }");
        assert!(named.is_empty(), "{named:?}");
    }
}
