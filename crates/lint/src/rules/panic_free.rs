//! L3 — data-plane panic-freedom.
//!
//! The hot-path files (`io.rs`, `datanode.rs`, `blockstore.rs`,
//! `recovery.rs`, `raidnode.rs`, `healer.rs`) run inside degraded reads,
//! repairs, and the background healer: a panic there takes down exactly
//! the machinery that is supposed to survive faults. Fallible paths must
//! propagate a typed `ear_types::Error` instead.
//!
//! Forbidden in non-test code of those files:
//!
//! - **unwrap** / **expect**: `.unwrap()` and `.expect(..)` (the `_or`,
//!   `_or_else`, `_or_default` families are fine — they don't panic);
//! - **panic**: `panic!`, `unreachable!`, `todo!`, `unimplemented!`
//!   (`assert!`/`debug_assert!` are left to reviewers: they document
//!   invariants and fire loudly in tests);
//! - **index**: subscripting with anything but a literal index or a
//!   literal-bounded range (`buf[0]`, `buf[4..]` pass; `shards[i]`
//!   fails — use `.get(i)` and propagate).

use super::receiver_ident;
use crate::diag::{Diagnostic, Rule};
use crate::lexer::{Tok, TokKind};

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Runs the rule over one file's non-test tokens.
pub fn check(path: &str, toks: &[Tok]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        // `.unwrap()` / `.expect(..)`.
        if (t.is_ident("unwrap") || t.is_ident("expect"))
            && i >= 1
            && toks[i - 1].is_punct(".")
            && toks.get(i + 1).is_some_and(|t| t.is_punct("("))
        {
            let what = if t.is_ident("unwrap") { "unwrap" } else { "expect" };
            let recv = receiver_ident(toks, i.wrapping_sub(2)).unwrap_or_default();
            out.push(diag(
                path,
                t,
                what,
                &format!(
                    ".{what}() on `{recv}` can panic on the data plane; propagate a typed EarError instead"
                ),
            ));
        }
        // Panicking macros.
        if t.kind == TokKind::Ident
            && PANIC_MACROS.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|t| t.is_punct("!"))
        {
            out.push(diag(
                path,
                t,
                "panic",
                &format!("{}! aborts the data plane; return an EarError instead", t.text),
            ));
        }
        // Non-literal subscripts. Indexing follows an ident, `)` or `]`
        // (macro brackets like `vec![..]` follow `!` and don't match).
        if t.is_punct("[")
            && i >= 1
            && (toks[i - 1].kind == TokKind::Ident || toks[i - 1].is_punct(")") || toks[i - 1].is_punct("]"))
        {
            if let Some(inner) = bracket_contents(toks, i) {
                if !is_literal_subscript(inner) {
                    let recv = if toks[i - 1].kind == TokKind::Ident {
                        toks[i - 1].text.clone()
                    } else {
                        receiver_ident(toks, i - 1).unwrap_or_default()
                    };
                    out.push(diag(
                        path,
                        t,
                        "index",
                        &format!(
                            "non-literal subscript on `{recv}` can panic out-of-bounds; use .get()/.get_mut() and propagate"
                        ),
                    ));
                }
            }
        }
    }
    out
}

/// The tokens between `[` at `i` and its matching `]`, or `None` when
/// unbalanced.
fn bracket_contents(toks: &[Tok], i: usize) -> Option<&[Tok]> {
    let mut depth = 1usize;
    let mut j = i + 1;
    while j < toks.len() {
        if toks[j].is_punct("[") {
            depth += 1;
        } else if toks[j].is_punct("]") {
            depth -= 1;
            if depth == 0 {
                return Some(&toks[i + 1..j]);
            }
        }
        j += 1;
    }
    None
}

/// Subscripts that cannot be made to panic by runtime values: a bare
/// integer literal, or a range whose present bounds are integer literals
/// (`..`, `4..`, `..4`, `0..4`, `0..=3`).
fn is_literal_subscript(inner: &[Tok]) -> bool {
    match inner {
        [t] if t.kind == TokKind::Num => true,
        [] => false,
        _ => {
            inner
                .iter()
                .all(|t| t.kind == TokKind::Num || t.is_punct("..") || t.is_punct("..="))
                && inner.iter().any(|t| t.is_punct("..") || t.is_punct("..="))
        }
    }
}

fn diag(path: &str, t: &Tok, check: &'static str, message: &str) -> Diagnostic {
    Diagnostic {
        rule: Rule::L3,
        check,
        path: path.to_string(),
        line: t.line,
        col: t.col,
        message: message.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex_non_test;

    fn run(src: &str) -> Vec<Diagnostic> {
        check("crates/cluster/src/io.rs", &lex_non_test(src))
    }

    #[test]
    fn flags_unwrap_expect_and_panics() {
        let d = run("fn f() { a.unwrap(); b.expect(\"msg\"); panic!(\"no\"); unreachable!(); }");
        let checks: Vec<&str> = d.iter().map(|d| d.check).collect();
        assert_eq!(checks, vec!["unwrap", "expect", "panic", "panic"]);
    }

    #[test]
    fn fallible_combinators_are_fine() {
        let d = run("fn f() { a.unwrap_or(0); b.unwrap_or_else(|| 1); c.unwrap_or_default(); d.expect_err(\"x\"); }");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn literal_subscripts_pass_dynamic_ones_fail() {
        let d = run("fn f() { let a = buf[0]; let b = &buf[4..]; let c = &buf[0..4]; let d = buf[i]; let e = &buf[n..]; shards[shard_of(b)].lock(); }");
        assert_eq!(d.len(), 3, "{d:?}");
        assert!(d.iter().all(|d| d.check == "index"));
    }

    #[test]
    fn macros_attrs_and_types_are_not_subscripts() {
        let d = run("#[derive(Debug)] struct S { a: [u8; 16] } fn f(x: [u8; 4]) { let v = vec![0u8; n]; let w = [0u8; 8]; matches!(x, [_, ..]); }");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn test_code_is_ignored() {
        let d = run("#[cfg(test)] mod tests { #[test] fn t() { a.unwrap(); b[i]; } }");
        assert!(d.is_empty());
    }
}
