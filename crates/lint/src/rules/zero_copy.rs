//! L6 — zero-copy hygiene on the hot read path.
//!
//! PR 6 made `Block` an immutable `Arc<[u8]>` handle: clones are
//! refcount bumps, `slice`/`suffix` share the buffer, and the read path
//! from store to client moves no payload bytes (DESIGN.md §12). That win
//! erodes silently the first time a hot-path function materializes a
//! payload with `to_vec()`/`to_owned()`, so this rule bans them on
//! `Block`-backed receivers in the hot-path files.
//!
//! A receiver is `Block`-backed when its method chain bottoms out in a
//! name that is (a) ascribed `Block`/`&Block`, (b) bound from a
//! `Block::…` constructor, or (c) conventionally named (`block`/`blk`/
//! `*_block`). Chains walk through the payload-preserving methods
//! (`as_slice`, `slice`, `suffix`, `as_ref`, `clone`, `unwrap`,
//! `expect`), so `block.as_slice().to_vec()` and
//! `block.slice(o, n)?.to_vec()` are both caught. `Block::clone`
//! itself is *not* flagged — it is the cheap refcount bump the design
//! wants people to use.

use super::receiver_ident_at;
use crate::diag::{Diagnostic, Rule};
use crate::lexer::{Tok, TokKind};
use std::collections::BTreeSet;

/// Methods that materialize (copy) the bytes they are called on.
const MATERIALIZE: &[&str] = &["to_vec", "to_owned"];

/// Methods whose result still borrows/shares the original payload, so a
/// chain through them keeps its `Block` provenance.
const PASSTHROUGH: &[&str] = &["as_slice", "slice", "suffix", "as_ref", "clone", "unwrap", "expect"];

/// Names that are `Block`-backed by convention even without a visible
/// type ascription.
fn conventionally_block(name: &str) -> bool {
    name == "block" || name == "blk" || name.ends_with("_block")
}

/// Collects names with a visible `Block` type: `name: [&]Block` and
/// `let name = Block::…(..)`. Wrapped types (`Vec<Block>`,
/// `Option<Block>`) are deliberately excluded — copying a collection of
/// handles copies refcounts, not payloads.
fn block_typed_names(toks: &[Tok]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("Block") {
            continue;
        }
        // `let name = Block::…(..)`.
        if toks.get(i + 1).is_some_and(|u| u.is_punct("::")) {
            let start = super::stmt_start(toks, i);
            if toks.get(start).is_some_and(|u| u.is_ident("let")) {
                let mut j = start + 1;
                while toks.get(j).is_some_and(|u| u.is_ident("mut")) {
                    j += 1;
                }
                if let Some(name) = toks.get(j).filter(|u| u.kind == TokKind::Ident) {
                    out.insert(name.text.clone());
                }
            }
            continue;
        }
        // `name: [&]Block` — param, field, or ascribed binding.
        let mut j = i;
        while j > 0
            && (toks[j - 1].is_punct("&")
                || toks[j - 1].is_ident("mut")
                || toks[j - 1].kind == TokKind::Lifetime)
        {
            j -= 1;
        }
        if j >= 2 && toks[j - 1].is_punct(":") && toks[j - 2].kind == TokKind::Ident {
            out.insert(toks[j - 2].text.clone());
        }
    }
    out
}

/// Runs the rule over one file's non-test tokens.
pub fn check(path: &str, toks: &[Tok]) -> Vec<Diagnostic> {
    let names = block_typed_names(toks);
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        let is_mat = MATERIALIZE.iter().any(|m| t.is_ident(m))
            && i >= 1
            && toks[i - 1].is_punct(".")
            && toks.get(i + 1).is_some_and(|u| u.is_punct("("));
        if !is_mat {
            continue;
        }
        let Some(base) = chain_base(toks, i) else {
            continue;
        };
        if names.contains(&base) || conventionally_block(&base) {
            out.push(Diagnostic {
                rule: Rule::L6,
                check: "block-materialize",
                path: path.to_string(),
                line: t.line,
                col: t.col,
                message: format!(
                    "`{}()` on `Block`-backed `{base}` copies the payload on the hot path — \
                     share the buffer with `slice`/`suffix`/`clone` instead (DESIGN.md §12)",
                    t.text
                ),
            });
        }
    }
    out
}

/// Walks a method chain backward from the method ident at `i` to the
/// name the chain bottoms out in, looking through payload-preserving
/// methods: `block.slice(o, n)?.to_vec()` → `block`.
fn chain_base(toks: &[Tok], mut i: usize) -> Option<String> {
    loop {
        let anchor = receiver_ident_at(toks, i.checked_sub(2)?)?;
        let name = &toks[anchor].text;
        let is_method = anchor >= 1 && toks[anchor - 1].is_punct(".");
        if is_method && PASSTHROUGH.iter().any(|p| name == p) {
            i = anchor;
            continue;
        }
        return Some(name.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex_non_test;

    fn run(src: &str) -> Vec<Diagnostic> {
        check("crates/cluster/src/io.rs", &lex_non_test(src))
    }

    #[test]
    fn materializing_an_ascribed_block_is_flagged() {
        let d = run("fn f(data: &Block) { let v = data.to_vec(); }");
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].check, "block-materialize");
    }

    #[test]
    fn chains_through_passthrough_methods_keep_provenance() {
        let d = run("fn f(data: &Block) { let v = data.as_slice().to_vec(); }");
        assert_eq!(d.len(), 1, "{d:?}");
        let d = run("fn f(data: &Block) { let v = data.slice(0, n).unwrap().to_vec(); }");
        assert_eq!(d.len(), 1, "{d:?}");
        let d = run("fn f(b: Block) { let v = b.suffix(off)?.to_owned(); }");
        assert_eq!(d.len(), 1, "{d:?}");
    }

    #[test]
    fn constructor_bindings_and_conventional_names_count() {
        let d = run("fn f() { let b = Block::from_arc(buf); g(b.to_vec()); }");
        assert_eq!(d.len(), 1, "{d:?}");
        let d = run("fn f(parity_block: &Block) { parity_block.to_vec(); }");
        assert_eq!(d.len(), 1, "{d:?}");
        let d = run("fn f(block) { block.as_slice().to_vec(); }");
        assert_eq!(d.len(), 1, "{d:?}");
    }

    #[test]
    fn cheap_clone_and_unrelated_to_vec_are_fine() {
        // Block::clone is the refcount bump the design wants.
        let d = run("fn f(block: &Block) { let b2 = block.clone(); }");
        assert!(d.is_empty(), "{d:?}");
        // A NodeId slice is not a payload.
        let d = run("fn f(replicas: &[NodeId]) { let v = replicas.to_vec(); }");
        assert!(d.is_empty(), "{d:?}");
        // Vec<Block> copies handles, not payloads.
        let d = run("fn f(shards: Vec<Block>) { let v = shards.to_vec(); }");
        assert!(d.is_empty(), "{d:?}");
    }
}
