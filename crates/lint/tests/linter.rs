//! Fixture-based self-tests for `ear-lint`: every rule family has a passing
//! and a failing fixture, the failing one pinned against a golden
//! diagnostics file, plus allowlist suppression / staleness / parse checks
//! and a workspace self-scan that keeps the repo lint-clean.

use ear_lint::{check_source, check_workspace, find_workspace_root, Allowlist, Diagnostic};
use std::fs;
use std::path::{Path, PathBuf};

/// (fixture directory, virtual path the fixture is checked under). The
/// virtual path opts the fixture into the rule scope under test — l4 uses
/// cluster.rs (durability scope without the data-plane rules), l5 uses
/// recovery.rs (data-plane without durability), l6 uses cache.rs (hot
/// read path). Each fixture must be clean under *every* rule its virtual
/// path opts into, not just the family it demonstrates.
const CASES: &[(&str, &str)] = &[
    ("l1_lock_order", "crates/cluster/src/fixture_l1.rs"),
    ("l2_determinism", "crates/sim/src/fixture_l2.rs"),
    ("l3_panic_free", "crates/cluster/src/io.rs"),
    ("l4_durability", "crates/cluster/src/cluster.rs"),
    ("l5_context", "crates/cluster/src/recovery.rs"),
    ("l6_zero_copy", "crates/cluster/src/cache.rs"),
];

fn fixture_dir(case: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(case)
}

fn read(path: &Path) -> String {
    fs::read_to_string(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn rendered(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&d.to_string());
        out.push('\n');
    }
    out
}

#[test]
fn pass_fixtures_are_clean() {
    for (case, vpath) in CASES {
        let src = read(&fixture_dir(case).join("pass.rs"));
        let diags = check_source(vpath, &src);
        assert!(
            diags.is_empty(),
            "{case}/pass.rs should be clean, got:\n{}",
            rendered(&diags)
        );
    }
}

#[test]
fn fail_fixtures_match_golden_diagnostics() {
    // Set EAR_LINT_BLESS=1 to regenerate the golden files from the current
    // rule output instead of asserting against them.
    let bless = std::env::var_os("EAR_LINT_BLESS").is_some();
    for (case, vpath) in CASES {
        let dir = fixture_dir(case);
        let src = read(&dir.join("fail.rs"));
        let diags = check_source(vpath, &src);
        assert!(!diags.is_empty(), "{case}/fail.rs must produce diagnostics");
        if bless {
            fs::write(dir.join("fail.expected"), rendered(&diags)).unwrap();
            continue;
        }
        let expected = read(&dir.join("fail.expected"));
        assert_eq!(
            rendered(&diags),
            expected,
            "{case}/fail.rs diagnostics drifted from fail.expected"
        );
    }
}

#[test]
fn allowlist_suppresses_exactly_the_listed_diagnostics() {
    let dir = fixture_dir("l3_panic_free");
    let src = read(&dir.join("fail.rs"));
    let diags = check_source("crates/cluster/src/io.rs", &src);
    let total = diags.len();
    let allow = Allowlist::parse(
        "L3 cluster/src/io.rs unwrap -- fixture: suppress only the unwrap\n",
    )
    .unwrap();
    let (kept, suppressed, stale) = allow.apply(diags);
    assert_eq!(suppressed.len(), 1, "exactly the one unwrap is suppressed");
    assert_eq!(kept.len(), total - 1, "everything else is kept");
    assert!(stale.is_empty());
    assert!(kept.iter().all(|d| d.check != "unwrap"));
}

#[test]
fn wildcard_allowlist_entry_suppresses_all_checks_of_a_rule() {
    let dir = fixture_dir("l2_determinism");
    let src = read(&dir.join("fail.rs"));
    let diags = check_source("crates/sim/src/fixture_l2.rs", &src);
    let total = diags.len();
    let allow =
        Allowlist::parse("L2 src/fixture_l2.rs * -- fixture: suppress the whole file\n").unwrap();
    let (kept, suppressed, stale) = allow.apply(diags);
    assert!(kept.is_empty(), "wildcard must cover every L2 check: {kept:?}");
    assert_eq!(suppressed.len(), total);
    assert!(stale.is_empty());
}

#[test]
fn stale_allowlist_entries_are_reported() {
    let dir = fixture_dir("l3_panic_free");
    // The *pass* fixture has nothing to suppress, so the entry is stale.
    let src = read(&dir.join("pass.rs"));
    let diags = check_source("crates/cluster/src/io.rs", &src);
    let allow = Allowlist::parse(
        "L3 cluster/src/io.rs unwrap -- fixture: excuses nothing any more\n",
    )
    .unwrap();
    let (kept, suppressed, stale) = allow.apply(diags);
    assert!(kept.is_empty());
    assert!(suppressed.is_empty());
    assert_eq!(stale.len(), 1, "an entry matching nothing must go stale");
    assert_eq!(stale[0].check, "unwrap");
}

#[test]
fn malformed_allowlist_lines_are_hard_errors() {
    for bad in [
        "L3 cluster/src/io.rs unwrap",               // missing reason
        "L3 cluster/src/io.rs unwrap -- ",           // empty reason
        "L9 cluster/src/io.rs unwrap -- bad rule",   // unknown rule
        "L3 unwrap -- too few fields",               // missing field
    ] {
        assert!(
            Allowlist::parse(bad).is_err(),
            "expected parse error for {bad:?}"
        );
    }
}

#[test]
fn workspace_is_clean_under_the_committed_allowlist() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above the lint crate");
    let allow = Allowlist::parse(&read(&root.join("lint-allowlist.txt"))).unwrap();
    let report = check_workspace(&root).unwrap();
    let (kept, _suppressed, stale) = allow.apply(report.diagnostics);
    assert!(
        kept.is_empty(),
        "the workspace must stay lint-clean:\n{}",
        rendered(&kept)
    );
    assert!(stale.is_empty(), "stale allowlist entries: {stale:?}");
}
