// L2 fixture: wall clocks, ambient RNGs, and hash-ordered iteration in a
// deterministic module. Checked under `crates/sim/src/fixture_l2.rs`.

fn leaky_report(m: &HashMap<u32, u64>) -> Vec<u64> {
    let started = Instant::now();
    let epoch = SystemTime::now();
    let mut rng = thread_rng();
    let coin: bool = rand::random();
    let mut out = Vec::new();
    for (_k, v) in m {
        out.push(*v);
    }
    for v in m.values() {
        out.push(*v);
    }
    out
}
