// L2 fixture: deterministic idioms — seeded RNG, ordered maps, and
// order-insensitive reductions over hash maps.

fn ordered_report(m: &HashMap<u32, u64>, b: &BTreeMap<u32, u64>, seed: u64) -> u64 {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    // Order-insensitive reducers over a hash map are fine.
    let total: u64 = m.values().sum();
    let live = m.values().filter(|v| **v > 0).count();
    // Iterating an ordered map is fine.
    let mut acc = 0;
    for (_k, v) in b {
        acc += *v;
    }
    acc + total + live as u64 + rng.next_u64()
}
