// L3 fixture: the panic-free idioms the data plane must use — typed
// propagation, .get(), and literal-bounded slicing.

fn data_plane(xs: &[u8], i: usize, m: Option<u8>) -> Result<u8> {
    let a = m.ok_or(Error::ShardLengthMismatch)?;
    let b = xs.get(i).copied().ok_or(Error::ShardLengthMismatch)?;
    let head = &xs[4..];
    let first = xs[0];
    assert!(first as usize <= xs.len());
    Ok(a + b + first + head.len() as u8)
}
