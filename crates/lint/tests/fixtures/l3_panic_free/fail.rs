// L3 fixture: panics reachable from the data plane. Checked under the
// virtual path `crates/cluster/src/io.rs` to opt into the hot-path scope.

fn data_plane(xs: &[u8], i: usize, m: Option<u8>) -> u8 {
    let a = m.unwrap();
    let b = xs.first().expect("nonempty");
    if i >= xs.len() {
        panic!("out of range");
    }
    a + b + xs[i]
}
