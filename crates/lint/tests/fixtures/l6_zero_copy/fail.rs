// L6 fixture: materializing Block payloads on the hot read path — the
// copies the shared-buffer redesign exists to avoid.

fn serve(block: &Block) -> Vec<u8> {
    block.to_vec()
}

fn stash(b: Block) -> Vec<u8> {
    b.clone().to_owned()
}
