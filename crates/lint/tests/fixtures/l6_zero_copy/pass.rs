// L6 fixture: zero-copy hot-path idioms — a Block clone is a refcount
// bump, sub-views slice the shared buffer, and buffers that are not
// Block payloads may materialize freely.

fn serve(block: &Block) -> Result<Block> {
    let copy = block.clone();
    let payload = copy.suffix(4).ok_or(Error::ShardLengthMismatch)?;
    Ok(payload)
}

fn not_a_block(names: &[String]) -> Vec<String> {
    names.to_vec()
}
