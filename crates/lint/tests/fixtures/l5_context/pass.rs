// L5 fixture: the sanctioned reliability patterns — OpContext threaded
// through the public data-plane API, pacing and backoff via the
// reliability substrate, budgeted retries, and handled Results.

impl ClusterIo {
    pub fn fetch_from(&self, ctx: &OpContext<'_>, src: NodeId, block: BlockId) -> Result<Block> {
        self.fetch_inner(ctx, src, block)
    }

    pub fn stats(&self) -> IoStats {
        self.counters.snapshot()
    }

    pub(crate) fn fetch_costed(&self, src: NodeId, block: BlockId) -> (Result<Block>, u64) {
        self.fetch_raw(src, block)
    }
}

fn budgeted(ctx: &OpContext<'_>, rel: &Reliability) -> Result<()> {
    for attempt in 0..IO_ATTEMPTS {
        let ticks = rel.backoff_ticks(7, attempt);
        ctx.charge(ticks)?;
        reliability::pace(ticks);
    }
    Ok(())
}

impl Drop for Staging {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.dir);
    }
}
