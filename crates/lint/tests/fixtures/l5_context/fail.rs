// L5 fixture: a context-less public data-plane method, a naked sleep, a
// blind retry loop, and two silently dropped Results.

impl ClusterIo {
    pub fn fetch_from(&self, src: NodeId, block: BlockId) -> Result<Block> {
        self.fetch_inner(src, block)
    }
}

fn blind(io: &ClusterIo, block: BlockId) -> Result<Block> {
    for attempt in 0..3 {
        std::thread::sleep(Duration::from_micros(50));
        if let Ok(b) = io.try_fetch(block, attempt) {
            return Ok(b);
        }
    }
    Err(Error::BlockUnavailable { block })
}

fn sloppy(path: &Path) {
    let _ = fs::remove_file(path);
    notify_peer().ok();
}
