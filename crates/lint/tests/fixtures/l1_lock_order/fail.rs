// L1 fixture: violates the declared lock order (policy → rng → stripes →
// shard). Checked under the virtual path `crates/cluster/src/fixture_l1.rs`.

impl NameNode {
    fn coarse_under_fine(&self) {
        let shard = self.shard(0).write();
        let policy = self.policy.lock();
        policy.touch();
        drop(policy);
        drop(shard);
    }

    fn reentrant(&self) {
        let first = self.stripes.lock();
        let second = self.stripes.lock();
        drop(second);
        drop(first);
    }
}
