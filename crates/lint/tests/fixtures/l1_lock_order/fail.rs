// L1 fixture: the same two classes nested in both directions — a lock
// cycle (the two-thread deadlock condition) — plus a same-class
// reacquisition, which parking_lot cannot survive.

struct NameNode {
    policy: Mutex<Policy>,
    stripes: Mutex<StripeMap>,
}

impl NameNode {
    fn coarse_then_fine(&self) {
        let policy = self.policy.lock();
        let stripes = self.stripes.lock();
        drop(stripes);
        drop(policy);
    }

    fn fine_then_coarse(&self) {
        let stripes = self.stripes.lock();
        let policy = self.policy.lock();
        drop(policy);
        drop(stripes);
    }

    fn reentrant(&self) {
        let first = self.stripes.lock();
        let second = self.stripes.lock();
        drop(second);
        drop(first);
    }
}
