// L1 fixture: acquisitions that follow the declared order (policy → rng →
// stripes → shard), release before re-acquiring, or never nest.

impl NameNode {
    fn declared_order(&self) {
        let policy = self.policy.lock();
        let rng = self.rng.lock();
        let stripes = self.stripes.lock();
        let shard = self.shard(1).write();
        drop(shard);
        drop(stripes);
        drop(rng);
        drop(policy);
    }

    fn released_before_coarser(&self) {
        {
            let shard = self.shard(0).read();
            shard.len();
        }
        let policy = self.policy.lock();
        policy.touch();
    }

    fn transient_guard_dies_at_statement_end(&self) {
        let n = self.stripes.lock().len();
        let policy = self.policy.lock();
        policy.touch();
    }
}
