// L1 fixture: declared lock classes nested in one consistent coarse→fine
// direction — the acquisition graph stays acyclic, so no diagnostics.

struct NameNode {
    policy: Mutex<Policy>,
    rng: Mutex<Rng>,
    stripes: Mutex<StripeMap>,
    shards: Vec<RwLock<Shard>>,
}

impl NameNode {
    fn shard(&self, b: BlockId) -> &RwLock<Shard> {
        &self.shards[b.index() % SHARDS]
    }

    fn consistent_direction(&self) {
        let policy = self.policy.lock();
        let rng = self.rng.lock();
        let stripes = self.stripes.lock();
        let shard = self.shard(1).write();
        drop(shard);
        drop(stripes);
        drop(rng);
        drop(policy);
    }

    fn released_before_coarser(&self) {
        {
            let shard = self.shard(0).read();
            shard.len();
        }
        let policy = self.policy.lock();
        policy.touch();
    }

    fn transient_guard_dies_at_statement_end(&self) {
        let n = self.stripes.lock().len();
        let policy = self.policy.lock();
        policy.touch();
    }
}
