// L4 fixture: acknowledged writes with no reachable sync (directly and
// through a helper), a rename that never syncs its directory, and a
// header written before the payload it describes.

pub fn save(path: &Path, bytes: &[u8]) -> Result<()> {
    let mut f = File::create(path)?;
    f.write_all(bytes)?;
    Ok(())
}

pub fn publish(dir: &Path, bytes: &[u8]) -> Result<()> {
    let tmp = dir.join("img.tmp");
    fs::write(&tmp, bytes)?;
    fs::rename(&tmp, dir.join("img"))?;
    Ok(())
}

pub fn append(&mut self, rec: &[u8]) -> Result<()> {
    self.buffered_write(rec)
}

fn buffered_write(&mut self, rec: &[u8]) -> Result<()> {
    self.file.write_all(rec)?;
    Ok(())
}

pub fn commit(f: &mut File, header: &[u8], payload: &[u8]) -> Result<()> {
    write_header(f, header)?;
    write_payload(f, payload)?;
    f.sync_data()?;
    Ok(())
}
