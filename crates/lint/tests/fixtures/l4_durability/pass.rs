// L4 fixture: the durable-write protocol done right — payload synced
// before the rename publishes it, the directory synced after, and the
// header written (and synced) only once its payload is on disk.

pub fn publish(dir: &Path, bytes: &[u8]) -> Result<()> {
    let tmp = dir.join("img.tmp");
    let mut f = File::create(&tmp)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    fs::rename(&tmp, dir.join("img"))?;
    fsync_dir(dir)?;
    Ok(())
}

fn fsync_dir(dir: &Path) -> Result<()> {
    File::open(dir)?.sync_all()?;
    Ok(())
}

pub fn commit(f: &mut File, payload: &[u8], header: &[u8]) -> Result<()> {
    write_payload(f, payload)?;
    f.sync_data()?;
    write_header(f, header)?;
    f.sync_data()?;
    Ok(())
}

pub fn append(&mut self, rec: &[u8]) -> Result<()> {
    self.buffered_write(rec)
}

fn buffered_write(&mut self, rec: &[u8]) -> Result<()> {
    self.file.write_all(rec)?;
    self.file.sync_data()?;
    Ok(())
}
