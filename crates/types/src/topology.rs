//! Cluster topology: nodes grouped into racks (Fig. 1 of the paper).

use crate::{NodeId, RackId};

/// A clustered-file-system topology: `R` racks, each holding a set of nodes
/// connected by a top-of-rack switch; racks are connected by a network core.
///
/// Node ids are dense (`0..num_nodes`) and assigned rack by rack, so
/// `rack_of` is an O(1) table lookup.
///
/// ```
/// use ear_types::{ClusterTopology, NodeId, RackId};
///
/// let topo = ClusterTopology::uniform(4, 2); // Fig. 4's 8-node cluster
/// assert_eq!(topo.rack_of(NodeId(5)), RackId(2));
/// assert_eq!(topo.nodes_in_rack(RackId(0)), &[NodeId(0), NodeId(1)]);
/// assert!(topo.same_rack(NodeId(2), NodeId(3)));
/// assert!(!topo.same_rack(NodeId(1), NodeId(2)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterTopology {
    /// `racks[r]` lists the node ids in rack `r`.
    racks: Vec<Vec<NodeId>>,
    /// `node_rack[node.index()]` is the rack of that node.
    node_rack: Vec<RackId>,
}

impl ClusterTopology {
    /// Builds a topology of `num_racks` racks with `nodes_per_rack` nodes
    /// each.
    ///
    /// # Panics
    ///
    /// Panics if `num_racks == 0` or `nodes_per_rack == 0`.
    pub fn uniform(num_racks: usize, nodes_per_rack: usize) -> Self {
        assert!(num_racks > 0, "topology needs at least one rack");
        assert!(nodes_per_rack > 0, "racks need at least one node");
        Self::with_rack_sizes(&vec![nodes_per_rack; num_racks])
    }

    /// Builds a topology with per-rack node counts, allowing heterogeneous
    /// racks.
    ///
    /// # Panics
    ///
    /// Panics if `sizes` is empty or any rack size is zero.
    pub fn with_rack_sizes(sizes: &[usize]) -> Self {
        assert!(!sizes.is_empty(), "topology needs at least one rack");
        let mut racks = Vec::with_capacity(sizes.len());
        let mut node_rack = Vec::new();
        let mut next = 0u32;
        for (r, &size) in sizes.iter().enumerate() {
            assert!(size > 0, "rack {r} has zero nodes");
            let mut nodes = Vec::with_capacity(size);
            for _ in 0..size {
                nodes.push(NodeId(next));
                node_rack.push(RackId(r as u32));
                next += 1;
            }
            racks.push(nodes);
        }
        ClusterTopology { racks, node_rack }
    }

    /// Number of racks `R`.
    #[inline]
    pub fn num_racks(&self) -> usize {
        self.racks.len()
    }

    /// Total number of nodes in the cluster.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.node_rack.len()
    }

    /// The rack containing `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[inline]
    pub fn rack_of(&self, node: NodeId) -> RackId {
        self.node_rack[node.index()]
    }

    /// The nodes in `rack`.
    ///
    /// # Panics
    ///
    /// Panics if `rack` is out of range.
    #[inline]
    pub fn nodes_in_rack(&self, rack: RackId) -> &[NodeId] {
        &self.racks[rack.index()]
    }

    /// Whether two nodes share a rack (i.e. a transfer between them is
    /// intra-rack).
    #[inline]
    pub fn same_rack(&self, a: NodeId, b: NodeId) -> bool {
        self.rack_of(a) == self.rack_of(b)
    }

    /// Iterator over all rack ids.
    pub fn racks(&self) -> impl Iterator<Item = RackId> + '_ {
        (0..self.racks.len() as u32).map(RackId)
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_rack.len() as u32).map(NodeId)
    }

    /// Size of the smallest rack; useful for validating placement
    /// feasibility.
    pub fn min_rack_size(&self) -> usize {
        self.racks.iter().map(Vec::len).min().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_assigns_dense_ids_rack_by_rack() {
        let t = ClusterTopology::uniform(3, 4);
        assert_eq!(t.num_racks(), 3);
        assert_eq!(t.num_nodes(), 12);
        assert_eq!(t.rack_of(NodeId(0)), RackId(0));
        assert_eq!(t.rack_of(NodeId(4)), RackId(1));
        assert_eq!(t.rack_of(NodeId(11)), RackId(2));
        assert_eq!(
            t.nodes_in_rack(RackId(1)),
            &[NodeId(4), NodeId(5), NodeId(6), NodeId(7)]
        );
    }

    #[test]
    fn heterogeneous_racks() {
        let t = ClusterTopology::with_rack_sizes(&[1, 3, 2]);
        assert_eq!(t.num_nodes(), 6);
        assert_eq!(t.nodes_in_rack(RackId(0)), &[NodeId(0)]);
        assert_eq!(t.nodes_in_rack(RackId(2)), &[NodeId(4), NodeId(5)]);
        assert_eq!(t.min_rack_size(), 1);
    }

    #[test]
    fn iterators_cover_everything() {
        let t = ClusterTopology::uniform(2, 3);
        assert_eq!(t.racks().count(), 2);
        assert_eq!(t.nodes().count(), 6);
        for node in t.nodes() {
            assert!(t.nodes_in_rack(t.rack_of(node)).contains(&node));
        }
    }

    #[test]
    #[should_panic(expected = "at least one rack")]
    fn zero_racks_panics() {
        let _ = ClusterTopology::uniform(0, 3);
    }

    #[test]
    #[should_panic(expected = "zero nodes")]
    fn zero_rack_size_panics() {
        let _ = ClusterTopology::with_rack_sizes(&[2, 0]);
    }
}
