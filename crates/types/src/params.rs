//! Configuration parameters: erasure coding, replication, and EAR knobs.

use crate::{Error, Result};

/// Parameters of an `(n, k)` systematic erasure code (Section II-A).
///
/// A stripe holds `k` data blocks and `n - k` parity blocks; any `k` of the
/// `n` blocks reconstruct the originals.
///
/// ```
/// use ear_types::ErasureParams;
/// let p = ErasureParams::new(14, 10).unwrap(); // Facebook's choice
/// assert_eq!(p.parity(), 4);
/// assert!(ErasureParams::new(4, 6).is_err()); // k must be < n
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ErasureParams {
    n: usize,
    k: usize,
}

impl ErasureParams {
    /// Creates `(n, k)` parameters.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidErasureParams`] if `k == 0`, `k >= n`, or
    /// `n > 255` (the GF(2⁸) Reed–Solomon limit used by this project).
    pub fn new(n: usize, k: usize) -> Result<Self> {
        if k == 0 {
            return Err(Error::InvalidErasureParams {
                n,
                k,
                reason: "k must be positive",
            });
        }
        if k >= n {
            return Err(Error::InvalidErasureParams {
                n,
                k,
                reason: "k must be less than n",
            });
        }
        if n > 255 {
            return Err(Error::InvalidErasureParams {
                n,
                k,
                reason: "n must be at most 255 for GF(256) Reed-Solomon",
            });
        }
        Ok(ErasureParams { n, k })
    }

    /// Total blocks per stripe (`n`).
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Data blocks per stripe (`k`).
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Parity blocks per stripe (`n - k`).
    #[inline]
    pub fn parity(&self) -> usize {
        self.n - self.k
    }

    /// Storage overhead factor `n / k` (e.g. 1.4 for `(14, 10)`).
    pub fn overhead(&self) -> f64 {
        self.n as f64 / self.k as f64
    }
}

/// How replicas of a block are spread across racks during replication.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RackSpread {
    /// HDFS default (Section II-A): the first replica goes to one rack, all
    /// remaining replicas go to distinct nodes in a single *different* rack.
    /// With 3-way replication this tolerates a two-node or single-rack
    /// failure.
    #[default]
    TwoRacks,
    /// Each replica is placed in a distinct rack (used in Experiment B.2,
    /// Fig. 13(f), when varying the number of replicas).
    DistinctRacks,
}

/// Replication policy knobs: replica count and rack spread.
///
/// ```
/// use ear_types::ReplicationConfig;
/// let c = ReplicationConfig::hdfs_default(); // 3 replicas over 2 racks
/// assert_eq!(c.replicas(), 3);
/// assert_eq!(c.racks_spanned(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReplicationConfig {
    replicas: usize,
    spread: RackSpread,
}

impl ReplicationConfig {
    /// Creates a replication configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidReplication`] if `replicas == 0`, or if
    /// `spread` is [`RackSpread::TwoRacks`] with fewer than 2 replicas
    /// (a single replica cannot span two racks).
    pub fn new(replicas: usize, spread: RackSpread) -> Result<Self> {
        if replicas == 0 {
            return Err(Error::InvalidReplication {
                reason: "at least one replica required",
            });
        }
        if replicas == 1 && spread == RackSpread::TwoRacks {
            return Err(Error::InvalidReplication {
                reason: "two-rack spread requires at least two replicas",
            });
        }
        Ok(ReplicationConfig { replicas, spread })
    }

    /// HDFS's default: 3-way replication over two racks.
    pub fn hdfs_default() -> Self {
        ReplicationConfig {
            replicas: 3,
            spread: RackSpread::TwoRacks,
        }
    }

    /// The testbed configuration of Section V-A: 2-way replication, one
    /// replica per rack.
    pub fn two_way() -> Self {
        ReplicationConfig {
            replicas: 2,
            spread: RackSpread::TwoRacks,
        }
    }

    /// Number of replicas per block (`r`).
    #[inline]
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// Rack-spread policy.
    #[inline]
    pub fn spread(&self) -> RackSpread {
        self.spread
    }

    /// How many distinct racks the replicas of one block occupy.
    pub fn racks_spanned(&self) -> usize {
        match self.spread {
            RackSpread::TwoRacks => 2.min(self.replicas),
            RackSpread::DistinctRacks => self.replicas,
        }
    }
}

impl Default for ReplicationConfig {
    fn default() -> Self {
        Self::hdfs_default()
    }
}

/// Full EAR configuration (Section III).
///
/// * `erasure` — the `(n, k)` code applied at encoding time.
/// * `replication` — how blocks are replicated before encoding.
/// * `c` — the maximum number of blocks of one stripe allowed in a single
///   rack after encoding; the stripe then tolerates `floor((n-k)/c)` rack
///   failures (Section III-B).
/// * `target_racks` — optional `R' < R`: restrict all blocks of every stripe
///   to `R'` randomly chosen racks to cut cross-rack recovery traffic
///   (Section III-D). Requires `R' >= ceil(n / c)`.
/// * `max_retries_per_block` — retry budget for regenerating a block's
///   replica layout when the flow-graph check fails (Algorithm, Fig. 5);
///   Theorem 1 shows the expected number of retries is small.
///
/// ```
/// use ear_types::{EarConfig, ErasureParams, ReplicationConfig};
/// let cfg = EarConfig::new(
///     ErasureParams::new(14, 10).unwrap(),
///     ReplicationConfig::hdfs_default(),
///     1,
/// ).unwrap();
/// assert_eq!(cfg.tolerable_rack_failures(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EarConfig {
    erasure: ErasureParams,
    replication: ReplicationConfig,
    c: usize,
    target_racks: Option<usize>,
    max_retries_per_block: usize,
}

impl EarConfig {
    /// Default retry budget; far above Theorem 1's expectation so that
    /// failures indicate a genuinely infeasible topology.
    pub const DEFAULT_MAX_RETRIES: usize = 10_000;

    /// Creates an EAR configuration with `c` blocks of a stripe allowed per
    /// rack.
    ///
    /// # Errors
    ///
    /// Returns an error if `c == 0` or `c >= n` (the stripe would fit in one
    /// rack, providing no rack-level fault tolerance at all).
    pub fn new(erasure: ErasureParams, replication: ReplicationConfig, c: usize) -> Result<Self> {
        if c == 0 {
            return Err(Error::InvalidReplication {
                reason: "c (max stripe blocks per rack) must be positive",
            });
        }
        if c >= erasure.n() {
            return Err(Error::InvalidReplication {
                reason: "c must be less than n, otherwise a whole stripe fits in one rack",
            });
        }
        Ok(EarConfig {
            erasure,
            replication,
            c,
            target_racks: None,
            max_retries_per_block: Self::DEFAULT_MAX_RETRIES,
        })
    }

    /// The paper's strictest setting: `c = 1`, tolerating `n - k` rack
    /// failures as in Facebook's f4 (Section III-B).
    pub fn max_rack_tolerance(erasure: ErasureParams, replication: ReplicationConfig) -> Self {
        EarConfig {
            erasure,
            replication,
            c: 1,
            target_racks: None,
            max_retries_per_block: Self::DEFAULT_MAX_RETRIES,
        }
    }

    /// Restricts all stripe blocks to `r_prime` target racks (Section III-D).
    ///
    /// # Errors
    ///
    /// Returns [`Error::TopologyTooSmall`] if `r_prime * c < n`, because a
    /// stripe of `n` blocks could not fit in the target racks.
    pub fn with_target_racks(mut self, r_prime: usize) -> Result<Self> {
        if r_prime * self.c < self.erasure.n() {
            return Err(Error::TopologyTooSmall {
                reason: format!(
                    "need R' * c >= n but {} * {} < {}",
                    r_prime,
                    self.c,
                    self.erasure.n()
                ),
            });
        }
        self.target_racks = Some(r_prime);
        Ok(self)
    }

    /// Overrides the per-block retry budget.
    pub fn with_max_retries(mut self, retries: usize) -> Self {
        self.max_retries_per_block = retries.max(1);
        self
    }

    /// The erasure-coding parameters.
    #[inline]
    pub fn erasure(&self) -> ErasureParams {
        self.erasure
    }

    /// The replication configuration used before encoding.
    #[inline]
    pub fn replication(&self) -> ReplicationConfig {
        self.replication
    }

    /// Maximum blocks of one stripe per rack after encoding.
    #[inline]
    pub fn c(&self) -> usize {
        self.c
    }

    /// Optional number of target racks `R'`.
    #[inline]
    pub fn target_racks(&self) -> Option<usize> {
        self.target_racks
    }

    /// Per-block layout retry budget.
    #[inline]
    pub fn max_retries_per_block(&self) -> usize {
        self.max_retries_per_block
    }

    /// Number of rack failures the encoded stripe tolerates:
    /// `floor((n - k) / c)`.
    pub fn tolerable_rack_failures(&self) -> usize {
        self.erasure.parity() / self.c
    }

    /// Minimum number of racks required to host one stripe: `ceil(n / c)`.
    pub fn min_racks_for_stripe(&self) -> usize {
        self.erasure.n().div_ceil(self.c)
    }
}

/// Which block-storage backend the DataNodes of a cluster use.
///
/// Selected per cluster through `ClusterConfig`; the conventional default is
/// [`StoreBackend::from_env`], which reads the `EAR_STORE` environment
/// variable so the whole test suite can be flipped between backends without
/// code changes (mirroring the `EAR_GF_KERNEL` override of the erasure
/// layer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum StoreBackend {
    /// Sharded in-memory store: lock-striped `HashMap`s, zero-copy reads.
    #[default]
    Memory,
    /// File-backed store: one file per block under a per-node temp root,
    /// removed when the node is dropped. Exercises real I/O syscalls.
    File,
    /// Extent-based store: blocks packed into aligned segment files through
    /// a free-list allocator, with header+payload CRC framing, explicit
    /// fsync barriers, and torn-write detection on reopen (DESIGN.md §13).
    Extent,
}

impl StoreBackend {
    /// Reads the backend from the `EAR_STORE` environment variable
    /// (`memory`, `file`, or `extent`, case-insensitive). Unset defaults to
    /// [`StoreBackend::Memory`].
    ///
    /// # Panics
    ///
    /// Panics on an unrecognised value: a typo silently falling back to the
    /// default would invalidate a "tested under both backends" claim.
    pub fn from_env() -> Self {
        match std::env::var("EAR_STORE") {
            Ok(v) if v.eq_ignore_ascii_case("memory") => StoreBackend::Memory,
            Ok(v) if v.eq_ignore_ascii_case("file") => StoreBackend::File,
            Ok(v) if v.eq_ignore_ascii_case("extent") => StoreBackend::Extent,
            Ok(v) => panic!("EAR_STORE must be `memory`, `file`, or `extent`, got `{v}`"),
            Err(_) => StoreBackend::Memory,
        }
    }

    /// Stable lowercase label (`"memory"` / `"file"` / `"extent"`) for
    /// stats and bench output.
    pub fn name(self) -> &'static str {
        match self {
            StoreBackend::Memory => "memory",
            StoreBackend::File => "file",
            StoreBackend::Extent => "extent",
        }
    }

    /// Whether stores of this backend can survive a process restart when
    /// rooted in a persistent data directory. The memory backend cannot —
    /// reopening it yields [`crate::Error::NotDurable`], never a silently
    /// empty cluster.
    pub fn is_durable(self) -> bool {
        !matches!(self, StoreBackend::Memory)
    }
}

/// Which data path `RaidNode::encode_all` uses to build parity.
///
/// Selected per cluster through `ClusterConfig`; the conventional default is
/// [`EncodePath::from_env`], which reads the `EAR_ENCODE_PATH` environment
/// variable so the whole test suite can be flipped between paths without
/// code changes (mirroring `EAR_STORE` / `EAR_CACHE`). Both paths produce
/// bit-identical parity and metadata — they differ only in how the source
/// bytes travel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EncodePath {
    /// Legacy gather-then-encode: every source block is downloaded to the
    /// encoding node, which runs the full Reed–Solomon encode in one pass.
    #[default]
    Gather,
    /// Streaming shard pipeline (RapidRAID-style): sources are folded into
    /// running partial parities rack-major, node to node, so each source
    /// rack ships at most `min(sources_in_rack, m)` blocks across the rack
    /// boundary and no single node has to ingest all `k` sources.
    Pipelined,
}

impl EncodePath {
    /// Reads the path from the `EAR_ENCODE_PATH` environment variable
    /// (`gather` or `pipelined`, case-insensitive). Unset defaults to
    /// [`EncodePath::Gather`].
    ///
    /// # Panics
    ///
    /// Panics on an unrecognised value: a typo silently falling back to the
    /// default would invalidate a "tested under both paths" claim.
    pub fn from_env() -> Self {
        match std::env::var("EAR_ENCODE_PATH") {
            Ok(v) if v.eq_ignore_ascii_case("gather") => EncodePath::Gather,
            Ok(v) if v.eq_ignore_ascii_case("pipelined") => EncodePath::Pipelined,
            Ok(v) => panic!("EAR_ENCODE_PATH must be `gather` or `pipelined`, got `{v}`"),
            Err(_) => EncodePath::Gather,
        }
    }

    /// Stable lowercase label (`"gather"` / `"pipelined"`) for stats and
    /// bench output.
    pub fn name(self) -> &'static str {
        match self {
            EncodePath::Gather => "gather",
            EncodePath::Pipelined => "pipelined",
        }
    }
}

/// Which data path stripe repair uses to rebuild a lost shard.
///
/// Selected per cluster through `ClusterConfig`; the conventional default is
/// [`RepairPath::from_env`], which reads the `EAR_REPAIR_PATH` environment
/// variable. Both paths reconstruct byte-identical shards — they differ
/// only in how the surviving shards travel to the recovery node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RepairPath {
    /// Legacy direct repair: the recovery node pulls each of the `k` chosen
    /// surviving shards point-to-point, paying one cross-rack block per
    /// remote shard.
    #[default]
    Direct,
    /// Two-phase rack-aware repair: each source rack with ≥ 2 chosen
    /// survivors GF-folds them locally at an aggregator node, so only one
    /// partial crosses the rack boundary per source rack — a strict
    /// cross-rack reduction whenever `c > 1` co-locates survivors.
    RackAware,
}

impl RepairPath {
    /// Reads the path from the `EAR_REPAIR_PATH` environment variable
    /// (`direct` or `rack_aware`, case-insensitive). Unset defaults to
    /// [`RepairPath::Direct`].
    ///
    /// # Panics
    ///
    /// Panics on an unrecognised value: a typo silently falling back to the
    /// default would invalidate a "tested under both paths" claim.
    pub fn from_env() -> Self {
        match std::env::var("EAR_REPAIR_PATH") {
            Ok(v) if v.eq_ignore_ascii_case("direct") => RepairPath::Direct,
            Ok(v) if v.eq_ignore_ascii_case("rack_aware") => RepairPath::RackAware,
            Ok(v) => panic!("EAR_REPAIR_PATH must be `direct` or `rack_aware`, got `{v}`"),
            Err(_) => RepairPath::Direct,
        }
    }

    /// Stable lowercase label (`"direct"` / `"rack_aware"`) for stats and
    /// bench output.
    pub fn name(self) -> &'static str {
        match self {
            RepairPath::Direct => "direct",
            RepairPath::RackAware => "rack_aware",
        }
    }
}

/// Durability knobs of a cluster (DESIGN.md §13).
///
/// With `data_dir` unset (the default) the cluster is volatile, exactly as
/// before the durability layer existed: NameNode metadata lives only in
/// memory and DataNode stores use throwaway temp roots. With `data_dir`
/// set, NameNode mutations are written ahead to a CRC32C-framed log under
/// `<data_dir>/meta/` before they are acknowledged, checkpoints compact
/// that log, and DataNode stores live under `<data_dir>/nodes/n<i>/` and
/// survive a drop + reopen.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurabilityConfig {
    /// Root directory of the persistent cluster state; `None` = volatile.
    pub data_dir: Option<std::path::PathBuf>,
    /// Whether WAL appends and store commits fsync before acknowledging.
    /// Defaults to `true`; benchmarks may disable it to measure the
    /// fsync cost itself.
    pub sync_writes: bool,
    /// Number of WAL records between automatic checkpoints.
    pub checkpoint_every: u64,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        DurabilityConfig {
            data_dir: None,
            sync_writes: true,
            checkpoint_every: 256,
        }
    }
}

impl DurabilityConfig {
    /// A durable configuration rooted at `dir` with default knobs.
    pub fn at(dir: impl Into<std::path::PathBuf>) -> Self {
        DurabilityConfig {
            data_dir: Some(dir.into()),
            ..DurabilityConfig::default()
        }
    }

    /// Whether the cluster persists state across restarts.
    pub fn is_durable(&self) -> bool {
        self.data_dir.is_some()
    }
}

/// The DataNode-side block cache configuration (DESIGN.md §12).
///
/// Selected per cluster through `ClusterConfig.cache`; the conventional
/// default is [`CacheConfig::from_env`], which reads the `EAR_CACHE`
/// environment variable so the whole test suite can be flipped between
/// cached and uncached reads without code changes (mirroring `EAR_STORE`).
///
/// Accepted forms:
///
/// * `off` — no cache; every read goes to the [`StoreBackend`] and is
///   CRC32C-verified.
/// * `<hot>,<cold>` — byte capacities of the hot (LRU) and cold (clock)
///   levels, each a plain integer with an optional `k`/`m`/`g` binary
///   suffix, e.g. `EAR_CACHE=4m,16m`.
///
/// Unset defaults to [`CacheConfig::default`] (8 MiB hot, 32 MiB cold per
/// node — comfortably larger than the testbed working sets so cache-hot
/// benchmarks measure the hit path, small enough that eviction still
/// exercises under soak workloads).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CacheConfig {
    /// Caching disabled: reads always hit the store and re-verify.
    Off,
    /// Two-level cache with per-level byte capacities.
    Sized {
        /// Capacity of the hot (LRU) level in bytes.
        hot_bytes: u64,
        /// Capacity of the cold (clock) level in bytes.
        cold_bytes: u64,
    },
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig::Sized {
            hot_bytes: 8 << 20,
            cold_bytes: 32 << 20,
        }
    }
}

impl CacheConfig {
    /// Reads the configuration from the `EAR_CACHE` environment variable.
    ///
    /// # Panics
    ///
    /// Panics on an unrecognised value: a typo silently falling back to the
    /// default would invalidate a "tested with the cache off" claim, exactly
    /// as [`StoreBackend::from_env`] treats `EAR_STORE`.
    pub fn from_env() -> Self {
        match std::env::var("EAR_CACHE") {
            Ok(v) => match Self::parse(&v) {
                Some(cfg) => cfg,
                None => panic!("EAR_CACHE must be `off` or `<hot>,<cold>` byte sizes, got `{v}`"),
            },
            Err(_) => CacheConfig::default(),
        }
    }

    /// Parses `off` or `<hot>,<cold>` (sizes accept `k`/`m`/`g` binary
    /// suffixes). Returns `None` on malformed input.
    pub fn parse(s: &str) -> Option<Self> {
        let s = s.trim();
        if s.eq_ignore_ascii_case("off") {
            return Some(CacheConfig::Off);
        }
        let (hot, cold) = s.split_once(',')?;
        Some(CacheConfig::Sized {
            hot_bytes: parse_size(hot)?,
            cold_bytes: parse_size(cold)?,
        })
    }

    /// Whether caching is disabled.
    #[inline]
    pub fn is_off(&self) -> bool {
        matches!(self, CacheConfig::Off)
    }

    /// Hot-level capacity in bytes (0 when off).
    pub fn hot_bytes(&self) -> u64 {
        match *self {
            CacheConfig::Off => 0,
            CacheConfig::Sized { hot_bytes, .. } => hot_bytes,
        }
    }

    /// Cold-level capacity in bytes (0 when off).
    pub fn cold_bytes(&self) -> u64 {
        match *self {
            CacheConfig::Off => 0,
            CacheConfig::Sized { cold_bytes, .. } => cold_bytes,
        }
    }

    /// Stable label (`"off"` / `"<hot>,<cold>"`) for stats and bench output.
    pub fn label(&self) -> String {
        match *self {
            CacheConfig::Off => "off".to_string(),
            CacheConfig::Sized {
                hot_bytes,
                cold_bytes,
            } => format!("{hot_bytes},{cold_bytes}"),
        }
    }
}

/// Parses a byte size: a plain integer with an optional case-insensitive
/// `k`/`m`/`g` binary suffix (`4m` = 4 MiB).
fn parse_size(s: &str) -> Option<u64> {
    let s = s.trim();
    let (digits, shift) = match s.as_bytes().last()? {
        b'k' | b'K' => (&s[..s.len() - 1], 10u32),
        b'm' | b'M' => (&s[..s.len() - 1], 20),
        b'g' | b'G' => (&s[..s.len() - 1], 30),
        _ => (s, 0),
    };
    let n: u64 = digits.trim().parse().ok()?;
    n.checked_shl(shift)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erasure_params_validation() {
        assert!(ErasureParams::new(5, 4).is_ok());
        assert!(ErasureParams::new(5, 5).is_err());
        assert!(ErasureParams::new(5, 0).is_err());
        assert!(ErasureParams::new(256, 100).is_err());
    }

    #[test]
    fn erasure_params_accessors() {
        let p = ErasureParams::new(12, 10).unwrap();
        assert_eq!(p.n(), 12);
        assert_eq!(p.k(), 10);
        assert_eq!(p.parity(), 2);
        assert!((p.overhead() - 1.2).abs() < 1e-12);
    }

    #[test]
    fn replication_config_validation() {
        assert!(ReplicationConfig::new(3, RackSpread::TwoRacks).is_ok());
        assert!(ReplicationConfig::new(0, RackSpread::TwoRacks).is_err());
        assert!(ReplicationConfig::new(1, RackSpread::TwoRacks).is_err());
        assert!(ReplicationConfig::new(1, RackSpread::DistinctRacks).is_ok());
    }

    #[test]
    fn racks_spanned() {
        assert_eq!(ReplicationConfig::hdfs_default().racks_spanned(), 2);
        assert_eq!(
            ReplicationConfig::new(5, RackSpread::DistinctRacks)
                .unwrap()
                .racks_spanned(),
            5
        );
        assert_eq!(ReplicationConfig::two_way().racks_spanned(), 2);
    }

    #[test]
    fn ear_config_rack_tolerance() {
        let p = ErasureParams::new(14, 10).unwrap();
        let r = ReplicationConfig::hdfs_default();
        let cfg = EarConfig::new(p, r, 1).unwrap();
        assert_eq!(cfg.tolerable_rack_failures(), 4);
        assert_eq!(cfg.min_racks_for_stripe(), 14);

        let cfg2 = EarConfig::new(p, r, 2).unwrap();
        assert_eq!(cfg2.tolerable_rack_failures(), 2);
        assert_eq!(cfg2.min_racks_for_stripe(), 7);
    }

    #[test]
    fn store_backend_labels_and_default() {
        // No env mutation here: tests run in parallel and `EAR_STORE` is the
        // suite-wide backend switch.
        assert_eq!(StoreBackend::default(), StoreBackend::Memory);
        assert_eq!(StoreBackend::Memory.name(), "memory");
        assert_eq!(StoreBackend::File.name(), "file");
        assert_eq!(StoreBackend::Extent.name(), "extent");
        assert!(!StoreBackend::Memory.is_durable());
        assert!(StoreBackend::File.is_durable());
        assert!(StoreBackend::Extent.is_durable());
    }

    #[test]
    fn durability_config_defaults_to_volatile() {
        let d = DurabilityConfig::default();
        assert!(!d.is_durable());
        assert!(d.sync_writes);
        assert_eq!(d.checkpoint_every, 256);
        let d = DurabilityConfig::at("/tmp/ear-data");
        assert!(d.is_durable());
        assert_eq!(
            d.data_dir.as_deref(),
            Some(std::path::Path::new("/tmp/ear-data"))
        );
    }

    #[test]
    fn cache_config_parses_and_labels() {
        // No env mutation here: tests run in parallel and `EAR_CACHE` is the
        // suite-wide cache switch.
        assert_eq!(CacheConfig::parse("off"), Some(CacheConfig::Off));
        assert_eq!(CacheConfig::parse("OFF"), Some(CacheConfig::Off));
        assert_eq!(
            CacheConfig::parse("4096,65536"),
            Some(CacheConfig::Sized {
                hot_bytes: 4096,
                cold_bytes: 65536
            })
        );
        assert_eq!(
            CacheConfig::parse("4m, 16M"),
            Some(CacheConfig::Sized {
                hot_bytes: 4 << 20,
                cold_bytes: 16 << 20
            })
        );
        assert_eq!(
            CacheConfig::parse("1k,1g"),
            Some(CacheConfig::Sized {
                hot_bytes: 1 << 10,
                cold_bytes: 1 << 30
            })
        );
        assert_eq!(CacheConfig::parse("on"), None);
        assert_eq!(CacheConfig::parse("4m"), None, "both levels are required");
        assert_eq!(CacheConfig::parse("x,4m"), None);
        assert!(CacheConfig::Off.is_off());
        assert_eq!(CacheConfig::Off.label(), "off");
        assert_eq!(CacheConfig::Off.hot_bytes(), 0);
        let d = CacheConfig::default();
        assert!(!d.is_off());
        assert_eq!(d.hot_bytes(), 8 << 20);
        assert_eq!(d.cold_bytes(), 32 << 20);
        assert_eq!(d.label(), format!("{},{}", 8 << 20, 32 << 20));
    }

    #[test]
    fn ear_config_validation() {
        let p = ErasureParams::new(6, 3).unwrap();
        let r = ReplicationConfig::hdfs_default();
        assert!(EarConfig::new(p, r, 0).is_err());
        assert!(EarConfig::new(p, r, 6).is_err());
        // Section III-D example: (6,3), c = 3, R' = 2 target racks.
        let cfg = EarConfig::new(p, r, 3)
            .unwrap()
            .with_target_racks(2)
            .unwrap();
        assert_eq!(cfg.target_racks(), Some(2));
        assert_eq!(cfg.tolerable_rack_failures(), 1);
        // R' * c < n is rejected.
        assert!(EarConfig::new(p, r, 2)
            .unwrap()
            .with_target_racks(2)
            .is_err());
    }
}
