//! Error type shared by the EAR crates.

use crate::ids::{BlockId, NodeId};
use std::fmt;

/// Convenient alias for `Result<T, ear_types::Error>`.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced while validating configurations or computing placements.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// Erasure-coding parameters are invalid (e.g. `k >= n` or `k == 0`).
    InvalidErasureParams {
        /// Total number of blocks per stripe.
        n: usize,
        /// Number of data blocks per stripe.
        k: usize,
        /// Human-readable reason.
        reason: &'static str,
    },
    /// A replication configuration is invalid (e.g. zero replicas).
    InvalidReplication {
        /// Human-readable reason.
        reason: &'static str,
    },
    /// The topology cannot host the requested placement
    /// (e.g. `R < ceil(n / c)` so a stripe cannot fit, or not enough nodes).
    TopologyTooSmall {
        /// Human-readable reason.
        reason: String,
    },
    /// The placement algorithm exhausted its retry budget without finding a
    /// layout whose flow graph admits a maximum matching.
    PlacementExhausted {
        /// Index of the data block (0-based) whose layout could not be fixed.
        block_index: usize,
        /// Number of layouts tried.
        attempts: usize,
    },
    /// Erasure decode was asked to reconstruct from fewer than `k` shards.
    NotEnoughShards {
        /// Shards available.
        available: usize,
        /// Shards required (`k`).
        required: usize,
    },
    /// Shards passed to encode/decode have inconsistent lengths.
    ShardLengthMismatch,
    /// A generic invariant violation with context.
    Invariant(String),
    /// A datanode (or its whole rack) is down and cannot serve the request.
    NodeDown {
        /// The unavailable node.
        node: NodeId,
    },
    /// A block read failed checksum verification on a node.
    CorruptBlock {
        /// The block whose stored bytes no longer match their checksum.
        block: BlockId,
        /// The node that served the corrupt copy.
        node: NodeId,
    },
    /// An operation kept failing after its whole retry budget was spent.
    RetriesExhausted {
        /// What was being attempted (e.g. `"download"`).
        what: &'static str,
        /// Number of attempts made before giving up.
        attempts: usize,
    },
    /// No live, uncorrupted replica of a block could be found anywhere.
    BlockUnavailable {
        /// The block that could not be served.
        block: BlockId,
    },
    /// A single I/O attempt failed transiently; retrying may succeed.
    TransientIo {
        /// The node whose I/O attempt failed.
        node: NodeId,
    },
    /// Repair could not place a new copy of a block anywhere: every
    /// candidate destination is dead, already holds a copy, or would break
    /// the stripe's rack-level fault tolerance.
    NoRepairDestination {
        /// The block that could not be re-placed.
        block: BlockId,
    },
    /// The background healer exhausted its round budget with degraded
    /// blocks still outstanding.
    HealerStalled {
        /// Rounds executed before giving up.
        rounds: usize,
        /// Repair tasks still queued when the healer stopped.
        outstanding: usize,
    },
    /// A host-level storage operation failed (file-backed block store:
    /// create/read/write/rename under the temp root).
    Io {
        /// What the storage layer was doing when the host call failed.
        context: String,
    },
    /// A `std::sync` lock was poisoned: a thread panicked while holding it,
    /// so the protected state may be inconsistent. Surfaced as a typed error
    /// instead of a cascading panic (DESIGN.md §11).
    LockPoisoned {
        /// Which lock was poisoned (e.g. `"failure detector"`).
        what: &'static str,
    },
    /// A durable operation (reopen from disk, checkpoint) was requested on
    /// a backend that cannot persist state across restarts.
    NotDurable {
        /// The non-durable backend (e.g. `"memory"`).
        backend: &'static str,
    },
    /// Durable metadata (write-ahead log or checkpoint) is corrupt beyond
    /// the torn-tail window that recovery tolerates: a record passed its
    /// CRC but cannot be decoded, or a checkpoint body fails verification.
    WalCorrupt {
        /// Where the corruption was detected.
        context: String,
    },
    /// The admission gate shed this operation: the cluster is over its
    /// concurrency limit for the op's class and everything below it in
    /// priority (client read > client write > heal > encode).
    Overloaded {
        /// The op class that was shed (e.g. `"heal"`).
        class: &'static str,
    },
    /// The operation's virtual-clock deadline expired before it completed.
    DeadlineExceeded {
        /// What was being attempted (e.g. `"read"`).
        what: &'static str,
        /// The deadline, in virtual-clock ticks.
        deadline_ticks: u64,
    },
    /// The op class's retry token bucket ran dry: retries across the whole
    /// class — not just this call — have exceeded their budget, so backing
    /// off is pointless until the bucket refills.
    RetryBudgetExhausted {
        /// The op class whose bucket ran dry (e.g. `"encode"`).
        class: &'static str,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidErasureParams { n, k, reason } => {
                write!(f, "invalid erasure parameters (n={n}, k={k}): {reason}")
            }
            Error::InvalidReplication { reason } => {
                write!(f, "invalid replication configuration: {reason}")
            }
            Error::TopologyTooSmall { reason } => {
                write!(f, "topology cannot host the placement: {reason}")
            }
            Error::PlacementExhausted {
                block_index,
                attempts,
            } => write!(
                f,
                "no feasible replica layout for data block {block_index} after {attempts} attempts"
            ),
            Error::NotEnoughShards {
                available,
                required,
            } => write!(
                f,
                "cannot reconstruct stripe: {available} shards available, {required} required"
            ),
            Error::ShardLengthMismatch => write!(f, "shards have inconsistent lengths"),
            Error::Invariant(msg) => write!(f, "invariant violation: {msg}"),
            Error::NodeDown { node } => write!(f, "{node} is down"),
            Error::CorruptBlock { block, node } => {
                write!(f, "{block} failed checksum verification on {node}")
            }
            Error::RetriesExhausted { what, attempts } => {
                write!(f, "{what} still failing after {attempts} attempts")
            }
            Error::BlockUnavailable { block } => {
                write!(f, "no live replica of {block} available")
            }
            Error::TransientIo { node } => {
                write!(f, "transient i/o error on {node}")
            }
            Error::NoRepairDestination { block } => {
                write!(f, "no valid repair destination for {block}")
            }
            Error::HealerStalled {
                rounds,
                outstanding,
            } => {
                write!(
                    f,
                    "healer stalled after {rounds} round(s) with {outstanding} repair task(s) outstanding"
                )
            }
            Error::Io { context } => write!(f, "storage i/o failed: {context}"),
            Error::LockPoisoned { what } => {
                write!(f, "{what} lock poisoned by a panicked thread")
            }
            Error::NotDurable { backend } => {
                write!(f, "{backend} backend cannot persist state across restarts")
            }
            Error::WalCorrupt { context } => {
                write!(f, "durable metadata corrupt: {context}")
            }
            Error::Overloaded { class } => {
                write!(f, "overloaded: {class} operation shed by admission control")
            }
            Error::DeadlineExceeded {
                what,
                deadline_ticks,
            } => {
                write!(f, "{what} missed its {deadline_ticks}-tick deadline")
            }
            Error::RetryBudgetExhausted { class } => {
                write!(f, "retry budget exhausted for {class} operations")
            }
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        assert_send_sync::<Error>();
    }

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs = [
            Error::InvalidErasureParams {
                n: 4,
                k: 6,
                reason: "k must be less than n",
            },
            Error::InvalidReplication {
                reason: "at least one replica required",
            },
            Error::TopologyTooSmall {
                reason: "need 14 racks".into(),
            },
            Error::PlacementExhausted {
                block_index: 3,
                attempts: 100,
            },
            Error::NotEnoughShards {
                available: 2,
                required: 4,
            },
            Error::ShardLengthMismatch,
            Error::Invariant("x".into()),
            Error::NodeDown { node: NodeId(3) },
            Error::CorruptBlock {
                block: BlockId(9),
                node: NodeId(1),
            },
            Error::RetriesExhausted {
                what: "download",
                attempts: 5,
            },
            Error::BlockUnavailable { block: BlockId(2) },
            Error::TransientIo { node: NodeId(0) },
            Error::NoRepairDestination { block: BlockId(4) },
            Error::HealerStalled {
                rounds: 16,
                outstanding: 2,
            },
            Error::Io {
                context: "write /tmp/ear-store/0.blk".into(),
            },
            Error::NotDurable { backend: "memory" },
            Error::WalCorrupt {
                context: "checkpoint payload crc mismatch".into(),
            },
            Error::Overloaded { class: "heal" },
            Error::DeadlineExceeded {
                what: "read",
                deadline_ticks: 50_000,
            },
            Error::RetryBudgetExhausted { class: "encode" },
        ];
        for e in errs {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
        }
    }
}
