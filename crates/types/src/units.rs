//! Physical units: data sizes and link bandwidths.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A size in bytes.
///
/// ```
/// use ear_types::ByteSize;
/// let block = ByteSize::mib(64); // HDFS default block size
/// assert_eq!(block.as_u64(), 64 * 1024 * 1024);
/// assert_eq!((block + ByteSize::mib(64)).as_u64(), 128 * 1024 * 1024);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ByteSize(u64);

impl ByteSize {
    /// Zero bytes.
    pub const ZERO: ByteSize = ByteSize(0);

    /// Creates a size from raw bytes.
    #[inline]
    pub const fn bytes(b: u64) -> Self {
        ByteSize(b)
    }

    /// Creates a size from kibibytes.
    #[inline]
    pub const fn kib(k: u64) -> Self {
        ByteSize(k * 1024)
    }

    /// Creates a size from mebibytes.
    #[inline]
    pub const fn mib(m: u64) -> Self {
        ByteSize(m * 1024 * 1024)
    }

    /// Creates a size from gibibytes.
    #[inline]
    pub const fn gib(g: u64) -> Self {
        ByteSize(g * 1024 * 1024 * 1024)
    }

    /// The raw byte count.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// The byte count as `f64`, for rate arithmetic.
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// The byte count as mebibytes, for reporting throughput in MB/s as the
    /// paper does.
    pub fn as_mib(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0)
    }
}

impl Add for ByteSize {
    type Output = ByteSize;
    fn add(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0 + rhs.0)
    }
}

impl AddAssign for ByteSize {
    fn add_assign(&mut self, rhs: ByteSize) {
        self.0 += rhs.0;
    }
}

impl Sub for ByteSize {
    type Output = ByteSize;
    fn sub(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const KIB: u64 = 1024;
        const MIB: u64 = 1024 * KIB;
        const GIB: u64 = 1024 * MIB;
        if self.0 >= GIB && self.0.is_multiple_of(GIB) {
            write!(f, "{}GiB", self.0 / GIB)
        } else if self.0 >= MIB && self.0.is_multiple_of(MIB) {
            write!(f, "{}MiB", self.0 / MIB)
        } else if self.0 >= KIB && self.0.is_multiple_of(KIB) {
            write!(f, "{}KiB", self.0 / KIB)
        } else {
            write!(f, "{}B", self.0)
        }
    }
}

/// A link bandwidth in bytes per second.
///
/// The paper quotes link speeds in Gb/s (bits); [`Bandwidth::gbit`] performs
/// the bits→bytes conversion so callers can mirror the paper's parameters
/// directly.
///
/// ```
/// use ear_types::{Bandwidth, ByteSize};
/// let link = Bandwidth::gbit(1.0); // 1 Gb/s Ethernet
/// let t = link.transfer_seconds(ByteSize::mib(64));
/// assert!((t - 0.536870912).abs() < 1e-9); // 64 MiB over 125 MB/s
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Bandwidth(f64);

impl Bandwidth {
    /// Creates a bandwidth from bytes per second.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is not finite and positive.
    pub fn bytes_per_sec(bytes_per_sec: f64) -> Self {
        assert!(
            bytes_per_sec.is_finite() && bytes_per_sec > 0.0,
            "bandwidth must be finite and positive"
        );
        Bandwidth(bytes_per_sec)
    }

    /// Creates a bandwidth from gigabits per second (decimal, as quoted for
    /// Ethernet links: 1 Gb/s = 125,000,000 bytes/s).
    pub fn gbit(gbps: f64) -> Self {
        Self::bytes_per_sec(gbps * 1e9 / 8.0)
    }

    /// Creates a bandwidth from megabits per second.
    pub fn mbit(mbps: f64) -> Self {
        Self::bytes_per_sec(mbps * 1e6 / 8.0)
    }

    /// Bytes per second.
    #[inline]
    pub fn as_bytes_per_sec(self) -> f64 {
        self.0
    }

    /// Seconds needed to move `size` at this rate, ignoring queueing.
    pub fn transfer_seconds(self, size: ByteSize) -> f64 {
        size.as_f64() / self.0
    }

    /// Scales the bandwidth by a factor (e.g. to model over-subscription).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not finite and positive.
    pub fn scaled(self, factor: f64) -> Self {
        Self::bytes_per_sec(self.0 * factor)
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let gbps = self.0 * 8.0 / 1e9;
        if gbps >= 0.1 {
            write!(f, "{gbps:.2}Gb/s")
        } else {
            write!(f, "{:.1}Mb/s", self.0 * 8.0 / 1e6)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_size_constructors() {
        assert_eq!(ByteSize::kib(2).as_u64(), 2048);
        assert_eq!(ByteSize::mib(1).as_u64(), 1 << 20);
        assert_eq!(ByteSize::gib(1).as_u64(), 1 << 30);
        assert_eq!(ByteSize::ZERO.as_u64(), 0);
    }

    #[test]
    fn byte_size_arithmetic() {
        let a = ByteSize::mib(3);
        let b = ByteSize::mib(1);
        assert_eq!((a - b).as_u64(), ByteSize::mib(2).as_u64());
        // Subtraction saturates rather than underflowing.
        assert_eq!((b - a).as_u64(), 0);
        let mut c = ByteSize::ZERO;
        c += ByteSize::bytes(10);
        assert_eq!(c.as_u64(), 10);
    }

    #[test]
    fn byte_size_display() {
        assert_eq!(ByteSize::bytes(512).to_string(), "512B");
        assert_eq!(ByteSize::kib(4).to_string(), "4KiB");
        assert_eq!(ByteSize::mib(64).to_string(), "64MiB");
        assert_eq!(ByteSize::gib(2).to_string(), "2GiB");
    }

    #[test]
    fn bandwidth_conversions() {
        let g = Bandwidth::gbit(1.0);
        assert!((g.as_bytes_per_sec() - 1.25e8).abs() < 1.0);
        let m = Bandwidth::mbit(800.0);
        assert!((m.as_bytes_per_sec() - 1e8).abs() < 1.0);
        assert!((g.scaled(0.5).as_bytes_per_sec() - 6.25e7).abs() < 1.0);
    }

    #[test]
    fn bandwidth_display() {
        assert_eq!(Bandwidth::gbit(1.0).to_string(), "1.00Gb/s");
        assert_eq!(Bandwidth::mbit(50.0).to_string(), "50.0Mb/s");
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn bandwidth_rejects_zero() {
        let _ = Bandwidth::bytes_per_sec(0.0);
    }
}
