//! Strongly-typed identifiers for cluster entities.
//!
//! Newtypes keep node, rack, block, and stripe indices from being confused
//! with one another (C-NEWTYPE): a [`NodeId`] cannot be passed where a
//! [`RackId`] is expected.

use std::fmt;

/// Identifier of a storage node (a DataNode in HDFS terms).
///
/// Node ids are dense indices `0..num_nodes` assigned by a
/// [`ClusterTopology`](crate::ClusterTopology).
///
/// ```
/// use ear_types::NodeId;
/// let n = NodeId(7);
/// assert_eq!(n.index(), 7);
/// assert_eq!(n.to_string(), "node7");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u32);

/// Identifier of a rack: a group of nodes behind one top-of-rack switch.
///
/// Rack ids are dense indices `0..num_racks`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RackId(pub u32);

/// Identifier of a fixed-size data block (the CFS read/write unit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BlockId(pub u64);

/// Identifier of an erasure-coded stripe of `n` blocks (`k` data + `n-k`
/// parity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct StripeId(pub u64);

impl NodeId {
    /// The raw index as `usize`, for indexing into per-node vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl RackId {
    /// The raw index as `usize`, for indexing into per-rack vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl BlockId {
    /// The raw index as `usize`, for indexing into per-block vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl StripeId {
    /// The raw index as `usize`, for indexing into per-stripe vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<u32> for RackId {
    fn from(v: u32) -> Self {
        RackId(v)
    }
}

impl From<u64> for BlockId {
    fn from(v: u64) -> Self {
        BlockId(v)
    }
}

impl From<u64> for StripeId {
    fn from(v: u64) -> Self {
        StripeId(v)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

impl fmt::Display for RackId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rack{}", self.0)
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "block{}", self.0)
    }
}

impl fmt::Display for StripeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stripe{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_are_ordered_and_hashable() {
        let mut set = HashSet::new();
        set.insert(NodeId(1));
        set.insert(NodeId(1));
        set.insert(NodeId(2));
        assert_eq!(set.len(), 2);
        assert!(NodeId(1) < NodeId(2));
    }

    #[test]
    fn display_formats() {
        assert_eq!(NodeId(3).to_string(), "node3");
        assert_eq!(RackId(4).to_string(), "rack4");
        assert_eq!(BlockId(5).to_string(), "block5");
        assert_eq!(StripeId(6).to_string(), "stripe6");
    }

    #[test]
    fn from_raw_roundtrip() {
        assert_eq!(NodeId::from(9u32).index(), 9);
        assert_eq!(RackId::from(9u32).index(), 9);
        assert_eq!(BlockId::from(9u64).index(), 9);
        assert_eq!(StripeId::from(9u64).index(), 9);
    }
}
