//! Core identifiers, topology, and configuration types shared by every crate
//! in the EAR (encoding-aware replication) reproduction.
//!
//! This crate is intentionally dependency-free: it defines the vocabulary of
//! the system — [`NodeId`], [`RackId`], [`BlockId`], [`StripeId`], the
//! [`ClusterTopology`], the erasure-coding parameters [`ErasureParams`], the
//! replication policy knobs [`ReplicationConfig`], and the EAR-specific
//! configuration [`EarConfig`] — so that the placement algorithms, the
//! discrete-event simulator, and the testbed emulator all speak the same
//! language.
//!
//! # Example
//!
//! ```
//! use ear_types::{ClusterTopology, ErasureParams, RackId};
//!
//! // A cluster of 5 racks with 6 nodes each, as in the paper's motivating
//! // example (Section II-B).
//! let topo = ClusterTopology::uniform(5, 6);
//! assert_eq!(topo.num_nodes(), 30);
//! assert_eq!(topo.nodes_in_rack(RackId(2)).len(), 6);
//!
//! // (5,4) erasure coding: 4 data blocks + 1 parity block per stripe.
//! let params = ErasureParams::new(5, 4).unwrap();
//! assert_eq!(params.parity(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod block;
mod error;
mod health;
mod ids;
mod params;
mod topology;
mod units;

pub use block::Block;
pub use error::{Error, Result};
pub use health::{HealStats, NodeHealth};
pub use ids::{BlockId, NodeId, RackId, StripeId};
pub use params::{
    CacheConfig, DurabilityConfig, EarConfig, EncodePath, ErasureParams, RackSpread,
    RepairPath, ReplicationConfig, StoreBackend,
};
pub use topology::ClusterTopology;
pub use units::{Bandwidth, ByteSize};
