//! Shared vocabulary of the self-healing control plane: failure-detector
//! states and the statistics a healing run reports.
//!
//! The detector itself (heartbeat bookkeeping, phi computation) lives in
//! `ear-cluster::health`; these types sit here so reports, the CLI, and the
//! experiment harnesses can speak about node health without depending on the
//! cluster emulator.

use std::fmt;

/// Failure-detector state of one DataNode.
///
/// The state machine (DESIGN.md §8):
///
/// ```text
///           phi >= suspect            phi >= dead
///   Live ------------------> Suspect -------------> Dead
///    ^  <------------------    |                     |
///    |      heartbeat          |                     | heartbeat
///    |                         |                     v
///    +---- enough consecutive heartbeats ------- Rejoined
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeHealth {
    /// Heartbeats arriving on schedule.
    Live,
    /// Heartbeats overdue (phi past the suspicion threshold); the node is
    /// deprioritised as a repair source but not yet declared lost.
    Suspect,
    /// Heartbeats overdue past the dead threshold; the node's blocks are
    /// considered lost and queued for repair.
    Dead,
    /// A formerly-dead node resumed heartbeating; it must heartbeat
    /// consecutively for a configured count before being trusted as Live.
    Rejoined,
}

impl fmt::Display for NodeHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NodeHealth::Live => "live",
            NodeHealth::Suspect => "suspect",
            NodeHealth::Dead => "dead",
            NodeHealth::Rejoined => "rejoined",
        };
        write!(f, "{s}")
    }
}

/// Statistics of one background-healing run (one or more healer rounds).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HealStats {
    /// Healer rounds executed.
    pub rounds: usize,
    /// Nodes the failure detector declared dead during the run.
    pub nodes_declared_dead: usize,
    /// Pre-encoding (replicated) blocks brought back to their target
    /// replica count.
    pub blocks_re_replicated: usize,
    /// Encoded-stripe shards rebuilt by degraded reads.
    pub shards_reconstructed: usize,
    /// Replicas checked by the CRC32C scrubber.
    pub blocks_scrubbed: usize,
    /// Replicas the scrubber found silently corrupted (each is dropped and
    /// queued for repair like a lost copy).
    pub scrub_hits: usize,
    /// Total bytes moved by repair traffic (downloads + uploads).
    pub repair_bytes: u64,
    /// Repair bytes that crossed racks — the reliability/performance knob
    /// rack-aware repair scheduling optimises.
    pub cross_rack_repair_bytes: u64,
    /// Rounds from the first observed redundancy loss until the cluster was
    /// back at full redundancy (`None` if nothing ever degraded).
    pub mttr_rounds: Option<usize>,
    /// Wall-clock seconds from the first observed redundancy loss until
    /// full redundancy (`None` if nothing ever degraded).
    pub mttr_seconds: Option<f64>,
    /// Wall-clock duration of the whole healing run, seconds.
    pub wall_seconds: f64,
    /// Whether the run ended with every tracked block at full redundancy.
    pub converged: bool,
    /// The fault-plan seed active during the run (`None` = fault-free).
    pub fault_seed: Option<u64>,
    /// Circuit-breaker trips (node declared Suspect/Dead while its breaker
    /// was closed) observed by the reliability substrate during the run.
    pub breaker_trips: u64,
}

impl HealStats {
    /// One-line rendering for reports: the counters the paper's reliability
    /// argument cares about.
    pub fn summary(&self) -> String {
        format!(
            "rounds={} dead={} re-replicated={} reconstructed={} scrubbed={} \
             scrub-hits={} repair-bytes={} cross-rack-repair-bytes={} breaker-trips={} \
             mttr-rounds={} {}",
            self.rounds,
            self.nodes_declared_dead,
            self.blocks_re_replicated,
            self.shards_reconstructed,
            self.blocks_scrubbed,
            self.scrub_hits,
            self.repair_bytes,
            self.cross_rack_repair_bytes,
            self.breaker_trips,
            self.mttr_rounds
                .map_or_else(|| "-".to_string(), |r| r.to_string()),
            if self.converged {
                "converged"
            } else {
                "STALLED"
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn health_displays_lowercase() {
        for (h, s) in [
            (NodeHealth::Live, "live"),
            (NodeHealth::Suspect, "suspect"),
            (NodeHealth::Dead, "dead"),
            (NodeHealth::Rejoined, "rejoined"),
        ] {
            assert_eq!(h.to_string(), s);
        }
    }

    #[test]
    fn summary_names_the_counters() {
        let mut st = HealStats {
            rounds: 3,
            blocks_re_replicated: 2,
            shards_reconstructed: 1,
            scrub_hits: 4,
            cross_rack_repair_bytes: 65536,
            breaker_trips: 5,
            mttr_rounds: Some(2),
            converged: true,
            ..HealStats::default()
        };
        let s = st.summary();
        assert!(s.contains("re-replicated=2"));
        assert!(s.contains("breaker-trips=5"));
        assert!(s.contains("reconstructed=1"));
        assert!(s.contains("scrub-hits=4"));
        assert!(s.contains("cross-rack-repair-bytes=65536"));
        assert!(s.contains("mttr-rounds=2"));
        assert!(s.contains("converged"));
        st.converged = false;
        st.mttr_rounds = None;
        let s = st.summary();
        assert!(s.contains("STALLED"));
        assert!(s.contains("mttr-rounds=-"));
    }
}
