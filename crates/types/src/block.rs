//! [`Block`]: the shared immutable block buffer of the data plane.
//!
//! Every payload that moves through the cluster — client reads, stripe
//! downloads, parity uploads, repair traffic, cached replicas — is a
//! [`Block`]: a view into a reference-counted immutable byte buffer.
//! Cloning a `Block` copies three words, never the payload, and
//! [`Block::slice`] produces a sub-view over the *same* allocation, so a
//! store can hand out the payload portion of an on-disk image (header +
//! payload) without re-copying the bytes.
//!
//! Compared to the `Arc<Vec<u8>>` it replaces, `Arc<[u8]>` drops one level
//! of pointer indirection (the `Vec`'s own heap header) and makes the
//! buffer immutable by construction: nothing downstream can grow, shrink,
//! or mutate bytes another reader is concurrently verifying.

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, cheaply clonable view into a shared byte buffer.
///
/// ```
/// use ear_types::Block;
///
/// let b = Block::from(vec![1u8, 2, 3, 4, 5]);
/// let tail = b.slice(2, 3).unwrap();
/// assert_eq!(&tail[..], &[3, 4, 5]);
/// assert!(b.shares_buffer(&tail)); // same allocation, no copy
/// ```
#[derive(Clone)]
pub struct Block {
    buf: Arc<[u8]>,
    off: usize,
    len: usize,
}

impl Block {
    /// Wraps an already shared buffer, viewing all of it.
    pub fn from_arc(buf: Arc<[u8]>) -> Self {
        let len = buf.len();
        Block { buf, off: 0, len }
    }

    /// The bytes of this view.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        // In range by construction: every constructor and `slice` upholds
        // `off + len <= buf.len()`.
        &self.buf[self.off..self.off + self.len]
    }

    /// Length of this view in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether this view is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A sub-view of `len` bytes starting at `offset`, sharing the same
    /// allocation (no bytes are copied). Returns `None` if the requested
    /// range does not fit in this view — callers on the panic-free data
    /// plane propagate that as a typed error instead of slicing blind.
    pub fn slice(&self, offset: usize, len: usize) -> Option<Block> {
        let end = offset.checked_add(len)?;
        if end > self.len {
            return None;
        }
        Some(Block {
            buf: Arc::clone(&self.buf),
            off: self.off + offset,
            len,
        })
    }

    /// The sub-view from `offset` to the end (shared allocation).
    pub fn suffix(&self, offset: usize) -> Option<Block> {
        self.slice(offset, self.len.checked_sub(offset)?)
    }

    /// Copies this view out into an owned `Vec` — the boundary into APIs
    /// that genuinely need owned/mutable bytes (e.g. an erasure codec's
    /// shard workspace).
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Whether two blocks view the same underlying allocation (they may
    /// still cover different ranges of it).
    pub fn shares_buffer(&self, other: &Block) -> bool {
        Arc::ptr_eq(&self.buf, &other.buf)
    }

    /// Number of strong references to the underlying allocation — test
    /// hook for "replicas share memory" style assertions.
    pub fn ref_count(&self) -> usize {
        Arc::strong_count(&self.buf)
    }
}

impl From<Vec<u8>> for Block {
    fn from(v: Vec<u8>) -> Self {
        Block::from_arc(Arc::from(v))
    }
}

impl From<&[u8]> for Block {
    fn from(s: &[u8]) -> Self {
        Block::from_arc(Arc::from(s))
    }
}

impl Deref for Block {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Block {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Default for Block {
    fn default() -> Self {
        Block::from_arc(Arc::from([] as [u8; 0]))
    }
}

/// Byte-wise equality of the viewed ranges (not allocation identity).
impl PartialEq for Block {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Block {}

impl std::fmt::Debug for Block {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Payloads are kilobytes to megabytes; print shape, not contents.
        write!(
            f,
            "Block {{ len: {}, off: {}, buf_len: {} }}",
            self.len,
            self.off,
            self.buf.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_and_deref() {
        let b = Block::from(vec![1u8, 2, 3]);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b.as_ref(), &[1, 2, 3]);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
    }

    #[test]
    fn clone_and_slice_share_the_allocation() {
        let b = Block::from(vec![0u8; 64]);
        let c = b.clone();
        assert!(b.shares_buffer(&c));
        assert_eq!(b.ref_count(), 2);
        let s = b.slice(8, 16).unwrap();
        assert!(s.shares_buffer(&b));
        assert_eq!(s.len(), 16);
        drop(c);
        assert_eq!(b.ref_count(), 2); // b + s
    }

    #[test]
    fn slice_bounds_are_checked_not_panicking() {
        let b = Block::from(vec![0u8; 8]);
        assert!(b.slice(0, 8).is_some());
        assert!(b.slice(8, 0).is_some());
        assert!(b.slice(4, 5).is_none());
        assert!(b.slice(9, 0).is_none());
        assert!(b.slice(usize::MAX, 2).is_none(), "offset+len must not overflow");
        assert!(b.suffix(3).is_some_and(|s| s.len() == 5));
        assert!(b.suffix(9).is_none());
    }

    #[test]
    fn nested_slices_compose_offsets() {
        let b = Block::from((0u8..32).collect::<Vec<u8>>());
        let s = b.suffix(4).unwrap(); // bytes 4..32
        let t = s.slice(4, 8).unwrap(); // bytes 8..16 of the original
        assert_eq!(&t[..], &(8u8..16).collect::<Vec<u8>>()[..]);
    }

    #[test]
    fn equality_is_by_bytes_not_identity() {
        let a = Block::from(vec![5u8, 6, 7]);
        let b = Block::from(vec![5u8, 6, 7]);
        assert_eq!(a, b);
        assert!(!a.shares_buffer(&b));
        assert_ne!(a, Block::from(vec![5u8, 6]));
        assert_eq!(Block::default().len(), 0);
    }
}
