//! Replica placement policies for clustered file systems: **random
//! replication (RR)** and **encoding-aware replication (EAR)** — the core
//! contribution of Li, Hu & Lee (DSN 2015).
//!
//! A CFS first writes each block with replication and later encodes groups
//! of `k` blocks into `(n, k)` erasure-coded stripes. RR places each block's
//! replicas independently, which makes the later encoding slow (the encoding
//! node must download almost all `k` blocks across racks) and unsafe
//! (replica deletion can violate rack-level fault tolerance, forcing block
//! relocation). EAR fixes both by placing the `k` blocks of a future stripe
//! jointly: one replica of each block in a common *core rack*, and the rest
//! at random subject to a max-flow feasibility check.
//!
//! # Quickstart
//!
//! ```
//! use ear_core::{EncodingAwareReplication, PlacementPolicy};
//! use ear_types::{ClusterTopology, EarConfig, ErasureParams, ReplicationConfig};
//! use rand::SeedableRng;
//!
//! let topo = ClusterTopology::uniform(8, 4);
//! let cfg = EarConfig::new(
//!     ErasureParams::new(6, 4).unwrap(),
//!     ReplicationConfig::hdfs_default(),
//!     1,
//! ).unwrap();
//! let mut ear = EncodingAwareReplication::new(cfg, topo.clone());
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
//!
//! // Write blocks until a stripe seals, then plan its encoding.
//! let stripe = loop {
//!     if let Some(s) = ear.place_block(&mut rng)?.sealed_stripe {
//!         break s;
//!     }
//! };
//! let plan = ear.plan_encoding(&stripe, &mut rng)?;
//! assert_eq!(plan.cross_rack_downloads(), 0);  // the EAR guarantee
//! assert!(plan.relocations.is_empty());        // and no relocation
//! # Ok::<(), ear_types::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ear;
mod encode;
mod layout;
mod policy;
mod rr;
pub mod sample;

pub use ear::{CoreRackSelection, EarStripeBuilder, EncodingAwareReplication};
pub use encode::{plan_encoding_ear, plan_encoding_rr, EncodingNodeSelection};
pub use layout::{BlockLayout, EncodePlan, StripePlan};
pub use policy::{PlacedBlock, PlacementPolicy, RandomReplicationPolicy};
pub use rr::RandomReplication;
