//! The [`PlacementPolicy`] trait: a uniform interface over random
//! replication and encoding-aware replication, used by the simulators.

use crate::encode::{plan_encoding_ear, plan_encoding_rr, EncodingNodeSelection};
use crate::layout::{BlockLayout, EncodePlan, StripePlan};
use crate::rr::RandomReplication;
use crate::EncodingAwareReplication;
use ear_types::{ClusterTopology, EarConfig, Result};
use rand::RngCore;

/// The result of placing one block through a policy.
#[derive(Debug, Clone)]
pub struct PlacedBlock {
    /// The replica layout chosen for the block.
    pub layout: BlockLayout,
    /// When this block completed a group of `k`, the sealed stripe ready for
    /// encoding.
    pub sealed_stripe: Option<StripePlan>,
}

/// A replica placement policy that also knows how to plan the subsequent
/// encoding operation.
///
/// Object-safe so simulators can swap policies at runtime
/// (`Box<dyn PlacementPolicy>`).
pub trait PlacementPolicy: Send {
    /// Short policy name for reports ("rr" or "ear").
    fn name(&self) -> &'static str;

    /// Places the replicas of the next written block, sealing a stripe when
    /// `k` blocks have accumulated.
    ///
    /// # Errors
    ///
    /// Returns placement errors when the topology cannot host the layout or
    /// the retry budget is exhausted (EAR).
    fn place_block(&mut self, rng: &mut dyn RngCore) -> Result<PlacedBlock>;

    /// Plans the encoding operation for a sealed stripe.
    ///
    /// # Errors
    ///
    /// Returns an error when parity or relocated blocks cannot be placed.
    fn plan_encoding(&self, stripe: &StripePlan, rng: &mut dyn RngCore) -> Result<EncodePlan>;

    /// The configuration in force (shared by both policies so comparisons
    /// are apples-to-apples).
    fn config(&self) -> &EarConfig;
}

/// Random replication as a [`PlacementPolicy`]: blocks are placed
/// independently; every `k` consecutively written blocks form a stripe
/// (Facebook's RaidNode groups blocks this way, Section IV-A).
#[derive(Debug)]
pub struct RandomReplicationPolicy {
    cfg: EarConfig,
    rr: RandomReplication,
    selection: EncodingNodeSelection,
    pending: Vec<BlockLayout>,
}

impl RandomReplicationPolicy {
    /// Creates the policy.
    ///
    /// # Errors
    ///
    /// Returns [`ear_types::Error::TopologyTooSmall`] if the topology cannot
    /// host the replication configuration.
    pub fn new(cfg: EarConfig, topo: ClusterTopology) -> Result<Self> {
        let rr = RandomReplication::new(topo, cfg.replication())?;
        Ok(RandomReplicationPolicy {
            cfg,
            rr,
            selection: EncodingNodeSelection::default(),
            pending: Vec::new(),
        })
    }

    /// Overrides how the encoding node is selected.
    pub fn with_encoding_node_selection(mut self, selection: EncodingNodeSelection) -> Self {
        self.selection = selection;
        self
    }

    /// Blocks written but not yet grouped into a stripe.
    pub fn pending_blocks(&self) -> usize {
        self.pending.len()
    }
}

impl PlacementPolicy for RandomReplicationPolicy {
    fn name(&self) -> &'static str {
        "rr"
    }

    fn place_block(&mut self, rng: &mut dyn RngCore) -> Result<PlacedBlock> {
        let layout = self.rr.place_block(rng);
        self.pending.push(layout.clone());
        let sealed = if self.pending.len() == self.cfg.erasure().k() {
            let layouts = std::mem::take(&mut self.pending);
            let retries = vec![0; layouts.len()];
            Some(StripePlan::new(layouts, None, None, retries))
        } else {
            None
        };
        Ok(PlacedBlock {
            layout,
            sealed_stripe: sealed,
        })
    }

    fn plan_encoding(&self, stripe: &StripePlan, rng: &mut dyn RngCore) -> Result<EncodePlan> {
        plan_encoding_rr(self.rr.topology(), &self.cfg, stripe, self.selection, rng)
    }

    fn config(&self) -> &EarConfig {
        &self.cfg
    }
}

impl PlacementPolicy for EncodingAwareReplication {
    fn name(&self) -> &'static str {
        "ear"
    }

    fn place_block(&mut self, rng: &mut dyn RngCore) -> Result<PlacedBlock> {
        EncodingAwareReplication::place_block(self, rng)
    }

    fn plan_encoding(&self, stripe: &StripePlan, rng: &mut dyn RngCore) -> Result<EncodePlan> {
        plan_encoding_ear(self.topology(), self.config(), stripe, rng)
    }

    fn config(&self) -> &EarConfig {
        EncodingAwareReplication::config(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ear_types::{ErasureParams, ReplicationConfig};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn cfg() -> EarConfig {
        EarConfig::new(
            ErasureParams::new(6, 4).unwrap(),
            ReplicationConfig::hdfs_default(),
            1,
        )
        .unwrap()
    }

    #[test]
    fn rr_policy_seals_every_k_blocks() {
        let topo = ClusterTopology::uniform(8, 4);
        let mut p = RandomReplicationPolicy::new(cfg(), topo).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(41);
        let mut sealed = 0;
        for i in 1..=20 {
            let placed = p.place_block(&mut rng).unwrap();
            if i % 4 == 0 {
                assert!(placed.sealed_stripe.is_some(), "block {i}");
                sealed += 1;
            } else {
                assert!(placed.sealed_stripe.is_none(), "block {i}");
            }
        }
        assert_eq!(sealed, 5);
        assert_eq!(p.pending_blocks(), 0);
    }

    #[test]
    fn policies_are_object_safe_and_comparable() {
        let topo = ClusterTopology::uniform(8, 4);
        let mut policies: Vec<Box<dyn PlacementPolicy>> = vec![
            Box::new(RandomReplicationPolicy::new(cfg(), topo.clone()).unwrap()),
            Box::new(EncodingAwareReplication::new(cfg(), topo.clone())),
        ];
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        for p in &mut policies {
            let mut stripes = Vec::new();
            for _ in 0..100 {
                if let Some(s) = p.place_block(&mut rng).unwrap().sealed_stripe {
                    stripes.push(s);
                }
            }
            assert!(!stripes.is_empty(), "{} produced no stripes", p.name());
            for s in &stripes {
                let plan = p.plan_encoding(s, &mut rng).unwrap();
                assert_eq!(plan.check_fault_tolerance(&topo, p.config().c()), None);
                if p.name() == "ear" {
                    assert_eq!(plan.cross_rack_downloads(), 0);
                    assert!(plan.relocations.is_empty());
                }
            }
        }
    }
}
