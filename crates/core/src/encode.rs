//! Planning the encoding operation: which node encodes a stripe, what it
//! downloads, which replicas survive, where parity lands, and what must be
//! relocated (Section II-A and Section III of the paper).

use crate::layout::{EncodePlan, StripePlan};
use crate::sample;
use ear_flow::max_kept_matching;
use ear_types::{ClusterTopology, EarConfig, Error, NodeId, RackId, Result};
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::{HashMap, HashSet};

/// How the encoding node for a stripe is chosen under random replication.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum EncodingNodeSelection {
    /// A uniformly random node — the paper's model ("the CFS randomly
    /// selects a node to perform the encoding operation", Section II-A).
    #[default]
    Random,
    /// The node whose rack holds the most data blocks of the stripe, an
    /// idealized MapReduce locality optimization (ablation).
    BestLocality,
}

/// Plans the encoding of an EAR-placed stripe (Section III): the encoding
/// node is a random node of the core rack, no cross-rack downloads occur,
/// the kept replicas come from the stripe's maximum matching, and parity
/// blocks go to racks that still have spare stripe capacity.
///
/// # Errors
///
/// Returns [`Error::Invariant`] if the plan lacks a core rack or its flow
/// graph unexpectedly has no complete matching (both impossible for plans
/// produced by [`EncodingAwareReplication`](crate::EncodingAwareReplication)),
/// or [`Error::TopologyTooSmall`] if parity cannot be placed.
pub fn plan_encoding_ear<R: Rng + ?Sized>(
    topo: &ClusterTopology,
    cfg: &EarConfig,
    stripe: &StripePlan,
    rng: &mut R,
) -> Result<EncodePlan> {
    let core = stripe
        .core_rack()
        .ok_or_else(|| Error::Invariant("EAR encoding plan requires a core rack".into()))?;
    let encoding_node = sample::random_node_in_rack(rng, topo, core, &[])
        .ok_or_else(|| Error::Invariant(format!("core {core} has no nodes")))?;

    let node_lists: Vec<Vec<NodeId>> = stripe
        .data_layouts()
        .iter()
        .map(|l| l.replicas.clone())
        .collect();
    let outcome = max_kept_matching(topo, &node_lists, cfg.c(), stripe.target_racks());
    if !outcome.is_complete() {
        return Err(Error::Invariant(
            "EAR stripe has no complete matching; placement invariant broken".into(),
        ));
    }
    let kept_data: Vec<NodeId> = outcome
        .kept
        .into_iter()
        .map(|n| n.expect("complete"))
        .collect();

    // By construction every block has a replica in the core rack, so the
    // encoding node downloads everything intra-rack.
    let cross_rack_sources: Vec<usize> = stripe
        .data_layouts()
        .iter()
        .enumerate()
        .filter(|(_, l)| !l.has_replica_in_rack(topo, core))
        .map(|(i, _)| i)
        .collect();
    debug_assert!(
        cross_rack_sources.is_empty(),
        "EAR stripes always have a core-rack replica per block"
    );

    let parity_nodes = place_parity(
        topo,
        &kept_data,
        cfg.erasure().parity(),
        cfg.c(),
        stripe.target_racks(),
        rng,
    )?;

    Ok(EncodePlan {
        encoding_node,
        cross_rack_sources,
        kept_data,
        parity_nodes,
        relocations: Vec::new(),
    })
}

/// Plans the encoding of an RR-placed stripe (Section II-B): a random node
/// encodes (downloading every block whose replicas are all in other racks),
/// surviving replicas are chosen as favourably as possible (via the same
/// maximum matching EAR uses — a charitable baseline), and any block that
/// still cannot satisfy the rack constraint is relocated, reproducing the
/// PlacementMonitor/BlockMover behaviour of Facebook's HDFS.
///
/// # Errors
///
/// Returns [`Error::TopologyTooSmall`] if parity or relocated blocks cannot
/// be placed anywhere.
pub fn plan_encoding_rr<R: Rng + ?Sized>(
    topo: &ClusterTopology,
    cfg: &EarConfig,
    stripe: &StripePlan,
    selection: EncodingNodeSelection,
    rng: &mut R,
) -> Result<EncodePlan> {
    let node_lists: Vec<Vec<NodeId>> = stripe
        .data_layouts()
        .iter()
        .map(|l| l.replicas.clone())
        .collect();

    let encoding_node = match selection {
        EncodingNodeSelection::Random => {
            let all: Vec<NodeId> = topo.nodes().collect();
            *all.choose(rng).expect("topology has nodes")
        }
        EncodingNodeSelection::BestLocality => {
            let mut per_rack: HashMap<RackId, usize> = HashMap::new();
            for l in stripe.data_layouts() {
                for r in l.racks(topo) {
                    *per_rack.entry(r).or_insert(0) += 1;
                }
            }
            let best_rack = per_rack
                .into_iter()
                .max_by_key(|&(r, count)| (count, std::cmp::Reverse(r)))
                .map(|(r, _)| r)
                .expect("stripe has blocks");
            sample::random_node_in_rack(rng, topo, best_rack, &[]).expect("non-empty rack")
        }
    };
    let enc_rack = topo.rack_of(encoding_node);
    let cross_rack_sources: Vec<usize> = stripe
        .data_layouts()
        .iter()
        .enumerate()
        .filter(|(_, l)| !l.has_replica_in_rack(topo, enc_rack))
        .map(|(i, _)| i)
        .collect();

    // Keep replicas as favourably as possible.
    let outcome = max_kept_matching(topo, &node_lists, cfg.c(), None);
    let mut kept_data = Vec::with_capacity(node_lists.len());
    let mut unmatched = Vec::new();
    for (i, kept) in outcome.kept.iter().enumerate() {
        match kept {
            Some(node) => kept_data.push(*node),
            None => {
                // Keep an arbitrary replica for now; it will be relocated.
                kept_data.push(node_lists[i][0]);
                unmatched.push(i);
            }
        }
    }

    // Relocate unmatched blocks to racks with spare capacity
    // (BlockMover, Section II-B).
    let mut relocations = Vec::new();
    let mut used_nodes: HashSet<NodeId> = outcome.kept.iter().flatten().copied().collect();
    let mut rack_load: HashMap<RackId, usize> = HashMap::new();
    for node in &used_nodes {
        *rack_load.entry(topo.rack_of(*node)).or_insert(0) += 1;
    }
    for &i in &unmatched {
        let to = pick_node_with_capacity(topo, &used_nodes, &rack_load, cfg.c(), None, rng)
            .ok_or_else(|| Error::TopologyTooSmall {
                reason: "no rack has spare capacity for a relocated block".into(),
            })?;
        relocations.push((i, kept_data[i], to));
        used_nodes.insert(to);
        *rack_load.entry(topo.rack_of(to)).or_insert(0) += 1;
    }

    let final_data: Vec<NodeId> = {
        let mut v = kept_data.clone();
        for &(idx, _, to) in &relocations {
            v[idx] = to;
        }
        v
    };
    let parity_nodes = place_parity(
        topo,
        &final_data,
        cfg.erasure().parity(),
        cfg.c(),
        None,
        rng,
    )?;

    Ok(EncodePlan {
        encoding_node,
        cross_rack_sources,
        kept_data,
        parity_nodes,
        relocations,
    })
}

/// Places `m` parity blocks on nodes such that, together with the kept data
/// blocks, no node holds two stripe blocks and no rack exceeds `c`.
fn place_parity<R: Rng + ?Sized>(
    topo: &ClusterTopology,
    kept_data: &[NodeId],
    m: usize,
    c: usize,
    eligible: Option<&[RackId]>,
    rng: &mut R,
) -> Result<Vec<NodeId>> {
    let mut used: HashSet<NodeId> = kept_data.iter().copied().collect();
    let mut rack_load: HashMap<RackId, usize> = HashMap::new();
    for &n in kept_data {
        *rack_load.entry(topo.rack_of(n)).or_insert(0) += 1;
    }
    let mut parity = Vec::with_capacity(m);
    for _ in 0..m {
        let node = pick_node_with_capacity(topo, &used, &rack_load, c, eligible, rng).ok_or_else(
            || Error::TopologyTooSmall {
                reason: format!("cannot place {m} parity blocks with c = {c}"),
            },
        )?;
        used.insert(node);
        *rack_load.entry(topo.rack_of(node)).or_insert(0) += 1;
        parity.push(node);
    }
    Ok(parity)
}

/// Picks a random node in a random rack that still has stripe capacity
/// (`rack_load < c`) and whose node is unused by the stripe.
fn pick_node_with_capacity<R: Rng + ?Sized>(
    topo: &ClusterTopology,
    used: &HashSet<NodeId>,
    rack_load: &HashMap<RackId, usize>,
    c: usize,
    eligible: Option<&[RackId]>,
    rng: &mut R,
) -> Option<NodeId> {
    let mut candidates: Vec<RackId> = match eligible {
        Some(list) => list.to_vec(),
        None => topo.racks().collect(),
    };
    candidates.retain(|r| rack_load.get(r).copied().unwrap_or(0) < c);
    candidates.shuffle(rng);
    for rack in candidates {
        let free: Vec<NodeId> = topo
            .nodes_in_rack(rack)
            .iter()
            .copied()
            .filter(|n| !used.contains(n))
            .collect();
        if let Some(&node) = free.choose(rng) {
            return Some(node);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ear::EarStripeBuilder;
    use crate::layout::BlockLayout;
    use crate::rr::RandomReplication;
    use ear_types::{ErasureParams, ReplicationConfig};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn cfg(n: usize, k: usize, c: usize) -> EarConfig {
        EarConfig::new(
            ErasureParams::new(n, k).unwrap(),
            ReplicationConfig::hdfs_default(),
            c,
        )
        .unwrap()
    }

    fn ear_stripe(
        topo: &ClusterTopology,
        cfg: &EarConfig,
        core: RackId,
        rng: &mut ChaCha8Rng,
    ) -> StripePlan {
        let mut b = EarStripeBuilder::new(cfg, topo, core, rng).unwrap();
        while !b.is_full() {
            b.add_block(topo, cfg, rng).unwrap();
        }
        b.finish()
    }

    fn rr_stripe(topo: &ClusterTopology, cfg: &EarConfig, rng: &mut ChaCha8Rng) -> StripePlan {
        let rr = RandomReplication::new(topo.clone(), cfg.replication()).unwrap();
        let layouts: Vec<BlockLayout> = (0..cfg.erasure().k())
            .map(|_| rr.place_block(rng))
            .collect();
        let retries = vec![0; layouts.len()];
        StripePlan::new(layouts, None, None, retries)
    }

    #[test]
    fn ear_plan_has_zero_cross_rack_downloads_and_no_relocation() {
        let topo = ClusterTopology::uniform(8, 4);
        let cfg = cfg(6, 4, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        for trial in 0..30 {
            let stripe = ear_stripe(&topo, &cfg, RackId(trial % 8), &mut rng);
            let plan = plan_encoding_ear(&topo, &cfg, &stripe, &mut rng).unwrap();
            assert_eq!(plan.cross_rack_downloads(), 0);
            assert!(!plan.violated_rack_fault_tolerance());
            assert_eq!(
                plan.check_fault_tolerance(&topo, cfg.c()),
                None,
                "trial {trial}"
            );
            // The encoding node sits in the core rack.
            assert_eq!(topo.rack_of(plan.encoding_node), RackId(trial % 8));
        }
    }

    #[test]
    fn rr_plan_usually_needs_cross_rack_downloads() {
        let topo = ClusterTopology::uniform(10, 4);
        let cfg = cfg(6, 4, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(32);
        let mut total_cross = 0usize;
        for _ in 0..50 {
            let stripe = rr_stripe(&topo, &cfg, &mut rng);
            let plan = plan_encoding_rr(
                &topo,
                &cfg,
                &stripe,
                EncodingNodeSelection::Random,
                &mut rng,
            )
            .unwrap();
            total_cross += plan.cross_rack_downloads();
            // Post-encode (with relocations applied) the stripe is valid.
            assert_eq!(plan.check_fault_tolerance(&topo, cfg.c()), None);
        }
        // Section II-B: expectation is k - 2k/R = 4 - 0.8 = 3.2 per stripe.
        let avg = total_cross as f64 / 50.0;
        assert!(avg > 2.0, "average cross-rack downloads {avg} too low");
    }

    #[test]
    fn rr_best_locality_reduces_downloads() {
        let topo = ClusterTopology::uniform(10, 4);
        let cfg = cfg(6, 4, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(33);
        let (mut rand_total, mut best_total) = (0usize, 0usize);
        for _ in 0..50 {
            let stripe = rr_stripe(&topo, &cfg, &mut rng);
            let p1 = plan_encoding_rr(
                &topo,
                &cfg,
                &stripe,
                EncodingNodeSelection::Random,
                &mut rng,
            )
            .unwrap();
            let p2 = plan_encoding_rr(
                &topo,
                &cfg,
                &stripe,
                EncodingNodeSelection::BestLocality,
                &mut rng,
            )
            .unwrap();
            rand_total += p1.cross_rack_downloads();
            best_total += p2.cross_rack_downloads();
        }
        assert!(best_total < rand_total);
    }

    #[test]
    fn rr_relocation_occurs_in_small_clusters() {
        // Section III-A: with few racks the probability of violating
        // rack-level fault tolerance is high, so relocations must appear.
        let topo = ClusterTopology::uniform(6, 6);
        let cfg = cfg(6, 4, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(34);
        let mut relocated = 0usize;
        for _ in 0..100 {
            let stripe = rr_stripe(&topo, &cfg, &mut rng);
            let plan = plan_encoding_rr(
                &topo,
                &cfg,
                &stripe,
                EncodingNodeSelection::Random,
                &mut rng,
            )
            .unwrap();
            if plan.violated_rack_fault_tolerance() {
                relocated += 1;
            }
            assert_eq!(plan.check_fault_tolerance(&topo, cfg.c()), None);
        }
        assert!(
            relocated > 0,
            "expected some relocations in a 6-rack cluster"
        );
    }

    #[test]
    fn parity_respects_target_racks() {
        let topo = ClusterTopology::uniform(6, 6);
        let cfg = EarConfig::new(
            ErasureParams::new(6, 3).unwrap(),
            ReplicationConfig::hdfs_default(),
            3,
        )
        .unwrap()
        .with_target_racks(2)
        .unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(35);
        let stripe = ear_stripe(&topo, &cfg, RackId(4), &mut rng);
        let plan = plan_encoding_ear(&topo, &cfg, &stripe, &mut rng).unwrap();
        let targets = stripe.target_racks().unwrap();
        for &p in &plan.parity_nodes {
            assert!(targets.contains(&topo.rack_of(p)));
        }
        for &d in &plan.kept_data {
            assert!(targets.contains(&topo.rack_of(d)));
        }
        assert_eq!(plan.check_fault_tolerance(&topo, cfg.c()), None);
    }

    #[test]
    fn parity_placement_fails_when_capacity_exhausted() {
        // 3 racks, c = 1, (5,3): stripe needs 5 racks.
        let topo = ClusterTopology::uniform(3, 4);
        let kept = vec![NodeId(0), NodeId(4), NodeId(8)];
        let mut rng = ChaCha8Rng::seed_from_u64(36);
        let err = place_parity(&topo, &kept, 2, 1, None, &mut rng).unwrap_err();
        assert!(matches!(err, Error::TopologyTooSmall { .. }));
    }

    #[test]
    fn kept_replicas_are_actual_replicas() {
        let topo = ClusterTopology::uniform(8, 4);
        let cfg = cfg(6, 4, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(37);
        let stripe = ear_stripe(&topo, &cfg, RackId(2), &mut rng);
        let plan = plan_encoding_ear(&topo, &cfg, &stripe, &mut rng).unwrap();
        for (i, &kept) in plan.kept_data.iter().enumerate() {
            assert!(stripe.data_layouts()[i].replicas.contains(&kept));
        }
    }
}
