//! Replica layouts and stripe placement records.

use ear_types::{ClusterTopology, NodeId, RackId};
use std::collections::{HashMap, HashSet};

/// Where the replicas of one data block live, in placement order:
/// `replicas[0]` is the *first* replica (in EAR, the copy in the core rack).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockLayout {
    /// Nodes holding replicas, in placement order. Nodes are distinct.
    pub replicas: Vec<NodeId>,
}

impl BlockLayout {
    /// Creates a layout, checking that replica nodes are distinct.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is empty or contains duplicates.
    pub fn new(replicas: Vec<NodeId>) -> Self {
        assert!(!replicas.is_empty(), "a block needs at least one replica");
        let unique: HashSet<_> = replicas.iter().collect();
        assert_eq!(
            unique.len(),
            replicas.len(),
            "replicas must be on distinct nodes"
        );
        BlockLayout { replicas }
    }

    /// The first replica's node.
    pub fn primary(&self) -> NodeId {
        self.replicas[0]
    }

    /// The set of racks spanned by the replicas.
    pub fn racks(&self, topo: &ClusterTopology) -> HashSet<RackId> {
        self.replicas.iter().map(|&n| topo.rack_of(n)).collect()
    }

    /// Whether some replica lives in `rack`.
    pub fn has_replica_in_rack(&self, topo: &ClusterTopology, rack: RackId) -> bool {
        self.replicas.iter().any(|&n| topo.rack_of(n) == rack)
    }
}

/// The pre-encoding placement of one stripe's `k` data blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StripePlan {
    /// Replica layout of each data block (length `k`).
    layouts: Vec<BlockLayout>,
    /// The stripe's core rack (EAR); `None` under random replication.
    core_rack: Option<RackId>,
    /// Target racks restricting post-encoding placement (EAR, Section
    /// III-D); `None` means all racks are eligible.
    target_racks: Option<Vec<RackId>>,
    /// Layout-regeneration count per block (Theorem 1 telemetry): entry `i`
    /// is how many *extra* layouts were generated for block `i` beyond the
    /// first attempt.
    retries: Vec<usize>,
}

impl StripePlan {
    /// Assembles a stripe plan.
    ///
    /// # Panics
    ///
    /// Panics if `retries.len() != layouts.len()`.
    pub fn new(
        layouts: Vec<BlockLayout>,
        core_rack: Option<RackId>,
        target_racks: Option<Vec<RackId>>,
        retries: Vec<usize>,
    ) -> Self {
        assert_eq!(layouts.len(), retries.len(), "one retry count per block");
        StripePlan {
            layouts,
            core_rack,
            target_racks,
            retries,
        }
    }

    /// Replica layouts of the data blocks.
    pub fn data_layouts(&self) -> &[BlockLayout] {
        &self.layouts
    }

    /// The core rack, if the stripe was placed by EAR.
    pub fn core_rack(&self) -> Option<RackId> {
        self.core_rack
    }

    /// The target racks, if restricted (Section III-D).
    pub fn target_racks(&self) -> Option<&[RackId]> {
        self.target_racks.as_deref()
    }

    /// Per-block layout regeneration counts (Theorem 1 telemetry).
    pub fn retries(&self) -> &[usize] {
        &self.retries
    }

    /// Number of data blocks (`k`).
    pub fn num_blocks(&self) -> usize {
        self.layouts.len()
    }

    /// Total replicas across all blocks (network cost of writing the
    /// stripe's replicated data).
    pub fn total_replicas(&self) -> usize {
        self.layouts.iter().map(|l| l.replicas.len()).sum()
    }
}

/// The outcome of planning the encoding operation for one stripe: which node
/// encodes, what it must download, which replicas survive, where parity
/// goes, and what (if anything) must be relocated afterwards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodePlan {
    /// The node chosen to run the encoding task.
    pub encoding_node: NodeId,
    /// Indices of data blocks that must be fetched from a *different rack*
    /// than the encoding node's (each one is a cross-rack download).
    pub cross_rack_sources: Vec<usize>,
    /// For each data block, the node whose replica is kept after encoding.
    pub kept_data: Vec<NodeId>,
    /// Nodes receiving the `n - k` parity blocks.
    pub parity_nodes: Vec<NodeId>,
    /// Post-encoding relocations needed to restore rack-level fault
    /// tolerance: `(block_index, from, to)`. Always empty under EAR.
    pub relocations: Vec<(usize, NodeId, NodeId)>,
}

impl EncodePlan {
    /// Number of cross-rack block downloads the encoding node performs.
    pub fn cross_rack_downloads(&self) -> usize {
        self.cross_rack_sources.len()
    }

    /// Whether the stripe needed post-encoding relocation (an availability
    /// violation under the paper's Section II-B analysis).
    pub fn violated_rack_fault_tolerance(&self) -> bool {
        !self.relocations.is_empty()
    }

    /// Final data-block locations after any relocations are applied.
    pub fn final_data_nodes(&self) -> Vec<NodeId> {
        let mut nodes = self.kept_data.clone();
        for &(idx, _, to) in &self.relocations {
            nodes[idx] = to;
        }
        nodes
    }

    /// Validates the post-encoding invariants the paper requires:
    /// all `n` blocks on distinct nodes, and no rack holding more than `c`
    /// blocks of the stripe (after relocations).
    ///
    /// Returns a human-readable violation description, or `None` if the
    /// plan is valid.
    pub fn check_fault_tolerance(&self, topo: &ClusterTopology, c: usize) -> Option<String> {
        let mut all = self.final_data_nodes();
        all.extend_from_slice(&self.parity_nodes);
        let mut seen = HashSet::new();
        for &n in &all {
            if !seen.insert(n) {
                return Some(format!("{n} holds two blocks of the stripe"));
            }
        }
        let mut per_rack: HashMap<RackId, usize> = HashMap::new();
        for &n in &all {
            *per_rack.entry(topo.rack_of(n)).or_insert(0) += 1;
        }
        for (rack, count) in per_rack {
            if count > c {
                return Some(format!("{rack} holds {count} blocks (max {c})"));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_layout_accessors() {
        let topo = ClusterTopology::uniform(3, 2);
        let l = BlockLayout::new(vec![NodeId(0), NodeId(2), NodeId(3)]);
        assert_eq!(l.primary(), NodeId(0));
        let racks = l.racks(&topo);
        assert_eq!(racks.len(), 2);
        assert!(l.has_replica_in_rack(&topo, RackId(0)));
        assert!(l.has_replica_in_rack(&topo, RackId(1)));
        assert!(!l.has_replica_in_rack(&topo, RackId(2)));
    }

    #[test]
    #[should_panic(expected = "distinct nodes")]
    fn duplicate_replicas_panic() {
        let _ = BlockLayout::new(vec![NodeId(0), NodeId(0)]);
    }

    #[test]
    fn stripe_plan_accessors() {
        let layouts = vec![
            BlockLayout::new(vec![NodeId(0), NodeId(2)]),
            BlockLayout::new(vec![NodeId(1), NodeId(4)]),
        ];
        let plan = StripePlan::new(layouts, Some(RackId(0)), None, vec![0, 3]);
        assert_eq!(plan.num_blocks(), 2);
        assert_eq!(plan.total_replicas(), 4);
        assert_eq!(plan.core_rack(), Some(RackId(0)));
        assert_eq!(plan.retries(), &[0, 3]);
    }

    #[test]
    fn encode_plan_fault_tolerance_check() {
        let topo = ClusterTopology::uniform(4, 2);
        let ok = EncodePlan {
            encoding_node: NodeId(0),
            cross_rack_sources: vec![],
            kept_data: vec![NodeId(0), NodeId(2), NodeId(4)],
            parity_nodes: vec![NodeId(6)],
            relocations: vec![],
        };
        assert_eq!(ok.check_fault_tolerance(&topo, 1), None);

        let dup_node = EncodePlan {
            kept_data: vec![NodeId(0), NodeId(0), NodeId(4)],
            ..ok.clone()
        };
        assert!(dup_node.check_fault_tolerance(&topo, 1).is_some());

        let rack_overflow = EncodePlan {
            kept_data: vec![NodeId(0), NodeId(1), NodeId(4)],
            ..ok.clone()
        };
        assert!(rack_overflow.check_fault_tolerance(&topo, 1).is_some());
        // The same layout is fine if c = 2.
        assert_eq!(rack_overflow.check_fault_tolerance(&topo, 2), None);
    }

    #[test]
    fn relocations_apply_to_final_nodes() {
        let topo = ClusterTopology::uniform(4, 2);
        let plan = EncodePlan {
            encoding_node: NodeId(0),
            cross_rack_sources: vec![1],
            kept_data: vec![NodeId(0), NodeId(1)],
            parity_nodes: vec![NodeId(4)],
            relocations: vec![(1, NodeId(1), NodeId(6))],
        };
        assert!(plan.violated_rack_fault_tolerance());
        assert_eq!(plan.final_data_nodes(), vec![NodeId(0), NodeId(6)]);
        // After relocation the plan satisfies c = 1.
        assert_eq!(plan.check_fault_tolerance(&topo, 1), None);
    }
}
