//! Random sampling helpers over cluster topologies.

use ear_types::{ClusterTopology, NodeId, RackId};
use rand::seq::SliceRandom;
use rand::Rng;

/// Picks a uniformly random rack, optionally excluding some racks and
/// optionally restricting to an allow-list.
///
/// Returns `None` if no rack qualifies.
pub fn random_rack<R: Rng + ?Sized>(
    rng: &mut R,
    topo: &ClusterTopology,
    exclude: &[RackId],
    allow: Option<&[RackId]>,
) -> Option<RackId> {
    let candidates: Vec<RackId> = match allow {
        Some(list) => list
            .iter()
            .copied()
            .filter(|r| !exclude.contains(r))
            .collect(),
        None => topo.racks().filter(|r| !exclude.contains(r)).collect(),
    };
    candidates.choose(rng).copied()
}

/// Picks a uniformly random node within `rack`, excluding the given nodes.
///
/// Returns `None` if every node in the rack is excluded.
pub fn random_node_in_rack<R: Rng + ?Sized>(
    rng: &mut R,
    topo: &ClusterTopology,
    rack: RackId,
    exclude: &[NodeId],
) -> Option<NodeId> {
    let candidates: Vec<NodeId> = topo
        .nodes_in_rack(rack)
        .iter()
        .copied()
        .filter(|n| !exclude.contains(n))
        .collect();
    candidates.choose(rng).copied()
}

/// Picks `count` distinct random nodes within `rack`, excluding the given
/// nodes. Returns `None` if the rack has fewer than `count` eligible nodes.
pub fn random_nodes_in_rack<R: Rng + ?Sized>(
    rng: &mut R,
    topo: &ClusterTopology,
    rack: RackId,
    count: usize,
    exclude: &[NodeId],
) -> Option<Vec<NodeId>> {
    let candidates: Vec<NodeId> = topo
        .nodes_in_rack(rack)
        .iter()
        .copied()
        .filter(|n| !exclude.contains(n))
        .collect();
    if candidates.len() < count {
        return None;
    }
    Some(candidates.choose_multiple(rng, count).copied().collect())
}

/// Picks `count` distinct random racks (excluding `exclude`, restricted to
/// `allow` if given). Returns `None` if not enough racks qualify.
pub fn random_racks<R: Rng + ?Sized>(
    rng: &mut R,
    topo: &ClusterTopology,
    count: usize,
    exclude: &[RackId],
    allow: Option<&[RackId]>,
) -> Option<Vec<RackId>> {
    let candidates: Vec<RackId> = match allow {
        Some(list) => list
            .iter()
            .copied()
            .filter(|r| !exclude.contains(r))
            .collect(),
        None => topo.racks().filter(|r| !exclude.contains(r)).collect(),
    };
    if candidates.len() < count {
        return None;
    }
    Some(candidates.choose_multiple(rng, count).copied().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn random_rack_respects_exclusions() {
        let topo = ClusterTopology::uniform(4, 2);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..100 {
            let r = random_rack(&mut rng, &topo, &[RackId(0), RackId(1)], None).unwrap();
            assert!(r == RackId(2) || r == RackId(3));
        }
        // Everything excluded.
        let all: Vec<RackId> = topo.racks().collect();
        assert!(random_rack(&mut rng, &topo, &all, None).is_none());
    }

    #[test]
    fn random_rack_respects_allow_list() {
        let topo = ClusterTopology::uniform(5, 2);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let allow = [RackId(1), RackId(3)];
        for _ in 0..100 {
            let r = random_rack(&mut rng, &topo, &[RackId(3)], Some(&allow)).unwrap();
            assert_eq!(r, RackId(1));
        }
    }

    #[test]
    fn random_nodes_in_rack_distinct() {
        let topo = ClusterTopology::uniform(2, 5);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..50 {
            let nodes = random_nodes_in_rack(&mut rng, &topo, RackId(1), 3, &[]).unwrap();
            let set: std::collections::HashSet<_> = nodes.iter().collect();
            assert_eq!(set.len(), 3);
            for n in &nodes {
                assert_eq!(topo.rack_of(*n), RackId(1));
            }
        }
        // Too many requested.
        assert!(random_nodes_in_rack(&mut rng, &topo, RackId(0), 6, &[]).is_none());
    }

    #[test]
    fn random_node_in_rack_exclusion() {
        let topo = ClusterTopology::uniform(1, 2);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let n = random_node_in_rack(&mut rng, &topo, RackId(0), &[NodeId(0)]).unwrap();
        assert_eq!(n, NodeId(1));
        assert!(random_node_in_rack(&mut rng, &topo, RackId(0), &[NodeId(0), NodeId(1)]).is_none());
    }

    #[test]
    fn random_racks_count() {
        let topo = ClusterTopology::uniform(6, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let racks = random_racks(&mut rng, &topo, 4, &[RackId(0)], None).unwrap();
        assert_eq!(racks.len(), 4);
        assert!(!racks.contains(&RackId(0)));
        assert!(random_racks(&mut rng, &topo, 6, &[RackId(0)], None).is_none());
    }

    #[test]
    fn sampling_is_roughly_uniform() {
        let topo = ClusterTopology::uniform(4, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            let r = random_rack(&mut rng, &topo, &[], None).unwrap();
            counts[r.index()] += 1;
        }
        for c in counts {
            assert!((800..1200).contains(&c), "counts not uniform: {counts:?}");
        }
    }
}
