//! Encoding-aware replication (EAR): the paper's core contribution
//! (Section III).
//!
//! EAR jointly places the replicas of the `k` data blocks that will later be
//! encoded into one stripe:
//!
//! 1. every block keeps its *first* replica in a common **core rack**, so a
//!    node in that rack can encode the stripe with zero cross-rack
//!    downloads (Section III-A);
//! 2. a block's remaining replicas are placed randomly like RR, but a layout
//!    is accepted only if the stripe's flow graph still admits a maximum
//!    matching — guaranteeing that after encoding one replica per block can
//!    be kept on distinct nodes with at most `c` blocks per rack, so no
//!    relocation is ever needed (Section III-B);
//! 3. optionally all blocks are confined to `R'` *target racks* to trade
//!    rack fault tolerance for cheaper recovery (Section III-D).

use crate::layout::{BlockLayout, StripePlan};
use crate::sample;
use ear_flow::max_kept_matching;
use ear_types::{ClusterTopology, EarConfig, Error, NodeId, RackId, RackSpread, Result};
use rand::Rng;
use std::collections::HashMap;

/// How the core rack for a new stripe is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum CoreRackSelection {
    /// The rack of the block's first replica becomes the core rack — i.e. a
    /// uniformly random rack, matching RR's first-replica distribution
    /// (the paper's design, Section III-A).
    #[default]
    FirstWriter,
    /// Pick the rack currently hosting the fewest open-stripe blocks; an
    /// extension that smooths core-rack load when write bursts are skewed.
    LeastLoaded,
}

/// Incrementally builds one stripe's replica placement under EAR.
///
/// Created by [`EncodingAwareReplication`], but usable standalone when a
/// caller wants a specific core rack:
///
/// ```
/// use ear_core::EarStripeBuilder;
/// use ear_types::{ClusterTopology, EarConfig, ErasureParams, RackId, ReplicationConfig};
/// use rand::SeedableRng;
///
/// let topo = ClusterTopology::uniform(6, 4);
/// let cfg = EarConfig::new(
///     ErasureParams::new(5, 4).unwrap(),
///     ReplicationConfig::hdfs_default(),
///     1,
/// ).unwrap();
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
/// let mut b = EarStripeBuilder::new(&cfg, &topo, RackId(2), &mut rng)?;
/// while !b.is_full() {
///     b.add_block(&topo, &cfg, &mut rng)?;
/// }
/// let plan = b.finish();
/// assert_eq!(plan.core_rack(), Some(RackId(2)));
/// # Ok::<(), ear_types::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct EarStripeBuilder {
    core_rack: RackId,
    /// Target racks (always including the core rack) if Section III-D's
    /// restriction is active.
    target_racks: Option<Vec<RackId>>,
    layouts: Vec<BlockLayout>,
    /// Replica node lists, mirrored from `layouts` for the matching calls.
    node_lists: Vec<Vec<NodeId>>,
    retries: Vec<usize>,
    k: usize,
}

impl EarStripeBuilder {
    /// Starts a stripe with the given core rack, sampling target racks if
    /// the configuration requests them.
    ///
    /// # Errors
    ///
    /// Returns [`Error::TopologyTooSmall`] if the topology cannot host a
    /// stripe under `cfg` (too few racks for `ceil(n/c)`, or for the target
    /// racks).
    pub fn new<R: Rng + ?Sized>(
        cfg: &EarConfig,
        topo: &ClusterTopology,
        core_rack: RackId,
        rng: &mut R,
    ) -> Result<Self> {
        validate_topology(cfg, topo)?;
        let target_racks = match cfg.target_racks() {
            None => None,
            Some(r_prime) => {
                let mut targets = vec![core_rack];
                let others = sample::random_racks(rng, topo, r_prime - 1, &[core_rack], None)
                    .ok_or_else(|| Error::TopologyTooSmall {
                        reason: format!(
                            "cannot pick {} target racks out of {}",
                            r_prime,
                            topo.num_racks()
                        ),
                    })?;
                targets.extend(others);
                Some(targets)
            }
        };
        Ok(EarStripeBuilder {
            core_rack,
            target_racks,
            layouts: Vec::new(),
            node_lists: Vec::new(),
            retries: Vec::new(),
            k: cfg.erasure().k(),
        })
    }

    /// The stripe's core rack.
    pub fn core_rack(&self) -> RackId {
        self.core_rack
    }

    /// Blocks placed so far.
    pub fn len(&self) -> usize {
        self.layouts.len()
    }

    /// Whether no block has been placed yet.
    pub fn is_empty(&self) -> bool {
        self.layouts.is_empty()
    }

    /// Whether the stripe has accumulated `k` blocks and is sealed for
    /// encoding.
    pub fn is_full(&self) -> bool {
        self.layouts.len() >= self.k
    }

    /// Places the next data block: first replica in the core rack, remaining
    /// replicas random, regenerating the layout until the stripe's flow
    /// graph admits a maximum matching (Fig. 5, steps 2–5).
    ///
    /// # Errors
    ///
    /// * [`Error::Invariant`] if the stripe is already full.
    /// * [`Error::PlacementExhausted`] if no feasible layout was found
    ///   within the configured retry budget.
    pub fn add_block<R: Rng + ?Sized>(
        &mut self,
        topo: &ClusterTopology,
        cfg: &EarConfig,
        rng: &mut R,
    ) -> Result<BlockLayout> {
        if self.is_full() {
            return Err(Error::Invariant("stripe already holds k blocks".into()));
        }
        let i = self.layouts.len();
        let max_attempts = cfg.max_retries_per_block();
        for attempt in 0..max_attempts {
            let layout = self.generate_layout(topo, cfg, rng)?;
            self.node_lists.push(layout.replicas.clone());
            let outcome = max_kept_matching(
                topo,
                &self.node_lists,
                cfg.c(),
                self.target_racks.as_deref(),
            );
            if outcome.size == i + 1 {
                self.layouts.push(layout.clone());
                self.retries.push(attempt);
                return Ok(layout);
            }
            self.node_lists.pop();
        }
        Err(Error::PlacementExhausted {
            block_index: i,
            attempts: max_attempts,
        })
    }

    /// Seals the stripe into a [`StripePlan`].
    ///
    /// # Panics
    ///
    /// Panics if the stripe is not full; sealing a partial stripe would
    /// produce an unencodable plan.
    pub fn finish(self) -> StripePlan {
        assert!(
            self.is_full(),
            "cannot seal a stripe with fewer than k blocks"
        );
        StripePlan::new(
            self.layouts,
            Some(self.core_rack),
            self.target_racks,
            self.retries,
        )
    }

    /// Generates one candidate layout for the next block: first replica on a
    /// random core-rack node, remaining replicas per the rack-spread policy
    /// (within target racks when active).
    fn generate_layout<R: Rng + ?Sized>(
        &self,
        topo: &ClusterTopology,
        cfg: &EarConfig,
        rng: &mut R,
    ) -> Result<BlockLayout> {
        let r = cfg.replication().replicas();
        let first =
            sample::random_node_in_rack(rng, topo, self.core_rack, &[]).ok_or_else(|| {
                Error::TopologyTooSmall {
                    reason: format!("core {} has no nodes", self.core_rack),
                }
            })?;
        let mut replicas = vec![first];
        if r > 1 {
            let allow = self.target_racks.as_deref();
            match cfg.replication().spread() {
                RackSpread::TwoRacks => {
                    let rack = sample::random_rack(rng, topo, &[self.core_rack], allow)
                        .ok_or_else(|| Error::TopologyTooSmall {
                            reason: "no rack available for non-primary replicas".into(),
                        })?;
                    let rest = sample::random_nodes_in_rack(rng, topo, rack, r - 1, &[])
                        .ok_or_else(|| Error::TopologyTooSmall {
                            reason: format!("{rack} too small for {} replicas", r - 1),
                        })?;
                    replicas.extend(rest);
                }
                RackSpread::DistinctRacks => {
                    let racks = sample::random_racks(rng, topo, r - 1, &[self.core_rack], allow)
                        .ok_or_else(|| Error::TopologyTooSmall {
                            reason: format!("fewer than {} racks for replicas", r - 1),
                        })?;
                    for rack in racks {
                        let node = sample::random_node_in_rack(rng, topo, rack, &[])
                            .expect("racks are non-empty");
                        replicas.push(node);
                    }
                }
            }
        }
        Ok(BlockLayout::new(replicas))
    }
}

/// Validates that `topo` can host stripes under `cfg`.
fn validate_topology(cfg: &EarConfig, topo: &ClusterTopology) -> Result<()> {
    let needed_racks = cfg.min_racks_for_stripe();
    if topo.num_racks() < needed_racks {
        return Err(Error::TopologyTooSmall {
            reason: format!(
                "stripe needs ceil(n/c) = {needed_racks} racks, topology has {}",
                topo.num_racks()
            ),
        });
    }
    if let Some(r_prime) = cfg.target_racks() {
        if topo.num_racks() < r_prime {
            return Err(Error::TopologyTooSmall {
                reason: format!(
                    "{r_prime} target racks requested, topology has {}",
                    topo.num_racks()
                ),
            });
        }
    }
    let r = cfg.replication().replicas();
    match cfg.replication().spread() {
        RackSpread::TwoRacks => {
            if r > 1 && topo.min_rack_size() < r - 1 {
                return Err(Error::TopologyTooSmall {
                    reason: format!(
                        "two-rack spread needs {} nodes per rack, smallest rack has {}",
                        r - 1,
                        topo.min_rack_size()
                    ),
                });
            }
            if topo.num_racks() < 2 {
                return Err(Error::TopologyTooSmall {
                    reason: "two-rack spread needs at least 2 racks".into(),
                });
            }
        }
        RackSpread::DistinctRacks => {
            let needed = cfg.target_racks().unwrap_or(topo.num_racks());
            if needed < r {
                return Err(Error::TopologyTooSmall {
                    reason: format!("distinct-rack spread needs {r} racks, {needed} available"),
                });
            }
        }
    }
    Ok(())
}

/// The complete EAR placement policy: maintains one open stripe builder per
/// core rack (the paper's *pre-encoding store*, Section IV-B), sealing a
/// stripe whenever a core rack accumulates `k` blocks.
///
/// ```
/// use ear_core::{EncodingAwareReplication, PlacementPolicy};
/// use ear_types::{ClusterTopology, EarConfig, ErasureParams, ReplicationConfig};
/// use rand::SeedableRng;
///
/// let topo = ClusterTopology::uniform(8, 4);
/// let cfg = EarConfig::new(
///     ErasureParams::new(6, 4).unwrap(),
///     ReplicationConfig::hdfs_default(),
///     1,
/// ).unwrap();
/// let mut ear = EncodingAwareReplication::new(cfg, topo);
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
/// let mut sealed = 0;
/// for _ in 0..64 {
///     let placed = ear.place_block(&mut rng)?;
///     if placed.sealed_stripe.is_some() {
///         sealed += 1;
///     }
/// }
/// assert!(sealed >= 1);
/// # Ok::<(), ear_types::Error>(())
/// ```
#[derive(Debug)]
pub struct EncodingAwareReplication {
    cfg: EarConfig,
    topo: ClusterTopology,
    selection: CoreRackSelection,
    open: HashMap<RackId, EarStripeBuilder>,
}

impl EncodingAwareReplication {
    /// Creates the policy.
    pub fn new(cfg: EarConfig, topo: ClusterTopology) -> Self {
        EncodingAwareReplication {
            cfg,
            topo,
            selection: CoreRackSelection::default(),
            open: HashMap::new(),
        }
    }

    /// Overrides how the core rack of a new stripe is chosen.
    pub fn with_core_rack_selection(mut self, selection: CoreRackSelection) -> Self {
        self.selection = selection;
        self
    }

    /// The configuration in force.
    pub fn config(&self) -> &EarConfig {
        &self.cfg
    }

    /// The cluster topology.
    pub fn topology(&self) -> &ClusterTopology {
        &self.topo
    }

    /// Number of stripes currently open (accumulating blocks) in the
    /// pre-encoding store.
    pub fn open_stripes(&self) -> usize {
        self.open.len()
    }

    /// Places one block, returning its layout and — when this block fills a
    /// core rack's stripe — the sealed [`StripePlan`].
    ///
    /// # Errors
    ///
    /// Propagates topology-validation and retry-exhaustion errors from
    /// [`EarStripeBuilder`].
    pub fn place_block<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Result<crate::PlacedBlock> {
        let core = self.pick_core_rack(rng);
        let builder = match self.open.entry(core) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(EarStripeBuilder::new(&self.cfg, &self.topo, core, rng)?)
            }
        };
        let layout = builder.add_block(&self.topo, &self.cfg, rng)?;
        let sealed = if builder.is_full() {
            let b = self.open.remove(&core).expect("present");
            Some(b.finish())
        } else {
            None
        };
        Ok(crate::PlacedBlock {
            layout,
            sealed_stripe: sealed,
        })
    }

    fn pick_core_rack<R: Rng + ?Sized>(&self, rng: &mut R) -> RackId {
        match self.selection {
            CoreRackSelection::FirstWriter => {
                sample::random_rack(rng, &self.topo, &[], None).expect("topology has racks")
            }
            CoreRackSelection::LeastLoaded => self
                .topo
                .racks()
                .min_by_key(|r| self.open.get(r).map(|b| b.len()).unwrap_or(0))
                .expect("topology has racks"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ear_types::{ErasureParams, ReplicationConfig};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn cfg(n: usize, k: usize, c: usize) -> EarConfig {
        EarConfig::new(
            ErasureParams::new(n, k).unwrap(),
            ReplicationConfig::hdfs_default(),
            c,
        )
        .unwrap()
    }

    #[test]
    fn builder_places_first_replica_in_core_rack() {
        let topo = ClusterTopology::uniform(6, 4);
        let cfg = cfg(5, 4, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let mut b = EarStripeBuilder::new(&cfg, &topo, RackId(3), &mut rng).unwrap();
        while !b.is_full() {
            let layout = b.add_block(&topo, &cfg, &mut rng).unwrap();
            assert_eq!(topo.rack_of(layout.primary()), RackId(3));
        }
        let plan = b.finish();
        assert_eq!(plan.num_blocks(), 4);
        // Every block has a replica in the core rack.
        for l in plan.data_layouts() {
            assert!(l.has_replica_in_rack(&topo, RackId(3)));
        }
    }

    #[test]
    fn sealed_stripe_always_admits_complete_matching() {
        let topo = ClusterTopology::uniform(8, 4);
        let cfg = cfg(6, 4, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(22);
        for trial in 0..50 {
            let mut b = EarStripeBuilder::new(&cfg, &topo, RackId(trial % 8), &mut rng).unwrap();
            while !b.is_full() {
                b.add_block(&topo, &cfg, &mut rng).unwrap();
            }
            let plan = b.finish();
            let lists: Vec<Vec<NodeId>> = plan
                .data_layouts()
                .iter()
                .map(|l| l.replicas.clone())
                .collect();
            let m = max_kept_matching(&topo, &lists, cfg.c(), None);
            assert!(m.is_complete(), "trial {trial}: matching incomplete");
        }
    }

    #[test]
    fn builder_rejects_overfull_stripe() {
        let topo = ClusterTopology::uniform(6, 4);
        let cfg = cfg(4, 3, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        let mut b = EarStripeBuilder::new(&cfg, &topo, RackId(0), &mut rng).unwrap();
        for _ in 0..3 {
            b.add_block(&topo, &cfg, &mut rng).unwrap();
        }
        assert!(matches!(
            b.add_block(&topo, &cfg, &mut rng),
            Err(Error::Invariant(_))
        ));
    }

    #[test]
    #[should_panic(expected = "fewer than k blocks")]
    fn finishing_partial_stripe_panics() {
        let topo = ClusterTopology::uniform(6, 4);
        let cfg = cfg(4, 3, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(24);
        let b = EarStripeBuilder::new(&cfg, &topo, RackId(0), &mut rng).unwrap();
        let _ = b.finish();
    }

    #[test]
    fn topology_validation() {
        let mut rng = ChaCha8Rng::seed_from_u64(25);
        // (14,10) with c=1 needs 14 racks.
        let small = ClusterTopology::uniform(10, 4);
        let c = cfg(14, 10, 1);
        assert!(EarStripeBuilder::new(&c, &small, RackId(0), &mut rng).is_err());
        // c=2 halves the requirement.
        let c2 = cfg(14, 10, 2);
        assert!(EarStripeBuilder::new(&c2, &small, RackId(0), &mut rng).is_ok());
    }

    #[test]
    fn target_racks_constrain_all_replicas() {
        // Section III-D: (6,3), c=3, R'=2.
        let topo = ClusterTopology::uniform(6, 6);
        let cfg = EarConfig::new(
            ErasureParams::new(6, 3).unwrap(),
            ReplicationConfig::hdfs_default(),
            3,
        )
        .unwrap()
        .with_target_racks(2)
        .unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(26);
        let mut b = EarStripeBuilder::new(&cfg, &topo, RackId(1), &mut rng).unwrap();
        while !b.is_full() {
            b.add_block(&topo, &cfg, &mut rng).unwrap();
        }
        let plan = b.finish();
        let targets = plan.target_racks().unwrap().to_vec();
        assert_eq!(targets.len(), 2);
        assert!(targets.contains(&RackId(1)));
        for l in plan.data_layouts() {
            for &node in &l.replicas {
                assert!(
                    targets.contains(&topo.rack_of(node)),
                    "replica outside target racks"
                );
            }
        }
    }

    #[test]
    fn driver_seals_stripes_per_core_rack() {
        let topo = ClusterTopology::uniform(8, 4);
        let cfg = cfg(6, 4, 1);
        let mut ear = EncodingAwareReplication::new(cfg, topo.clone());
        let mut rng = ChaCha8Rng::seed_from_u64(27);
        let mut sealed = Vec::new();
        for _ in 0..200 {
            let placed = ear.place_block(&mut rng).unwrap();
            if let Some(plan) = placed.sealed_stripe {
                sealed.push(plan);
            }
        }
        assert!(!sealed.is_empty());
        for plan in &sealed {
            assert_eq!(plan.num_blocks(), 4);
            let core = plan.core_rack().unwrap();
            for l in plan.data_layouts() {
                assert_eq!(topo.rack_of(l.primary()), core);
            }
        }
        // Open stripes never exceed the number of racks.
        assert!(ear.open_stripes() <= 8);
    }

    #[test]
    fn least_loaded_core_rack_selection_round_robins() {
        let topo = ClusterTopology::uniform(5, 4);
        let cfg = cfg(5, 4, 1);
        let mut ear = EncodingAwareReplication::new(cfg, topo)
            .with_core_rack_selection(CoreRackSelection::LeastLoaded);
        let mut rng = ChaCha8Rng::seed_from_u64(28);
        // After 4 blocks, each rack should host exactly one open block.
        for _ in 0..4 {
            ear.place_block(&mut rng).unwrap();
        }
        assert_eq!(ear.open_stripes(), 4);
    }

    #[test]
    fn retries_are_recorded() {
        // Tight topology forces some regeneration: 5 racks, c=1, k=4 means
        // non-core replicas must land in 4 distinct non-core racks.
        let topo = ClusterTopology::uniform(5, 4);
        let cfg = cfg(5, 4, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(29);
        let mut total_retries = 0usize;
        for trial in 0..30 {
            let mut b = EarStripeBuilder::new(&cfg, &topo, RackId(trial % 5), &mut rng).unwrap();
            while !b.is_full() {
                b.add_block(&topo, &cfg, &mut rng).unwrap();
            }
            total_retries += b.finish().retries().iter().sum::<usize>();
        }
        assert!(
            total_retries > 0,
            "a tight topology should require at least one regeneration"
        );
    }
}
