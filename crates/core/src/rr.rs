//! Random replication (RR): the HDFS default replica placement policy
//! (Section II-A of the paper).

use crate::layout::BlockLayout;
use crate::sample;
use ear_types::{ClusterTopology, Error, RackSpread, ReplicationConfig, Result};
use rand::Rng;

/// The random replication placement used by HDFS, Azure, and RAMCloud
/// (Section II-A): the first replica goes to a node in a randomly chosen
/// rack; the remaining replicas go to distinct randomly chosen nodes in a
/// single different rack ([`RackSpread::TwoRacks`]), or to one node in each
/// of `r - 1` distinct other racks ([`RackSpread::DistinctRacks`]).
///
/// ```
/// use ear_core::RandomReplication;
/// use ear_types::{ClusterTopology, ReplicationConfig};
/// use rand::SeedableRng;
///
/// let topo = ClusterTopology::uniform(5, 6);
/// let rr = RandomReplication::new(topo.clone(), ReplicationConfig::hdfs_default())?;
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
/// let layout = rr.place_block(&mut rng);
/// assert_eq!(layout.replicas.len(), 3);
/// assert_eq!(layout.racks(&topo).len(), 2); // spans exactly two racks
/// # Ok::<(), ear_types::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct RandomReplication {
    topo: ClusterTopology,
    replication: ReplicationConfig,
}

impl RandomReplication {
    /// Creates the policy, validating that the topology can host it.
    ///
    /// # Errors
    ///
    /// Returns [`Error::TopologyTooSmall`] if the cluster has too few racks
    /// for the configured rack spread, or racks are too small to hold the
    /// non-primary replicas on distinct nodes.
    pub fn new(topo: ClusterTopology, replication: ReplicationConfig) -> Result<Self> {
        let r = replication.replicas();
        match replication.spread() {
            RackSpread::TwoRacks => {
                if topo.num_racks() < 2 {
                    return Err(Error::TopologyTooSmall {
                        reason: "two-rack spread needs at least 2 racks".into(),
                    });
                }
                if topo.min_rack_size() < r - 1 {
                    return Err(Error::TopologyTooSmall {
                        reason: format!(
                            "two-rack spread needs {} nodes per rack, smallest rack has {}",
                            r - 1,
                            topo.min_rack_size()
                        ),
                    });
                }
            }
            RackSpread::DistinctRacks => {
                if topo.num_racks() < r {
                    return Err(Error::TopologyTooSmall {
                        reason: format!(
                            "distinct-rack spread needs {} racks, topology has {}",
                            r,
                            topo.num_racks()
                        ),
                    });
                }
            }
        }
        Ok(RandomReplication { topo, replication })
    }

    /// The topology this policy places into.
    pub fn topology(&self) -> &ClusterTopology {
        &self.topo
    }

    /// The replication configuration.
    pub fn replication(&self) -> ReplicationConfig {
        self.replication
    }

    /// Places the replicas of one block.
    pub fn place_block<R: Rng + ?Sized>(&self, rng: &mut R) -> BlockLayout {
        let r = self.replication.replicas();
        let first_rack =
            sample::random_rack(rng, &self.topo, &[], None).expect("validated: topology has racks");
        let first =
            sample::random_node_in_rack(rng, &self.topo, first_rack, &[]).expect("non-empty rack");
        let mut replicas = vec![first];
        if r == 1 {
            return BlockLayout::new(replicas);
        }
        match self.replication.spread() {
            RackSpread::TwoRacks => {
                let second_rack = sample::random_rack(rng, &self.topo, &[first_rack], None)
                    .expect("validated: at least 2 racks");
                let rest = sample::random_nodes_in_rack(rng, &self.topo, second_rack, r - 1, &[])
                    .expect("validated: rack large enough");
                replicas.extend(rest);
            }
            RackSpread::DistinctRacks => {
                let racks = sample::random_racks(rng, &self.topo, r - 1, &[first_rack], None)
                    .expect("validated: enough racks");
                for rack in racks {
                    let node = sample::random_node_in_rack(rng, &self.topo, rack, &[])
                        .expect("non-empty rack");
                    replicas.push(node);
                }
            }
        }
        BlockLayout::new(replicas)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ear_types::{NodeId, RackId};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use std::collections::HashSet;

    #[test]
    fn hdfs_default_spans_exactly_two_racks() {
        let topo = ClusterTopology::uniform(5, 6);
        let rr = RandomReplication::new(topo.clone(), ReplicationConfig::hdfs_default()).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for _ in 0..200 {
            let l = rr.place_block(&mut rng);
            assert_eq!(l.replicas.len(), 3);
            assert_eq!(l.racks(&topo).len(), 2);
            // Replicas 2 and 3 share a rack distinct from replica 1's.
            let r1 = topo.rack_of(l.replicas[0]);
            let r2 = topo.rack_of(l.replicas[1]);
            let r3 = topo.rack_of(l.replicas[2]);
            assert_eq!(r2, r3);
            assert_ne!(r1, r2);
        }
    }

    #[test]
    fn distinct_racks_spread() {
        let topo = ClusterTopology::uniform(8, 2);
        let cfg = ReplicationConfig::new(4, RackSpread::DistinctRacks).unwrap();
        let rr = RandomReplication::new(topo.clone(), cfg).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        for _ in 0..100 {
            let l = rr.place_block(&mut rng);
            assert_eq!(l.replicas.len(), 4);
            assert_eq!(l.racks(&topo).len(), 4);
        }
    }

    #[test]
    fn single_replica() {
        let topo = ClusterTopology::uniform(3, 2);
        let cfg = ReplicationConfig::new(1, RackSpread::DistinctRacks).unwrap();
        let rr = RandomReplication::new(topo, cfg).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        assert_eq!(rr.place_block(&mut rng).replicas.len(), 1);
    }

    #[test]
    fn validation_rejects_small_topologies() {
        let one_rack = ClusterTopology::uniform(1, 10);
        assert!(RandomReplication::new(one_rack, ReplicationConfig::hdfs_default()).is_err());

        let tiny_racks = ClusterTopology::uniform(5, 1);
        assert!(RandomReplication::new(tiny_racks, ReplicationConfig::hdfs_default()).is_err());

        let few_racks = ClusterTopology::uniform(2, 4);
        let distinct4 = ReplicationConfig::new(4, RackSpread::DistinctRacks).unwrap();
        assert!(RandomReplication::new(few_racks, distinct4).is_err());
    }

    #[test]
    fn two_way_replication_on_single_node_racks() {
        // The paper's testbed: 12 racks of one node each, 2-way replication.
        let topo = ClusterTopology::uniform(12, 1);
        let rr = RandomReplication::new(topo.clone(), ReplicationConfig::two_way()).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(14);
        for _ in 0..100 {
            let l = rr.place_block(&mut rng);
            assert_eq!(l.replicas.len(), 2);
            assert_eq!(l.racks(&topo).len(), 2);
        }
    }

    #[test]
    fn first_rack_choice_is_roughly_uniform() {
        let topo = ClusterTopology::uniform(4, 3);
        let rr = RandomReplication::new(topo.clone(), ReplicationConfig::hdfs_default()).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(15);
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            let l = rr.place_block(&mut rng);
            counts[topo.rack_of(l.primary()).index()] += 1;
        }
        for c in counts {
            assert!(
                (800..1200).contains(&c),
                "first-rack counts skewed: {counts:?}"
            );
        }
    }

    #[test]
    fn all_nodes_eventually_used() {
        let topo = ClusterTopology::uniform(4, 4);
        let rr = RandomReplication::new(topo, ReplicationConfig::hdfs_default()).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(16);
        let mut seen: HashSet<NodeId> = HashSet::new();
        for _ in 0..500 {
            seen.extend(rr.place_block(&mut rng).replicas);
        }
        assert_eq!(seen.len(), 16, "every node should receive some replica");
    }

    #[test]
    fn second_rack_never_equals_first() {
        let topo = ClusterTopology::uniform(2, 5);
        let rr = RandomReplication::new(topo.clone(), ReplicationConfig::hdfs_default()).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        for _ in 0..100 {
            let l = rr.place_block(&mut rng);
            let racks: Vec<RackId> = l.replicas.iter().map(|&n| topo.rack_of(n)).collect();
            assert_ne!(racks[0], racks[1]);
        }
    }
}
