//! Property-based tests of the placement invariants the paper guarantees:
//! for any topology and parameters EAR can host, sealed stripes admit a
//! complete matching, encoding needs no cross-rack download, and the
//! post-encoding layout satisfies node- and rack-level fault tolerance with
//! no relocation. Random replication must always end valid too — after its
//! (possibly non-empty) relocations.

use ear_core::{EncodingAwareReplication, PlacementPolicy, RandomReplicationPolicy};
use ear_types::{ClusterTopology, EarConfig, ErasureParams, RackSpread, ReplicationConfig};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A topology + configuration pair that EAR can host.
#[derive(Debug, Clone)]
struct Scenario {
    racks: usize,
    nodes_per_rack: usize,
    n: usize,
    k: usize,
    c: usize,
    replicas: usize,
    spread: RackSpread,
    seed: u64,
}

fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    (
        2usize..=8, // k
        1usize..=4, // parity
        1usize..=2, // c
        2usize..=3, // replicas
        prop_oneof![Just(RackSpread::TwoRacks), Just(RackSpread::DistinctRacks)],
        2usize..=6,   // nodes per rack
        any::<u64>(), // seed
        0usize..=6,   // extra racks beyond the minimum
    )
        .prop_map(
            |(k, parity, c, replicas, spread, nodes_per_rack, seed, extra)| {
                let n = k + parity;
                // EAR needs ceil(n/c) racks; spreads add their own minimums.
                let min_racks = n.div_ceil(c).max(replicas).max(2);
                Scenario {
                    racks: min_racks + extra,
                    nodes_per_rack: nodes_per_rack.max(replicas.saturating_sub(1)).max(1),
                    n,
                    k,
                    c,
                    replicas,
                    spread,
                    seed,
                }
            },
        )
}

fn build(scenario: &Scenario) -> (ClusterTopology, EarConfig) {
    let topo = ClusterTopology::uniform(scenario.racks, scenario.nodes_per_rack);
    let cfg = EarConfig::new(
        ErasureParams::new(scenario.n, scenario.k).expect("valid by construction"),
        ReplicationConfig::new(scenario.replicas, scenario.spread).expect("valid"),
        scenario.c,
    )
    .expect("valid");
    (topo, cfg)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ear_guarantees_hold_for_any_hostable_scenario(s in scenario_strategy()) {
        let (topo, cfg) = build(&s);
        let mut ear = EncodingAwareReplication::new(cfg, topo.clone());
        let mut rng = ChaCha8Rng::seed_from_u64(s.seed);
        let mut sealed = Vec::new();
        for _ in 0..(s.k * 6) {
            match ear.place_block(&mut rng) {
                Ok(placed) => {
                    prop_assert_eq!(placed.layout.replicas.len(), s.replicas);
                    if let Some(plan) = placed.sealed_stripe {
                        sealed.push(plan);
                    }
                }
                Err(e) => return Err(TestCaseError::fail(format!("placement failed: {e}"))),
            }
        }
        for stripe in &sealed {
            let core = stripe.core_rack().expect("EAR stripes have a core rack");
            // Every block keeps a replica in the core rack.
            for layout in stripe.data_layouts() {
                prop_assert!(layout.has_replica_in_rack(&topo, core));
            }
            let plan = ear.plan_encoding(stripe, &mut rng)
                .map_err(|e| TestCaseError::fail(format!("encode plan failed: {e}")))?;
            prop_assert_eq!(plan.cross_rack_downloads(), 0);
            prop_assert!(plan.relocations.is_empty());
            prop_assert_eq!(plan.parity_nodes.len(), s.n - s.k);
            prop_assert_eq!(plan.check_fault_tolerance(&topo, s.c), None);
            prop_assert_eq!(topo.rack_of(plan.encoding_node), core);
        }
    }

    #[test]
    fn rr_always_ends_valid_after_relocation(s in scenario_strategy()) {
        let (topo, cfg) = build(&s);
        let mut rr = match RandomReplicationPolicy::new(cfg, topo.clone()) {
            Ok(p) => p,
            Err(_) => return Ok(()), // RR has its own topology minimums
        };
        let mut rng = ChaCha8Rng::seed_from_u64(s.seed ^ 0xDEAD);
        let mut sealed = Vec::new();
        for _ in 0..(s.k * 6) {
            if let Some(plan) = rr.place_block(&mut rng).unwrap().sealed_stripe {
                sealed.push(plan);
            }
        }
        prop_assert_eq!(sealed.len(), 6);
        for stripe in &sealed {
            let plan = rr.plan_encoding(stripe, &mut rng)
                .map_err(|e| TestCaseError::fail(format!("encode plan failed: {e}")))?;
            // RR may relocate, but the final layout must satisfy the
            // fault-tolerance constraints.
            prop_assert_eq!(plan.check_fault_tolerance(&topo, s.c), None);
            // Relocated blocks always move to a different node.
            for &(_, from, to) in &plan.relocations {
                prop_assert_ne!(from, to);
            }
        }
    }

    #[test]
    fn ear_retry_counts_stay_small_in_large_clusters(seed in any::<u64>()) {
        // Theorem 1: with R = 20 racks and c = 1, E_i <= (R-1)/(R-1-(i-1))
        // which is at most 19/10 = 1.9 for k = 10. Observed retries should
        // be well under the budget — we allow a loose bound of 50.
        let topo = ClusterTopology::uniform(20, 5);
        let cfg = EarConfig::new(
            ErasureParams::new(14, 10).unwrap(),
            ReplicationConfig::hdfs_default(),
            1,
        ).unwrap();
        let mut ear = EncodingAwareReplication::new(cfg, topo);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for _ in 0..40 {
            let placed = ear.place_block(&mut rng).unwrap();
            if let Some(plan) = placed.sealed_stripe {
                for &r in plan.retries() {
                    prop_assert!(r < 50, "retry count {r} unexpectedly high");
                }
            }
        }
    }
}
