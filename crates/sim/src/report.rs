//! Measurements produced by a simulation run.

/// Everything a simulation run measured; the experiment harnesses derive the
/// paper's figures from these raw series.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Policy name ("rr" or "ear").
    pub policy: &'static str,
    /// Per write request: `(arrival_time, response_time)` in seconds.
    pub write_responses: Vec<(f64, f64)>,
    /// Completion time of each write request, seconds.
    pub write_completions: Vec<f64>,
    /// Completion time of each encoded stripe, seconds (sorted by
    /// completion; Fig. 12's cumulative curve).
    pub encode_completions: Vec<f64>,
    /// When encoding began.
    pub encode_start: f64,
    /// When the last stripe finished encoding (equals `encode_start` when
    /// nothing was encoded).
    pub encode_end: f64,
    /// Total bytes of data blocks encoded (`stripes × k × block_size`).
    pub encoded_bytes: u64,
    /// Bytes carried by each write (`block_size`).
    pub write_bytes_each: u64,
    /// Cross-rack block downloads performed by encoding, across all stripes.
    pub cross_rack_downloads: usize,
    /// Stripes whose post-encoding layout required relocation (always 0
    /// under EAR).
    pub stripes_with_relocation: usize,
    /// When the simulation fully drained.
    pub sim_end: f64,
}

impl SimReport {
    /// Encoding throughput in MiB/s: encoded data divided by the encoding
    /// span (the paper's metric, Experiment A.1).
    pub fn encoding_throughput(&self) -> f64 {
        let span = self.encode_end - self.encode_start;
        if span <= 0.0 || self.encoded_bytes == 0 {
            return 0.0;
        }
        self.encoded_bytes as f64 / (1024.0 * 1024.0) / span
    }

    /// Write throughput in MiB/s over the encoding window (write bytes
    /// completed while encoding ran).
    pub fn write_throughput_during_encoding(&self) -> f64 {
        let span = self.encode_end - self.encode_start;
        if span <= 0.0 {
            return 0.0;
        }
        let bytes: u64 = self
            .write_completions
            .iter()
            .filter(|&&t| t >= self.encode_start && t <= self.encode_end)
            .count() as u64
            * self.write_bytes_each;
        bytes as f64 / (1024.0 * 1024.0) / span
    }

    /// Mean response time of all writes, seconds.
    pub fn mean_write_response(&self) -> f64 {
        if self.write_responses.is_empty() {
            return 0.0;
        }
        self.write_responses.iter().map(|(_, r)| r).sum::<f64>() / self.write_responses.len() as f64
    }

    /// Mean response time of writes that arrived during the encoding window.
    pub fn mean_write_response_during_encoding(&self) -> f64 {
        let rs: Vec<f64> = self
            .write_responses
            .iter()
            .filter(|(a, _)| *a >= self.encode_start && *a <= self.encode_end)
            .map(|(_, r)| *r)
            .collect();
        if rs.is_empty() {
            0.0
        } else {
            rs.iter().sum::<f64>() / rs.len() as f64
        }
    }

    /// Mean response time of writes that arrived before encoding started.
    pub fn mean_write_response_before_encoding(&self) -> f64 {
        let rs: Vec<f64> = self
            .write_responses
            .iter()
            .filter(|(a, _)| *a < self.encode_start)
            .map(|(_, r)| *r)
            .collect();
        if rs.is_empty() {
            0.0
        } else {
            rs.iter().sum::<f64>() / rs.len() as f64
        }
    }

    /// Cumulative encoded-stripe counts at each completion instant:
    /// `(time_since_encode_start, count)` (Fig. 12's series).
    pub fn cumulative_encoded(&self) -> Vec<(f64, usize)> {
        let mut times = self.encode_completions.clone();
        times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        times
            .iter()
            .enumerate()
            .map(|(i, &t)| (t - self.encode_start, i + 1))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SimReport {
        SimReport {
            policy: "ear",
            write_responses: vec![(0.0, 1.0), (5.0, 2.0), (15.0, 3.0)],
            write_completions: vec![1.0, 7.0, 18.0],
            encode_completions: vec![12.0, 16.0, 14.0],
            encode_start: 10.0,
            encode_end: 16.0,
            encoded_bytes: 6 * 1024 * 1024,
            write_bytes_each: 1024 * 1024,
            cross_rack_downloads: 0,
            stripes_with_relocation: 0,
            sim_end: 18.0,
        }
    }

    #[test]
    fn encoding_throughput_uses_encode_span() {
        let r = sample();
        assert!((r.encoding_throughput() - 1.0).abs() < 1e-12); // 6 MiB / 6 s
    }

    #[test]
    fn write_throughput_counts_only_encode_window() {
        let r = sample();
        // Only the completion at t=18 is outside [10, 16]; t=1 and 7 are
        // before. None inside -> 0.
        assert_eq!(r.write_throughput_during_encoding(), 0.0);
        let mut r2 = r.clone();
        r2.write_completions = vec![11.0, 12.0];
        assert!((r2.write_throughput_during_encoding() - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn response_means_split_by_encode_start() {
        let r = sample();
        assert!((r.mean_write_response() - 2.0).abs() < 1e-12);
        assert!((r.mean_write_response_before_encoding() - 1.5).abs() < 1e-12);
        assert!((r.mean_write_response_during_encoding() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn cumulative_encoded_sorted() {
        let r = sample();
        assert_eq!(r.cumulative_encoded(), vec![(2.0, 1), (4.0, 2), (6.0, 3)]);
    }

    #[test]
    fn zero_span_is_zero_throughput() {
        let mut r = sample();
        r.encode_end = r.encode_start;
        assert_eq!(r.encoding_throughput(), 0.0);
        assert_eq!(r.write_throughput_during_encoding(), 0.0);
    }
}
