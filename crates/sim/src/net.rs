//! The Topology module of the simulator (Fig. 11): maps the CFS rack/node
//! structure onto network-engine links and computes transfer paths.

use ear_des::{LinkId, NetworkEngine};
use ear_types::{Bandwidth, ClusterTopology, NodeId};

/// Link layout for a CFS: every node has an uplink and a downlink to its
/// top-of-rack switch; every rack has an uplink and a downlink to the
/// network core (assumed non-blocking, as in the paper — cross-rack
/// contention happens on the rack links).
#[derive(Debug, Clone)]
pub struct NetTopology {
    node_up: Vec<LinkId>,
    node_down: Vec<LinkId>,
    rack_up: Vec<LinkId>,
    rack_down: Vec<LinkId>,
}

impl NetTopology {
    /// Registers all links for `topo` on `engine`.
    pub fn build(
        engine: &mut dyn NetworkEngine,
        topo: &ClusterTopology,
        node_bandwidth: Bandwidth,
        rack_bandwidth: Bandwidth,
    ) -> Self {
        let node_up = (0..topo.num_nodes())
            .map(|_| engine.add_link(node_bandwidth))
            .collect();
        let node_down = (0..topo.num_nodes())
            .map(|_| engine.add_link(node_bandwidth))
            .collect();
        let rack_up = (0..topo.num_racks())
            .map(|_| engine.add_link(rack_bandwidth))
            .collect();
        let rack_down = (0..topo.num_racks())
            .map(|_| engine.add_link(rack_bandwidth))
            .collect();
        NetTopology {
            node_up,
            node_down,
            rack_up,
            rack_down,
        }
    }

    /// The link path from `src` to `dst`. Empty when `src == dst` (local
    /// copy); two hops intra-rack; four hops (through both rack links)
    /// cross-rack.
    pub fn path(&self, topo: &ClusterTopology, src: NodeId, dst: NodeId) -> Vec<LinkId> {
        if src == dst {
            return Vec::new();
        }
        let sr = topo.rack_of(src);
        let dr = topo.rack_of(dst);
        if sr == dr {
            vec![self.node_up[src.index()], self.node_down[dst.index()]]
        } else {
            vec![
                self.node_up[src.index()],
                self.rack_up[sr.index()],
                self.rack_down[dr.index()],
                self.node_down[dst.index()],
            ]
        }
    }

    /// Whether a transfer between the nodes would cross racks.
    pub fn is_cross_rack(&self, topo: &ClusterTopology, src: NodeId, dst: NodeId) -> bool {
        topo.rack_of(src) != topo.rack_of(dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ear_des::FifoEngine;

    #[test]
    fn paths_have_expected_shapes() {
        let topo = ClusterTopology::uniform(3, 2);
        let mut engine = FifoEngine::new();
        let net = NetTopology::build(
            &mut engine,
            &topo,
            Bandwidth::gbit(1.0),
            Bandwidth::gbit(1.0),
        );

        assert!(net.path(&topo, NodeId(0), NodeId(0)).is_empty());
        assert_eq!(net.path(&topo, NodeId(0), NodeId(1)).len(), 2);
        assert_eq!(net.path(&topo, NodeId(0), NodeId(2)).len(), 4);
        assert!(net.is_cross_rack(&topo, NodeId(0), NodeId(2)));
        assert!(!net.is_cross_rack(&topo, NodeId(0), NodeId(1)));
    }

    #[test]
    fn cross_rack_paths_share_rack_links() {
        let topo = ClusterTopology::uniform(2, 2);
        let mut engine = FifoEngine::new();
        let net = NetTopology::build(
            &mut engine,
            &topo,
            Bandwidth::gbit(1.0),
            Bandwidth::gbit(1.0),
        );
        // Node 0 -> node 2 and node 1 -> node 3 both traverse rack 0's
        // uplink and rack 1's downlink.
        let p1 = net.path(&topo, NodeId(0), NodeId(2));
        let p2 = net.path(&topo, NodeId(1), NodeId(3));
        assert_eq!(p1[1], p2[1], "rack uplink shared");
        assert_eq!(p1[2], p2[2], "rack downlink shared");
        assert_ne!(p1[0], p2[0], "node uplinks distinct");
    }

    #[test]
    fn all_links_distinct() {
        let topo = ClusterTopology::uniform(4, 3);
        let mut engine = FifoEngine::new();
        let net = NetTopology::build(
            &mut engine,
            &topo,
            Bandwidth::gbit(1.0),
            Bandwidth::gbit(0.5),
        );
        let mut all: Vec<LinkId> = Vec::new();
        all.extend(&net.node_up);
        all.extend(&net.node_down);
        all.extend(&net.rack_up);
        all.extend(&net.rack_down);
        let set: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(set.len(), all.len());
        assert_eq!(all.len(), 2 * 12 + 2 * 4);
    }
}
