//! The CFS discrete-event simulator (Fig. 11 of the paper): a
//! PlacementManager (the placement policies of `ear-core`), a Topology (the
//! link model of `ear-des`), and a TrafficManager generating write,
//! encoding, and background traffic streams.

use crate::config::{LinkModel, PolicyKind, SimConfig};
use crate::net::NetTopology;
use crate::report::SimReport;
use ear_core::{
    EncodePlan, EncodingAwareReplication, PlacementPolicy, RandomReplicationPolicy, StripePlan,
};
use ear_des::{
    exponential, EventQueue, FairShareEngine, FifoEngine, NetworkEngine, PoissonProcess, SimTime,
    TransferId,
};
use ear_types::{ByteSize, ClusterTopology, Error, NodeId, Result};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::{HashMap, VecDeque};

/// Scheduled (non-transfer) events.
#[derive(Debug, Clone, Copy)]
enum Event {
    WriteArrival,
    BackgroundArrival,
    EncodeStart,
}

/// Why a transfer was in flight.
#[derive(Debug, Clone, Copy)]
enum TransferCtx {
    WriteHop { req: u64 },
    Background,
    EncodeDownload { proc: usize },
    EncodeUpload { proc: usize },
    EncodeRelocate { proc: usize },
}

#[derive(Debug)]
struct WriteReq {
    arrival: f64,
    /// Remaining pipeline hops `(src, dst)`, front first.
    hops: VecDeque<(NodeId, NodeId)>,
}

#[derive(Debug)]
enum ProcState {
    Idle,
    Downloading { stripe: usize, left: usize },
    Uploading { stripe: usize, left: usize },
    Relocating { stripe: usize, left: usize },
}

/// Runs one simulation to completion and returns its measurements.
///
/// # Errors
///
/// Returns configuration/placement errors (e.g. a topology too small for the
/// erasure parameters) before any simulation work happens.
///
/// ```
/// use ear_sim::{run, PolicyKind, SimConfig};
/// use ear_types::ErasureParams;
///
/// let mut cfg = SimConfig::testbed(PolicyKind::Ear, ErasureParams::new(6, 4).unwrap());
/// cfg.stripes_per_process = 1; // tiny run for the doctest
/// cfg.encode_processes = 2;
/// let report = run(&cfg)?;
/// assert_eq!(report.encode_completions.len(), 2);
/// assert_eq!(report.cross_rack_downloads, 0); // the EAR guarantee
/// # Ok::<(), ear_types::Error>(())
/// ```
pub fn run(config: &SimConfig) -> Result<SimReport> {
    Simulator::new(config)?.run()
}

struct Simulator<'a> {
    config: &'a SimConfig,
    topo: ClusterTopology,
    net: NetTopology,
    engine: Box<dyn NetworkEngine>,
    queue: EventQueue<Event>,
    rng: ChaCha8Rng,
    policy: Box<dyn PlacementPolicy>,

    stripes: Vec<StripePlan>,
    proc_queues: Vec<VecDeque<usize>>,
    procs: Vec<ProcState>,
    stripes_done: usize,

    transfers: HashMap<TransferId, TransferCtx>,
    pending_plans: HashMap<usize, EncodePlan>,
    writes: HashMap<u64, WriteReq>,
    next_write_id: u64,
    writes_generated: usize,
    write_process: Option<PoissonProcess>,
    background_process: Option<PoissonProcess>,

    report: SimReport,
    all_encoded: bool,
}

impl<'a> Simulator<'a> {
    fn new(config: &'a SimConfig) -> Result<Self> {
        let topo = ClusterTopology::uniform(config.racks, config.nodes_per_rack);
        let ear_cfg = config.ear_config()?;
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);

        let mut policy: Box<dyn PlacementPolicy> = match config.policy {
            PolicyKind::Rr => Box::new(RandomReplicationPolicy::new(ear_cfg, topo.clone())?),
            PolicyKind::Ear => Box::new(EncodingAwareReplication::new(ear_cfg, topo.clone())),
        };

        // Pre-place the stripes that the encoding processes will transform;
        // their writes happened before the simulated window.
        let total = config.total_stripes();
        let mut stripes = Vec::with_capacity(total);
        let mut guard = 0usize;
        while stripes.len() < total {
            let placed = policy.place_block(&mut rng)?;
            if let Some(plan) = placed.sealed_stripe {
                stripes.push(plan);
            }
            guard += 1;
            if guard > total * config.erasure.k() * 4 + 1000 {
                return Err(Error::Invariant(
                    "pre-placement failed to seal enough stripes".into(),
                ));
            }
        }

        let mut engine: Box<dyn NetworkEngine> = match config.link_model {
            LinkModel::Fifo => Box::new(FifoEngine::new()),
            LinkModel::FairShare => Box::new(FairShareEngine::new()),
        };
        let net = NetTopology::build(
            engine.as_mut(),
            &topo,
            config.node_bandwidth,
            config.rack_bandwidth,
        );

        // Assign stripes to encoding processes. Stripes sharing a core rack
        // go to the same process (the paper's Section IV-B scheduling: one
        // map task encodes stripes with a common core rack, serializing them
        // instead of contending on the rack's links); RR stripes have no
        // core rack and round-robin.
        let procs = config.encode_processes.max(1);
        let mut proc_queues = vec![VecDeque::new(); procs];
        let mut rack_proc: HashMap<usize, usize> = HashMap::new();
        let mut next_proc = 0usize;
        for (i, s) in stripes.iter().enumerate() {
            let p = match s.core_rack() {
                Some(rack) => *rack_proc.entry(rack.index()).or_insert_with(|| {
                    let p = next_proc % procs;
                    next_proc += 1;
                    p
                }),
                None => {
                    let p = next_proc % procs;
                    next_proc += 1;
                    p
                }
            };
            proc_queues[p].push_back(i);
        }

        let report = SimReport {
            policy: config.policy.name(),
            write_responses: Vec::new(),
            write_completions: Vec::new(),
            encode_completions: Vec::new(),
            encode_start: config.encode_start,
            encode_end: config.encode_start,
            encoded_bytes: 0,
            write_bytes_each: config.block_size.as_u64(),
            cross_rack_downloads: 0,
            stripes_with_relocation: 0,
            sim_end: 0.0,
        };

        Ok(Simulator {
            config,
            topo,
            net,
            engine,
            queue: EventQueue::new(),
            rng,
            policy,
            stripes,
            proc_queues,
            procs: (0..procs).map(|_| ProcState::Idle).collect(),
            stripes_done: 0,
            transfers: HashMap::new(),
            pending_plans: HashMap::new(),
            writes: HashMap::new(),
            next_write_id: 0,
            writes_generated: 0,
            write_process: (config.write_rate > 0.0)
                .then(|| PoissonProcess::new(config.write_rate)),
            background_process: (config.background_rate > 0.0)
                .then(|| PoissonProcess::new(config.background_rate)),
            report,
            all_encoded: false,
        })
    }

    fn run(mut self) -> Result<SimReport> {
        if self.config.total_stripes() > 0 {
            self.queue.schedule(
                SimTime::from_secs(self.config.encode_start),
                Event::EncodeStart,
            );
        } else {
            self.all_encoded = true;
        }
        if self.write_process.is_some() {
            self.queue.schedule(SimTime::ZERO, Event::WriteArrival);
        }
        if self.background_process.is_some() {
            self.queue.schedule(SimTime::ZERO, Event::BackgroundArrival);
        }

        let mut last = SimTime::ZERO;
        loop {
            let tq = self.queue.peek_time();
            let tn = self.engine.next_completion().map(|(t, _)| t);
            let next = match (tq, tn) {
                (None, None) => break,
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (Some(a), Some(b)) => a.min(b),
            };
            last = next;
            // Completions first at ties: frees links before new arrivals.
            if tn.is_some_and(|t| t <= next) {
                let id = self.engine.pop_completion(next);
                self.on_transfer_done(next, id)?;
            } else {
                let (t, event) = self.queue.pop().expect("peeked");
                debug_assert_eq!(t, next);
                self.on_event(t, event)?;
            }
        }
        self.report.sim_end = last.as_secs();
        Ok(self.report)
    }

    fn on_event(&mut self, now: SimTime, event: Event) -> Result<()> {
        match event {
            Event::WriteArrival => self.on_write_arrival(now),
            Event::BackgroundArrival => {
                self.on_background_arrival(now);
                Ok(())
            }
            Event::EncodeStart => {
                self.report.encode_start = now.as_secs();
                for p in 0..self.procs.len() {
                    self.start_next_stripe(now, p)?;
                }
                Ok(())
            }
        }
    }

    fn should_generate_writes(&self) -> bool {
        if self.config.total_stripes() > 0 {
            // Writes accompany the whole encoding experiment.
            !self.all_encoded
        } else {
            self.writes_generated < self.config.standalone_writes
        }
    }

    fn on_write_arrival(&mut self, now: SimTime) -> Result<()> {
        if !self.should_generate_writes() {
            return Ok(());
        }
        self.writes_generated += 1;
        let placed = self.policy.place_block(&mut self.rng)?;
        // Replication pipeline: a random client node streams the block to
        // the first replica, which forwards to the second, and so on.
        let all: Vec<NodeId> = self.topo.nodes().collect();
        let client = *all.choose(&mut self.rng).expect("nodes exist");
        let mut hops = VecDeque::new();
        let mut src = client;
        for &dst in &placed.layout.replicas {
            hops.push_back((src, dst));
            src = dst;
        }
        let id = self.next_write_id;
        self.next_write_id += 1;
        let mut req = WriteReq {
            arrival: now.as_secs(),
            hops,
        };
        let (s, d) = req.hops.pop_front().expect("at least one replica");
        let path = self.net.path(&self.topo, s, d);
        let tid = self.engine.submit(now, &path, self.config.block_size);
        self.transfers
            .insert(tid, TransferCtx::WriteHop { req: id });
        self.writes.insert(id, req);

        if let Some(p) = self.write_process {
            let gap = p.next_gap(&mut self.rng);
            self.queue.schedule(now + gap, Event::WriteArrival);
        }
        Ok(())
    }

    fn on_background_arrival(&mut self, now: SimTime) {
        // Background traffic accompanies the run while work remains.
        if self.all_encoded && !self.should_generate_writes() {
            return;
        }
        let all: Vec<NodeId> = self.topo.nodes().collect();
        let src = *all.choose(&mut self.rng).expect("nodes exist");
        let cross = self.rng.gen::<f64>() < self.config.background_cross_fraction;
        let src_rack = self.topo.rack_of(src);
        let candidates: Vec<NodeId> = self
            .topo
            .nodes()
            .filter(|&n| n != src && (self.topo.rack_of(n) == src_rack) != cross)
            .collect();
        let dst = candidates.choose(&mut self.rng).copied().unwrap_or(src);
        let size = ByteSize::bytes(
            exponential(&mut self.rng, self.config.background_mean_size.as_f64()).round() as u64,
        );
        let path = self.net.path(&self.topo, src, dst);
        let tid = self.engine.submit(now, &path, size);
        self.transfers.insert(tid, TransferCtx::Background);

        if let Some(p) = self.background_process {
            let gap = p.next_gap(&mut self.rng);
            self.queue.schedule(now + gap, Event::BackgroundArrival);
        }
    }

    fn start_next_stripe(&mut self, now: SimTime, proc: usize) -> Result<()> {
        let Some(stripe_idx) = self.proc_queues[proc].pop_front() else {
            self.procs[proc] = ProcState::Idle;
            return Ok(());
        };
        let stripe = &self.stripes[stripe_idx];
        // Plans draw from a per-stripe RNG derived from (seed, stripe) rather
        // than the shared stream, so a stripe's plan does not depend on how
        // encode, write, and relocation events happen to interleave. Two runs
        // that differ only in `simulate_relocation` therefore produce
        // identical plans, and the relocation transfers are the sole
        // difference between them.
        let mut stripe_rng = ChaCha8Rng::seed_from_u64(
            self.config
                .seed
                .rotate_left(17)
                .wrapping_add((stripe_idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        );
        let plan = self.policy.plan_encoding(stripe, &mut stripe_rng)?;
        self.report.cross_rack_downloads += plan.cross_rack_downloads();
        if plan.violated_rack_fault_tolerance() {
            self.report.stripes_with_relocation += 1;
        }
        let enc = plan.encoding_node;
        let enc_rack = self.topo.rack_of(enc);

        // Download one replica of each data block, preferring an intra-rack
        // source (HDFS reads the nearest replica).
        let k = stripe.num_blocks();
        for layout in stripe.data_layouts() {
            let source = layout
                .replicas
                .iter()
                .copied()
                .find(|&n| self.topo.rack_of(n) == enc_rack)
                .unwrap_or_else(|| {
                    *layout
                        .replicas
                        .choose(&mut stripe_rng)
                        .expect("non-empty layout")
                });
            let path = self.net.path(&self.topo, source, enc);
            let tid = self.engine.submit(now, &path, self.config.block_size);
            self.transfers
                .insert(tid, TransferCtx::EncodeDownload { proc });
        }
        self.procs[proc] = ProcState::Downloading {
            stripe: stripe_idx,
            left: k,
        };
        // Remember the plan; the upload phase needs the parity destinations.
        self.pending_plans.insert(stripe_idx, plan);
        Ok(())
    }

    fn on_transfer_done(&mut self, now: SimTime, id: TransferId) -> Result<()> {
        let ctx = self
            .transfers
            .remove(&id)
            .expect("unknown transfer completed");
        match ctx {
            TransferCtx::Background => Ok(()),
            TransferCtx::WriteHop { req } => {
                let done = {
                    let r = self.writes.get_mut(&req).expect("write in flight");
                    if let Some((s, d)) = r.hops.pop_front() {
                        let path = self.net.path(&self.topo, s, d);
                        let tid = self.engine.submit(now, &path, self.config.block_size);
                        self.transfers.insert(tid, TransferCtx::WriteHop { req });
                        false
                    } else {
                        true
                    }
                };
                if done {
                    let r = self.writes.remove(&req).expect("write in flight");
                    self.report
                        .write_responses
                        .push((r.arrival, now.as_secs() - r.arrival));
                    self.report.write_completions.push(now.as_secs());
                }
                Ok(())
            }
            TransferCtx::EncodeDownload { proc } => {
                let ProcState::Downloading { stripe, left } = self.procs[proc] else {
                    return Err(Error::Invariant(
                        "download completed while not downloading".into(),
                    ));
                };
                if left > 1 {
                    self.procs[proc] = ProcState::Downloading {
                        stripe,
                        left: left - 1,
                    };
                    return Ok(());
                }
                // All blocks downloaded: upload parity.
                let plan = self
                    .pending_plans
                    .get(&stripe)
                    .expect("plan stored")
                    .clone();
                let m = plan.parity_nodes.len();
                for &parity in &plan.parity_nodes {
                    let path = self.net.path(&self.topo, plan.encoding_node, parity);
                    let tid = self.engine.submit(now, &path, self.config.block_size);
                    self.transfers
                        .insert(tid, TransferCtx::EncodeUpload { proc });
                }
                self.procs[proc] = ProcState::Uploading { stripe, left: m };
                Ok(())
            }
            TransferCtx::EncodeUpload { proc } => {
                let ProcState::Uploading { stripe, left } = self.procs[proc] else {
                    return Err(Error::Invariant(
                        "upload completed while not uploading".into(),
                    ));
                };
                if left > 1 {
                    self.procs[proc] = ProcState::Uploading {
                        stripe,
                        left: left - 1,
                    };
                    return Ok(());
                }
                // Redundant replicas are deleted (no traffic). If the stripe
                // violates rack fault tolerance and relocation is simulated,
                // the BlockMover's transfers happen before the stripe
                // counts as done; the paper skips this step, over-estimating
                // RR (Experiment B.2).
                let plan = self.pending_plans.get(&stripe).expect("plan stored");
                let relocations = plan.relocations.clone();
                if self.config.simulate_relocation && !relocations.is_empty() {
                    let m = relocations.len();
                    for &(_, from, to) in &relocations {
                        let path = self.net.path(&self.topo, from, to);
                        let tid = self.engine.submit(now, &path, self.config.block_size);
                        self.transfers
                            .insert(tid, TransferCtx::EncodeRelocate { proc });
                    }
                    self.procs[proc] = ProcState::Relocating { stripe, left: m };
                    return Ok(());
                }
                self.finish_stripe(now, stripe);
                self.start_next_stripe(now, proc)
            }
            TransferCtx::EncodeRelocate { proc } => {
                let ProcState::Relocating { stripe, left } = self.procs[proc] else {
                    return Err(Error::Invariant(
                        "relocation completed while not relocating".into(),
                    ));
                };
                if left > 1 {
                    self.procs[proc] = ProcState::Relocating {
                        stripe,
                        left: left - 1,
                    };
                    return Ok(());
                }
                self.finish_stripe(now, stripe);
                self.start_next_stripe(now, proc)
            }
        }
    }

    /// Records a stripe as fully encoded (and relocated, if simulated).
    fn finish_stripe(&mut self, now: SimTime, stripe: usize) {
        self.pending_plans.remove(&stripe);
        self.report.encode_completions.push(now.as_secs());
        self.report.encoded_bytes +=
            self.stripes[stripe].num_blocks() as u64 * self.config.block_size.as_u64();
        self.stripes_done += 1;
        if self.stripes_done == self.config.total_stripes() {
            self.all_encoded = true;
            self.report.encode_end = now.as_secs();
        }
    }
}
