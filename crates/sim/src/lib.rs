//! Discrete-event CFS simulator reproducing the paper's CSIM experiments
//! (Section V-B): a PlacementManager (RR or EAR from `ear-core`), a Topology
//! (FIFO or fair-share link model from `ear-des`), and a TrafficManager
//! feeding simultaneous write, encoding, and background traffic streams.
//!
//! The simulator measures everything the paper's Figures 12–13 and Table I
//! report: encoding throughput, write throughput during encoding, write
//! response times, cumulative encoded stripes, cross-rack downloads, and
//! relocation counts.
//!
//! # Example: a small EAR vs RR comparison
//!
//! ```
//! use ear_sim::{run, PolicyKind, SimConfig};
//! use ear_types::ErasureParams;
//!
//! let base = SimConfig {
//!     racks: 8,
//!     nodes_per_rack: 2,
//!     erasure: ErasureParams::new(6, 4).unwrap(),
//!     encode_processes: 4,
//!     stripes_per_process: 2,
//!     write_rate: 0.0,
//!     background_rate: 0.0,
//!     ..SimConfig::default()
//! };
//! let ear = run(&base.clone().with_policy(PolicyKind::Ear))?;
//! let rr = run(&base.with_policy(PolicyKind::Rr))?;
//! assert!(ear.encoding_throughput() >= rr.encoding_throughput());
//! # Ok::<(), ear_types::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod net;
mod report;
mod simulator;

pub use config::{LinkModel, PolicyKind, SimConfig};
pub use net::NetTopology;
pub use report::SimReport;
pub use simulator::run;
