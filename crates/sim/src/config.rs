//! Simulation configuration (the knobs of Experiments B.1 and B.2).

use ear_types::{Bandwidth, ByteSize, EarConfig, ErasureParams, ReplicationConfig, Result};

/// Which placement policy drives the simulated CFS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// Random replication (the baseline).
    Rr,
    /// Encoding-aware replication (the paper's contribution).
    Ear,
}

impl PolicyKind {
    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Rr => "rr",
            PolicyKind::Ear => "ear",
        }
    }
}

/// Which link-contention model the simulator uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LinkModel {
    /// CSIM-style FIFO facilities (the paper's model; default).
    #[default]
    Fifo,
    /// Max-min fair sharing (ablation).
    FairShare,
}

/// Full configuration of one simulation run.
///
/// Defaults mirror Experiment B.2: a 400-node CFS of 20 racks × 20 nodes,
/// 1 Gb/s links, 64 MiB blocks, 3-way replication over two racks, `(14, 10)`
/// erasure coding with `c = 1`, write and background traffic at 1 req/s, and
/// 20 encoding processes of 50 stripes each.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Number of racks.
    pub racks: usize,
    /// Nodes per rack.
    pub nodes_per_rack: usize,
    /// Bandwidth of each node's access link.
    pub node_bandwidth: Bandwidth,
    /// Bandwidth of each rack's uplink/downlink to the network core.
    pub rack_bandwidth: Bandwidth,
    /// Fixed CFS block size.
    pub block_size: ByteSize,
    /// Erasure-coding parameters applied at encoding time.
    pub erasure: ErasureParams,
    /// Replication configuration used before encoding.
    pub replication: ReplicationConfig,
    /// Maximum stripe blocks per rack after encoding (EAR's `c`).
    pub c: usize,
    /// Optional target-racks restriction `R'` (Section III-D).
    pub target_racks: Option<usize>,
    /// Placement policy.
    pub policy: PolicyKind,
    /// Link-contention model.
    pub link_model: LinkModel,
    /// Write request arrival rate (requests/second); 0 disables writes.
    pub write_rate: f64,
    /// Background request arrival rate (requests/second); 0 disables it.
    pub background_rate: f64,
    /// Mean size of (exponentially distributed) background transfers.
    pub background_mean_size: ByteSize,
    /// Fraction of background transfers that cross racks (the paper's 1:1
    /// ratio is 0.5).
    pub background_cross_fraction: f64,
    /// Number of concurrent encoding processes.
    pub encode_processes: usize,
    /// Stripes encoded by each process.
    pub stripes_per_process: usize,
    /// Simulated time at which encoding starts (seconds).
    pub encode_start: f64,
    /// Writes issued before the simulation stops generating them, when no
    /// encoding bounds the run (e.g. Table I's "without encoding" rows).
    pub standalone_writes: usize,
    /// Simulate the BlockMover's relocation transfers for RR stripes that
    /// violate rack-level fault tolerance after encoding. The paper does
    /// *not* simulate these ("the simulated performance of RR is actually
    /// over-estimated", Experiment B.2); enabling this measures how much.
    pub simulate_relocation: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            racks: 20,
            nodes_per_rack: 20,
            node_bandwidth: Bandwidth::gbit(1.0),
            rack_bandwidth: Bandwidth::gbit(1.0),
            block_size: ByteSize::mib(64),
            erasure: ErasureParams::new(14, 10).expect("valid"),
            replication: ReplicationConfig::hdfs_default(),
            c: 1,
            target_racks: None,
            policy: PolicyKind::Ear,
            link_model: LinkModel::Fifo,
            write_rate: 1.0,
            background_rate: 1.0,
            background_mean_size: ByteSize::mib(64),
            background_cross_fraction: 0.5,
            encode_processes: 20,
            stripes_per_process: 50,
            encode_start: 0.0,
            standalone_writes: 0,
            simulate_relocation: false,
            seed: 1,
        }
    }
}

impl SimConfig {
    /// The testbed topology of Experiments A.1–A.3 and B.1: 12 racks with a
    /// single DataNode each, 1 Gb/s links, 2-way replication, 96 stripes
    /// encoded by 12 map processes.
    pub fn testbed(policy: PolicyKind, erasure: ErasureParams) -> Self {
        SimConfig {
            racks: 12,
            nodes_per_rack: 1,
            replication: ReplicationConfig::two_way(),
            erasure,
            policy,
            write_rate: 0.0,
            background_rate: 0.0,
            encode_processes: 12,
            stripes_per_process: 8,
            ..SimConfig::default()
        }
    }

    /// Derives the [`EarConfig`] shared by both policies.
    ///
    /// # Errors
    ///
    /// Returns a validation error if `c` or the target racks are
    /// inconsistent with the erasure parameters.
    pub fn ear_config(&self) -> Result<EarConfig> {
        let cfg = EarConfig::new(self.erasure, self.replication, self.c)?;
        match self.target_racks {
            Some(r) => cfg.with_target_racks(r),
            None => Ok(cfg),
        }
    }

    /// Total stripes encoded in this run.
    pub fn total_stripes(&self) -> usize {
        self.encode_processes * self.stripes_per_process
    }

    /// Overrides the seed, for multi-run experiments.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the policy.
    pub fn with_policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_experiment_b2() {
        let c = SimConfig::default();
        assert_eq!(c.racks, 20);
        assert_eq!(c.nodes_per_rack, 20);
        assert_eq!(c.erasure.n(), 14);
        assert_eq!(c.erasure.k(), 10);
        assert_eq!(c.total_stripes(), 1000);
        assert!(c.ear_config().is_ok());
    }

    #[test]
    fn testbed_matches_experiment_a() {
        let c = SimConfig::testbed(PolicyKind::Rr, ErasureParams::new(10, 8).unwrap());
        assert_eq!(c.racks, 12);
        assert_eq!(c.nodes_per_rack, 1);
        assert_eq!(c.replication.replicas(), 2);
        assert_eq!(c.total_stripes(), 96);
    }

    #[test]
    fn builder_overrides() {
        let c = SimConfig::default()
            .with_seed(9)
            .with_policy(PolicyKind::Rr);
        assert_eq!(c.seed, 9);
        assert_eq!(c.policy, PolicyKind::Rr);
        assert_eq!(c.policy.name(), "rr");
    }
}
