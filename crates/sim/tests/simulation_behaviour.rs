//! Behavioural tests of the CFS simulator: the qualitative results the paper
//! reports must emerge from the model (EAR beats RR on encoding throughput,
//! EAR never does cross-rack downloads, RR relocates in small clusters,
//! writes slow down while encoding runs, determinism under a fixed seed).

use ear_sim::{run, LinkModel, PolicyKind, SimConfig};
use ear_types::{Bandwidth, ByteSize, ErasureParams};

fn small_b2_config() -> SimConfig {
    SimConfig {
        racks: 12,
        nodes_per_rack: 4,
        erasure: ErasureParams::new(9, 6).unwrap(),
        block_size: ByteSize::mib(64),
        encode_processes: 4,
        stripes_per_process: 5,
        write_rate: 0.5,
        background_rate: 0.5,
        ..SimConfig::default()
    }
}

#[test]
fn ear_encodes_faster_than_rr() {
    let mut ear_wins = 0;
    for seed in 0..3 {
        // 60 stripes per run: at 20 the race between background traffic and
        // encode transfers is noisy enough that a single seed's RNG stream
        // can flip the ordering; at 60 EAR's ~20% margin dominates the noise
        // for any uniform stream.
        let mut base = small_b2_config().with_seed(seed);
        base.stripes_per_process = 15;
        let ear = run(&base.clone().with_policy(PolicyKind::Ear)).unwrap();
        let rr = run(&base.with_policy(PolicyKind::Rr)).unwrap();
        assert_eq!(ear.encode_completions.len(), 60);
        assert_eq!(rr.encode_completions.len(), 60);
        if ear.encoding_throughput() > rr.encoding_throughput() {
            ear_wins += 1;
        }
    }
    assert_eq!(ear_wins, 3, "EAR should beat RR on encoding throughput");
}

#[test]
fn ear_has_zero_cross_rack_downloads_rr_does_not() {
    let base = small_b2_config().with_seed(7);
    let ear = run(&base.clone().with_policy(PolicyKind::Ear)).unwrap();
    let rr = run(&base.with_policy(PolicyKind::Rr)).unwrap();
    assert_eq!(ear.cross_rack_downloads, 0);
    assert_eq!(ear.stripes_with_relocation, 0);
    // Section II-B: RR downloads almost k blocks across racks per stripe.
    let per_stripe = rr.cross_rack_downloads as f64 / 20.0;
    assert!(
        per_stripe > 3.0,
        "RR averaged only {per_stripe} cross-rack downloads per stripe"
    );
}

#[test]
fn rr_relocations_appear_in_small_clusters() {
    // (6,4) over exactly 6 racks with c = 1: each stripe must span every
    // rack, so RR's independent placement frequently leaves some subset of
    // blocks squeezed into too few racks (Section II-B).
    let mut any = 0;
    for seed in 0..3 {
        let cfg = SimConfig {
            racks: 6,
            nodes_per_rack: 4,
            erasure: ErasureParams::new(6, 4).unwrap(),
            encode_processes: 4,
            stripes_per_process: 20,
            write_rate: 0.0,
            background_rate: 0.0,
            policy: PolicyKind::Rr,
            seed: 100 + seed,
            ..SimConfig::default()
        };
        let r = run(&cfg).unwrap();
        any += r.stripes_with_relocation;
    }
    assert!(any > 0, "RR should need relocation in a 6-rack cluster");
}

#[test]
fn writes_complete_and_slow_down_during_encoding() {
    let mut cfg = small_b2_config().with_seed(11);
    cfg.encode_start = 60.0;
    cfg.write_rate = 0.4;
    cfg.policy = PolicyKind::Rr;
    let r = run(&cfg).unwrap();
    assert!(!r.write_responses.is_empty());
    let before = r.mean_write_response_before_encoding();
    let during = r.mean_write_response_during_encoding();
    assert!(before > 0.0);
    assert!(
        during > before,
        "write responses should degrade while encoding runs: before={before} during={during}"
    );
}

#[test]
fn deterministic_under_fixed_seed() {
    let cfg = small_b2_config().with_seed(42);
    let a = run(&cfg).unwrap();
    let b = run(&cfg).unwrap();
    assert_eq!(a.encode_completions, b.encode_completions);
    assert_eq!(a.write_responses, b.write_responses);
    assert_eq!(a.cross_rack_downloads, b.cross_rack_downloads);
}

#[test]
fn different_seeds_differ() {
    let a = run(&small_b2_config().with_seed(1)).unwrap();
    let b = run(&small_b2_config().with_seed(2)).unwrap();
    assert_ne!(a.encode_completions, b.encode_completions);
}

#[test]
fn standalone_writes_without_encoding() {
    let cfg = SimConfig {
        racks: 12,
        nodes_per_rack: 1,
        erasure: ErasureParams::new(10, 8).unwrap(),
        replication: ear_types::ReplicationConfig::two_way(),
        encode_processes: 0,
        stripes_per_process: 0,
        write_rate: 0.5,
        background_rate: 0.0,
        standalone_writes: 40,
        policy: PolicyKind::Rr,
        ..SimConfig::default()
    };
    let r = run(&cfg).unwrap();
    assert_eq!(r.write_responses.len(), 40);
    assert_eq!(r.encode_completions.len(), 0);
    assert_eq!(r.encoding_throughput(), 0.0);
    // A 64 MiB block over two 1 Gb/s hops takes >= 2 * 0.537 s.
    assert!(r.mean_write_response() >= 1.0);
}

#[test]
fn lower_bandwidth_lowers_encoding_throughput() {
    let mut fast = small_b2_config().with_seed(3);
    fast.write_rate = 0.0;
    fast.background_rate = 0.0;
    let mut slow = fast.clone();
    slow.node_bandwidth = Bandwidth::gbit(0.2);
    slow.rack_bandwidth = Bandwidth::gbit(0.2);
    let rf = run(&fast).unwrap();
    let rs = run(&slow).unwrap();
    assert!(rf.encoding_throughput() > rs.encoding_throughput() * 2.0);
}

#[test]
fn fair_share_model_also_runs() {
    let mut cfg = small_b2_config().with_seed(5);
    cfg.racks = 8;
    cfg.nodes_per_rack = 2;
    cfg.erasure = ErasureParams::new(6, 4).unwrap();
    cfg.encode_processes = 2;
    cfg.stripes_per_process = 3;
    cfg.write_rate = 0.2;
    cfg.background_rate = 0.2;
    cfg.link_model = LinkModel::FairShare;
    let r = run(&cfg).unwrap();
    assert_eq!(r.encode_completions.len(), 6);
    assert!(r.encoding_throughput() > 0.0);
}

#[test]
fn testbed_config_reproduces_throughput_ordering_across_k() {
    // Fig. 8(a): encoding throughput grows with k (fewer parity blocks per
    // data block) for both policies.
    let mut prev_ear = 0.0;
    for (n, k) in [(6usize, 4usize), (8, 6), (10, 8)] {
        let mut cfg = SimConfig::testbed(PolicyKind::Ear, ErasureParams::new(n, k).unwrap());
        cfg.stripes_per_process = 2;
        cfg.seed = 9;
        let r = run(&cfg).unwrap();
        let t = r.encoding_throughput();
        assert!(
            t > prev_ear,
            "throughput should increase with k: {t} !> {prev_ear}"
        );
        prev_ear = t;
    }
}

#[test]
fn simulating_relocation_slows_rr_but_not_ear() {
    // The paper skips relocation traffic, over-estimating RR (Experiment
    // B.2). Enabling it must cost RR encoding time and leave EAR untouched
    // (EAR never relocates). Encoding plans come from a per-stripe RNG, so
    // the two RR runs are identical except for the relocation transfers —
    // the throughput comparison is exact, not statistical.
    let base = SimConfig {
        racks: 6,
        nodes_per_rack: 4,
        erasure: ErasureParams::new(6, 4).unwrap(),
        encode_processes: 4,
        // Enough stripes that a tight 6-rack RR cluster violates with
        // near-certainty (~5% per stripe) regardless of the RNG stream, so
        // the test does not pin a particular seed's bit-sequence.
        stripes_per_process: 60,
        write_rate: 0.0,
        background_rate: 0.0,
        seed: 77,
        ..SimConfig::default()
    };
    let mut with_reloc = base.clone();
    with_reloc.simulate_relocation = true;

    let rr_plain = run(&base.clone().with_policy(PolicyKind::Rr)).unwrap();
    let rr_reloc = run(&with_reloc.clone().with_policy(PolicyKind::Rr)).unwrap();
    assert!(
        rr_plain.stripes_with_relocation > 0,
        "tight cluster must violate"
    );
    assert!(
        rr_reloc.encoding_throughput() < rr_plain.encoding_throughput(),
        "relocation transfers must cost RR throughput: {} !< {}",
        rr_reloc.encoding_throughput(),
        rr_plain.encoding_throughput()
    );

    let ear_plain = run(&base.clone().with_policy(PolicyKind::Ear)).unwrap();
    let ear_reloc = run(&with_reloc.with_policy(PolicyKind::Ear)).unwrap();
    assert_eq!(ear_plain.stripes_with_relocation, 0);
    assert_eq!(
        ear_plain.encode_completions, ear_reloc.encode_completions,
        "EAR is unaffected by the relocation switch"
    );
}
