//! Fault plans: a seed expanded into a concrete, replayable schedule of
//! failures for one testbed run.
//!
//! # Determinism
//!
//! A plan is a pure function of `(seed, topology, FaultConfig)`: the same
//! three inputs always produce the same crashed nodes, dead racks,
//! stragglers, and rates, on every build. Per-operation decisions (transient
//! errors, corruption) are likewise pure functions of the operation's
//! identity — see [`FaultInjector`](crate::FaultInjector). The only
//! timing-dependent aspect is *when* a scheduled crash is first observed:
//! crashes activate once the injector's global operation counter passes the
//! plan's activation index, so which concrete I/O sees the crash first
//! depends on thread interleaving. The *set* of faults never does.

use crate::rng::ChaCha8;
use ear_types::{ClusterTopology, NodeId, RackId};
use std::fmt;

/// How much extra virtual-clock delay a straggler adds to one I/O attempt.
///
/// The legacy straggler model was a binary slow flag (a netem bandwidth
/// throttle); hedged reads need a *distribution* with a real tail to beat,
/// so the delay model is explicit and every sample is a pure function of
/// the attempt's identity hash — the same attempt always straggles by the
/// same amount, on every backend and thread count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DelayModel {
    /// Legacy behaviour: no explicit per-attempt delay distribution; the
    /// straggler's slowdown is its bandwidth factor, so the virtual delay
    /// is the extra service time that factor implies.
    Throttle,
    /// Every attempt on a straggler pays a fixed extra delay.
    Fixed {
        /// Extra virtual-clock ticks per attempt.
        ticks: u64,
    },
    /// Heavy-tailed (Pareto) extra delay: most attempts pay around
    /// `scale_ticks`, a small fraction pay orders of magnitude more — the
    /// tail profile real straggler studies observe.
    Pareto {
        /// Minimum (and typical) extra delay, in virtual-clock ticks.
        scale_ticks: u64,
        /// Tail index; smaller = heavier tail. Values `<= 0` clamp to 1.
        shape: f64,
        /// Hard cap on one sample, in virtual-clock ticks.
        cap_ticks: u64,
    },
}

impl DelayModel {
    /// Extra virtual-clock ticks one attempt on a straggler pays.
    ///
    /// Pure: `u` is a uniform sample in `[0, 1)` derived from the attempt's
    /// identity hash, `service_ticks` is the attempt's fault-free virtual
    /// service time, and `factor` is the straggler's bandwidth multiplier
    /// (consulted only by [`DelayModel::Throttle`]).
    pub fn sample(&self, u: f64, service_ticks: u64, factor: f64) -> u64 {
        match *self {
            DelayModel::Throttle => {
                if factor > 0.0 && factor < 1.0 {
                    (service_ticks as f64 * (1.0 / factor - 1.0)) as u64
                } else {
                    0
                }
            }
            DelayModel::Fixed { ticks } => ticks,
            DelayModel::Pareto {
                scale_ticks,
                shape,
                cap_ticks,
            } => {
                let shape = if shape > 0.0 { shape } else { 1.0 };
                let tail = (1.0 - u).max(f64::MIN_POSITIVE);
                let x = scale_ticks as f64 / tail.powf(1.0 / shape);
                if x >= cap_ticks as f64 {
                    cap_ticks
                } else {
                    x as u64
                }
            }
        }
    }
}

/// Knobs controlling how much chaos a generated [`FaultPlan`] contains.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Number of distinct nodes that crash (fail-stop) during the run.
    pub node_crashes: usize,
    /// Number of whole racks that go dark during the run.
    pub rack_outages: usize,
    /// Number of straggler nodes whose links are throttled.
    pub stragglers: usize,
    /// Bandwidth multiplier for stragglers (e.g. `0.1` = 10% of base).
    pub straggler_factor: f64,
    /// Per-attempt extra-delay distribution for stragglers, on the virtual
    /// clock (the tail the hedging policy races against).
    pub straggler_delay: DelayModel,
    /// Probability that any single I/O attempt fails transiently.
    pub transient_error_rate: f64,
    /// Probability that a given (node, block) copy reads back corrupted.
    pub corruption_rate: f64,
    /// Probability that a single heartbeat from a live node is lost on the
    /// way to the NameNode (exercises the failure detector's `Suspect` and
    /// `Rejoined` states without any real crash).
    pub heartbeat_loss_rate: f64,
    /// Crashes and outages activate at an operation index drawn uniformly
    /// from `[0, crash_window)`, spreading them across the run.
    pub crash_window: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            node_crashes: 1,
            rack_outages: 0,
            stragglers: 1,
            straggler_factor: 0.25,
            straggler_delay: DelayModel::Throttle,
            transient_error_rate: 0.02,
            corruption_rate: 0.02,
            heartbeat_loss_rate: 0.0,
            crash_window: 2_000,
        }
    }
}

impl FaultConfig {
    /// A gentle mix: one crash, one straggler, low error rates.
    pub fn light() -> Self {
        FaultConfig::default()
    }

    /// A hostile mix: crashes, a rack outage, stragglers, and noticeably
    /// lossy I/O — still survivable for `n - k >= 2` codes.
    pub fn heavy() -> Self {
        FaultConfig {
            node_crashes: 2,
            rack_outages: 1,
            stragglers: 2,
            straggler_factor: 0.1,
            straggler_delay: DelayModel::Throttle,
            transient_error_rate: 0.05,
            corruption_rate: 0.05,
            heartbeat_loss_rate: 0.05,
            crash_window: 5_000,
        }
    }
}

/// A scheduled fail-stop crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeCrash {
    /// The node that crashes.
    pub node: NodeId,
    /// Global operation index at which the crash takes effect.
    pub at_op: u64,
}

/// A scheduled whole-rack outage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RackOutage {
    /// The rack that goes dark.
    pub rack: RackId,
    /// Global operation index at which the outage takes effect.
    pub at_op: u64,
}

/// A concrete, replayable schedule of faults for one run.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    crashes: Vec<NodeCrash>,
    outages: Vec<RackOutage>,
    stragglers: Vec<(NodeId, f64)>,
    straggler_delay: DelayModel,
    transient_error_rate: f64,
    corruption_rate: f64,
    heartbeat_loss_rate: f64,
}

impl FaultPlan {
    /// The empty plan: injects nothing. Used as the default wherever a
    /// cluster component takes an injector.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            crashes: Vec::new(),
            outages: Vec::new(),
            stragglers: Vec::new(),
            straggler_delay: DelayModel::Throttle,
            transient_error_rate: 0.0,
            corruption_rate: 0.0,
            heartbeat_loss_rate: 0.0,
        }
    }

    /// Expands `seed` into a schedule for `topo` according to `config`.
    ///
    /// Crash nodes, dead racks, and stragglers are sampled without
    /// replacement (stragglers avoid crashed nodes — throttling a dead node
    /// would inject nothing). Counts are clamped to the topology's size.
    pub fn generate(seed: u64, topo: &ClusterTopology, config: &FaultConfig) -> Self {
        let mut rng = ChaCha8::from_seed(seed);
        let n = topo.num_nodes();

        // One shuffled node pool: the first `node_crashes` crash, the next
        // `stragglers` straggle.
        let picks = rng.sample_indices(n, (config.node_crashes + config.stragglers).min(n));
        let crashes: Vec<NodeCrash> = picks
            .iter()
            .take(config.node_crashes)
            .map(|&i| NodeCrash {
                node: NodeId(i as u32),
                at_op: rng.below(config.crash_window.max(1)),
            })
            .collect();
        let stragglers: Vec<(NodeId, f64)> = picks
            .iter()
            .skip(config.node_crashes)
            .map(|&i| (NodeId(i as u32), config.straggler_factor))
            .collect();

        let outages: Vec<RackOutage> = rng
            .sample_indices(topo.num_racks(), config.rack_outages)
            .into_iter()
            .map(|r| RackOutage {
                rack: RackId(r as u32),
                at_op: rng.below(config.crash_window.max(1)),
            })
            .collect();

        FaultPlan {
            seed,
            crashes,
            outages,
            stragglers,
            straggler_delay: config.straggler_delay,
            transient_error_rate: config.transient_error_rate,
            corruption_rate: config.corruption_rate,
            heartbeat_loss_rate: config.heartbeat_loss_rate,
        }
    }

    /// The seed this plan was generated from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty()
            && self.outages.is_empty()
            && self.stragglers.is_empty()
            && self.transient_error_rate <= 0.0
            && self.corruption_rate <= 0.0
            && self.heartbeat_loss_rate <= 0.0
    }

    /// Scheduled node crashes.
    pub fn crashes(&self) -> &[NodeCrash] {
        &self.crashes
    }

    /// Scheduled rack outages.
    pub fn outages(&self) -> &[RackOutage] {
        &self.outages
    }

    /// Straggler nodes and their bandwidth factors.
    pub fn stragglers(&self) -> &[(NodeId, f64)] {
        &self.stragglers
    }

    /// The per-attempt straggler delay distribution.
    pub fn straggler_delay(&self) -> DelayModel {
        self.straggler_delay
    }

    /// Per-attempt transient I/O error probability.
    pub fn transient_error_rate(&self) -> f64 {
        self.transient_error_rate
    }

    /// Per-(node, block) silent-corruption probability.
    pub fn corruption_rate(&self) -> f64 {
        self.corruption_rate
    }

    /// Per-heartbeat loss probability (the detector's flapping knob).
    pub fn heartbeat_loss_rate(&self) -> f64 {
        self.heartbeat_loss_rate
    }

    /// Upper bound on nodes that can be fail-stop-unavailable at once
    /// (crashed nodes plus every node of every dead rack), used by harnesses
    /// to keep a plan within a code's tolerance.
    pub fn max_down_nodes(&self, topo: &ClusterTopology) -> usize {
        let mut down: Vec<NodeId> = self.crashes.iter().map(|c| c.node).collect();
        for o in &self.outages {
            down.extend(topo.nodes_in_rack(o.rack).iter().copied());
        }
        down.sort_unstable();
        down.dedup();
        down.len()
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "fault plan: none");
        }
        write!(
            f,
            "fault plan seed={}: {} crash(es), {} rack outage(s), {} straggler(s), \
             transient={:.1}%, corruption={:.1}%, heartbeat-loss={:.1}%",
            self.seed,
            self.crashes.len(),
            self.outages.len(),
            self.stragglers.len(),
            self.transient_error_rate * 100.0,
            self.corruption_rate * 100.0,
            self.heartbeat_loss_rate * 100.0,
        )?;
        match self.straggler_delay {
            DelayModel::Throttle => Ok(()),
            DelayModel::Fixed { ticks } => write!(f, ", delay=fixed({ticks})"),
            DelayModel::Pareto {
                scale_ticks,
                shape,
                cap_ticks,
            } => write!(f, ", delay=pareto({scale_ticks},{shape},{cap_ticks})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> ClusterTopology {
        ClusterTopology::uniform(6, 4)
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = FaultConfig::heavy();
        let a = FaultPlan::generate(1234, &topo(), &cfg);
        let b = FaultPlan::generate(1234, &topo(), &cfg);
        assert_eq!(a, b);
        let c = FaultPlan::generate(1235, &topo(), &cfg);
        assert_ne!(a, c);
    }

    #[test]
    fn counts_respect_config_and_topology() {
        let cfg = FaultConfig {
            node_crashes: 2,
            rack_outages: 1,
            stragglers: 3,
            ..FaultConfig::default()
        };
        let p = FaultPlan::generate(7, &topo(), &cfg);
        assert_eq!(p.crashes().len(), 2);
        assert_eq!(p.outages().len(), 1);
        assert_eq!(p.stragglers().len(), 3);
        // Crashed nodes and stragglers are disjoint.
        for (s, _) in p.stragglers() {
            assert!(p.crashes().iter().all(|c| c.node != *s));
        }
        // A tiny topology clamps the counts.
        let tiny = ClusterTopology::uniform(1, 2);
        let p = FaultPlan::generate(7, &tiny, &cfg);
        assert!(p.crashes().len() + p.stragglers().len() <= 2);
        assert!(p.outages().len() <= 1);
    }

    #[test]
    fn empty_plan_reports_empty() {
        assert!(FaultPlan::none().is_empty());
        assert_eq!(FaultPlan::none().to_string(), "fault plan: none");
        let p = FaultPlan::generate(1, &topo(), &FaultConfig::default());
        assert!(!p.is_empty());
        assert!(p.to_string().contains("seed=1"));
    }

    #[test]
    fn delay_models_sample_purely_and_respect_caps() {
        // Throttle: the delay is the extra service time the factor implies.
        let t = DelayModel::Throttle;
        assert_eq!(t.sample(0.5, 1000, 0.25), 3000);
        assert_eq!(t.sample(0.9, 1000, 1.0), 0);
        assert_eq!(t.sample(0.9, 1000, 0.0), 0);
        // Fixed ignores both the sample and the service time.
        let fx = DelayModel::Fixed { ticks: 42 };
        assert_eq!(fx.sample(0.0, 1, 0.1), 42);
        assert_eq!(fx.sample(0.999, 1_000_000, 0.1), 42);
        // Pareto: monotone in u, floored at scale, capped hard.
        let p = DelayModel::Pareto {
            scale_ticks: 400,
            shape: 1.2,
            cap_ticks: 200_000,
        };
        let lo = p.sample(0.0, 0, 0.1);
        let mid = p.sample(0.9, 0, 0.1);
        let hi = p.sample(0.999999, 0, 0.1);
        assert_eq!(lo, 400);
        assert!(mid > lo, "p90 {mid} must exceed the scale floor");
        assert!(hi <= 200_000, "samples must respect the cap, got {hi}");
        assert!(mid < hi);
        // Pure: same inputs, same sample.
        assert_eq!(p.sample(0.9, 0, 0.1), mid);
        // A non-positive shape clamps instead of dividing by zero.
        let bad = DelayModel::Pareto {
            scale_ticks: 10,
            shape: 0.0,
            cap_ticks: 100,
        };
        assert!(bad.sample(0.5, 0, 0.1) >= 10);
    }

    #[test]
    fn plan_display_names_non_default_delay_models() {
        let t = topo();
        let cfg = FaultConfig {
            straggler_delay: DelayModel::Pareto {
                scale_ticks: 400,
                shape: 1.2,
                cap_ticks: 200_000,
            },
            ..FaultConfig::default()
        };
        let p = FaultPlan::generate(3, &t, &cfg);
        assert!(p.to_string().contains("delay=pareto(400,1.2,200000)"));
        let legacy = FaultPlan::generate(3, &t, &FaultConfig::default());
        assert!(!legacy.to_string().contains("delay="));
    }

    #[test]
    fn max_down_nodes_counts_rack_members_once() {
        let cfg = FaultConfig {
            node_crashes: 1,
            rack_outages: 1,
            stragglers: 0,
            ..FaultConfig::default()
        };
        let t = topo();
        let p = FaultPlan::generate(99, &t, &cfg);
        let max = p.max_down_nodes(&t);
        // One rack of 4 plus at most one extra node outside it.
        assert!((4..=5).contains(&max), "got {max}");
    }
}
